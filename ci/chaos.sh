#!/usr/bin/env bash
# Chaos acceptance check (DESIGN.md §6i): seeded fault storms against the
# checkpoint+spill CLI workload, proving the degradation chain end to end.
#
#   Phase A — 48 filesystem-fault plans (checkpoint + spill sites). Each
#             run must exit 0 with labels byte-identical to the clean
#             reference: retries, tile rebuilds, and oracle degradation
#             absorb every checkpoint/spill fault without touching the
#             answer.
#   Phase B — 16 clock-skew / delay / alloc plans. Runs may be cut short
#             (anytime contract) but must exit with a documented code,
#             never panic, and always write full-length labels.
#   Phase C — typed-error check: an injected dataset-read failure must
#             surface as exit 3 (I/O error), not a panic or exit 101.
#   Phase D — determinism: the same plan and seed replay the same
#             injection sequence ("fault injected at ..." stderr lines).
#   Phase E — SIGKILL under an active fault storm, then resume: the
#             resumed labels must be byte-identical to the reference.
#
# ≥64 seeded plans total. The caller wraps this script in `timeout 300`.
set -euo pipefail

cd "$(dirname "$0")/.."
BIN=target/release/aggclust
if [ ! -x "$BIN" ]; then
    cargo build --release -q -p aggclust-cli
fi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# n = 600, m = 3: planted 9-block structure with deterministic disagreement,
# the same generator family as ci/kill-resume.sh at a size where a 1 MB
# memory budget forces the spill path (dense matrix ≈ 1.4 MB).
awk 'BEGIN {
  for (v = 0; v < 600; v++) {
    base = v % 9
    b = (base + (v % 5 == 0)) % 9
    c = (base + (v % 7 == 0)) % 9
    printf "%d,%d,%d\n", base, b, c
  }
}' > "$WORK/input.csv"

args=(aggregate --input "$WORK/input.csv" --algorithm local-search --no-refine
      --threads 1 --mem-budget-mb 1)

echo "== clean reference =="
"$BIN" "${args[@]}" --checkpoint "$WORK/ref.ckpt" --checkpoint-every-ms 20 \
    --spill-dir "$WORK/ref.spill" --output "$WORK/ref.txt"
lines=$(wc -l < "$WORK/ref.txt")
[ "$lines" -eq 600 ] || { echo "FAIL: reference has $lines labels"; exit 1; }

# One run under an armed plan. Asserts the universal invariants (no panic,
# documented exit code, full-length labels when expected) and leaves stderr
# in $WORK/run.err for the caller's phase-specific checks.
run_storm() {
    local plan=$1 out=$2 expect_labels=$3
    local ckpt="$WORK/storm.ckpt"
    rm -rf "$ckpt" "$ckpt.spill" "$WORK/storm.spill"
    local code=0
    "$BIN" "${args[@]}" --checkpoint "$ckpt" --checkpoint-every-ms 20 \
        --spill-dir "$WORK/storm.spill" --output "$out" \
        --fault-plan "$plan" 2> "$WORK/run.err" || code=$?
    if grep -q "panicked" "$WORK/run.err"; then
        echo "FAIL: panic under plan '$plan'"; cat "$WORK/run.err"; exit 1
    fi
    case "$code" in
        0|7|8) ;;
        *) echo "FAIL: undocumented exit $code under plan '$plan'"
           cat "$WORK/run.err"; exit 1 ;;
    esac
    if [ "$expect_labels" = yes ]; then
        local got
        got=$(wc -l < "$out")
        if [ "$got" -ne 600 ]; then
            echo "FAIL: $got labels under plan '$plan'"; exit 1
        fi
    fi
    return "$code"
}

echo "== phase A: 48 filesystem-fault storms =="
# Deterministic plan table: every checkpoint/spill site crossed with the
# fault kinds it can carry, seeds varied per storm.
fs_sites=(snapshot.create snapshot.write snapshot.fsync snapshot.rename
          spill.create spill.write spill.fsync spill.rename spill.read
          spill.create_dir snapshot.read cli.cleanup)
fs_kinds=(io_error enospc torn delay:ms=1)
for storm in $(seq 0 47); do
    site=${fs_sites[$((storm % ${#fs_sites[@]}))]}
    kind=${fs_kinds[$(((storm / ${#fs_sites[@]}) % ${#fs_kinds[@]}))]}
    case "$site" in
        # Read sites never see torn clauses' silent truncation as a write;
        # keep the sweep honest by downgrading torn to io_error there.
        *.read|cli.cleanup) kind=${kind/torn/io_error} ;;
    esac
    plan="$site=$kind:prob=0.5:seed=$((1000 + storm))"
    run_storm "$plan" "$WORK/storm.txt" yes || true
    if ! cmp -s "$WORK/ref.txt" "$WORK/storm.txt"; then
        echo "FAIL: storm $storm ($plan) changed the labels"; exit 1
    fi
done
echo "OK: 48 fs storms, labels byte-identical to the reference"

echo "== phase B: 16 skew / delay / alloc storms =="
for storm in $(seq 0 15); do
    case $((storm % 4)) in
        0) plan="clock=skew:ms=$((10 + storm * 5))" ;;
        1) plan="alloc=fail:after_mb=$((1 + storm % 3))" ;;
        2) plan="spill.write=delay:ms=2:prob=0.5:seed=$storm,snapshot.write=delay:ms=2:prob=0.5:seed=$storm" ;;
        3) plan="alloc=fail:after_mb=1,spill.write=io_error:prob=0.5:seed=$storm" ;;
    esac
    run_storm "$plan" "$WORK/storm.txt" yes || true
done
echo "OK: 16 pressure storms, all anytime contracts held"

echo "== phase C: injected input-read failure is a typed I/O error =="
code=0
"$BIN" "${args[@]}" --output "$WORK/c.txt" \
    --fault-plan "cli.input=io_error" 2> "$WORK/c.err" || code=$?
if [ "$code" -ne 3 ]; then
    echo "FAIL: expected exit 3 for injected input failure, got $code"
    cat "$WORK/c.err"; exit 1
fi
grep -q "panicked" "$WORK/c.err" && { echo "FAIL: panic"; exit 1; }
echo "OK: injected dataset-read fault surfaced as exit 3"

echo "== phase D: same plan + seed => same injection sequence =="
# Checkpoint cadence 0 saves on every iteration, so with --threads 1 the
# op sequence — and therefore the injection log — is a pure function of
# (plan, seed). Zero-millisecond delays keep the run fast while still
# logging every injection; the spill io_errors exercise the retry path.
plan="spill.write=io_error:prob=0.5:seed=7,snapshot.write=delay:ms=0:prob=0.5:seed=11"
run_d() {
    local out=$1
    rm -rf "$WORK/d.ckpt" "$WORK/d.spill"
    "$BIN" "${args[@]}" --checkpoint "$WORK/d.ckpt" --checkpoint-every-ms 0 \
        --spill-dir "$WORK/d.spill" --output "$out" \
        --fault-plan "$plan" 2> "$WORK/run.err" || true
}
run_d "$WORK/d1.txt"
grep "fault injected" "$WORK/run.err" > "$WORK/d1.log" || true
run_d "$WORK/d2.txt"
grep "fault injected" "$WORK/run.err" > "$WORK/d2.log" || true
if [ ! -s "$WORK/d1.log" ]; then
    echo "FAIL: determinism storm never injected anything"; exit 1
fi
cmp "$WORK/d1.log" "$WORK/d2.log" || {
    echo "FAIL: injection sequence is not deterministic"; exit 1; }
echo "OK: $(wc -l < "$WORK/d1.log") injections replayed identically"

echo "== phase E: SIGKILL under injection, then resume =="
rm -rf "$WORK/e.ckpt" "$WORK/e.spill"
"$BIN" "${args[@]}" --checkpoint "$WORK/e.ckpt" --checkpoint-every-ms 5 \
    --spill-dir "$WORK/e.spill" --output "$WORK/e.txt" \
    --fault-plan "snapshot.write=torn:prob=0.3:seed=3,spill.write=io_error:prob=0.3:seed=5" \
    2>/dev/null &
victim=$!
for _ in $(seq 1 300); do
    [ -f "$WORK/e.ckpt" ] && break
    kill -0 "$victim" 2>/dev/null || break
    sleep 0.01
done
kill -KILL "$victim" 2>/dev/null || echo "note: run finished before the kill"
wait "$victim" 2>/dev/null || true
# Resume with no plan armed: whatever the storm left on disk — a valid
# checkpoint, a torn one the CRC rejects, leftover tiles — must lead back
# to the reference labels.
"$BIN" "${args[@]}" --checkpoint "$WORK/e.ckpt" --resume \
    --spill-dir "$WORK/e.spill" --output "$WORK/resumed.txt"
cmp "$WORK/ref.txt" "$WORK/resumed.txt"
echo "OK: resume after SIGKILL-under-injection is byte-identical"

echo "chaos: all phases passed (66 seeded plans)"
