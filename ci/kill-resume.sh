#!/usr/bin/env bash
# Kill-and-resume acceptance check (ISSUE 3):
#
#   1. Run LOCALSEARCH on n = 5000 with --checkpoint, SIGKILL it at ~50 ms
#      (a real crash: no handler runs, no final checkpoint is flushed).
#   2. Resume from whatever checkpoint survived on disk.
#   3. The resumed labels must be byte-identical to an uninterrupted run.
#
# Also smoke-tests --mem-budget-mb: a cap far below the ~100 MB dense-matrix
# footprint must complete through the lazy-oracle degradation path with a
# warning and the same labels. The caller wraps this script in `timeout 60`.
set -euo pipefail

cd "$(dirname "$0")/.."
BIN=target/release/aggclust
if [ ! -x "$BIN" ]; then
    cargo build --release -q -p aggclust-cli
fi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# n = 5000, m = 3: planted 9-block structure with deterministic disagreement
# on every 5th and 7th row, so LOCALSEARCH has real moves to make.
awk 'BEGIN {
  for (v = 0; v < 5000; v++) {
    base = v % 9
    b = (base + (v % 5 == 0)) % 9
    c = (base + (v % 7 == 0)) % 9
    printf "%d,%d,%d\n", base, b, c
  }
}' > "$WORK/input.csv"

args=(aggregate --input "$WORK/input.csv" --algorithm local-search --no-refine)

echo "== reference (uninterrupted) =="
"$BIN" "${args[@]}" --output "$WORK/ref.txt"

echo "== victim (SIGKILL at ~50 ms) =="
"$BIN" "${args[@]}" --checkpoint "$WORK/run.ckpt" --checkpoint-every-ms 5 \
    --output "$WORK/victim.txt" 2>/dev/null &
victim=$!
sleep 0.05
# The O(n²) matrix build precedes the first checkpoint; killing before one
# exists would only exercise the (also valid) fresh-start path. Hold the
# kill until a checkpoint is on disk or the victim exits on its own.
for _ in $(seq 1 300); do
    [ -f "$WORK/run.ckpt" ] && break
    kill -0 "$victim" 2>/dev/null || break
    sleep 0.01
done
kill -KILL "$victim" 2>/dev/null || echo "note: run finished before the kill"
wait "$victim" 2>/dev/null || true
if [ -f "$WORK/run.ckpt" ]; then
    echo "checkpoint survived the kill ($(wc -c < "$WORK/run.ckpt") bytes)"
else
    echo "note: killed before the first checkpoint; resume starts fresh"
fi

echo "== resume =="
"$BIN" "${args[@]}" --checkpoint "$WORK/run.ckpt" --resume --output "$WORK/resumed.txt"

cmp "$WORK/ref.txt" "$WORK/resumed.txt"
echo "OK: resumed labels are byte-identical to the uninterrupted run"

echo "== --mem-budget-mb degradation smoke =="
"$BIN" "${args[@]}" --mem-budget-mb 4 --output "$WORK/mem.txt" 2> "$WORK/mem.err"
grep -q "lazy oracle" "$WORK/mem.err"
cmp "$WORK/ref.txt" "$WORK/mem.txt"
echo "OK: memory-capped run degraded to the lazy oracle with identical labels"
