#!/usr/bin/env bash
# Panic lint: library and binary sources must not contain panicking escape
# hatches. Fallible paths return typed `AggError`s; documented invariant
# violations use `assert!` (which this lint permits on purpose).
#
# Also forbids bare `eprintln!`: diagnostics flow through the telemetry
# layer (`info!`/`warn!` + the stderr sink), so a direct `eprintln!` is
# only allowed on the error-reporting path itself and must carry a
# `lint:allow-eprintln` marker (on the call's opening line or on any line
# up to the statement's closing `;`).
#
# Unsafe hygiene: the SIMD kernel tier (DESIGN.md §6g) introduces the
# crate's only `unsafe` code, so every `unsafe` occurrence in non-test
# sources — `unsafe fn` declarations and `unsafe { ... }` blocks alike —
# must be justified by a `// SAFETY:` comment or a `/// # Safety` doc
# section within the six preceding lines.
#
# Filesystem facade: every fs touch in the core and CLI crates must go
# through `aggclust_core::iofs` so fault plans (DESIGN.md §6i) can reach
# it — a bare `std::fs::` call (or `use std::fs` import) outside iofs.rs
# is a hole in the injection surface. Deliberate exceptions carry a
# `lint:allow-fs` marker on the same line.
#
# Scope: crates/*/src — test modules (everything at and after the first
# `#[cfg(test)]` in a file) are exempt, and the offline dependency shims
# under crates/shims/ are exempt (they mirror external crates' APIs).
set -euo pipefail
shopt -s globstar nullglob
cd "$(dirname "$0")/.."

status=0
for file in crates/*/src/**/*.rs; do
  [ -f "$file" ] || continue
  hits=$(awk '
    /#\[cfg\(test\)\]/ { exit }
    # A multi-line eprintln! is pending until its closing ";" — acquitted
    # the moment a lint:allow-eprintln marker shows up.
    pending {
      if ($0 ~ /lint:allow-eprintln/) { pending = 0; next }
      if ($0 ~ /;/) { print loc; pending = 0 }
      next
    }
    /\.unwrap\(|\.expect\(|panic!/ {
      # Permit doc comments that merely mention the forbidden calls.
      if ($0 !~ /^[[:space:]]*\/\//) print FILENAME ":" FNR ": " $0
    }
    /eprintln!/ {
      if ($0 ~ /^[[:space:]]*\/\//) next
      if ($0 ~ /lint:allow-eprintln/) next
      if ($0 ~ /;/) { print FILENAME ":" FNR ": " $0 }
      else { pending = 1; loc = FILENAME ":" FNR ": " $0 }
    }
  ' "$file")
  if [ -n "$hits" ]; then
    echo "$hits"
    status=1
  fi
done

unsafe_status=0
for file in crates/*/src/**/*.rs; do
  [ -f "$file" ] || continue
  hits=$(awk '
    /#\[cfg\(test\)\]/ { exit }
    # Track the most recent safety justification: either an inline
    # "// SAFETY:" comment or a "/// # Safety" doc heading.
    /SAFETY:/ || /# Safety/ { last_safety = FNR }
    /\bunsafe\b/ {
      if ($0 ~ /^[[:space:]]*\/\//) next   # comments merely mentioning it
      if (last_safety == 0 || FNR - last_safety > 6)
        print FILENAME ":" FNR ": " $0
    }
  ' "$file")
  if [ -n "$hits" ]; then
    echo "$hits"
    unsafe_status=1
  fi
done

fs_status=0
for file in crates/core/src/**/*.rs crates/cli/src/**/*.rs; do
  [ -f "$file" ] || continue
  case "$file" in
    */iofs.rs) continue ;;
  esac
  hits=$(awk '
    /#\[cfg\(test\)\]/ { exit }
    /std::fs/ {
      if ($0 ~ /^[[:space:]]*\/\//) next   # doc comments mentioning it
      if ($0 ~ /lint:allow-fs/) next
      print FILENAME ":" FNR ": " $0
    }
  ' "$file")
  if [ -n "$hits" ]; then
    echo "$hits"
    fs_status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo
  echo "panic-lint: forbidden .unwrap()/.expect()/panic!/bare eprintln! in non-test sources." >&2
  echo "Return a typed AggError instead of panicking, or use unwrap_or/map_or fallbacks." >&2
  echo "Route diagnostics through telemetry (info!/warn!); true error-path prints" >&2
  echo "need a 'lint:allow-eprintln' marker before the statement ends." >&2
fi
if [ "$unsafe_status" -ne 0 ]; then
  echo
  echo "panic-lint: 'unsafe' without a nearby justification in non-test sources." >&2
  echo "Put a '// SAFETY: ...' comment (or a '/// # Safety' doc section for" >&2
  echo "unsafe fns) within the six lines above each unsafe keyword." >&2
fi
if [ "$fs_status" -ne 0 ]; then
  echo
  echo "panic-lint: bare std::fs use outside the iofs facade in core/cli sources." >&2
  echo "Route file I/O through aggclust_core::iofs so fault plans can reach it," >&2
  echo "or mark a deliberate exception with 'lint:allow-fs' on the same line." >&2
fi
exit $((status | unsafe_status | fs_status))
