#!/usr/bin/env bash
# Panic lint: library and binary sources must not contain panicking escape
# hatches. Fallible paths return typed `AggError`s; documented invariant
# violations use `assert!` (which this lint permits on purpose).
#
# Scope: crates/*/src — test modules (everything at and after the first
# `#[cfg(test)]` in a file) are exempt, and the offline dependency shims
# under crates/shims/ are exempt (they mirror external crates' APIs).
set -euo pipefail
shopt -s globstar nullglob
cd "$(dirname "$0")/.."

status=0
for file in crates/*/src/**/*.rs; do
  [ -f "$file" ] || continue
  hits=$(awk '
    /#\[cfg\(test\)\]/ { exit }
    /\.unwrap\(|\.expect\(|panic!/ {
      # Permit doc comments that merely mention the forbidden calls.
      if ($0 !~ /^[[:space:]]*\/\//) print FILENAME ":" FNR ": " $0
    }
  ' "$file")
  if [ -n "$hits" ]; then
    echo "$hits"
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo
  echo "panic-lint: forbidden .unwrap()/.expect()/panic! in non-test sources." >&2
  echo "Return a typed AggError instead, or use unwrap_or/map_or fallbacks." >&2
fi
exit "$status"
