#!/usr/bin/env bash
# Perf-regression gate (ISSUE 9):
#
#   1. Run the pinned workload — n = 5000 planted 9-block input,
#      LOCALSEARCH, --threads 1, --seed 0, AGGCLUST_SIMD=swar — and diff
#      its run report against the committed baseline with aggclust-trace.
#      Deterministic work counters are gated exactly (any drift means the
#      algorithm did different work); span self-time *shares* are gated
#      with a generous tolerance (absolute times do not transfer across
#      machines, shares mostly do).
#   2. Self-test the gate: doctor the baseline (halve a gated counter,
#      double a span's self time) and assert the diff now FAILS — a gate
#      that cannot fail is not a gate.
#   3. Smoke-check the flamegraph path: `aggclust-trace fold` on the
#      workload's JSONL trace must emit well-formed folded-stack lines
#      including the local_search span.
#
# The pinned tier + thread count make the gated counters machine-
# independent, so the committed baseline stays valid on any host.
set -euo pipefail

cd "$(dirname "$0")/.."
BIN=target/release/aggclust
TRACE_BIN=target/release/aggclust-trace
if [ ! -x "$BIN" ]; then
    cargo build --release -q -p aggclust-cli
fi
if [ ! -x "$TRACE_BIN" ]; then
    cargo build --release -q -p aggclust-trace
fi

BASELINE=ci/baselines/local_search_n5000.json
[ -f "$BASELINE" ] || { echo "missing baseline $BASELINE" >&2; exit 1; }

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# Same planted 9-block family as ci/trace-schema.sh / ci/kill-resume.sh.
awk -v n=5000 'BEGIN {
  for (v = 0; v < n; v++) {
    base = v % 9
    b = (base + (v % 5 == 0)) % 9
    c = (base + (v % 7 == 0)) % 9
    printf "%d,%d,%d\n", base, b, c
  }
}' > "$WORK/in5000.csv"

# Counters that must not move at all on the pinned workload. Everything the
# run does per distance lookup / node visit / kernel batch is covered, so a
# silently-added O(n^2) pass or a broken early-exit shows up here before any
# wall-clock measurement could see it through the noise.
GATED_COUNTERS=oracle_dense_evals,oracle_packed_evals,oracle_lazy_evals,ls_passes,ls_nodes_visited,ls_moves,kernels_row_batches,mem_high_water_bytes

run_workload() {
    AGGCLUST_SIMD=swar "$BIN" aggregate --input "$WORK/in5000.csv" \
        --algorithm local-search --no-refine --threads 1 --seed 0 \
        --metrics-out "$1" --output /dev/null --log-level error \
        ${2:+--trace-out "$2"}
}

echo "== pinned workload: n=5000 local-search, threads=1, swar tier =="
run_workload "$WORK/current.json" "$WORK/trace.jsonl"

echo "== gate: current vs committed baseline =="
"$TRACE_BIN" diff --before "$BASELINE" --after "$WORK/current.json" \
    --gate-counters "$GATED_COUNTERS" \
    --share-tolerance-pts 25 --min-ns 20000000 \
    --fail-on-regression

echo "== self-test: a doctored baseline must FAIL the gate =="
python3 - "$BASELINE" "$WORK/doctored_counter.json" "$WORK/doctored_timing.json" <<'EOF'
import json, sys
base = json.load(open(sys.argv[1]))

# Doctored baseline 1: the run "used to" do half the oracle work, so the
# current run looks like a 2x counter regression.
doc = json.loads(json.dumps(base))
doc["metrics"]["oracle_dense_evals"] //= 2
json.dump(doc, open(sys.argv[2], "w"))

# Doctored baseline 2: local_search "used to" be a sliver of the profile;
# rescale every other span up so local_search's share collapses in the
# baseline and the current run's share reads as a blow-up.
doc = json.loads(json.dumps(base))
for name, span in doc["timings"].items():
    if name != "local_search":
        span["total_ns"] *= 50
        span["self_ns"] *= 50
json.dump(doc, open(sys.argv[3], "w"))
EOF
for doctored in doctored_counter doctored_timing; do
    if "$TRACE_BIN" diff --before "$WORK/$doctored.json" --after "$WORK/current.json" \
        --gate-counters "$GATED_COUNTERS" \
        --share-tolerance-pts 25 --min-ns 20000000 \
        --fail-on-regression > "$WORK/$doctored.out"; then
        echo "gate self-test FAILED: $doctored baseline passed the gate" >&2
        cat "$WORK/$doctored.out" >&2
        exit 1
    fi
    grep -q "REGRESSION" "$WORK/$doctored.out"
    echo "OK: $doctored baseline tripped the gate"
done

echo "== flamegraph fold smoke-check =="
"$TRACE_BIN" fold --trace "$WORK/trace.jsonl" > "$WORK/folded.txt"
# Folded-stack grammar: 'name(;name)* <integer>' per line, nothing else.
awk '!/^[A-Za-z0-9_]+(;[A-Za-z0-9_]+)* [0-9]+$/ { print "bad folded line: " $0; bad = 1 }
     END { exit bad }' "$WORK/folded.txt"
grep -q "local_search " "$WORK/folded.txt"
grep -q "condensed_alloc" "$WORK/folded.txt"
echo "OK: $(wc -l < "$WORK/folded.txt") folded stacks, grammar valid"

echo "perf-gate: all checks passed"
