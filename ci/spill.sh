#!/usr/bin/env bash
# Out-of-core spill acceptance check (ISSUE 7):
#
#   1. n = 20000, m = 10 under a --mem-budget-mb cap far below the ~3.2 GB
#      dense-matrix footprint must degrade to the *disk spill* — the run
#      warns "spilling the condensed matrix", not SAMPLING and not
#      singletons — and its labels must be byte-identical to an
#      unconstrained run.
#   2. SIGKILL the spilled run mid-spill (tile frames on disk, run dead),
#      then --resume: orphaned tiles are reclaimed and the labels still
#      match.
#   3. A converged spilled run removes its tiles (no disk litter).
#
# The caller wraps this script in `timeout 900` (the runs move ~5 GB of
# matrix + tile bytes through page faults; slow-fault VMs need the slack).
set -euo pipefail

cd "$(dirname "$0")/.."
BIN=target/release/aggclust
if [ ! -x "$BIN" ]; then
    cargo build --release -q -p aggclust-cli
fi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# n = 20000, m = 10: planted 9-block structure where clustering j disagrees
# deterministically on every (5 + j)-th row — the same family as
# ci/kill-resume.sh, widened to 10 input clusterings.
awk 'BEGIN {
  for (v = 0; v < 20000; v++) {
    base = v % 9
    line = base
    for (j = 1; j < 10; j++) {
      line = line "," ((base + (v % (5 + j) == 0)) % 9)
    }
    print line
  }
}' > "$WORK/input.csv"

# Keep n = 20000 on the dense/spilled path (default threshold is 6000).
# BALLS makes one deterministic Theta(n^2) sweep over the oracle — it reads
# every spilled pair exactly where LOCALSEARCH would, without LOCALSEARCH's
# many-pass runtime — and --no-refine keeps the comparison to that sweep.
args=(aggregate --input "$WORK/input.csv" --algorithm balls --no-refine
      --sampling-threshold 20001)

echo "== reference (unconstrained: dense matrix in RAM) =="
"$BIN" "${args[@]}" --output "$WORK/ref.txt" --log-level error

echo "== spilled (--mem-budget-mb 64, ~200 tiles on disk) =="
"$BIN" "${args[@]}" --mem-budget-mb 64 --spill-dir "$WORK/tiles" \
    --output "$WORK/spilled.txt" 2> "$WORK/spilled.err" || {
    cat "$WORK/spilled.err"
    exit 1
}
grep -q "spilling the condensed matrix" "$WORK/spilled.err" || {
    echo "FAIL: spilled run did not record the spill warning"
    cat "$WORK/spilled.err"
    exit 1
}
if grep -Eq "SAMPLING|singletons|lazy oracle" "$WORK/spilled.err"; then
    echo "FAIL: spilled run degraded past the spill step"
    cat "$WORK/spilled.err"
    exit 1
fi
cmp "$WORK/ref.txt" "$WORK/spilled.txt"
echo "OK: spilled labels are byte-identical to the unconstrained run"
if [ -d "$WORK/tiles" ]; then
    echo "FAIL: converged run left spilled tiles behind:"
    ls "$WORK/tiles"
    exit 1
fi
echo "OK: converged run cleaned up its spill directory"

echo "== victim (SIGKILL mid-spill) =="
"$BIN" "${args[@]}" --mem-budget-mb 64 --checkpoint "$WORK/run.ckpt" \
    --output "$WORK/victim.txt" 2>/dev/null &
victim=$!
# The default spill dir rides beside the checkpoint. Hold the kill until
# tile frames exist (the spill is actually in flight) or the victim exits.
SPILL_DIR="$WORK/run.ckpt.spill"
for _ in $(seq 1 3000); do
    if [ -d "$SPILL_DIR" ] && [ -n "$(ls "$SPILL_DIR" 2>/dev/null)" ]; then
        break
    fi
    kill -0 "$victim" 2>/dev/null || break
    sleep 0.01
done
kill -KILL "$victim" 2>/dev/null || echo "note: run finished before the kill"
wait "$victim" 2>/dev/null || true
orphans=$(ls "$SPILL_DIR" 2>/dev/null | wc -l)
echo "killed with $orphans orphaned tile frames on disk"

echo "== resume (orphaned tiles must be reclaimed) =="
"$BIN" "${args[@]}" --mem-budget-mb 64 --checkpoint "$WORK/run.ckpt" --resume \
    --metrics-out "$WORK/resume.json" --output "$WORK/resumed.txt" \
    2> "$WORK/resume.err"
cmp "$WORK/ref.txt" "$WORK/resumed.txt"
echo "OK: resumed labels are byte-identical to the unconstrained run"
if [ "$orphans" -gt 0 ]; then
    python3 - "$WORK/resume.json" "$orphans" <<'EOF'
import json
import sys

metrics = json.load(open(sys.argv[1]))["metrics"]
orphans = int(sys.argv[2])
read, written = metrics["spill_tiles_read"], metrics["spill_tiles_written"]
assert read > 0, f"no orphaned tiles were reclaimed (written={written})"
print(f"OK: resume reclaimed {read} tiles, rebuilt and wrote {written}")
EOF
fi
if [ -d "$SPILL_DIR" ]; then
    echo "FAIL: resumed run left spilled tiles behind:"
    ls "$SPILL_DIR"
    exit 1
fi
echo "OK: resumed run cleaned up the default spill directory"
