#!/usr/bin/env bash
# Observability acceptance checks (ISSUE 4):
#
#   1. Run an n = 2000 aggregation with --trace-out/--metrics-out and
#      validate both machine-readable outputs against their schemas:
#      every trace line is a JSON object of type event/span_start/span_end
#      with the documented keys, span ends pair with starts, and the run
#      report is {"schema":"aggclust-run-report-v1","metrics":{...}} with
#      every counter a non-negative integer.
#   2. Check the paper's Figure 5 scaling claim on the counters themselves:
#      at n = 5000, SAMPLING's distance-oracle evaluations stay O(n·s)
#      (≤ 5% of n²) while BALLS pays the full Θ(n²).
#   3. Validate the host block (DESIGN.md §6g): every run report carries
#      {"host":{arch,os,cpus,features,simd_requested,simd_selected}}, the
#      kernels_dispatch_tier metric is a known tier name matching the
#      host's selected tier, and a run forced to AGGCLUST_SIMD=swar
#      reports exactly that tier.
set -euo pipefail

cd "$(dirname "$0")/.."
BIN=target/release/aggclust
if [ ! -x "$BIN" ]; then
    cargo build --release -q -p aggclust-cli
fi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# Planted 9-block structure with deterministic disagreements (same family
# as ci/kill-resume.sh) at two sizes.
gen_input() {
    awk -v n="$1" 'BEGIN {
      for (v = 0; v < n; v++) {
        base = v % 9
        b = (base + (v % 5 == 0)) % 9
        c = (base + (v % 7 == 0)) % 9
        printf "%d,%d,%d\n", base, b, c
      }
    }'
}
gen_input 2000 > "$WORK/in2000.csv"
gen_input 5000 > "$WORK/in5000.csv"

echo "== n = 2000 run with --trace-out / --metrics-out =="
"$BIN" aggregate --input "$WORK/in2000.csv" --algorithm local-search \
    --trace-out "$WORK/trace.jsonl" --metrics-out "$WORK/report.json" \
    --output /dev/null --log-level error

echo "== trace + report schema validation =="
python3 - "$WORK/trace.jsonl" "$WORK/report.json" <<'EOF'
import json
import sys

trace_path, report_path = sys.argv[1], sys.argv[2]

LEVELS = {"error", "warn", "info", "debug", "trace"}
open_spans = {}
counts = {"event": 0, "span_start": 0, "span_end": 0}

def is_uint(x):
    return isinstance(x, int) and not isinstance(x, bool) and x >= 0

with open(trace_path) as f:
    for lineno, line in enumerate(f, 1):
        rec = json.loads(line)
        kind = rec.get("type")
        assert kind in counts, f"line {lineno}: unknown type {kind!r}"
        counts[kind] += 1
        assert is_uint(rec.get("ts_ns")), f"line {lineno}: bad ts_ns"
        assert is_uint(rec.get("tid")) and rec["tid"] >= 1, f"line {lineno}: bad tid"
        assert isinstance(rec.get("fields"), dict), f"line {lineno}: bad fields"
        if kind == "event":
            assert rec.get("level") in LEVELS, f"line {lineno}: bad level"
            assert isinstance(rec.get("message"), str), f"line {lineno}: bad message"
        else:
            assert isinstance(rec.get("span"), str), f"line {lineno}: bad span"
            assert is_uint(rec.get("id")), f"line {lineno}: bad id"
            if kind == "span_start":
                assert rec["id"] not in open_spans, f"line {lineno}: id reused"
                open_spans[rec["id"]] = rec["span"]
            else:
                assert open_spans.pop(rec["id"], None) == rec["span"], \
                    f"line {lineno}: span_end without matching start"
                assert is_uint(rec.get("elapsed_ns")), f"line {lineno}: bad elapsed_ns"

assert counts["span_start"] > 0, "no spans were traced"
assert counts["span_end"] == counts["span_start"], "unbalanced spans"
assert not open_spans, f"spans never closed: {open_spans}"
spans = counts["span_start"]

report = json.load(open(report_path))
assert report.get("schema") == "aggclust-run-report-v1", "bad report schema tag"
metrics = report["metrics"]
TIERS = {"scalar", "swar", "sse2", "avx2", "avx512", "neon"}
host = report.get("host")
assert isinstance(host, dict), "report: missing host block"
assert isinstance(host.get("arch"), str) and host["arch"], "host: bad arch"
assert isinstance(host.get("os"), str) and host["os"], "host: bad os"
assert is_uint(host.get("cpus")) and host["cpus"] >= 1, "host: bad cpus"
assert isinstance(host.get("features"), list) and \
    all(isinstance(f, str) for f in host["features"]), "host: bad features"
assert host.get("simd_requested") in TIERS | {"auto"}, "host: bad simd_requested"
assert host.get("simd_selected") in TIERS, "host: bad simd_selected"

tier = metrics.get("kernels_dispatch_tier")
assert tier in TIERS, f"report: kernels_dispatch_tier {tier!r} not a tier name"
assert tier == host["simd_selected"], \
    f"report: dispatch tier {tier!r} != host simd_selected {host['simd_selected']!r}"

REQUIRED = [
    "oracle_dense_evals", "oracle_lazy_evals",
    "oracle_packed_evals", "kernels_fallback_scalar",
    "kernels_row_batches",
    "ls_passes", "ls_nodes_visited", "ls_moves",
    "linkage_merges", "linkage_chain_rebuilds",
    "balls_formed", "furthest_centers", "pivot_rounds", "exact_nodes",
    "sampling_runs", "sampling_sampled", "sampling_assigned",
    "sampling_reclustered",
    "checkpoint_saves", "checkpoint_retries", "checkpoint_failures",
    "checkpoint_corruptions",
    "spill_tiles_written", "spill_tiles_read", "spill_tiles_rebuilt",
    "spill_evictions", "spill_cache_hits", "spill_cache_bypass",
    "interrupts_deadline", "interrupts_iteration_cap",
    "interrupts_cancelled", "interrupts_memory",
    "faults_injected",
    "mem_high_water_bytes",
]
for key in REQUIRED:
    assert is_uint(metrics.get(key)), f"report: bad counter {key!r}"
for key in ("ls_delta_hist", "checkpoint_bytes_hist", "spill_bytes_hist"):
    hist = metrics.get(key)
    assert isinstance(hist, list) and len(hist) == 9 and all(map(is_uint, hist)), \
        f"report: bad histogram {key!r}"
assert isinstance(metrics.get("ls_improvement"), (int, float)), "bad ls_improvement"
assert metrics["ls_nodes_visited"] > 0, "LOCALSEARCH counters did not fire"
assert metrics["oracle_dense_evals"] > 0, "oracle counters did not fire"
assert metrics["oracle_packed_evals"] > 0, \
    "packed SWAR kernel counters did not fire -- dense build not on the packed path?"
assert metrics["kernels_row_batches"] > 0, \
    "kernels_row_batches did not fire -- banded fill not batching rows?"

# Timings block (ISSUE 9): per-span count/total/self/max aggregates, the
# self/total split consistent, and the spans this workload must traverse
# present with real time attributed.
timings = report.get("timings")
assert isinstance(timings, dict) and timings, "report: missing timings block"
for name, span in timings.items():
    assert isinstance(name, str) and name, "timings: empty span name"
    for key in ("count", "total_ns", "self_ns", "max_ns"):
        assert is_uint(span.get(key)), f"timings[{name!r}]: bad {key}"
    assert span["count"] > 0, f"timings[{name!r}]: zero count"
    assert span["self_ns"] <= span["total_ns"], \
        f"timings[{name!r}]: self_ns exceeds total_ns"
    assert span["max_ns"] <= span["total_ns"], \
        f"timings[{name!r}]: max_ns exceeds total_ns"
    hist = span.get("ns_hist")
    assert isinstance(hist, list) and len(hist) == 9 and all(map(is_uint, hist)), \
        f"timings[{name!r}]: bad ns_hist"
    assert sum(hist) == span["count"], \
        f"timings[{name!r}]: ns_hist does not sum to count"
for required_span in ("local_search", "dense_build", "condensed_alloc"):
    assert required_span in timings, f"timings: {required_span!r} span missing"
assert timings["local_search"]["total_ns"] > 0, "local_search span untimed"
assert timings["dense_build"]["total_ns"] >= \
    timings["condensed_alloc"]["total_ns"], \
    "condensed_alloc must nest inside dense_build"

# Faults array: a clean run records no injections.
faults = report.get("faults")
assert isinstance(faults, list), "report: missing faults array"
assert faults == [], f"clean run recorded injections: {faults}"

print(f"trace OK: {counts['event']} events, {spans} balanced spans; "
      f"report OK: {len(REQUIRED) + 3} metrics, {len(timings)} timed spans; "
      f"host OK: {host['arch']}/{host['cpus']}cpu tier={tier}")
EOF

echo "== n = 5000 scaling contrast: SAMPLING O(n*s) vs BALLS Theta(n^2) =="
"$BIN" aggregate --input "$WORK/in5000.csv" --sample 200 --no-refine \
    --metrics-out "$WORK/sampling.json" --output /dev/null --log-level error
"$BIN" aggregate --input "$WORK/in5000.csv" --algorithm balls --no-refine \
    --metrics-out "$WORK/balls.json" --output /dev/null --log-level error
python3 - "$WORK/sampling.json" "$WORK/balls.json" <<'EOF'
import json
import sys

def total_evals(path):
    m = json.load(open(path))["metrics"]
    return m["oracle_dense_evals"] + m["oracle_lazy_evals"]

n = 5000
sampling, balls = total_evals(sys.argv[1]), total_evals(sys.argv[2])
print(f"SAMPLING: {sampling} oracle evals ({100 * sampling / n**2:.2f}% of n^2)")
print(f"BALLS:    {balls} oracle evals ({100 * balls / n**2:.2f}% of n^2)")
assert sampling <= 0.05 * n**2, \
    f"SAMPLING oracle evals {sampling} exceed 5% of n^2 = {0.05 * n**2:.0f}"
assert balls >= 0.5 * n**2, \
    f"BALLS oracle evals {balls} below n^2/2 — is the counter wired?"
print("OK: the Figure 5 scaling claim holds on the counters")
EOF

echo "== spilled run: spill counters must fire and labels must match =="
"$BIN" aggregate --input "$WORK/in2000.csv" --algorithm local-search \
    --no-refine --output "$WORK/unconstrained.txt" --log-level error
"$BIN" aggregate --input "$WORK/in2000.csv" --algorithm local-search \
    --no-refine --mem-budget-mb 1 --spill-dir "$WORK/tiles" \
    --metrics-out "$WORK/spill.json" --output "$WORK/spilled.txt" \
    --log-level error
cmp "$WORK/unconstrained.txt" "$WORK/spilled.txt"
python3 - "$WORK/spill.json" <<'EOF'
import json
import sys

metrics = json.load(open(sys.argv[1]))["metrics"]
assert metrics["spill_tiles_written"] > 0, "spill_tiles_written did not fire"
assert metrics["spill_tiles_read"] > 0, "spill_tiles_read did not fire"
assert sum(metrics["spill_bytes_hist"]) > 0, "spill_bytes_hist did not fire"
print(f"OK: spilled run wrote {metrics['spill_tiles_written']} tiles, "
      f"read {metrics['spill_tiles_read']}, "
      f"evicted {metrics['spill_evictions']}; labels match the dense run")
EOF

echo "== forced tier: AGGCLUST_SIMD=swar must be honored and reported =="
AGGCLUST_SIMD=swar "$BIN" aggregate --input "$WORK/in2000.csv" \
    --algorithm local-search --metrics-out "$WORK/swar.json" \
    --output /dev/null --log-level error
python3 - "$WORK/swar.json" <<'EOF'
import json
import sys

report = json.load(open(sys.argv[1]))
host, metrics = report["host"], report["metrics"]
assert host["simd_requested"] == "swar", f"requested {host['simd_requested']!r}"
assert host["simd_selected"] == "swar", f"selected {host['simd_selected']!r}"
assert metrics["kernels_dispatch_tier"] == "swar", \
    f"dispatch tier {metrics['kernels_dispatch_tier']!r} ignored AGGCLUST_SIMD=swar"
print("OK: AGGCLUST_SIMD=swar selected, recorded in host block and metrics")
EOF

echo "== faulted run: injections must land in the report's faults array =="
"$BIN" aggregate --input "$WORK/in2000.csv" --algorithm local-search \
    --no-refine --fault-plan "cli.input=delay:ms=5" \
    --metrics-out "$WORK/faulted.json" --output /dev/null --log-level error
python3 - "$WORK/faulted.json" <<'EOF'
import json
import sys

report = json.load(open(sys.argv[1]))
faults, metrics = report["faults"], report["metrics"]
assert isinstance(faults, list) and faults, "armed run recorded no injections"
assert all(isinstance(f, str) and f for f in faults), f"bad fault entries: {faults}"
assert any("cli.input" in f and "delay" in f for f in faults), \
    f"expected a cli.input delay injection, got: {faults}"
assert metrics["faults_injected"] == len(faults), \
    f"faults_injected={metrics['faults_injected']} != len(faults)={len(faults)}"
print(f"OK: {len(faults)} injections embedded, matching faults_injected")
EOF

echo "== --progress: heartbeats render as single stderr lines =="
"$BIN" aggregate --input "$WORK/in5000.csv" --algorithm local-search \
    --no-refine --threads 1 --progress --output /dev/null \
    --log-level error 2> "$WORK/progress.txt"
grep -q "^progress: local_search " "$WORK/progress.txt"
awk '!/^progress: [a-z_]+ [0-9]+\/[0-9]+ / { print "bad progress line: " $0; bad = 1 }
     END { exit bad }' "$WORK/progress.txt"
echo "OK: $(wc -l < "$WORK/progress.txt") progress heartbeats, format valid"
