//! Hierarchical clustering on point data — single, complete, average, and
//! Ward linkage — the stand-in for the Matlab `linkage`/`cluster` pair the
//! paper uses for four of the five Figure-3 input clusterings.
//!
//! Built on the shared nearest-neighbor-chain engine in
//! [`aggclust_core::linkage`]; Ward runs on squared Euclidean distances as
//! required by its Lance–Williams recurrence (heights are therefore in the
//! squared scale, which does not affect cluster extraction by count).

use aggclust_core::clustering::Clustering;
use aggclust_core::linkage::{linkage, CondensedMatrix, Dendrogram};

pub use aggclust_core::linkage::LinkageMethod;

/// Parameters for [`hierarchical`].
#[derive(Clone, Copy, Debug)]
pub struct HierarchicalParams {
    /// Linkage criterion.
    pub method: LinkageMethod,
    /// Number of flat clusters to extract.
    pub k: usize,
}

impl HierarchicalParams {
    /// Convenience constructor.
    pub fn new(method: LinkageMethod, k: usize) -> Self {
        HierarchicalParams { method, k }
    }
}

/// Euclidean distance matrix of row-major point data (squared when `squared`
/// is set, as Ward requires).
pub fn euclidean_matrix(points: &[Vec<f64>], squared: bool) -> CondensedMatrix {
    let dim = points.first().map_or(0, |p| p.len());
    assert!(
        points.iter().all(|p| p.len() == dim),
        "inconsistent dimensionality"
    );
    CondensedMatrix::from_fn(points.len(), |u, v| {
        let d2: f64 = points[u]
            .iter()
            .zip(&points[v])
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        if squared {
            d2
        } else {
            d2.sqrt()
        }
    })
}

/// Build the dendrogram for point data under the given linkage.
pub fn dendrogram(points: &[Vec<f64>], method: LinkageMethod) -> Dendrogram {
    let squared = method == LinkageMethod::Ward;
    linkage(euclidean_matrix(points, squared), method)
}

/// Run hierarchical clustering and extract `k` flat clusters.
///
/// # Panics
/// Panics if `k` is zero or exceeds the number of points.
pub fn hierarchical(points: &[Vec<f64>], params: HierarchicalParams) -> Clustering {
    assert!(
        params.k >= 1 && params.k <= points.len(),
        "k = {} out of range for n = {}",
        params.k,
        points.len()
    );
    dendrogram(points, params.method).cut_num_clusters(params.k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_and_blob() -> Vec<Vec<f64>> {
        // A chain of near points (0..5 spaced 1.0) and a distant tight blob.
        let mut pts: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64, 0.0]).collect();
        for i in 0..6 {
            pts.push(vec![100.0 + 0.1 * i as f64, 0.0]);
        }
        pts
    }

    #[test]
    fn all_linkages_separate_distant_groups() {
        let pts = chain_and_blob();
        for method in [
            LinkageMethod::Single,
            LinkageMethod::Complete,
            LinkageMethod::Average,
            LinkageMethod::Ward,
        ] {
            let c = hierarchical(&pts, HierarchicalParams::new(method, 2));
            assert_eq!(c.num_clusters(), 2, "{method:?}");
            assert!(c.same_cluster(0, 5), "{method:?}");
            assert!(c.same_cluster(6, 11), "{method:?}");
            assert!(!c.same_cluster(0, 6), "{method:?}");
        }
    }

    #[test]
    fn single_linkage_follows_chains_complete_breaks_them() {
        // A long chain of step 1.0 plus one point at distance 1.5 from the
        // chain end; k = 2. Single linkage keeps the chain whole and splits
        // the far point; complete linkage splits the chain in half instead.
        let mut pts: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 0.0]).collect();
        pts.push(vec![11.5, 0.0]);
        let single = hierarchical(&pts, HierarchicalParams::new(LinkageMethod::Single, 2));
        assert!(single.same_cluster(0, 9));
        assert!(!single.same_cluster(9, 10));
        let complete = hierarchical(&pts, HierarchicalParams::new(LinkageMethod::Complete, 2));
        assert!(!complete.same_cluster(0, 9));
    }

    #[test]
    fn ward_balances_cluster_sizes() {
        // 3 tight blobs; Ward at k = 3 recovers them exactly.
        let mut pts = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (10.0, 0.0), (5.0, 8.0)] {
            for i in 0..8 {
                pts.push(vec![cx + 0.05 * i as f64, cy]);
            }
        }
        let c = hierarchical(&pts, HierarchicalParams::new(LinkageMethod::Ward, 3));
        assert_eq!(c.num_clusters(), 3);
        assert_eq!(c.cluster_sizes(), vec![8, 8, 8]);
    }

    #[test]
    fn k_extremes() {
        let pts: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let c1 = hierarchical(&pts, HierarchicalParams::new(LinkageMethod::Average, 1));
        assert_eq!(c1, Clustering::one_cluster(5));
        let cn = hierarchical(&pts, HierarchicalParams::new(LinkageMethod::Average, 5));
        assert_eq!(cn, Clustering::singletons(5));
    }

    #[test]
    fn euclidean_matrix_values() {
        let pts = vec![vec![0.0, 0.0], vec![3.0, 4.0]];
        let m = euclidean_matrix(&pts, false);
        assert!((m.get(0, 1) - 5.0).abs() < 1e-12);
        let m2 = euclidean_matrix(&pts, true);
        assert!((m2.get(0, 1) - 25.0).abs() < 1e-12);
    }
}
