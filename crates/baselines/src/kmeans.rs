//! Lloyd's k-means with k-means++ seeding, restarts, and empty-cluster
//! repair — the stand-in for the Matlab `kmeans` the paper feeds into its
//! aggregation experiments (Figures 3–5).

use aggclust_core::clustering::Clustering;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeding strategy for [`kmeans`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KMeansInit {
    /// k-means++ (D² weighting) — the default.
    PlusPlus,
    /// Uniformly random distinct points as initial centers.
    Random,
}

/// Parameters for [`kmeans`].
#[derive(Clone, Debug)]
pub struct KMeansParams {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations per restart.
    pub max_iters: usize,
    /// Number of restarts; the run with the lowest inertia wins.
    pub n_init: usize,
    /// Seeding strategy.
    pub init: KMeansInit,
    /// RNG seed.
    pub seed: u64,
}

impl KMeansParams {
    /// Defaults mirroring common practice: k-means++, 100 iterations,
    /// 4 restarts.
    pub fn new(k: usize, seed: u64) -> Self {
        KMeansParams {
            k,
            max_iters: 100,
            n_init: 4,
            init: KMeansInit::PlusPlus,
            seed,
        }
    }
}

/// Result of a k-means run.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    /// Cluster assignment of every point.
    pub clustering: Clustering,
    /// Final cluster centers.
    pub centers: Vec<Vec<f64>>,
    /// Sum of squared distances of points to their centers.
    pub inertia: f64,
    /// Lloyd iterations used by the winning restart.
    pub iterations: usize,
}

#[inline]
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Run k-means on row-major point data.
///
/// # Panics
/// Panics if `k` is zero or exceeds the number of points, or if rows have
/// inconsistent dimensionality.
pub fn kmeans(points: &[Vec<f64>], params: &KMeansParams) -> KMeansResult {
    let n = points.len();
    assert!(params.k >= 1, "k must be positive");
    assert!(params.k <= n, "k = {} exceeds n = {n}", params.k);
    let dim = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == dim),
        "inconsistent dimensionality"
    );
    let mut rng = StdRng::seed_from_u64(params.seed);

    let mut best: Option<KMeansResult> = None;
    for _restart in 0..params.n_init.max(1) {
        let mut centers = match params.init {
            KMeansInit::PlusPlus => seed_plus_plus(points, params.k, &mut rng),
            KMeansInit::Random => seed_random(points, params.k, &mut rng),
        };
        let mut labels = vec![0u32; n];
        let mut iterations = 0;
        for iter in 0..params.max_iters {
            iterations = iter + 1;
            // Assignment step.
            let mut changed = false;
            for (i, p) in points.iter().enumerate() {
                let mut best_c = 0usize;
                let mut best_d = f64::INFINITY;
                for (c, center) in centers.iter().enumerate() {
                    let d = sq_dist(p, center);
                    if d < best_d {
                        best_d = d;
                        best_c = c;
                    }
                }
                if labels[i] != best_c as u32 {
                    labels[i] = best_c as u32;
                    changed = true;
                }
            }
            if !changed && iter > 0 {
                break;
            }
            // Update step.
            let mut counts = vec![0usize; params.k];
            let mut sums = vec![vec![0.0; dim]; params.k];
            for (i, p) in points.iter().enumerate() {
                let c = labels[i] as usize;
                counts[c] += 1;
                for (s, &x) in sums[c].iter_mut().zip(p) {
                    *s += x;
                }
            }
            for c in 0..params.k {
                if counts[c] == 0 {
                    // Empty-cluster repair: re-seed at the point furthest
                    // from its center.
                    let (far, _) = points
                        .iter()
                        .enumerate()
                        .map(|(i, p)| (i, sq_dist(p, &centers[labels[i] as usize])))
                        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                        .unwrap_or((0, 0.0));
                    centers[c] = points[far].clone();
                } else {
                    for (x, s) in centers[c].iter_mut().zip(&sums[c]) {
                        *x = s / counts[c] as f64;
                    }
                }
            }
        }
        let inertia: f64 = points
            .iter()
            .enumerate()
            .map(|(i, p)| sq_dist(p, &centers[labels[i] as usize]))
            .sum();
        if best.as_ref().is_none_or(|b| inertia < b.inertia) {
            best = Some(KMeansResult {
                clustering: Clustering::from_labels(labels),
                centers,
                inertia,
                iterations,
            });
        }
    }
    // Unreachable fallback: the loop above runs `n_init.max(1) >= 1` times,
    // so `best` is always populated.
    best.unwrap_or_else(|| KMeansResult {
        clustering: Clustering::singletons(n),
        centers: Vec::new(),
        inertia: f64::INFINITY,
        iterations: 0,
    })
}

fn seed_random(points: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let picks = rand::seq::index::sample(rng, points.len(), k);
    picks.into_iter().map(|i| points[i].clone()).collect()
}

fn seed_plus_plus(points: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let n = points.len();
    let mut centers = Vec::with_capacity(k);
    centers.push(points[rng.gen_range(0..n)].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| sq_dist(p, &centers[0])).collect();
    while centers.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with a center; pick uniformly.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centers.push(points[next].clone());
        let newest = centers.len() - 1;
        for (i, p) in points.iter().enumerate() {
            let d = sq_dist(p, &centers[newest]);
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centers
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..20 {
            pts.push(vec![0.0 + 0.01 * i as f64, 0.0]);
            pts.push(vec![10.0 + 0.01 * i as f64, 10.0]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let pts = two_blobs();
        let res = kmeans(&pts, &KMeansParams::new(2, 42));
        let c = &res.clustering;
        assert_eq!(c.num_clusters(), 2);
        // Even indices are blob A, odd are blob B.
        for i in (0..pts.len()).step_by(2) {
            assert_eq!(c.label(i), c.label(0));
        }
        for i in (1..pts.len()).step_by(2) {
            assert_eq!(c.label(i), c.label(1));
        }
        assert_ne!(c.label(0), c.label(1));
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = two_blobs();
        let a = kmeans(&pts, &KMeansParams::new(3, 7));
        let b = kmeans(&pts, &KMeansParams::new(3, 7));
        assert_eq!(a.clustering, b.clustering);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn inertia_decreases_with_k() {
        let pts = two_blobs();
        let i2 = kmeans(&pts, &KMeansParams::new(2, 1)).inertia;
        let i4 = kmeans(&pts, &KMeansParams::new(4, 1)).inertia;
        assert!(i4 <= i2 + 1e-9);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let pts: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64, 0.0]).collect();
        let res = kmeans(&pts, &KMeansParams::new(6, 3));
        assert!(res.inertia < 1e-12);
        assert_eq!(res.clustering.num_clusters(), 6);
    }

    #[test]
    fn k_one_groups_everything() {
        let pts = two_blobs();
        let res = kmeans(&pts, &KMeansParams::new(1, 5));
        assert_eq!(res.clustering, Clustering::one_cluster(pts.len()));
    }

    #[test]
    fn duplicate_points_are_handled() {
        let pts: Vec<Vec<f64>> = (0..10).map(|_| vec![1.0, 2.0]).collect();
        let res = kmeans(&pts, &KMeansParams::new(3, 1));
        assert!(res.inertia < 1e-12);
    }

    #[test]
    fn random_init_also_works() {
        let pts = two_blobs();
        let params = KMeansParams {
            init: KMeansInit::Random,
            ..KMeansParams::new(2, 11)
        };
        let res = kmeans(&pts, &params);
        assert_eq!(res.clustering.num_clusters(), 2);
    }

    #[test]
    #[should_panic(expected = "exceeds n")]
    fn k_too_large_rejected() {
        let pts = vec![vec![0.0], vec![1.0]];
        let _ = kmeans(&pts, &KMeansParams::new(3, 1));
    }
}
