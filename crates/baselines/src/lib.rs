//! # aggclust-baselines
//!
//! The clustering algorithms the paper uses as *inputs* to aggregation and
//! as comparators, implemented from scratch:
//!
//! * [`kmeans`] — Lloyd's algorithm with k-means++ seeding and restarts
//!   (the paper's Matlab `kmeans`; input generator for Figures 3–5),
//! * [`hierarchical`] — single / complete / average / Ward linkage on point
//!   data (the paper's Matlab `linkage`; the other four inputs of Figure 3),
//! * [`rock`] — the ROCK categorical clusterer of Guha, Rastogi & Shim
//!   (comparator in Tables 2–3),
//! * [`limbo`] — the LIMBO information-bottleneck categorical clusterer of
//!   Andritsos et al. (comparator in Tables 2–3).
//!
//! ```
//! use aggclust_baselines::kmeans::{kmeans, KMeansParams};
//! use aggclust_baselines::hierarchical::{hierarchical, HierarchicalParams, LinkageMethod};
//!
//! let points = vec![
//!     vec![0.0, 0.0], vec![0.1, 0.0], vec![0.0, 0.1],
//!     vec![5.0, 5.0], vec![5.1, 5.0], vec![5.0, 5.1],
//! ];
//! let km = kmeans(&points, &KMeansParams::new(2, 42)).clustering;
//! let hc = hierarchical(&points, HierarchicalParams::new(LinkageMethod::Average, 2));
//! assert_eq!(km, hc); // both separate the two blobs
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod hierarchical;
pub mod kmeans;
pub mod limbo;
pub mod rock;

pub use hierarchical::{hierarchical, HierarchicalParams};
pub use kmeans::{kmeans, KMeansParams};
pub use limbo::{limbo, LimboParams};
pub use rock::{rock, RockParams};
