//! LIMBO — "Scalable Clustering of Categorical Data" (Andritsos, Tsaparas,
//! Miller & Sevcik, EDBT 2004), the second comparator in Tables 2–3 of the
//! paper.
//!
//! LIMBO is an information-bottleneck method: each tuple is a probability
//! distribution over its (attribute, value) pairs, a cluster is summarized
//! by a *distributional cluster feature* (DCF) — its total weight and the
//! weighted mixture of its members' distributions — and merging two
//! clusters costs the information loss
//!
//! ```text
//! δI(c₁, c₂) = (p₁ + p₂) · JS_{π₁,π₂}(d₁, d₂),
//! ```
//!
//! the weighted Jensen–Shannon divergence of their distributions.
//!
//! The implementation follows LIMBO's three phases:
//!
//! 1. **Summarization**: one sequential pass folds tuples into at most
//!    `max_summaries` micro-clusters; a tuple joins the nearest DCF when the
//!    merge loss is below the `φ`-derived threshold `τ = φ·I/n` (where `I`
//!    is the tuples↔values mutual information of the dataset), else it
//!    starts a new DCF. `φ = 0` merges only duplicates.
//! 2. **Clustering**: agglomerative information bottleneck (repeatedly
//!    merge the pair of DCFs with the least δI) down to `k` clusters.
//! 3. **Assignment**: every original tuple is placed with the cluster DCF
//!    whose merge loss is smallest.

use aggclust_core::clustering::Clustering;
use aggclust_data::categorical::CategoricalDataset;

/// Parameters for [`limbo`].
#[derive(Clone, Copy, Debug)]
pub struct LimboParams {
    /// Space-control parameter `φ ≥ 0`; larger values merge more
    /// aggressively during summarization (the paper's comparisons use
    /// `φ ∈ {0.0, 0.3, 1.0}`).
    pub phi: f64,
    /// Number of output clusters.
    pub k: usize,
    /// Hard cap on phase-1 micro-clusters (LIMBO's buffer size); when
    /// exceeded, the two closest DCFs are merged.
    pub max_summaries: usize,
}

impl LimboParams {
    /// Convenience constructor with the default buffer of 256 summaries.
    ///
    /// # Panics
    /// Panics if `phi < 0` or `k == 0`.
    pub fn new(phi: f64, k: usize) -> Self {
        assert!(phi >= 0.0, "phi must be non-negative");
        assert!(k >= 1, "k must be positive");
        LimboParams {
            phi,
            k,
            max_summaries: 256,
        }
    }
}

/// A sparse distribution over (attribute, value) item codes, sorted by item.
#[derive(Clone, Debug, PartialEq)]
struct Dist(Vec<(u32, f64)>);

impl Dist {
    /// Weighted mixture `πa·a + πb·b` (πa + πb = 1).
    fn mix(a: &Dist, pa: f64, b: &Dist, pb: f64) -> Dist {
        let mut out = Vec::with_capacity(a.0.len() + b.0.len());
        let (mut i, mut j) = (0, 0);
        while i < a.0.len() || j < b.0.len() {
            match (a.0.get(i), b.0.get(j)) {
                (Some(&(ia, va)), Some(&(ib, vb))) => {
                    if ia == ib {
                        out.push((ia, pa * va + pb * vb));
                        i += 1;
                        j += 1;
                    } else if ia < ib {
                        out.push((ia, pa * va));
                        i += 1;
                    } else {
                        out.push((ib, pb * vb));
                        j += 1;
                    }
                }
                (Some(&(ia, va)), None) => {
                    out.push((ia, pa * va));
                    i += 1;
                }
                (None, Some(&(ib, vb))) => {
                    out.push((ib, pb * vb));
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        Dist(out)
    }

    /// KL divergence `KL(self ‖ mix)` where `mix` must dominate `self`.
    fn kl(&self, mix: &Dist) -> f64 {
        let mut out = 0.0;
        let mut j = 0;
        for &(item, p) in &self.0 {
            while mix.0[j].0 != item {
                j += 1;
            }
            let q = mix.0[j].1;
            if p > 0.0 && q > 0.0 {
                out += p * (p / q).ln();
            }
        }
        out.max(0.0)
    }
}

/// A distributional cluster feature: member count/weight + distribution.
#[derive(Clone, Debug)]
struct Dcf {
    weight: f64,
    dist: Dist,
    members: Vec<usize>,
}

/// Information loss of merging two DCFs (weights are tuple counts; the
/// global 1/n factor is constant and omitted).
fn merge_loss(a: &Dcf, b: &Dcf) -> f64 {
    let total = a.weight + b.weight;
    let (pa, pb) = (a.weight / total, b.weight / total);
    let mix = Dist::mix(&a.dist, pa, &b.dist, pb);
    let js = pa * a.dist.kl(&mix) + pb * b.dist.kl(&mix);
    total * js
}

fn merge_dcf(a: &Dcf, b: &Dcf) -> Dcf {
    let total = a.weight + b.weight;
    let (pa, pb) = (a.weight / total, b.weight / total);
    let mut members = a.members.clone();
    members.extend_from_slice(&b.members);
    Dcf {
        weight: total,
        dist: Dist::mix(&a.dist, pa, &b.dist, pb),
        members,
    }
}

/// One greedy consolidation pass: merge every pair of summaries whose
/// information loss is within `tau` (each summary absorbs greedily, left to
/// right). Used when the phase-1 buffer overflows.
fn consolidate(summaries: &mut Vec<Dcf>, tau: f64) {
    let mut i = 0;
    while i < summaries.len() {
        let mut j = i + 1;
        while j < summaries.len() {
            if merge_loss(&summaries[i], &summaries[j]) <= tau {
                let merged = merge_dcf(&summaries[i], &summaries[j]);
                summaries[i] = merged;
                summaries.swap_remove(j);
            } else {
                j += 1;
            }
        }
        i += 1;
    }
}

/// Tuple → normalized distribution over its defined (attr, value) items.
fn tuple_dist(ds: &CategoricalDataset, row: usize, attr_offsets: &[u32]) -> Dist {
    let defined: Vec<(u32, f64)> = ds
        .row(row)
        .iter()
        .enumerate()
        .filter_map(|(j, v)| v.map(|v| (attr_offsets[j] + v as u32, 0.0)))
        .collect();
    let mass = 1.0 / defined.len().max(1) as f64;
    Dist(defined.into_iter().map(|(item, _)| (item, mass)).collect())
}

/// Mutual information `I(tuples; values)` of the dataset, used to scale the
/// `φ` threshold exactly as LIMBO scales its DCF-tree node radii.
fn dataset_mutual_information(dists: &[Dist]) -> f64 {
    let n = dists.len();
    if n == 0 {
        return 0.0;
    }
    // Global item distribution: mixture of all tuples at weight 1/n.
    let mut global: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    for d in dists {
        for &(item, p) in &d.0 {
            *global.entry(item).or_insert(0.0) += p / n as f64;
        }
    }
    // I = (1/n) Σ_t KL(p_t || global).
    let mut total = 0.0;
    for d in dists {
        let mut kl = 0.0;
        for &(item, p) in &d.0 {
            let q = global[&item];
            if p > 0.0 && q > 0.0 {
                kl += p * (p / q).ln();
            }
        }
        total += kl.max(0.0);
    }
    total / n as f64
}

/// Run LIMBO on a categorical dataset. Returns exactly `min(k, n)` clusters
/// unless the data has fewer distinct summaries.
pub fn limbo(ds: &CategoricalDataset, params: LimboParams) -> Clustering {
    let n = ds.len();
    if n == 0 {
        return Clustering::from_labels(Vec::new());
    }
    // Item code space: one contiguous block per attribute.
    let mut attr_offsets = Vec::with_capacity(ds.attributes().len());
    let mut next = 0u32;
    for a in ds.attributes() {
        attr_offsets.push(next);
        next += a.arity as u32;
    }

    let dists: Vec<Dist> = (0..n).map(|r| tuple_dist(ds, r, &attr_offsets)).collect();
    let tau = if params.phi > 0.0 {
        params.phi * dataset_mutual_information(&dists) / n as f64
    } else {
        0.0
    };

    // Phase 1: sequential summarization. When the buffer overflows, the
    // effective threshold doubles and the buffer is consolidated — the
    // space-adaptation heuristic of the LIMBO DCF-tree.
    let tau_floor = {
        let i_hat = dataset_mutual_information(&dists);
        (i_hat / n as f64) * 0.01 + 1e-12
    };
    let mut tau_eff = tau;
    let mut summaries: Vec<Dcf> = Vec::new();
    for (row, dist) in dists.iter().enumerate() {
        let tuple = Dcf {
            weight: 1.0,
            dist: dist.clone(),
            members: vec![row],
        };
        let best = summaries
            .iter()
            .enumerate()
            .map(|(i, s)| (i, merge_loss(s, &tuple)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        match best {
            Some((i, loss)) if loss <= tau_eff + 1e-15 => {
                summaries[i] = merge_dcf(&summaries[i], &tuple);
            }
            _ => summaries.push(tuple),
        }
        while summaries.len() > params.max_summaries {
            tau_eff = if tau_eff <= 0.0 {
                tau_floor
            } else {
                tau_eff * 2.0
            };
            consolidate(&mut summaries, tau_eff);
        }
    }

    // Phase 2: agglomerative information bottleneck down to k clusters,
    // with a cached pairwise-loss matrix so each merge costs O(B) loss
    // evaluations instead of O(B²).
    let k = params.k.min(n);
    let mut loss: Vec<Vec<f64>> = {
        let s = summaries.len();
        let mut m = vec![vec![f64::INFINITY; s]; s];
        for i in 0..s {
            for j in (i + 1)..s {
                let l = merge_loss(&summaries[i], &summaries[j]);
                m[i][j] = l;
                m[j][i] = l;
            }
        }
        m
    };
    while summaries.len() > k {
        let s = summaries.len();
        let mut best_pair = (0, 1, f64::INFINITY);
        for (i, row) in loss.iter().enumerate() {
            for (j, &l) in row.iter().enumerate().skip(i + 1) {
                if l < best_pair.2 {
                    best_pair = (i, j, l);
                }
            }
        }
        let (i, j, _) = best_pair;
        let merged = merge_dcf(&summaries[i], &summaries[j]);
        summaries[i] = merged;
        summaries.swap_remove(j);
        // Mirror the swap_remove in the loss matrix: row/column j takes the
        // last row/column's values, then the last is dropped.
        let last = s - 1;
        if j != last {
            for row in loss.iter_mut() {
                row[j] = row[last];
            }
            loss.swap(j, last);
        }
        loss.truncate(last);
        for row in loss.iter_mut() {
            row.truncate(last);
        }
        // Recompute losses involving the merged cluster i.
        for r in 0..summaries.len() {
            if r != i {
                let l = merge_loss(&summaries[i], &summaries[r]);
                loss[i][r] = l;
                loss[r][i] = l;
            }
        }
    }

    // Phase 3: assign every tuple to the cluster of least merge loss.
    let mut labels = vec![0u32; n];
    for (row, dist) in dists.iter().enumerate() {
        let tuple = Dcf {
            weight: 1.0,
            dist: dist.clone(),
            members: Vec::new(),
        };
        let mut best = (0usize, f64::INFINITY);
        for (c, s) in summaries.iter().enumerate() {
            let l = merge_loss(s, &tuple);
            if l < best.1 {
                best = (c, l);
            }
        }
        labels[row] = best.0 as u32;
    }
    Clustering::from_labels(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggclust_data::categorical::{Attribute, CategoricalDataset};

    fn blocks(n_per: usize, attrs: usize) -> CategoricalDataset {
        let attr_list = (0..attrs)
            .map(|i| Attribute {
                name: format!("a{i}"),
                arity: 3,
            })
            .collect();
        let mut values = Vec::new();
        let mut classes = Vec::new();
        for block in 0..3u16 {
            for _ in 0..n_per {
                for _ in 0..attrs {
                    values.push(Some(block));
                }
                classes.push(block as u32);
            }
        }
        CategoricalDataset::new(
            "blocks3",
            attr_list,
            values,
            classes,
            vec!["x".into(), "y".into(), "z".into()],
        )
    }

    #[test]
    fn recovers_three_blocks() {
        let ds = blocks(8, 4);
        let c = limbo(&ds, LimboParams::new(0.0, 3));
        assert_eq!(c.num_clusters(), 3);
        for block in 0..3 {
            let base = block * 8;
            for r in base..base + 8 {
                assert_eq!(c.label(r), c.label(base));
            }
        }
    }

    #[test]
    fn phi_zero_merges_duplicates_losslessly() {
        // With φ = 0 all identical tuples collapse into one summary; three
        // distinct blocks → exactly three summaries before phase 2.
        let ds = blocks(5, 3);
        let c = limbo(&ds, LimboParams::new(0.0, 3));
        assert_eq!(c.num_clusters(), 3);
    }

    #[test]
    fn positive_phi_still_recovers_blocks() {
        let ds = blocks(8, 4);
        let c = limbo(&ds, LimboParams::new(0.5, 3));
        assert_eq!(c.num_clusters(), 3);
        assert!(c.same_cluster(0, 7));
        assert!(!c.same_cluster(0, 8));
    }

    #[test]
    fn buffer_cap_is_respected() {
        let ds = blocks(10, 4);
        let params = LimboParams {
            phi: 0.0,
            k: 3,
            max_summaries: 2,
        };
        // Must still terminate and produce ≤ 3 clusters even with a buffer
        // smaller than the natural block count.
        let c = limbo(&ds, params);
        assert!(c.num_clusters() <= 3);
    }

    #[test]
    fn k_larger_than_distinct_rows() {
        let ds = blocks(2, 2);
        let c = limbo(&ds, LimboParams::new(0.0, 50));
        assert_eq!(c.len(), 6);
        assert!(c.num_clusters() <= 6);
    }

    #[test]
    fn merge_loss_of_identical_is_zero() {
        let a = Dcf {
            weight: 2.0,
            dist: Dist(vec![(0, 0.5), (3, 0.5)]),
            members: vec![0, 1],
        };
        let b = Dcf {
            weight: 1.0,
            dist: Dist(vec![(0, 0.5), (3, 0.5)]),
            members: vec![2],
        };
        assert!(merge_loss(&a, &b) < 1e-12);
    }

    #[test]
    fn merge_loss_grows_with_divergence() {
        let a = Dcf {
            weight: 1.0,
            dist: Dist(vec![(0, 1.0)]),
            members: vec![0],
        };
        let near = Dcf {
            weight: 1.0,
            dist: Dist(vec![(0, 0.8), (1, 0.2)]),
            members: vec![1],
        };
        let far = Dcf {
            weight: 1.0,
            dist: Dist(vec![(1, 1.0)]),
            members: vec![2],
        };
        assert!(merge_loss(&a, &near) < merge_loss(&a, &far));
    }

    #[test]
    fn handles_missing_values() {
        let attrs = vec![
            Attribute {
                name: "a".into(),
                arity: 2,
            },
            Attribute {
                name: "b".into(),
                arity: 2,
            },
        ];
        let values = vec![
            Some(0),
            Some(0),
            Some(0),
            None,
            Some(1),
            Some(1),
            None,
            Some(1),
        ];
        let ds = CategoricalDataset::new("miss", attrs, values, vec![0; 4], vec!["x".into()]);
        let c = limbo(&ds, LimboParams::new(0.0, 2));
        assert_eq!(c.num_clusters(), 2);
        assert!(c.same_cluster(0, 1));
        assert!(c.same_cluster(2, 3));
    }

    #[test]
    fn empty_dataset() {
        let attrs = vec![Attribute {
            name: "a".into(),
            arity: 1,
        }];
        let ds = CategoricalDataset::new("empty", attrs, vec![], vec![], vec!["x".into()]);
        assert_eq!(limbo(&ds, LimboParams::new(0.0, 2)).len(), 0);
    }
}
