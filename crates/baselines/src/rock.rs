//! ROCK — "A Robust Clustering Algorithm for Categorical Attributes"
//! (Guha, Rastogi & Shim), the first comparator in Tables 2–3 of the paper.
//!
//! ROCK measures tuple similarity with the Jaccard coefficient over the
//! tuples' (attribute, value) item sets, declares two tuples *neighbors*
//! when their similarity reaches a threshold `θ`, and defines
//! `link(p, q)` = number of common neighbors. It then agglomerates
//! clusters, maximizing the *goodness*
//!
//! ```text
//! g(Ci, Cj) = link[Ci, Cj] / ((nᵢ+nⱼ)^(1+2f(θ)) − nᵢ^(1+2f(θ)) − nⱼ^(1+2f(θ)))
//! ```
//!
//! with `f(θ) = (1 − θ)/(1 + θ)`, until the requested number of clusters
//! remains or no cross-cluster links are left (leftover unlinked points are
//! ROCK's outliers).
//!
//! Links are computed with bitset adjacency intersections
//! (`O(n³/64)` worst case) and the agglomeration uses a lazy-deletion heap,
//! so the implementation handles the paper's sampled sizes comfortably; the
//! paper itself notes ROCK does not scale to the full Census dataset.

use aggclust_core::clustering::Clustering;
use aggclust_data::categorical::CategoricalDataset;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Parameters for [`rock`].
#[derive(Clone, Copy, Debug)]
pub struct RockParams {
    /// Jaccard similarity threshold `θ` for the neighbor relation.
    pub theta: f64,
    /// Target number of clusters.
    pub k: usize,
}

impl RockParams {
    /// Convenience constructor.
    ///
    /// # Panics
    /// Panics if `theta ∉ [0, 1]` or `k == 0`.
    pub fn new(theta: f64, k: usize) -> Self {
        assert!((0.0..=1.0).contains(&theta), "theta out of [0,1]");
        assert!(k >= 1, "k must be positive");
        RockParams { theta, k }
    }
}

/// Jaccard similarity of two rows' defined (attribute, value) pairs.
///
/// Missing values are excluded from both the intersection and the union —
/// a tuple pair with no commonly defined attributes has similarity 0.
pub fn jaccard(ds: &CategoricalDataset, a: usize, b: usize) -> f64 {
    let mut inter = 0usize;
    let mut union = 0usize;
    for (va, vb) in ds.row(a).iter().zip(ds.row(b)) {
        match (va, vb) {
            (Some(x), Some(y)) if x == y => {
                inter += 1;
                union += 1;
            }
            (Some(_), Some(_)) => union += 2,
            (Some(_), None) | (None, Some(_)) => union += 1,
            (None, None) => {}
        }
    }
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// A packed row-major bit matrix (adjacency of the neighbor graph).
struct BitMatrix {
    words: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    fn new(n: usize) -> Self {
        let words = n.div_ceil(64);
        BitMatrix {
            words,
            bits: vec![0; n * words],
        }
    }

    #[inline]
    fn set(&mut self, r: usize, c: usize) {
        self.bits[r * self.words + c / 64] |= 1u64 << (c % 64);
    }

    #[inline]
    fn row(&self, r: usize) -> &[u64] {
        &self.bits[r * self.words..(r + 1) * self.words]
    }

    /// Number of common neighbors of rows `a` and `b`.
    fn intersection_count(&self, a: usize, b: usize) -> u32 {
        self.row(a)
            .iter()
            .zip(self.row(b))
            .map(|(x, y)| (x & y).count_ones())
            .sum()
    }
}

#[derive(Debug)]
struct HeapEntry {
    goodness: f64,
    a: usize,
    b: usize,
    va: u32,
    vb: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.goodness == other.goodness
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.goodness
            .partial_cmp(&other.goodness)
            .unwrap_or(Ordering::Equal)
    }
}

/// Run ROCK on a categorical dataset.
///
/// Agglomeration stops at `params.k` clusters, or earlier if no pair of
/// clusters shares a link (the remaining pieces are ROCK's outliers), so the
/// result can have more than `k` clusters.
pub fn rock(ds: &CategoricalDataset, params: RockParams) -> Clustering {
    let n = ds.len();
    if n == 0 {
        return Clustering::from_labels(Vec::new());
    }
    if params.k >= n {
        return Clustering::singletons(n);
    }

    // Neighbor graph at threshold θ. As in the ROCK paper, every point is
    // a neighbor of itself (sim(p, p) = 1 ≥ θ), so two points that are
    // mutual neighbors share at least two common neighbors — themselves.
    let mut adj = BitMatrix::new(n);
    for a in 0..n {
        adj.set(a, a);
        for b in (a + 1)..n {
            if jaccard(ds, a, b) >= params.theta {
                adj.set(a, b);
                adj.set(b, a);
            }
        }
    }

    // Pairwise link counts over the current clusters (starts at singleton
    // granularity, accumulated as clusters merge).
    let mut links = vec![0u32; n * n];
    for a in 0..n {
        for b in (a + 1)..n {
            let l = adj.intersection_count(a, b);
            links[a * n + b] = l;
            links[b * n + a] = l;
        }
    }

    let exponent = 1.0 + 2.0 * (1.0 - params.theta) / (1.0 + params.theta);
    let pow = |s: usize| (s as f64).powf(exponent);
    let goodness = |link: u32, sa: usize, sb: usize| -> f64 {
        let denom = pow(sa + sb) - pow(sa) - pow(sb);
        if denom <= 0.0 {
            0.0
        } else {
            link as f64 / denom
        }
    };

    let mut active = vec![true; n];
    let mut members: Vec<Vec<usize>> = (0..n).map(|v| vec![v]).collect();
    let mut version = vec![0u32; n];
    let mut heap = BinaryHeap::new();
    for a in 0..n {
        for b in (a + 1)..n {
            let l = links[a * n + b];
            if l > 0 {
                heap.push(HeapEntry {
                    goodness: goodness(l, 1, 1),
                    a,
                    b,
                    va: 0,
                    vb: 0,
                });
            }
        }
    }

    let mut clusters_left = n;
    while clusters_left > params.k {
        let entry = match heap.pop() {
            Some(e) => e,
            None => break, // no linked cluster pairs remain → outliers stay
        };
        let HeapEntry { a, b, va, vb, .. } = entry;
        if !active[a] || !active[b] || version[a] != va || version[b] != vb {
            continue;
        }
        // Merge b into a.
        active[b] = false;
        let moved = std::mem::take(&mut members[b]);
        members[a].extend(moved);
        version[a] += 1;
        for c in 0..n {
            if c != a && c != b && active[c] {
                let add = links[b * n + c];
                if add > 0 {
                    links[a * n + c] += add;
                    links[c * n + a] += add;
                }
                let l = links[a * n + c];
                if l > 0 {
                    heap.push(HeapEntry {
                        goodness: goodness(l, members[a].len(), members[c].len()),
                        a,
                        b: c,
                        va: version[a],
                        vb: version[c],
                    });
                }
            }
        }
        clusters_left -= 1;
    }

    let mut labels = vec![0u32; n];
    let mut next = 0u32;
    for (slot, m) in members.iter().enumerate() {
        if active[slot] && !m.is_empty() {
            for &v in m {
                labels[v] = next;
            }
            next += 1;
        }
    }
    Clustering::from_labels(labels)
}

/// Parameters for [`rock_sampled`].
#[derive(Clone, Copy, Debug)]
pub struct RockSampledParams {
    /// The inner ROCK parameters applied to the sample.
    pub rock: RockParams,
    /// Number of rows to sample (clamped to `n`).
    pub sample_size: usize,
    /// RNG seed for the uniform sample.
    pub seed: u64,
}

/// ROCK's own scalability scheme (Guha et al. §5 "Labeling data on disk"):
/// cluster a uniform random sample with [`rock`], then assign every
/// non-sampled row to the cluster maximizing its normalized neighbor count
///
/// ```text
/// score(p, Cᵢ) = |{q ∈ Lᵢ : sim(p, q) ≥ θ}| / (|Lᵢ| + 1)^f(θ)
/// ```
///
/// where `Lᵢ` is the sampled portion of cluster `i`. Rows with no neighbor
/// in any sampled cluster become singletons (ROCK outliers).
pub fn rock_sampled(ds: &CategoricalDataset, params: RockSampledParams) -> Clustering {
    use rand::SeedableRng;
    let n = ds.len();
    let s = params.sample_size.min(n);
    if s == n {
        return rock(ds, params.rock);
    }
    if n == 0 {
        return Clustering::from_labels(Vec::new());
    }

    let mut rng = rand::rngs::StdRng::seed_from_u64(params.seed);
    let mut sample: Vec<usize> = rand::seq::index::sample(&mut rng, n, s).into_vec();
    sample.sort_unstable();
    let sample_ds = ds.subsample(&sample);
    let sample_clustering = rock(&sample_ds, params.rock);
    let ell = sample_clustering.num_clusters();

    // Sampled members of each cluster, as original row ids.
    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); ell];
    for (si, &row) in sample.iter().enumerate() {
        clusters[sample_clustering.label(si) as usize].push(row);
    }

    let f_theta = (1.0 - params.rock.theta) / (1.0 + params.rock.theta);
    let mut labels = vec![u32::MAX; n];
    for (si, &row) in sample.iter().enumerate() {
        labels[row] = sample_clustering.label(si);
    }
    let mut next = ell as u32;
    for (row, slot) in labels.iter_mut().enumerate() {
        if *slot != u32::MAX {
            continue;
        }
        let mut best = (f64::NEG_INFINITY, usize::MAX);
        for (i, members) in clusters.iter().enumerate() {
            let neighbors = members
                .iter()
                .filter(|&&q| jaccard(ds, row, q) >= params.rock.theta)
                .count();
            if neighbors == 0 {
                continue;
            }
            let score = neighbors as f64 / ((members.len() + 1) as f64).powf(f_theta);
            if score > best.0 {
                best = (score, i);
            }
        }
        if best.1 == usize::MAX {
            *slot = next;
            next += 1;
        } else {
            *slot = best.1 as u32;
        }
    }
    Clustering::from_labels(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggclust_data::categorical::{Attribute, CategoricalDataset};

    /// Two obvious categorical blocks: rows 0–4 share values, rows 5–9
    /// share different values.
    fn two_blocks() -> CategoricalDataset {
        let attrs = (0..4)
            .map(|i| Attribute {
                name: format!("a{i}"),
                arity: 2,
            })
            .collect();
        let mut values = Vec::new();
        for r in 0..10 {
            let v = if r < 5 { 0 } else { 1 };
            for _ in 0..4 {
                values.push(Some(v as u16));
            }
        }
        CategoricalDataset::new(
            "blocks",
            attrs,
            values,
            (0..10).map(|r| u32::from(r >= 5)).collect(),
            vec!["x".into(), "y".into()],
        )
    }

    #[test]
    fn jaccard_basic() {
        let ds = two_blocks();
        assert_eq!(jaccard(&ds, 0, 1), 1.0);
        assert_eq!(jaccard(&ds, 0, 5), 0.0);
    }

    #[test]
    fn recovers_two_blocks() {
        let c = rock(&two_blocks(), RockParams::new(0.5, 2));
        assert_eq!(c.num_clusters(), 2);
        assert!(c.same_cluster(0, 4));
        assert!(c.same_cluster(5, 9));
        assert!(!c.same_cluster(0, 5));
    }

    #[test]
    fn unlinked_outlier_stays_separate() {
        // Add a row that shares values with nobody at θ = 0.5.
        let attrs = (0..4)
            .map(|i| Attribute {
                name: format!("a{i}"),
                arity: 3,
            })
            .collect::<Vec<_>>();
        let mut values = Vec::new();
        for r in 0..7 {
            let v: u16 = if r < 6 { 0 } else { 2 };
            for _ in 0..4 {
                values.push(Some(v));
            }
        }
        let ds = CategoricalDataset::new("outlier", attrs, values, vec![0; 7], vec!["x".into()]);
        // Ask for 1 cluster: the outlier has no links, so ROCK stops at 2.
        let c = rock(&ds, RockParams::new(0.5, 1));
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.cluster_sizes().iter().copied().min(), Some(1));
    }

    #[test]
    fn k_at_least_n_gives_singletons() {
        let ds = two_blocks();
        assert_eq!(
            rock(&ds, RockParams::new(0.5, 10)),
            Clustering::singletons(10)
        );
        assert_eq!(
            rock(&ds, RockParams::new(0.5, 99)),
            Clustering::singletons(10)
        );
    }

    #[test]
    fn handles_missing_values() {
        let attrs = vec![
            Attribute {
                name: "a".into(),
                arity: 2,
            },
            Attribute {
                name: "b".into(),
                arity: 2,
            },
        ];
        let values = vec![
            Some(0),
            Some(0),
            Some(0),
            None,
            Some(1),
            Some(1),
            None,
            Some(1),
        ];
        let ds = CategoricalDataset::new("miss", attrs, values, vec![0; 4], vec!["x".into()]);
        // Row 0 vs 1: intersection {a=0}, union {a=0, b=0} → 0.5.
        assert!((jaccard(&ds, 0, 1) - 0.5).abs() < 1e-12);
        // Rows 2 vs 3: intersection {b=1}, union {a=1, b=1} → 0.5.
        assert!((jaccard(&ds, 2, 3) - 0.5).abs() < 1e-12);
        let c = rock(&ds, RockParams::new(0.4, 2));
        assert_eq!(c.num_clusters(), 2);
        assert!(c.same_cluster(0, 1));
        assert!(c.same_cluster(2, 3));
    }

    #[test]
    fn higher_theta_is_stricter() {
        // With θ = 1.0, only identical rows are neighbors; asking for 2
        // clusters still works on the two exact blocks.
        let c = rock(&two_blocks(), RockParams::new(1.0, 2));
        assert_eq!(c.num_clusters(), 2);
    }

    #[test]
    fn empty_dataset() {
        let attrs = vec![Attribute {
            name: "a".into(),
            arity: 1,
        }];
        let ds = CategoricalDataset::new("empty", attrs, vec![], vec![], vec!["x".into()]);
        assert_eq!(rock(&ds, RockParams::new(0.5, 1)).len(), 0);
    }

    /// Larger two-block dataset for the sampled variant.
    fn big_blocks(n_per: usize) -> CategoricalDataset {
        let attrs = (0..4)
            .map(|i| Attribute {
                name: format!("a{i}"),
                arity: 2,
            })
            .collect();
        let mut values = Vec::new();
        let mut classes = Vec::new();
        for block in 0..2u16 {
            for _ in 0..n_per {
                for _ in 0..4 {
                    values.push(Some(block));
                }
                classes.push(block as u32);
            }
        }
        CategoricalDataset::new("big", attrs, values, classes, vec!["x".into(), "y".into()])
    }

    #[test]
    fn sampled_rock_recovers_blocks() {
        let ds = big_blocks(60);
        let params = RockSampledParams {
            rock: RockParams::new(0.5, 2),
            sample_size: 20,
            seed: 7,
        };
        let c = rock_sampled(&ds, params);
        assert_eq!(c.len(), 120);
        assert_eq!(c.num_clusters(), 2);
        assert!(c.same_cluster(0, 59));
        assert!(c.same_cluster(60, 119));
        assert!(!c.same_cluster(0, 60));
    }

    #[test]
    fn sampled_rock_full_sample_equals_rock() {
        let ds = big_blocks(15);
        let params = RockSampledParams {
            rock: RockParams::new(0.5, 2),
            sample_size: 30,
            seed: 1,
        };
        assert_eq!(
            rock_sampled(&ds, params),
            rock(&ds, RockParams::new(0.5, 2))
        );
    }

    #[test]
    fn sampled_rock_unmatched_rows_become_singletons() {
        // One odd row that matches nothing; keep it out of the sample by
        // trying seeds until the sample misses row 0... deterministic:
        // make row 0 unique and check it never joins a block cluster.
        let mut ds_values = Vec::new();
        ds_values.extend([Some(0), Some(1), Some(0), Some(1)]); // unique row
        for block in 0..2u16 {
            for _ in 0..20 {
                for _ in 0..4 {
                    ds_values.push(Some(block));
                }
            }
        }
        let attrs = (0..4)
            .map(|i| Attribute {
                name: format!("a{i}"),
                arity: 2,
            })
            .collect();
        let ds = CategoricalDataset::new("odd", attrs, ds_values, vec![0; 41], vec!["x".into()]);
        let params = RockSampledParams {
            rock: RockParams::new(0.9, 2),
            sample_size: 20,
            seed: 3,
        };
        let c = rock_sampled(&ds, params);
        // Row 0 shares at most half its items with anything → alone at θ=0.9.
        assert!(!(1..41).any(|v| c.same_cluster(0, v)));
    }

    #[test]
    fn sampled_rock_deterministic() {
        let ds = big_blocks(40);
        let params = RockSampledParams {
            rock: RockParams::new(0.5, 2),
            sample_size: 16,
            seed: 11,
        };
        assert_eq!(rock_sampled(&ds, params), rock_sampled(&ds, params));
    }
}
