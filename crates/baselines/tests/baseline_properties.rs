//! Property-based tests for the baseline clusterers.

use aggclust_baselines::hierarchical::{
    dendrogram, hierarchical, HierarchicalParams, LinkageMethod,
};
use aggclust_baselines::kmeans::{kmeans, KMeansParams};
use aggclust_baselines::limbo::{limbo, LimboParams};
use aggclust_baselines::rock::{jaccard, rock, RockParams};
use aggclust_data::categorical::{Attribute, CategoricalDataset};
use proptest::prelude::*;

/// Strategy: 2-D points in a box.
fn points_strategy(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(
        (0.0f64..10.0, 0.0f64..10.0).prop_map(|(x, y)| vec![x, y]),
        n,
    )
}

/// Strategy: a small categorical dataset.
fn dataset_strategy() -> impl Strategy<Value = CategoricalDataset> {
    (4usize..24, 2usize..5).prop_flat_map(|(n, a)| {
        prop::collection::vec(prop::option::weighted(0.9, 0u16..3), n * a).prop_map(move |values| {
            let attrs = (0..a)
                .map(|i| Attribute {
                    name: format!("a{i}"),
                    arity: 3,
                })
                .collect();
            CategoricalDataset::new("prop", attrs, values, vec![0; n], vec!["x".into()])
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn kmeans_produces_exactly_k_nonempty_clusters(
        (pts, k, seed) in points_strategy(6..30).prop_flat_map(|pts| {
            let n = pts.len();
            (Just(pts), 1..=n.min(5), any::<u64>())
        })
    ) {
        let res = kmeans(&pts, &KMeansParams::new(k, seed));
        prop_assert!(res.clustering.num_clusters() <= k);
        prop_assert!(res.clustering.num_clusters() >= 1);
        prop_assert!(res.inertia >= 0.0);
        prop_assert_eq!(res.clustering.len(), pts.len());
    }

    #[test]
    fn kmeans_inertia_never_increases_with_k(
        (pts, seed) in (points_strategy(10..30), any::<u64>())
    ) {
        // With shared seeding and restarts, a larger k can always match a
        // smaller k's inertia; allow tiny slack for local optima.
        let i2 = kmeans(&pts, &KMeansParams::new(2, seed)).inertia;
        let i5 = kmeans(&pts, &KMeansParams::new(5.min(pts.len()), seed)).inertia;
        prop_assert!(i5 <= i2 * 1.05 + 1e-9, "i5 = {}, i2 = {}", i5, i2);
    }

    #[test]
    fn linkage_cuts_are_nested(
        pts in points_strategy(5..25)
    ) {
        // Cutting at k clusters refines cutting at k-1 clusters.
        for method in [LinkageMethod::Single, LinkageMethod::Average, LinkageMethod::Ward] {
            let dend = dendrogram(&pts, method);
            for k in 2..=pts.len().min(6) {
                let fine = dend.cut_num_clusters(k);
                let coarse = dend.cut_num_clusters(k - 1);
                prop_assert!(fine.refines(&coarse), "{:?} k={}", method, k);
            }
        }
    }

    #[test]
    fn linkage_heights_are_monotone(
        pts in points_strategy(5..25)
    ) {
        // Single/complete/average/Ward are monotone: sorted merge heights
        // never decrease along the tree (checked via the sorted sequence
        // equaling the child-before-parent order).
        for method in [
            LinkageMethod::Single,
            LinkageMethod::Complete,
            LinkageMethod::Average,
            LinkageMethod::Ward,
        ] {
            let dend = dendrogram(&pts, method);
            // Parent height ≥ each child cluster's creation height.
            let n = pts.len();
            let mut creation = vec![0.0f64; n + dend.merges().len()];
            for (i, m) in dend.merges().iter().enumerate() {
                let h = m.height;
                prop_assert!(
                    h >= creation[m.a] - 1e-9 && h >= creation[m.b] - 1e-9,
                    "{:?}: inversion at merge {}", method, i
                );
                creation[n + i] = h;
            }
        }
    }

    #[test]
    fn hierarchical_k_is_exact(
        (pts, k) in points_strategy(6..20).prop_flat_map(|pts| {
            let n = pts.len();
            (Just(pts), 1..=n)
        })
    ) {
        let c = hierarchical(&pts, HierarchicalParams::new(LinkageMethod::Average, k));
        prop_assert_eq!(c.num_clusters(), k);
    }

    #[test]
    fn jaccard_is_a_similarity(ds in dataset_strategy()) {
        let n = ds.len();
        for a in 0..n.min(8) {
            for b in 0..n.min(8) {
                let s = jaccard(&ds, a, b);
                prop_assert!((0.0..=1.0).contains(&s));
                prop_assert!((s - jaccard(&ds, b, a)).abs() < 1e-12);
            }
            if ds.row(a).iter().any(|v| v.is_some()) {
                prop_assert_eq!(jaccard(&ds, a, a), 1.0);
            }
        }
    }

    #[test]
    fn rock_and_limbo_always_produce_valid_partitions(ds in dataset_strategy()) {
        let r = rock(&ds, RockParams::new(0.5, 2));
        prop_assert_eq!(r.len(), ds.len());
        let l = limbo(&ds, LimboParams::new(0.3, 2));
        prop_assert_eq!(l.len(), ds.len());
        prop_assert!(l.num_clusters() <= ds.len().max(1));
    }

    #[test]
    fn identical_rows_cluster_together_in_limbo(
        (block_a, block_b) in (2usize..8, 2usize..8)
    ) {
        let attrs = (0..3)
            .map(|i| Attribute { name: format!("a{i}"), arity: 2 })
            .collect();
        let mut values = Vec::new();
        for _ in 0..block_a { values.extend([Some(0), Some(0), Some(0)]); }
        for _ in 0..block_b { values.extend([Some(1), Some(1), Some(1)]); }
        let ds = CategoricalDataset::new(
            "two", attrs, values, vec![0; block_a + block_b], vec!["x".into()],
        );
        let c = limbo(&ds, LimboParams::new(0.0, 2));
        prop_assert_eq!(c.num_clusters(), 2);
        prop_assert!(c.same_cluster(0, block_a - 1));
        prop_assert!(c.same_cluster(block_a, block_a + block_b - 1));
    }
}
