//! Scaling benchmarks for the five aggregation algorithms on
//! correlated instances (hidden blocks + noise), n ∈ {100, 400, 1000}.

use aggclust_core::algorithms::{
    agglomerative::agglomerative, balls::balls, best::best_clustering, furthest::furthest,
    local_search::local_search, AgglomerativeParams, BallsParams, FurthestParams,
    LocalSearchParams,
};
use aggclust_core::clustering::Clustering;
use aggclust_core::instance::DenseOracle;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn correlated_inputs(n: usize, m: usize, k: u32, seed: u64) -> Vec<Clustering> {
    let mut rng = StdRng::seed_from_u64(seed);
    let truth: Vec<u32> = (0..n).map(|_| rng.gen_range(0..k)).collect();
    (0..m)
        .map(|_| {
            let mut labels = truth.clone();
            for _ in 0..(n / 10) {
                let v = rng.gen_range(0..n);
                labels[v] = rng.gen_range(0..k);
            }
            Clustering::from_labels(labels)
        })
        .collect()
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregation");
    group.sample_size(10);
    for &n in &[100usize, 400, 1_000] {
        let inputs = correlated_inputs(n, 8, 6, 42);
        let oracle = DenseOracle::from_clusterings(&inputs);
        group.bench_with_input(BenchmarkId::new("best_clustering", n), &n, |b, _| {
            b.iter(|| best_clustering(black_box(&inputs)))
        });
        group.bench_with_input(BenchmarkId::new("balls", n), &n, |b, _| {
            b.iter(|| balls(black_box(&oracle), BallsParams::practical()))
        });
        group.bench_with_input(BenchmarkId::new("agglomerative", n), &n, |b, _| {
            b.iter(|| agglomerative(black_box(&oracle), AgglomerativeParams::paper()))
        });
        group.bench_with_input(BenchmarkId::new("furthest", n), &n, |b, _| {
            b.iter(|| furthest(black_box(&oracle), FurthestParams::default()))
        });
        group.bench_with_input(BenchmarkId::new("local_search", n), &n, |b, _| {
            b.iter(|| local_search(black_box(&oracle), LocalSearchParams::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
