//! Benchmarks for the baseline clusterers: k-means, the four hierarchical
//! linkages, ROCK, and LIMBO.

use aggclust_baselines::hierarchical::{hierarchical, HierarchicalParams, LinkageMethod};
use aggclust_baselines::kmeans::{kmeans, KMeansParams};
use aggclust_baselines::limbo::{limbo, LimboParams};
use aggclust_baselines::rock::{rock, RockParams};
use aggclust_data::presets::mushrooms_like;
use aggclust_data::synth2d::gaussian_with_noise;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_vector_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("vector_baselines");
    group.sample_size(10);
    for &n_per in &[100usize, 300] {
        let data = gaussian_with_noise(5, n_per, 0.2, 0.02, 1);
        let rows = data.rows();
        let n = rows.len();
        group.bench_with_input(BenchmarkId::new("kmeans_k7", n), &n, |b, _| {
            b.iter(|| kmeans(black_box(&rows), &KMeansParams::new(7, 1)))
        });
        for method in [
            LinkageMethod::Single,
            LinkageMethod::Complete,
            LinkageMethod::Average,
            LinkageMethod::Ward,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("linkage_{method:?}"), n),
                &n,
                |b, _| {
                    b.iter(|| hierarchical(black_box(&rows), HierarchicalParams::new(method, 7)))
                },
            );
        }
    }
    group.finish();
}

fn bench_categorical_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("categorical_baselines");
    group.sample_size(10);
    let (full, _) = mushrooms_like(1);
    for &n in &[300usize, 1_000] {
        let ds = full.subsample_random(n, 1);
        group.bench_with_input(BenchmarkId::new("rock_t0.8_k7", n), &n, |b, _| {
            b.iter(|| rock(black_box(&ds), RockParams::new(0.8, 7)))
        });
        group.bench_with_input(BenchmarkId::new("limbo_phi0.3_k7", n), &n, |b, _| {
            b.iter(|| limbo(black_box(&ds), LimboParams::new(0.3, 7)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vector_baselines, bench_categorical_baselines);
criterion_main!(benches);
