//! Micro-benchmarks for the disagreement distance `d_V`: the naive O(n²)
//! pair scan vs the contingency-table O(n + k₁k₂) computation.

use aggclust_core::clustering::Clustering;
use aggclust_core::distance::{disagreement_distance, disagreement_distance_naive};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_clustering(n: usize, k: u32, seed: u64) -> Clustering {
    let mut rng = StdRng::seed_from_u64(seed);
    Clustering::from_labels((0..n).map(|_| rng.gen_range(0..k)).collect())
}

fn bench_distance(c: &mut Criterion) {
    let mut group = c.benchmark_group("disagreement_distance");
    group.sample_size(20);
    for &n in &[100usize, 1_000, 5_000] {
        let a = random_clustering(n, 8, 1);
        let b = random_clustering(n, 8, 2);
        group.bench_with_input(BenchmarkId::new("contingency", n), &n, |bench, _| {
            bench.iter(|| disagreement_distance(black_box(&a), black_box(&b)))
        });
        if n <= 1_000 {
            group.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
                bench.iter(|| disagreement_distance_naive(black_box(&a), black_box(&b)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_distance);
criterion_main!(benches);
