//! Benchmarks for the packed SWAR disagreement kernels (DESIGN.md §6f):
//! dense-oracle construction through the bit-packed `LabelMatrix` path
//! versus the naive per-pair scalar loop (`kernels::reference::xuv_total`),
//! on the same inputs and pinned to one thread so the ratio measures the
//! kernel alone, not thread scaling. The issue's acceptance bar is a ≥2×
//! packed-over-naive speedup at n = 5 000, m = 10; `main` re-times both
//! paths directly and appends a `kernels_speedup` record with the measured
//! ratio to `CRITERION_SHIM_JSON` (see `BENCH_kernels.json` at the repo
//! root), alongside the standard `run_report` counter snapshot.

use aggclust_core::clustering::Clustering;
use aggclust_core::instance::DenseOracle;
use aggclust_core::kernels::reference;
use aggclust_core::obs;
use aggclust_core::parallel::with_num_threads;
use criterion::{criterion_group, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// The acceptance-bar instance size from the issue.
const N: usize = 5_000;
const M: usize = 10;

fn inputs(n: usize, m: usize, seed: u64) -> Vec<Clustering> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| Clustering::from_labels((0..n).map(|_| rng.gen_range(0..16u32)).collect()))
        .collect()
}

fn build_packed(cs: &[Clustering]) -> DenseOracle {
    with_num_threads(1, || DenseOracle::from_clusterings(black_box(cs)))
}

fn build_naive(cs: &[Clustering], n: usize) -> DenseOracle {
    with_num_threads(1, || {
        DenseOracle::from_fn_sync(n, |u, v| reference::xuv_total(black_box(cs), u, v))
    })
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    let cs = inputs(N, M, 7);
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("oracle_build_packed/t1", N), &N, |b, _| {
        b.iter(|| build_packed(&cs))
    });
    // One naive build walks m labels for each of the n(n-1)/2 pairs — 125M
    // label comparisons at the acceptance size — so fewer samples suffice.
    group.sample_size(5);
    group.bench_with_input(BenchmarkId::new("oracle_build_naive/t1", N), &N, |b, _| {
        b.iter(|| build_naive(&cs, N))
    });
    // A smaller size shows the ratio is not an artifact of one cache regime.
    let small = inputs(1_000, M, 8);
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("oracle_build_packed/t1", 1_000),
        &1_000usize,
        |b, _| b.iter(|| build_packed(&small)),
    );
    group.bench_with_input(
        BenchmarkId::new("oracle_build_naive/t1", 1_000),
        &1_000usize,
        |b, _| b.iter(|| build_naive(&small, 1_000)),
    );
    group.finish();
}

criterion_group!(benches, bench_kernels);

fn main() {
    obs::set_metrics_enabled(true);
    benches();
    if let Ok(path) = std::env::var("CRITERION_SHIM_JSON") {
        // Re-time both paths head-to-head (best of 3, one thread) so the
        // acceptance ratio is recorded explicitly, not left to be derived
        // from the per-benchmark medians above.
        let cs = inputs(N, M, 7);
        let time_best = |f: &dyn Fn() -> DenseOracle| -> u128 {
            (0..3)
                .map(|_| {
                    let start = std::time::Instant::now();
                    black_box(f());
                    start.elapsed().as_nanos()
                })
                .min()
                .unwrap_or(0)
        };
        let packed_ns = time_best(&|| build_packed(&cs));
        let naive_ns = time_best(&|| build_naive(&cs, N));
        let speedup = naive_ns as f64 / packed_ns as f64;
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            use std::io::Write as _;
            let _ = writeln!(
                f,
                "{{\"id\":\"kernels_speedup\",\"n\":{N},\"m\":{M},\"threads\":1,\"naive_ns\":{naive_ns},\"packed_ns\":{packed_ns},\"speedup\":{speedup:.2}}}"
            );
            let _ = writeln!(
                f,
                "{{\"id\":\"run_report\",\"schema\":\"aggclust-run-report-v1\",\"metrics\":{}}}",
                obs::MetricsSnapshot::capture().to_json()
            );
        }
    }
}
