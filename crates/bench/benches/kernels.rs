//! Benchmarks for the packed disagreement kernels (DESIGN.md §6f–§6g):
//! dense-oracle construction through the bit-packed `LabelMatrix` path
//! versus the naive per-pair scalar loop (`kernels::reference::xuv_total`),
//! on the same inputs and pinned to one thread so the ratio measures the
//! kernel alone, not thread scaling. Two acceptance bars feed
//! `CRITERION_SHIM_JSON` (see `BENCH_kernels.json` at the repo root):
//! a ≥2× packed-over-naive speedup at n = 5 000, m = 10
//! (`kernels_speedup`), and a ≥1.5× dispatched-SIMD-over-SWAR speedup on
//! the same build (`kernels_tiers`, measured at n = 5 000 and n = 1 000
//! via `dispatch::with_forced_tier`). The standard `run_report` record —
//! host block included, so the numbers state what hardware produced them
//! — closes the stream.

use aggclust_core::clustering::Clustering;
use aggclust_core::instance::DenseOracle;
use aggclust_core::kernels::{dispatch, reference, LabelMatrix};
use aggclust_core::obs;
use aggclust_core::parallel::with_num_threads;
use criterion::{criterion_group, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// The acceptance-bar instance size from the issue.
const N: usize = 5_000;
const M: usize = 10;

fn inputs(n: usize, m: usize, seed: u64) -> Vec<Clustering> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| Clustering::from_labels((0..n).map(|_| rng.gen_range(0..16u32)).collect()))
        .collect()
}

fn build_packed(cs: &[Clustering]) -> DenseOracle {
    with_num_threads(1, || DenseOracle::from_clusterings(black_box(cs)))
}

fn build_packed_tier(cs: &[Clustering], tier: dispatch::Tier) -> DenseOracle {
    dispatch::with_forced_tier(tier, || build_packed(cs))
}

fn build_naive(cs: &[Clustering], n: usize) -> DenseOracle {
    with_num_threads(1, || {
        DenseOracle::from_fn_sync(n, |u, v| reference::xuv_total(black_box(cs), u, v))
    })
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    let cs = inputs(N, M, 7);
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("oracle_build_packed/t1", N), &N, |b, _| {
        b.iter(|| build_packed(&cs))
    });
    // One naive build walks m labels for each of the n(n-1)/2 pairs — 125M
    // label comparisons at the acceptance size — so fewer samples suffice.
    group.sample_size(5);
    group.bench_with_input(BenchmarkId::new("oracle_build_naive/t1", N), &N, |b, _| {
        b.iter(|| build_naive(&cs, N))
    });
    // A smaller size shows the ratio is not an artifact of one cache regime.
    let small = inputs(1_000, M, 8);
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("oracle_build_packed/t1", 1_000),
        &1_000usize,
        |b, _| b.iter(|| build_packed(&small)),
    );
    group.bench_with_input(
        BenchmarkId::new("oracle_build_naive/t1", 1_000),
        &1_000usize,
        |b, _| b.iter(|| build_naive(&small, 1_000)),
    );
    // Tier-vs-tier: the same packed build forced onto every tier this
    // host can reach, so the medians separate the SIMD win from the
    // packing win.
    for tier in dispatch::reachable_tiers() {
        group.sample_size(10);
        group.bench_with_input(
            BenchmarkId::new(format!("oracle_build_{}/t1", tier.name()), N),
            &N,
            |b, _| b.iter(|| build_packed_tier(&cs, tier)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);

fn main() {
    obs::set_metrics_enabled(true);
    benches();
    if let Ok(path) = std::env::var("CRITERION_SHIM_JSON") {
        // Re-time both paths head-to-head (best of 3, one thread) so the
        // acceptance ratio is recorded explicitly, not left to be derived
        // from the per-benchmark medians above.
        let cs = inputs(N, M, 7);
        let time_best = |f: &dyn Fn() -> DenseOracle| -> u128 {
            (0..3)
                .map(|_| {
                    let start = std::time::Instant::now();
                    black_box(f());
                    start.elapsed().as_nanos()
                })
                .min()
                .unwrap_or(0)
        };
        let packed_ns = time_best(&|| build_packed(&cs));
        let naive_ns = time_best(&|| build_naive(&cs, N));
        let speedup = naive_ns as f64 / packed_ns as f64;
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            use std::io::Write as _;
            let _ = writeln!(
                f,
                "{{\"id\":\"kernels_speedup\",\"n\":{N},\"m\":{M},\"threads\":1,\"naive_ns\":{naive_ns},\"packed_ns\":{packed_ns},\"speedup\":{speedup:.2}}}"
            );
            // Tier-vs-tier acceptance record: the dispatched (best
            // available) tier must beat forced SWAR by ≥1.5× on the
            // n = 5 000 dense-oracle workload; n = 1 000 shows the ratio
            // holds in the cache-resident regime too. Each tier is timed
            // two ways: `*_kernel_ns` is the banded `sep_row_into` sweep
            // over all n(n-1)/2 pairs — exactly the work the tier
            // dispatch changes — and `*_build_ns` is the whole
            // `DenseOracle` build, which additionally pays a
            // tier-independent floor (allocating, page-faulting, and
            // writing the n(n-1)/2 × 8-byte condensed triangle) that
            // bounds the end-to-end ratio; both are recorded so the
            // speedup and its dilution are explicit.
            let time_kernel = |inputs: &[Clustering], tier: dispatch::Tier| -> u128 {
                let matrix = dispatch::with_forced_tier(tier, || LabelMatrix::from_total(inputs));
                let n = matrix.len();
                let band = matrix.preferred_band();
                let mut counts = vec![0u32; band];
                (0..3)
                    .map(|_| {
                        let start = std::time::Instant::now();
                        // The same banded pair order as
                        // parallel::fill_condensed_banded, minus the
                        // distance conversion and triangle writes.
                        for lo in (0..n).step_by(band) {
                            let hi = (lo + band).min(n);
                            for u in 0..hi.saturating_sub(1) {
                                let first = lo.max(u + 1);
                                matrix.sep_row_into(u, first, &mut counts[..hi - first]);
                            }
                        }
                        black_box(&counts);
                        start.elapsed().as_nanos()
                    })
                    .min()
                    .unwrap_or(0)
            };
            let best = dispatch::best_available();
            for (n, inputs) in [(N, &cs), (1_000usize, &inputs(1_000, M, 8))] {
                let scalar_build = time_best(&|| build_packed_tier(inputs, dispatch::Tier::Scalar));
                let swar_build = time_best(&|| build_packed_tier(inputs, dispatch::Tier::Swar));
                let simd_build = time_best(&|| build_packed_tier(inputs, best));
                let scalar_kernel = time_kernel(inputs, dispatch::Tier::Scalar);
                let swar_kernel = time_kernel(inputs, dispatch::Tier::Swar);
                let simd_kernel = time_kernel(inputs, best);
                let over_swar = swar_kernel as f64 / simd_kernel as f64;
                let over_swar_build = swar_build as f64 / simd_build as f64;
                let _ = writeln!(
                    f,
                    "{{\"id\":\"kernels_tiers\",\"n\":{n},\"m\":{M},\"threads\":1,\
                     \"simd_tier\":\"{}\",\
                     \"scalar_kernel_ns\":{scalar_kernel},\"swar_kernel_ns\":{swar_kernel},\
                     \"simd_kernel_ns\":{simd_kernel},\
                     \"scalar_build_ns\":{scalar_build},\"swar_build_ns\":{swar_build},\
                     \"simd_build_ns\":{simd_build},\
                     \"simd_over_swar\":{over_swar:.2},\
                     \"simd_over_swar_build\":{over_swar_build:.2}}}",
                    best.name()
                );
            }
            // The shared run report (host block + metrics), tagged for
            // the JSONL stream.
            let report = obs::run_report_json();
            let _ = writeln!(f, "{{\"id\":\"run_report\",{}", &report[1..]);
        }
    }
}
