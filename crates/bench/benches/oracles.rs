//! Benchmarks for the two distance-oracle implementations: dense
//! precomputed matrix (O(1) lookups, O(n²·m) build) vs lazy label-vector
//! oracle (O(m) lookups, zero build).

use aggclust_core::clustering::Clustering;
use aggclust_core::instance::{ClusteringsOracle, DenseOracle, DistanceOracle};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn inputs(n: usize, m: usize, seed: u64) -> Vec<Clustering> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| Clustering::from_labels((0..n).map(|_| rng.gen_range(0..8u32)).collect()))
        .collect()
}

fn bench_oracles(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracles");
    group.sample_size(10);
    for &n in &[500usize, 2_000] {
        let cs = inputs(n, 16, 7);
        group.bench_with_input(BenchmarkId::new("dense_build", n), &n, |b, _| {
            b.iter(|| DenseOracle::from_clusterings(black_box(&cs)))
        });
        let dense = DenseOracle::from_clusterings(&cs);
        let lazy = ClusteringsOracle::from_total(&cs);
        group.bench_with_input(BenchmarkId::new("dense_full_scan", n), &n, |b, _| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for u in 0..n {
                    for v in (u + 1)..n {
                        acc += dense.dist(u, v);
                    }
                }
                black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("lazy_full_scan", n), &n, |b, _| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for u in 0..n {
                    for v in (u + 1)..n {
                        acc += lazy.dist(u, v);
                    }
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_oracles);
criterion_main!(benches);
