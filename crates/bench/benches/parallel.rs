//! Benchmarks for the `aggclust_core::parallel` layer: dense-oracle
//! construction, `correlation_cost`, and a single LOCALSEARCH pass at
//! n ∈ {1 000, 5 000, 20 000}, each under a 1-thread and a 4-thread
//! override so the speedup is measured in-process on the same inputs.
//!
//! The n = 20 000 sizes use the lazy [`ClusteringsOracle`] (O(n·m) memory)
//! instead of the dense matrix, whose condensed triangle alone would be
//! 1.6 GB; the parallel layer is oracle-agnostic, so the scaling story is
//! the same. On a single-CPU host the 4-thread rows are expected to match
//! (or slightly trail) the 1-thread rows — the numbers are recorded
//! honestly either way via `CRITERION_SHIM_JSON` (see `BENCH_parallel.json`
//! at the repo root).

use aggclust_core::algorithms::local_search::local_search_from;
use aggclust_core::clustering::Clustering;
use aggclust_core::cost::correlation_cost;
use aggclust_core::instance::{ClusteringsOracle, DenseOracle, DistanceOracle};
use aggclust_core::obs;
use aggclust_core::parallel::with_num_threads;
use criterion::{criterion_group, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const THREAD_COUNTS: [usize; 2] = [1, 4];

fn inputs(n: usize, m: usize, seed: u64) -> Vec<Clustering> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| Clustering::from_labels((0..n).map(|_| rng.gen_range(0..16u32)).collect()))
        .collect()
}

/// Dense for n ≤ 5 000, lazy above (memory), behind one trait object-free
/// enum so each size benches the oracle it would realistically use.
enum Oracle {
    Dense(DenseOracle),
    Lazy(ClusteringsOracle),
}

impl Oracle {
    fn build(cs: &[Clustering], n: usize) -> Self {
        if n <= 5_000 {
            Oracle::Dense(DenseOracle::from_clusterings(cs))
        } else {
            Oracle::Lazy(ClusteringsOracle::from_total(cs))
        }
    }
}

impl DistanceOracle for Oracle {
    fn len(&self) -> usize {
        match self {
            Oracle::Dense(o) => o.len(),
            Oracle::Lazy(o) => o.len(),
        }
    }
    fn dist(&self, u: usize, v: usize) -> f64 {
        match self {
            Oracle::Dense(o) => o.dist(u, v),
            Oracle::Lazy(o) => o.dist(u, v),
        }
    }
}

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel");
    for &n in &[1_000usize, 5_000, 20_000] {
        // Fewer samples at the big sizes: one 20k cost sweep is 200M pairs.
        group.sample_size(if n >= 20_000 { 3 } else { 10 });
        let cs = inputs(n, 8, 7);
        for &threads in &THREAD_COUNTS {
            let id = |name: &str| BenchmarkId::new(format!("{name}/t{threads}"), n);
            if n <= 5_000 {
                group.bench_with_input(id("oracle_build"), &n, |b, _| {
                    b.iter(|| {
                        with_num_threads(threads, || DenseOracle::from_clusterings(black_box(&cs)))
                    })
                });
            }
            let oracle = Oracle::build(&cs, n);
            let candidate = cs[0].clone();
            group.bench_with_input(id("correlation_cost"), &n, |b, _| {
                b.iter(|| {
                    with_num_threads(threads, || {
                        correlation_cost(black_box(&oracle), black_box(&candidate))
                    })
                })
            });
            let start = Clustering::singletons(n);
            group.bench_with_input(id("local_search_pass"), &n, |b, _| {
                b.iter(|| {
                    with_num_threads(threads, || {
                        local_search_from(black_box(&oracle), black_box(&start), 1, 1e-9)
                    })
                })
            });
        }
    }
    group.finish();
}

/// The telemetry layer's zero-cost contract, measured rather than
/// asserted: with no collector installed a `span!`/`event!` pair is one
/// relaxed atomic load and an untaken branch, and with metrics disabled a
/// guarded counter bump is the same. Expect single-digit nanoseconds for
/// the "off" rows; the "on" row shows the real cost of a live counter.
fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    obs::clear_collector();
    let was_enabled = obs::metrics_enabled();
    // Spans also time themselves into the metrics registry now, so the
    // "off" row must switch metrics off for the measurement — main()
    // enables them for the kernel benches above.
    obs::set_metrics_enabled(false);
    group.bench_function("span_event_collector_off", |b| {
        b.iter(|| {
            let _span = aggclust_core::span!("bench_noop", n = black_box(1usize));
            aggclust_core::event!(obs::Level::Debug, "noop");
        })
    });
    obs::set_metrics_enabled(true);
    // The live per-span timing path: clock read, child-time stack frame,
    // and the per-name count/total/self/max/histogram updates.
    group.bench_function("span_timed_metrics_on", |b| {
        b.iter(|| {
            let _span = aggclust_core::span!("bench_timed", n = black_box(1usize));
        })
    });
    obs::set_metrics_enabled(false);
    group.bench_function("counter_metrics_off", |b| {
        b.iter(|| obs::metrics().ls_moves.add_if_enabled(black_box(1)))
    });
    obs::set_metrics_enabled(true);
    group.bench_function("counter_metrics_on", |b| {
        // add(0): exercise the live atomic without skewing the run report.
        b.iter(|| obs::metrics().ls_moves.add_if_enabled(black_box(0)))
    });
    obs::set_metrics_enabled(was_enabled);
    // Same contract for fault injection: with no plan armed, a failpoint
    // check is one relaxed load and an untaken branch, so routing every
    // fs touch through the facade costs nothing in production runs.
    group.bench_function("failpoint_disarmed", |b| {
        b.iter(|| aggclust_core::fp!(black_box("snapshot.rename"), black_box(4096)))
    });
    group.finish();
}

criterion_group!(benches, bench_parallel, bench_telemetry_overhead);

fn main() {
    // Count the kernels' work while they are timed, then append the
    // standard run report to the same JSONL stream as the timing records,
    // so `BENCH_parallel.json` carries counters alongside wall-clock.
    obs::set_metrics_enabled(true);
    benches();
    if let Ok(path) = std::env::var("CRITERION_SHIM_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            use std::io::Write as _;
            let report = obs::run_report_json();
            let _ = writeln!(f, "{{\"id\":\"run_report\",{}", &report[1..]);
        }
    }
}
