//! Benchmarks for the SAMPLING meta-algorithm: end-to-end time vs the
//! non-sampling base algorithm, across sample sizes (the Figure-5-left
//! trade-off as a microbenchmark).

use aggclust_core::algorithms::sampling::{sampling, SamplingParams};
use aggclust_core::algorithms::{AgglomerativeParams, Algorithm};
use aggclust_core::clustering::Clustering;
use aggclust_core::instance::{ClusteringsOracle, DenseOracle};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn block_inputs(n: usize, m: usize, k: u32, seed: u64) -> Vec<Clustering> {
    let mut rng = StdRng::seed_from_u64(seed);
    let truth: Vec<u32> = (0..n).map(|v| (v as u32) % k).collect();
    (0..m)
        .map(|_| {
            let mut labels = truth.clone();
            for _ in 0..(n / 20) {
                let v = rng.gen_range(0..n);
                labels[v] = rng.gen_range(0..k);
            }
            Clustering::from_labels(labels)
        })
        .collect()
}

fn bench_sampling(c: &mut Criterion) {
    let n = 4_000;
    let cs = block_inputs(n, 8, 6, 3);
    let dense = DenseOracle::from_clusterings(&cs);
    let lazy = ClusteringsOracle::from_total(&cs);
    let base = Algorithm::Agglomerative(AgglomerativeParams::default());

    let mut group = c.benchmark_group("sampling");
    group.sample_size(10);
    group.bench_function("full_agglomerative_n4000", |b| {
        b.iter(|| base.run(black_box(&dense)))
    });
    for &s in &[100usize, 400, 1_600] {
        let params = SamplingParams::new(s, base.clone(), 1);
        group.bench_with_input(BenchmarkId::new("dense_oracle", s), &s, |b, _| {
            b.iter(|| sampling(black_box(&dense), black_box(&params)))
        });
        group.bench_with_input(BenchmarkId::new("lazy_oracle", s), &s, |b, _| {
            b.iter(|| sampling(black_box(&lazy), black_box(&params)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
