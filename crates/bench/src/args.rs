//! A minimal `--key value` / `--flag` argument parser for the experiment
//! binaries (keeps the dependency surface at zero).

use std::collections::HashMap;

/// Parsed command-line options.
#[derive(Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse from `std::env::args` (skipping the program name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (used by tests).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let value = iter.next().unwrap_or_default();
                        out.values.insert(key.to_string(), value);
                    }
                    _ => out.flags.push(key.to_string()),
                }
            }
        }
        out
    }

    /// `true` if `--name` was given without a value.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The value of `--name value`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Parse `--name value` as a type, falling back to a default.
    ///
    /// An unparsable value prints a one-line usage error and exits with the
    /// CLI's usage code (2) — experiment binaries should never backtrace on
    /// a typo.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("error: could not parse --{name} value {v:?}"); // lint:allow-eprintln
                std::process::exit(2);
            }),
            None => default,
        }
    }

    /// Build a [`RunBudget`](aggclust_core::RunBudget) from the shared
    /// `--deadline-ms`, `--max-iters` and `--mem-budget-mb` options
    /// (unlimited when none is given).
    pub fn run_budget(&self) -> aggclust_core::RunBudget {
        let mut budget = aggclust_core::RunBudget::unlimited();
        if let Some(ms) = self.get("deadline-ms") {
            let ms: u64 = ms.parse().unwrap_or_else(|_| {
                eprintln!("error: could not parse --deadline-ms value {ms:?}"); // lint:allow-eprintln
                std::process::exit(2);
            });
            budget = budget.with_deadline_ms(ms);
        }
        if let Some(iters) = self.get("max-iters") {
            let iters: u64 = iters.parse().unwrap_or_else(|_| {
                eprintln!("error: could not parse --max-iters value {iters:?}"); // lint:allow-eprintln
                std::process::exit(2);
            });
            budget = budget.with_max_iters(iters);
        }
        if let Some(mb) = self.get("mem-budget-mb") {
            let mb: u64 = mb.parse().unwrap_or_else(|_| {
                eprintln!("error: could not parse --mem-budget-mb value {mb:?}"); // lint:allow-eprintln
                std::process::exit(2);
            });
            budget = budget.with_mem_limit_mb(mb);
        }
        budget
    }

    /// The shared `--threads N` override (0 or absent = automatic). Callers
    /// wrap their work in
    /// [`parallel::with_num_threads`](aggclust_core::parallel::with_num_threads)
    /// when this returns `Some`.
    pub fn threads(&self) -> Option<usize> {
        match self.get_or("threads", 0usize) {
            0 => None,
            t => Some(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::parse(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn values_and_flags() {
        let a = args(&["--seed", "42", "--full", "--scale", "0.5"]);
        assert_eq!(a.get("seed"), Some("42"));
        assert_eq!(a.get_or("seed", 0u64), 42);
        assert!(a.flag("full"));
        assert!(!a.flag("quick"));
        assert_eq!(a.get_or("scale", 1.0f64), 0.5);
    }

    #[test]
    fn defaults() {
        let a = args(&[]);
        assert_eq!(a.get_or("seed", 7u64), 7);
        assert!(!a.flag("full"));
    }

    #[test]
    fn run_budget_defaults_to_unlimited() {
        let a = args(&[]);
        assert!(a.run_budget().is_unlimited());
    }

    #[test]
    fn run_budget_parses_shared_flags() {
        let a = args(&["--deadline-ms", "250", "--max-iters", "1000"]);
        let budget = a.run_budget();
        assert!(!budget.is_unlimited());
        assert!(budget.poll().is_ok());
    }

    #[test]
    fn run_budget_parses_memory_cap() {
        let a = args(&["--mem-budget-mb", "64"]);
        let budget = a.run_budget();
        assert_eq!(budget.mem_limit_bytes(), Some(64 << 20));
        // A memory cap alone leaves the run limits (time/iterations)
        // unlimited.
        assert!(budget.no_run_limits());
    }

    #[test]
    fn threads_zero_or_absent_means_automatic() {
        assert_eq!(args(&[]).threads(), None);
        assert_eq!(args(&["--threads", "0"]).threads(), None);
        assert_eq!(args(&["--threads", "3"]).threads(), Some(3));
    }
}
