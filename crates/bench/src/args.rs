//! A minimal `--key value` / `--flag` argument parser for the experiment
//! binaries (keeps the dependency surface at zero).

use std::collections::HashMap;

/// Parsed command-line options.
#[derive(Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse from `std::env::args` (skipping the program name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (used by tests).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        out.values.insert(key.to_string(), iter.next().unwrap());
                    }
                    _ => out.flags.push(key.to_string()),
                }
            }
        }
        out
    }

    /// `true` if `--name` was given without a value.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The value of `--name value`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Parse `--name value` as a type, falling back to a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            Some(v) => v.parse().unwrap_or_else(|_| {
                panic!("could not parse --{name} value {v:?}");
            }),
            None => default,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::parse(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn values_and_flags() {
        let a = args(&["--seed", "42", "--full", "--scale", "0.5"]);
        assert_eq!(a.get("seed"), Some("42"));
        assert_eq!(a.get_or("seed", 0u64), 42);
        assert!(a.flag("full"));
        assert!(!a.flag("quick"));
        assert_eq!(a.get_or("scale", 1.0f64), 0.5);
    }

    #[test]
    fn defaults() {
        let a = args(&[]);
        assert_eq!(a.get_or("seed", 7u64), 7);
        assert!(!a.flag("full"));
    }

    #[test]
    #[should_panic(expected = "could not parse")]
    fn bad_value_panics() {
        let a = args(&["--seed", "abc"]);
        let _ = a.get_or("seed", 0u64);
    }
}
