//! Ablation studies for the design choices the paper calls out:
//!
//! 1. **BALLS α sweep** — the paper proves the 3-approximation at `α = ¼`
//!    but observes it "tends to be small as it creates many singleton
//!    clusters" and recommends `α = ⅖` in practice.
//! 2. **LOCALSEARCH as post-processing** — "the LOCALSEARCH can be used as
//!    a clustering algorithm, but also as a post-processing step, to
//!    improve upon an existing solution".
//! 3. **SAMPLING singleton re-aggregation** — the paper's post-processing
//!    step that collects singletons and aggregates them again.
//! 4. **Dense vs lazy oracle** — precomputing the `O(n²)` matrix vs
//!    computing `X_uv` on demand from the label vectors.
//! 5. **Extension algorithms** — CC-PIVOT (Ailon et al.) and simulated
//!    annealing (Filkov–Skiena, the paper's ref 13) against the paper's
//!    roster, plus the BALLS vertex-ordering heuristic.
//!
//! ```text
//! cargo run --release -p aggclust-bench --bin ablations [-- --seed N] [--rows N]
//! ```

use aggclust_bench::args::Args;
use aggclust_bench::roster::CategoricalExperiment;
use aggclust_bench::table::{fmt_f, Table};
use aggclust_bench::timed;
use aggclust_core::algorithms::local_search::local_search_from;
use aggclust_core::algorithms::sampling::{sampling_with_details, SamplingParams};
use aggclust_core::algorithms::{AgglomerativeParams, Algorithm, BallsParams, FurthestParams};
use aggclust_core::cost::correlation_cost;
use aggclust_core::instance::DistanceOracle;
use aggclust_data::presets::{mushrooms_like, votes_like};
use aggclust_metrics::classification_error;

fn main() {
    let args = Args::from_env();
    let _telemetry = aggclust_bench::obs::init_from_args(&args);
    let seed = args.get_or("seed", 1u64);
    let rows = args.get_or("rows", 2000usize);

    balls_alpha_sweep(seed);
    local_search_postprocessing(seed, rows);
    sampling_recluster(seed, rows);
    oracle_comparison(seed, rows);
    extension_algorithms(seed);
}

/// Ablation 5: extension algorithms vs the paper's roster (Votes).
fn extension_algorithms(seed: u64) {
    use aggclust_core::algorithms::{AnnealingParams, BallsOrdering, PivotParams};
    println!("\nAblation 5 — extension algorithms and the BALLS ordering (Votes)\n");
    let (dataset, _) = votes_like(seed);
    let exp = CategoricalExperiment::prepare(dataset);
    let algorithms: Vec<(String, Algorithm)> = vec![
        (
            "Agglomerative (paper)".into(),
            Algorithm::Agglomerative(AgglomerativeParams::default()),
        ),
        (
            "LocalSearch (paper)".into(),
            Algorithm::LocalSearch(Default::default()),
        ),
        (
            "Pivot (majority)".into(),
            Algorithm::Pivot(PivotParams::majority(seed)),
        ),
        (
            "Pivot (randomized x9)".into(),
            Algorithm::Pivot(PivotParams::randomized(seed, 9)),
        ),
        (
            "Annealing (Filkov-Skiena)".into(),
            Algorithm::Annealing(AnnealingParams {
                seed,
                sweeps: 60,
                ..Default::default()
            }),
        ),
        (
            "Balls order: increasing (paper)".into(),
            Algorithm::Balls(BallsParams::practical()),
        ),
        (
            "Balls order: decreasing".into(),
            Algorithm::Balls(
                BallsParams::practical().with_ordering(BallsOrdering::DecreasingWeight),
            ),
        ),
        (
            "Balls order: index".into(),
            Algorithm::Balls(BallsParams::practical().with_ordering(BallsOrdering::Index)),
        ),
    ];
    let mut table = Table::new(&["algorithm", "k", "E_C(%)", "E_D", "time(s)"]);
    for (name, algo) in algorithms {
        let row = exp.run(&name, &algo);
        table.row(vec![
            row.name.clone(),
            row.k.to_string(),
            fmt_f(row.ec_percent, 1),
            fmt_f(row.ed, 0),
            fmt_f(row.seconds, 2),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nThe extensions bracket the paper's roster: Pivot is the cheapest\n\
         and loosest, annealing matches LocalSearch at higher cost in time."
    );
}

/// Ablation 1: the α parameter of BALLS on the Votes dataset.
fn balls_alpha_sweep(seed: u64) {
    println!("Ablation 1 — BALLS α sweep (Votes)\n");
    let (dataset, _) = votes_like(seed);
    let exp = CategoricalExperiment::prepare(dataset);
    let mut table = Table::new(&["alpha", "k", "singletons", "E_C(%)", "E_D"]);
    for alpha in [0.1, 0.2, 0.25, 0.3, 0.4, 0.5] {
        let c = Algorithm::Balls(BallsParams::with_alpha(alpha)).run(&exp.oracle);
        table.row(vec![
            fmt_f(alpha, 2),
            c.num_clusters().to_string(),
            c.num_singletons().to_string(),
            fmt_f(
                100.0 * classification_error(&c, exp.dataset.class_labels()),
                1,
            ),
            fmt_f(correlation_cost(&exp.oracle, &c), 0),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nPaper: α = ¼ \"tends to be small as it creates many singleton\n\
         clusters; for many of our real datasets α = 2/5 leads to better\n\
         solutions\".\n"
    );
}

/// Ablation 2: LOCALSEARCH as a post-processor for every other algorithm.
fn local_search_postprocessing(seed: u64, rows: usize) {
    println!("Ablation 2 — LocalSearch as post-processing (Mushrooms, n = {rows})\n");
    let (dataset, _) = mushrooms_like(seed);
    let dataset = dataset.subsample_random(rows, seed);
    let exp = CategoricalExperiment::prepare(dataset);

    let algorithms: Vec<(&str, Algorithm)> = vec![
        (
            "Agglomerative",
            Algorithm::Agglomerative(AgglomerativeParams::default()),
        ),
        ("Furthest", Algorithm::Furthest(FurthestParams::default())),
        (
            "Balls (a=0.25)",
            Algorithm::Balls(BallsParams::theoretical()),
        ),
        ("Balls (a=0.4)", Algorithm::Balls(BallsParams::practical())),
    ];
    let mut table = Table::new(&[
        "start",
        "E_D before",
        "E_D after",
        "improvement(%)",
        "k after",
    ]);
    for (name, algo) in algorithms {
        let before = algo.run(&exp.oracle);
        let cost_before = correlation_cost(&exp.oracle, &before);
        let after = local_search_from(&exp.oracle, &before, 100, 1e-9);
        let cost_after = correlation_cost(&exp.oracle, &after);
        table.row(vec![
            name.to_string(),
            fmt_f(cost_before, 0),
            fmt_f(cost_after, 0),
            fmt_f(100.0 * (cost_before - cost_after) / cost_before, 2),
            after.num_clusters().to_string(),
        ]);
    }
    print!("{}", table.render());
    println!("\nLocalSearch never worsens a solution (each accepted move strictly\nlowers d(C)); the gain shows how far each start is from a local optimum.\n");
}

/// Ablation 3: the SAMPLING singleton re-aggregation pass.
fn sampling_recluster(seed: u64, rows: usize) {
    println!("Ablation 3 — SAMPLING singleton re-aggregation (Mushrooms, n = {rows})\n");
    let (dataset, _) = mushrooms_like(seed);
    let dataset = dataset.subsample_random(rows, seed);
    let exp = CategoricalExperiment::prepare(dataset);
    let mut table = Table::new(&["variant", "sample", "k", "singletons", "E_C(%)", "E_D"]);
    for sample in [200usize, 800] {
        for recluster in [false, true] {
            let mut params = SamplingParams::new(
                sample,
                Algorithm::Agglomerative(AgglomerativeParams::default()),
                seed,
            );
            params.recluster_singletons = recluster;
            let details = sampling_with_details(&exp.oracle, &params);
            let c = &details.clustering;
            table.row(vec![
                if recluster {
                    "with recluster"
                } else {
                    "without"
                }
                .to_string(),
                sample.to_string(),
                c.num_clusters().to_string(),
                c.num_singletons().to_string(),
                fmt_f(
                    100.0 * classification_error(c, exp.dataset.class_labels()),
                    1,
                ),
                fmt_f(correlation_cost(&exp.oracle, c), 0),
            ]);
        }
    }
    print!("{}", table.render());
    println!("\nPaper: \"at the end of the assignment phase there are too many\nsingleton clusters; therefore we collect all singleton clusters and run\nthe clustering aggregation again on this subset\".\n");
}

/// Ablation 4: dense precomputed matrix vs lazy per-pair oracle.
fn oracle_comparison(seed: u64, rows: usize) {
    println!("Ablation 4 — dense vs lazy oracle (Mushrooms, n = {rows})\n");
    let (dataset, _) = mushrooms_like(seed);
    let dataset = dataset.subsample_random(rows, seed);
    let exp = CategoricalExperiment::prepare(dataset);
    let lazy = exp.instance.lazy_oracle();
    let algo = Algorithm::Balls(BallsParams::practical());

    let (dense_result, dense_secs) = timed(|| algo.run(&exp.oracle));
    let (lazy_result, lazy_secs) = timed(|| algo.run(&lazy));
    assert_eq!(dense_result, lazy_result, "oracles must agree");

    let mut table = Table::new(&["oracle", "lookup cost", "Balls time(s)", "memory"]);
    table.row(vec![
        "dense (precomputed)".into(),
        "O(1)".into(),
        fmt_f(dense_secs, 3),
        format!(
            "O(n²) = {} MB",
            exp.oracle.len() * (exp.oracle.len() - 1) / 2 * 8 / 1_000_000
        ),
    ]);
    table.row(vec![
        "lazy (label vectors)".into(),
        format!("O(m) = O({})", exp.instance.num_clusterings()),
        fmt_f(lazy_secs, 3),
        "O(n·m)".into(),
    ]);
    print!("{}", table.render());
    println!(
        "\nIdentical results; the dense oracle trades O(n²) memory for O(1)\n\
         lookups (right choice up to ~10⁴ objects), the lazy oracle is what\n\
         lets SAMPLING run on 10⁶ objects."
    );
}
