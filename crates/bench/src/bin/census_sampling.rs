//! Reproduces the **Census** experiment of §5.2: the dataset is too large
//! for the quadratic algorithms, so SAMPLING + FURTHEST clusters a sample
//! of 4000 people and assigns the rest.
//!
//! Paper result: 54 clusters, classification error 24%; LIMBO (k = 2,
//! φ = 1.0) reaches 27.6%; ROCK does not scale. Supervised classifiers get
//! 14–21% — clustering is a different task, the number is context.
//!
//! ```text
//! cargo run --release -p aggclust-bench --bin census_sampling \
//!     [-- --rows N] [--sample S] [--seed X] [--uci PATH] [--skip-limbo]
//! ```

use aggclust_baselines::limbo::{limbo, LimboParams};
use aggclust_bench::args::Args;
use aggclust_bench::table::{fmt_f, Table};
use aggclust_bench::timed;
use aggclust_core::algorithms::sampling::{sampling_with_details, SamplingParams};
use aggclust_core::algorithms::{Algorithm, FurthestParams};
use aggclust_core::instance::{ClusteringsOracle, MissingPolicy};
use aggclust_data::presets::census_like_scaled;
use aggclust_data::to_clusterings::heterogeneous_clusterings;
use aggclust_metrics::classification_error;

fn main() {
    let args = Args::from_env();
    let _telemetry = aggclust_bench::obs::init_from_args(&args);
    let seed = args.get_or("seed", 1u64);
    let rows = args.get_or("rows", 32561usize);
    let sample = args.get_or("sample", 4000usize);

    let dataset = match args.get("uci") {
        Some(path) => aggclust_data::uci::load_census(path).unwrap_or_else(|e| {
            eprintln!("error: failed to load UCI census from {path}: {e}"); // lint:allow-eprintln
            std::process::exit(3);
        }),
        None => census_like_scaled(rows, seed).0,
    };
    println!(
        "Census (§5.2) — {} (n = {}, {} categorical + {} numeric attributes)\n",
        dataset.name,
        dataset.len(),
        dataset.attributes().len(),
        dataset.numeric_columns().len()
    );

    // §5.2: "we perform clustering based on the categorical attributes" —
    // the 6 numeric columns are not used for clustering (pass
    // --with-numeric to include them quantile-binned, the §2 heterogeneous
    // treatment).
    let clusterings = if args.flag("with-numeric") {
        heterogeneous_clusterings(&dataset, 10)
    } else {
        aggclust_data::to_clusterings::attribute_clusterings(&dataset)
    };
    println!("{} input clusterings", clusterings.len());
    let oracle = ClusteringsOracle::new(clusterings, MissingPolicy::Coin(0.5));

    let params = SamplingParams::new(sample, Algorithm::Furthest(FurthestParams::default()), seed);
    let (details, secs) = timed(|| sampling_with_details(&oracle, &params));
    let clustering = &details.clustering;
    let ec = classification_error(clustering, dataset.class_labels());

    let mut table = Table::new(&["method", "k", "E_C(%)", "time(s)"]);
    table.row(vec![
        format!("Sampling+Furthest (sample={sample})"),
        clustering.num_clusters().to_string(),
        fmt_f(100.0 * ec, 1),
        fmt_f(secs, 1),
    ]);

    if !args.flag("skip-limbo") {
        let (limbo_c, limbo_secs) = timed(|| limbo(&dataset, LimboParams::new(1.0, 2)));
        let limbo_ec = classification_error(&limbo_c, dataset.class_labels());
        table.row(vec![
            "LIMBO (k=2, phi=1.0)".into(),
            limbo_c.num_clusters().to_string(),
            fmt_f(100.0 * limbo_ec, 1),
            fmt_f(limbo_secs, 1),
        ]);
    }
    print!("{}", table.render());

    println!(
        "\nSampling detail: {} clusters on the sample, {} singletons before\n\
         re-aggregation; phases: cluster {:.1}s, assign {:.1}s, recluster {:.1}s.",
        details.sample_clusters,
        details.singletons_before_recluster,
        details.cluster_time.as_secs_f64(),
        details.assign_time.as_secs_f64(),
        details.recluster_time.as_secs_f64()
    );

    // A glimpse of the fine social-group structure the paper describes
    // ("male Eskimos occupied with farming-fishing", ...): sizes of the
    // discovered clusters.
    let mut sizes = clustering.cluster_sizes();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    let head: Vec<String> = sizes.iter().take(12).map(|s| s.to_string()).collect();
    println!(
        "\nLargest clusters: {} ... ({} clusters total)",
        head.join(", "),
        sizes.len()
    );
    println!(
        "\nPaper: Sampling+Furthest on a 4000-person sample → 54 clusters,\n\
         E_C = 24%; LIMBO (k=2, phi=1.0) → 27.6%; ROCK does not scale."
    );
}
