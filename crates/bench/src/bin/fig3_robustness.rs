//! Reproduces **Figure 3** of the paper: aggregate five vanilla
//! clusterings (single / complete / average / Ward linkage and k-means,
//! each at k = 7) of the "seven perceptually distinct groups" 2-D dataset,
//! and show that the aggregate is better than any input.
//!
//! The paper shows scatter plots; this harness prints, for every input
//! clustering and for the aggregate, the agreement with the generative
//! ground truth (adjusted Rand index, NMI, disagreement distance) — the
//! quantitative content of the figure: each input makes mistakes, the
//! aggregation cancels them out.
//!
//! ```text
//! cargo run --release -p aggclust-bench --bin fig3_robustness [-- --seed N]
//! ```

use aggclust_baselines::hierarchical::{hierarchical, HierarchicalParams, LinkageMethod};
use aggclust_baselines::kmeans::{kmeans, KMeansParams};
use aggclust_bench::args::Args;
use aggclust_bench::table::{fmt_f, Table};
use aggclust_core::algorithms::agglomerative::{agglomerative, AgglomerativeParams};
use aggclust_core::clustering::Clustering;
use aggclust_core::distance::disagreement_distance;
use aggclust_core::instance::CorrelationInstance;
use aggclust_data::synth2d::seven_groups;
use aggclust_metrics::information::normalized_mutual_information;
use aggclust_metrics::pair_counting::adjusted_rand_index;

fn main() {
    let args = Args::from_env();
    let _telemetry = aggclust_bench::obs::init_from_args(&args);
    // Default seed chosen so every vanilla algorithm exhibits its
    // characteristic failure (vary with --seed; the qualitative story —
    // aggregate ≥ best input — holds across seeds).
    let seed = args.get_or("seed", 3u64);

    let data = seven_groups(seed);
    let truth = data.truth_clustering();
    let rows = data.rows();
    println!(
        "Figure 3 — seven perceptual groups (n = {}, 7 true groups)\n",
        data.len()
    );

    let inputs: Vec<(&str, Clustering)> = vec![
        (
            "single linkage",
            hierarchical(&rows, HierarchicalParams::new(LinkageMethod::Single, 7)),
        ),
        (
            "complete linkage",
            hierarchical(&rows, HierarchicalParams::new(LinkageMethod::Complete, 7)),
        ),
        (
            "average linkage",
            hierarchical(&rows, HierarchicalParams::new(LinkageMethod::Average, 7)),
        ),
        (
            "Ward's clustering",
            hierarchical(&rows, HierarchicalParams::new(LinkageMethod::Ward, 7)),
        ),
        (
            "k-means",
            // Matlab-2005-default behavior: a single run seeded with random
            // sample points (no k-means++, no restarts). The paper used
            // Matlab defaults; a tuned k-means would hide the "different
            // algorithms make different mistakes" effect the figure is
            // about.
            kmeans(
                &rows,
                &KMeansParams {
                    n_init: 1,
                    init: aggclust_baselines::kmeans::KMeansInit::Random,
                    ..KMeansParams::new(7, seed)
                },
            )
            .clustering,
        ),
    ];

    let instance = CorrelationInstance::from_clusterings(
        &inputs.iter().map(|(_, c)| c.clone()).collect::<Vec<_>>(),
    );
    let oracle = instance.dense_oracle();
    let aggregate = agglomerative(&oracle, AgglomerativeParams::paper());

    let mut table = Table::new(&["clustering", "k", "ARI", "NMI", "d_V to truth"]);
    let mut best_input_ari = f64::NEG_INFINITY;
    for (name, c) in &inputs {
        if args.flag("verbose") {
            let mut sizes = c.cluster_sizes();
            sizes.sort_unstable_by(|a, b| b.cmp(a));
            aggclust_core::obs::info!(format!("{name}: cluster sizes {sizes:?}"));
        }
        let ari = adjusted_rand_index(c, &truth);
        best_input_ari = best_input_ari.max(ari);
        table.row(vec![
            name.to_string(),
            c.num_clusters().to_string(),
            fmt_f(ari, 3),
            fmt_f(normalized_mutual_information(c, &truth), 3),
            disagreement_distance(c, &truth).to_string(),
        ]);
    }
    let agg_ari = adjusted_rand_index(&aggregate, &truth);
    table.row(vec![
        "AGGREGATION (Agglomerative)".into(),
        aggregate.num_clusters().to_string(),
        fmt_f(agg_ari, 3),
        fmt_f(normalized_mutual_information(&aggregate, &truth), 3),
        disagreement_distance(&aggregate, &truth).to_string(),
    ]);
    print!("{}", table.render());

    if args.flag("plot") {
        println!("\nGround truth:");
        print!(
            "{}",
            aggclust_bench::plot::scatter(&data.points, &truth, 76, 22)
        );
        for (name, c) in &inputs {
            println!("\n{name}:");
            print!("{}", aggclust_bench::plot::scatter(&data.points, c, 76, 22));
        }
        println!("\nAGGREGATION:");
        print!(
            "{}",
            aggclust_bench::plot::scatter(&data.points, &aggregate, 76, 22)
        );
    }

    println!(
        "\nAggregate {} the best input (best input ARI {:.3}, aggregate {:.3}).",
        if agg_ari >= best_input_ari - 1e-9 {
            "matches or beats"
        } else {
            "trails"
        },
        best_input_ari,
        agg_ari
    );
    println!(
        "Paper: \"the aggregated clustering is better than any of the input\n\
         clusterings (although average-linkage comes very close)\"."
    );
}
