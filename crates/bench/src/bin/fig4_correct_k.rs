//! Reproduces **Figure 4** of the paper: finding the correct number of
//! clusters and the outliers, with no prior knowledge of `k`.
//!
//! For each of three datasets (`k* = 3, 5, 7` Gaussian clusters of 100
//! points in the unit square, plus 20% uniform background noise), run
//! k-means with `k = 2..10`, aggregate the nine resulting clusterings, and
//! report: the number of *main* clusters discovered (the paper's claim is
//! that these are exactly the `k*` correct ones), the purity of the main
//! clusters against the generative truth, and how many background-noise
//! points were isolated into small clusters (outlier detection).
//!
//! ```text
//! cargo run --release -p aggclust-bench --bin fig4_correct_k [-- --seed N]
//! ```

use aggclust_baselines::kmeans::{kmeans, KMeansParams};
use aggclust_bench::args::Args;
use aggclust_bench::table::{fmt_f, Table};
use aggclust_core::algorithms::agglomerative::{agglomerative, AgglomerativeParams};
use aggclust_core::clustering::Clustering;
use aggclust_core::instance::CorrelationInstance;
use aggclust_data::synth2d::gaussian_with_noise;
use aggclust_metrics::pair_counting::adjusted_rand_index;

/// A cluster is "main" if it holds at least this fraction of the points.
const MAIN_CLUSTER_FRACTION: f64 = 0.08;

fn main() {
    let args = Args::from_env();
    let _telemetry = aggclust_bench::obs::init_from_args(&args);
    let seed = args.get_or("seed", 9u64);

    println!("Figure 4 — identifying the correct clusters and the outliers\n");
    let mut table = Table::new(&[
        "dataset",
        "n",
        "k found",
        "main clusters",
        "main purity(%)",
        "extra = noise(%)",
        "noise isolated(%)",
        "ARI(main) vs truth",
    ]);

    for k_star in [3usize, 5, 7] {
        let data = gaussian_with_noise(k_star, 100, 0.2, 0.025, seed + k_star as u64);
        let rows = data.rows();

        // Nine k-means clusterings, k = 2..10, each a single randomly
        // seeded run (Matlab-2005 defaults, as in the paper). The run-to-run
        // variability matters: different runs merge *different* cluster
        // pairs when k < k*, so no wrong merge reaches a majority.
        let inputs: Vec<Clustering> = (2..=10)
            .map(|k| {
                kmeans(
                    &rows,
                    &KMeansParams {
                        n_init: 1,
                        init: aggclust_baselines::kmeans::KMeansInit::Random,
                        ..KMeansParams::new(k, seed + k as u64)
                    },
                )
                .clustering
            })
            .collect();

        let instance = CorrelationInstance::from_clusterings(&inputs);
        let oracle = instance.dense_oracle();
        let aggregate = agglomerative(&oracle, AgglomerativeParams::paper());

        // Main clusters: those holding at least MAIN_CLUSTER_FRACTION of
        // the points.
        let n = data.len();
        let sizes = aggregate.cluster_sizes();
        let main: Vec<usize> = (0..aggregate.num_clusters())
            .filter(|&c| sizes[c] as f64 >= MAIN_CLUSTER_FRACTION * n as f64)
            .collect();

        // Purity of main clusters over the *true* (non-noise) points: each
        // main cluster should correspond to exactly one generative cluster.
        // Background noise that happens to fall inside a cluster's region is
        // visually part of it and not counted against purity (the paper's
        // figure makes the same call implicitly).
        let mut main_true_points = 0usize;
        let mut main_majority = 0usize;
        for &c in &main {
            let mut counts: std::collections::HashMap<u32, usize> =
                std::collections::HashMap::new();
            for v in 0..n {
                if aggregate.label(v) as usize == c {
                    if let Some(t) = data.truth[v] {
                        *counts.entry(t).or_insert(0) += 1;
                        main_true_points += 1;
                    }
                }
            }
            main_majority += counts.values().copied().max().unwrap_or(0);
        }
        let main_purity = 100.0 * main_majority as f64 / main_true_points.max(1) as f64;

        // The paper's outlier claim: the small extra clusters contain only
        // background noise.
        let extra_points = (0..n)
            .filter(|&v| !main.contains(&(aggregate.label(v) as usize)))
            .count();
        let extra_noise = (0..n)
            .filter(|&v| data.truth[v].is_none() && !main.contains(&(aggregate.label(v) as usize)))
            .count();
        let extra_noise_pct = 100.0 * extra_noise as f64 / extra_points.max(1) as f64;
        let noise_total = data.truth.iter().filter(|t| t.is_none()).count();
        let noise_isolated = extra_noise;

        // ARI of the main-cluster points only, against the truth.
        let main_rows: Vec<usize> = (0..n)
            .filter(|&v| main.contains(&(aggregate.label(v) as usize)) && data.truth[v].is_some())
            .collect();
        let agg_main = aggregate.restrict(&main_rows);
        let truth_main = Clustering::from_labels(
            // main_rows is filtered to labeled points; 0 is unreachable.
            main_rows
                .iter()
                .map(|&v| data.truth[v].unwrap_or(0))
                .collect(),
        );
        let ari = adjusted_rand_index(&agg_main, &truth_main);

        table.row(vec![
            format!("k* = {k_star} + 20% noise"),
            n.to_string(),
            aggregate.num_clusters().to_string(),
            main.len().to_string(),
            fmt_f(main_purity, 1),
            fmt_f(extra_noise_pct, 1),
            fmt_f(100.0 * noise_isolated as f64 / noise_total.max(1) as f64, 1),
            fmt_f(ari, 3),
        ]);

        if args.flag("plot") {
            println!("\nk* = {k_star}: aggregated clustering");
            print!(
                "{}",
                aggclust_bench::plot::scatter(&data.points, &aggregate, 72, 20)
            );
        }
    }

    print!("{}", table.render());
    println!(
        "\nPaper: \"the main clusters identified are precisely the correct\n\
         clusters; small additional clusters contain only points from the\n\
         background noise, and they can be clearly characterized as outliers\".\n\
         Success shape: main clusters = k*, purity ≈ 100, high noise isolation."
    );
}
