//! Reproduces **Figure 5** of the paper — the SAMPLING scalability
//! experiments.
//!
//! * `--part mushrooms` (Fig 5 left & middle): on the Mushrooms dataset,
//!   sweep the sample size and report the SAMPLING running time as a
//!   fraction of the non-sampling run, together with the classification
//!   error. Paper shape: at sample 1600 the time fraction drops below 50%
//!   while `E_C` matches the non-sampling algorithms; the number of
//!   clusters found in the sample stays ≈ 10.
//! * `--part scale` (Fig 5 right): generate 5 Gaussian clusters + 20%
//!   uniform noise at n ∈ {50K, 100K, 200K} (add 500K and 1M with
//!   `--full`), cluster with k-means for k = 2..10, aggregate with
//!   SAMPLING (sample 1000) and report the wall-clock time. Paper shape:
//!   linear in n, dominated by the assignment phase.
//!
//! ```text
//! cargo run --release -p aggclust-bench --bin fig5_sampling -- \
//!     [--part mushrooms|scale|all] [--seed N] [--full] [--scale-rows N]
//! ```

use aggclust_baselines::kmeans::{kmeans, KMeansParams};
use aggclust_bench::args::Args;
use aggclust_bench::roster::CategoricalExperiment;
use aggclust_bench::table::{fmt_f, Table};
use aggclust_bench::timed;
use aggclust_core::algorithms::sampling::{sampling_with_details, SamplingParams};
use aggclust_core::algorithms::{AgglomerativeParams, Algorithm};
use aggclust_core::clustering::Clustering;
use aggclust_core::instance::{ClusteringsOracle, DistanceOracle};
use aggclust_data::presets::mushrooms_like;
use aggclust_data::synth2d::gaussian_with_noise;
use aggclust_metrics::classification_error;

fn main() {
    let args = Args::from_env();
    let _telemetry = aggclust_bench::obs::init_from_args(&args);
    let part = args.get("part").unwrap_or("all").to_string();
    let seed = args.get_or("seed", 1u64);

    if part == "mushrooms" || part == "all" {
        mushrooms_part(&args, seed);
    }
    if part == "scale" || part == "all" {
        scale_part(&args, seed);
    }
}

/// Figure 5 left & middle: time fraction and E_C vs sample size.
fn mushrooms_part(args: &Args, seed: u64) {
    let rows = args.get_or("rows", 8124usize);
    let (dataset, _) = mushrooms_like(seed);
    let dataset = if rows < dataset.len() {
        dataset.subsample_random(rows, seed)
    } else {
        dataset
    };
    println!(
        "Figure 5 (left, middle) — SAMPLING on Mushrooms (n = {})\n",
        dataset.len()
    );

    let exp = CategoricalExperiment::prepare(dataset);
    let base = Algorithm::Agglomerative(AgglomerativeParams::default());

    // Non-sampling reference run.
    let (reference, ref_secs) = timed(|| base.run(&exp.oracle));
    let ref_ec = 100.0 * classification_error(&reference, exp.dataset.class_labels());
    println!(
        "non-sampling Agglomerative: k = {}, E_C = {:.1}%, {:.2}s\n",
        reference.num_clusters(),
        ref_ec,
        ref_secs
    );

    let mut table = Table::new(&[
        "sample",
        "k (sample)",
        "k (final)",
        "E_C(%)",
        "time(s)",
        "time fraction(%)",
    ]);
    for sample in [100usize, 200, 400, 800, 1600, 3200] {
        if sample > exp.dataset.len() {
            continue;
        }
        let params = SamplingParams::new(sample, base.clone(), seed);
        let (details, secs) = timed(|| sampling_with_details(&exp.oracle, &params));
        let ec = 100.0 * classification_error(&details.clustering, exp.dataset.class_labels());
        table.row(vec![
            sample.to_string(),
            details.sample_clusters.to_string(),
            details.clustering.num_clusters().to_string(),
            fmt_f(ec, 1),
            fmt_f(secs, 2),
            fmt_f(100.0 * secs / ref_secs, 1),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nPaper shape: clusters in the sample stay ≈ 10; at sample 1600 the\n\
         running time is < 50% of non-sampling with matching E_C.\n\
         (Time fraction excludes the O(n²·m) distance-matrix build, which is\n\
         shared; the paper plots the same ratio.)\n"
    );
}

/// Figure 5 right: SAMPLING running time vs dataset size.
fn scale_part(args: &Args, seed: u64) {
    let mut sizes: Vec<usize> = vec![50_000, 100_000, 200_000];
    if args.flag("full") {
        sizes = vec![50_000, 100_000, 500_000, 1_000_000];
    }
    if let Some(n) = args.get("scale-rows") {
        sizes = vec![n.parse().unwrap_or_else(|_| {
            eprintln!("error: could not parse --scale-rows value {n:?}"); // lint:allow-eprintln
            std::process::exit(2);
        })];
    }
    println!("Figure 5 (right) — SAMPLING running time vs dataset size\n");

    let mut table = Table::new(&[
        "n",
        "kmeans(s)",
        "aggregate(s)",
        "assign(s)",
        "k (final)",
        "ARI vs truth",
    ]);
    for &n in &sizes {
        // 5 Gaussian clusters + 20% noise, as in the paper.
        let per_cluster = n / 6; // 5 clusters + 20% noise ≈ n total
        let data = gaussian_with_noise(5, per_cluster, 0.2, 0.02, seed);
        let rows = data.rows();

        // k-means for k = 2..10 (single runs — Matlab defaults).
        let (inputs, kmeans_secs) = timed(|| {
            (2..=10)
                .map(|k| {
                    kmeans(
                        &rows,
                        &KMeansParams {
                            n_init: 1,
                            max_iters: 30,
                            ..KMeansParams::new(k, seed + k as u64)
                        },
                    )
                    .clustering
                })
                .collect::<Vec<Clustering>>()
        });

        // Lazy oracle: distances computed on demand from the 9 label
        // vectors — the full matrix would not fit for n = 1M.
        let oracle = ClusteringsOracle::from_total(&inputs);
        let params = SamplingParams::new(
            1000,
            Algorithm::Agglomerative(AgglomerativeParams::default()),
            seed,
        );
        let (details, agg_secs) = timed(|| sampling_with_details(&oracle, &params));

        // ARI over the clustered (non-noise) points.
        let truth_rows: Vec<usize> = (0..oracle.len())
            .filter(|&v| data.truth[v].is_some())
            .collect();
        let ari = aggclust_metrics::pair_counting::adjusted_rand_index(
            &details.clustering.restrict(&truth_rows),
            // truth_rows is filtered to labeled points; 0 is unreachable.
            &Clustering::from_labels(
                truth_rows
                    .iter()
                    .map(|&v| data.truth[v].unwrap_or(0))
                    .collect(),
            ),
        );

        table.row(vec![
            n.to_string(),
            fmt_f(kmeans_secs, 1),
            fmt_f(agg_secs, 1),
            fmt_f(details.assign_time.as_secs_f64(), 1),
            details.clustering.num_clusters().to_string(),
            fmt_f(ari, 3),
        ]);
        aggclust_core::obs::info!(format!("[n = {n} done]"));
    }
    print!("{}", table.render());
    println!(
        "\nPaper shape: the running time grows linearly with n, dominated by\n\
         assigning the non-sampled points; the five correct clusters are\n\
         identified in the sample."
    );
}
