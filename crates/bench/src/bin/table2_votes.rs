//! Reproduces **Table 2** of the paper: clustering the Votes dataset by
//! aggregating its 16 attribute clusterings, compared against ROCK and
//! LIMBO.
//!
//! ```text
//! cargo run --release -p aggclust-bench --bin table2_votes [-- --seed N] [--uci PATH]
//! ```
//!
//! With `--uci PATH` pointing at `house-votes-84.data` the real UCI data is
//! used; otherwise the calibrated `votes_like` preset (435 rows, 16 binary
//! attributes, 288 missing values).

use aggclust_baselines::limbo::{limbo, LimboParams};
use aggclust_baselines::rock::{rock, RockParams};
use aggclust_bench::args::Args;
use aggclust_bench::roster::CategoricalExperiment;
use aggclust_bench::table::{fmt_ed, fmt_f, Table};
use aggclust_bench::timed;
use aggclust_data::presets::votes_like;

fn main() {
    let args = Args::from_env();
    let _telemetry = aggclust_bench::obs::init_from_args(&args);
    let seed = args.get_or("seed", 1u64);

    let dataset = match args.get("uci") {
        Some(path) => aggclust_data::uci::load_votes(path).unwrap_or_else(|e| {
            eprintln!("error: failed to load UCI votes from {path}: {e}"); // lint:allow-eprintln
            std::process::exit(3);
        }),
        None => votes_like(seed).0,
    };
    println!(
        "Table 2 — Votes dataset ({}, n = {}, {} attributes, {} missing values)\n",
        dataset.name,
        dataset.len(),
        dataset.attributes().len(),
        dataset.num_missing()
    );

    let exp = CategoricalExperiment::prepare(dataset);

    let mut table = Table::new(&["algorithm", "k", "E_C(%)", "E_D", "time(s)"]);
    let class = exp.class_row();
    table.row(vec![
        class.name.clone(),
        class.k.to_string(),
        fmt_f(class.ec_percent, 1),
        fmt_ed(class.ed),
        "-".into(),
    ]);
    table.row(vec![
        "Lower bound".into(),
        "-".into(),
        "-".into(),
        fmt_ed(exp.lower_bound_ed()),
        "-".into(),
    ]);

    for row in exp.standard_rows() {
        table.row(vec![
            row.name.clone(),
            row.k.to_string(),
            fmt_f(row.ec_percent, 1),
            fmt_ed(row.ed),
            fmt_f(row.seconds, 2),
        ]);
    }

    // ROCK with the paper's suggested θ = 0.73 at k = 2.
    let (rock_result, rock_secs) = timed(|| rock(&exp.dataset, RockParams::new(0.73, 2)));
    let row = exp.evaluate("ROCK (k=2, t=0.73)", rock_result, rock_secs);
    table.row(vec![
        row.name.clone(),
        row.k.to_string(),
        fmt_f(row.ec_percent, 1),
        fmt_ed(row.ed),
        fmt_f(row.seconds, 2),
    ]);

    // LIMBO with the paper's φ = 0.0 at k = 2.
    let (limbo_result, limbo_secs) = timed(|| limbo(&exp.dataset, LimboParams::new(0.0, 2)));
    let row = exp.evaluate("LIMBO (k=2, phi=0.0)", limbo_result, limbo_secs);
    table.row(vec![
        row.name.clone(),
        row.k.to_string(),
        fmt_f(row.ec_percent, 1),
        fmt_ed(row.ed),
        fmt_f(row.seconds, 2),
    ]);

    print!("{}", table.render());
    println!(
        "\nPaper (Table 2): class 2/0/34184; lower bound 28805; Best 3/15.1/31211;\n\
         Agglo 2/14.7/30408; Furthest 2/13.3/30259; Balls 2/13.3/30181;\n\
         LocalSearch 2/11.9/29967; ROCK 2/11/32486; LIMBO 2/11/30147."
    );
}
