//! Reproduces **Table 3** (Mushrooms results) and **Table 1** (the
//! confusion matrix of the AGGLOMERATIVE clustering) of the paper.
//!
//! ```text
//! cargo run --release -p aggclust-bench --bin table3_mushrooms \
//!     [-- --scale N] [--seed S] [--uci PATH] [--skip-comparators]
//! ```
//!
//! By default the full 8124-row mushrooms-like preset is used; `--scale N`
//! subsamples N rows for quicker runs. ROCK and LIMBO run at the paper's
//! parameter choices (θ = 0.8, k ∈ {2, 7, 9}; φ = 0.3, k ∈ {2, 7, 9}).

use aggclust_baselines::limbo::{limbo, LimboParams};
use aggclust_baselines::rock::{rock, RockParams};
use aggclust_bench::args::Args;
use aggclust_bench::roster::CategoricalExperiment;
use aggclust_bench::table::{fmt_ed, fmt_f, Table};
use aggclust_bench::timed;
use aggclust_data::presets::mushrooms_like;
use aggclust_metrics::confusion_matrix;

fn main() {
    let args = Args::from_env();
    let _telemetry = aggclust_bench::obs::init_from_args(&args);
    let seed = args.get_or("seed", 1u64);

    let dataset = match args.get("uci") {
        Some(path) => aggclust_data::uci::load_mushrooms(path).unwrap_or_else(|e| {
            eprintln!("error: failed to load UCI mushrooms from {path}: {e}"); // lint:allow-eprintln
            std::process::exit(3);
        }),
        None => mushrooms_like(seed).0,
    };
    let dataset = match args.get("scale") {
        Some(_) => {
            let n = args.get_or("scale", 2000usize);
            dataset.subsample_random(n, seed)
        }
        None => dataset,
    };
    println!(
        "Table 3 — Mushrooms dataset ({}, n = {}, {} attributes, {} missing values)\n",
        dataset.name,
        dataset.len(),
        dataset.attributes().len(),
        dataset.num_missing()
    );

    let (exp, prep_secs) = timed(|| CategoricalExperiment::prepare(dataset));
    aggclust_core::obs::info!(format!("[prepared dense oracle in {prep_secs:.1}s]"));

    let mut table = Table::new(&["algorithm", "k", "E_C(%)", "E_D", "time(s)"]);
    let push = |table: &mut Table, row: &aggclust_bench::roster::RosterRow| {
        table.row(vec![
            row.name.clone(),
            row.k.to_string(),
            fmt_f(row.ec_percent, 1),
            fmt_ed(row.ed),
            fmt_f(row.seconds, 2),
        ]);
    };

    let class = exp.class_row();
    table.row(vec![
        class.name.clone(),
        class.k.to_string(),
        fmt_f(class.ec_percent, 1),
        fmt_ed(class.ed),
        "-".into(),
    ]);
    table.row(vec![
        "Lower bound".into(),
        "-".into(),
        "-".into(),
        fmt_ed(exp.lower_bound_ed()),
        "-".into(),
    ]);

    let mut agglomerative_clustering = None;
    for row in exp.standard_rows() {
        if row.name == "Agglomerative" {
            agglomerative_clustering = Some(row.clustering.clone());
        }
        push(&mut table, &row);
        aggclust_core::obs::info!(format!("[{} done in {:.1}s]", row.name, row.seconds));
    }

    if !args.flag("skip-comparators") {
        for k in [2usize, 7, 9] {
            let (r, secs) = timed(|| rock(&exp.dataset, RockParams::new(0.8, k)));
            let row = exp.evaluate(&format!("ROCK (k={k}, t=0.8)"), r, secs);
            push(&mut table, &row);
            aggclust_core::obs::info!(format!("[ROCK k={k} done in {secs:.1}s]"));
        }
        for k in [2usize, 7, 9] {
            let (r, secs) = timed(|| limbo(&exp.dataset, LimboParams::new(0.3, k)));
            let row = exp.evaluate(&format!("LIMBO (k={k}, phi=0.3)"), r, secs);
            push(&mut table, &row);
            aggclust_core::obs::info!(format!("[LIMBO k={k} done in {secs:.1}s]"));
        }
    }

    print!("{}", table.render());

    // Table 1: confusion matrix of the AGGLOMERATIVE clustering.
    if let Some(c) = agglomerative_clustering {
        let cm = confusion_matrix(&c, exp.dataset.class_labels());
        println!("\nTable 1 — confusion matrix of the Agglomerative clustering:");
        print!("{}", cm.render(&exp.dataset.class_names()));
        println!(
            "\nPaper (Table 1):        c1      c2      c3      c4      c5      c6      c7\n\
             poisonous              808       0    1296    1768       0      36       8\n\
             edible                2864    1056       0      96     192       0       0"
        );
    }

    println!(
        "\nPaper (Table 3): class 2/0/13.537M; lower bound 8.388M; Best 5/35.4/8.542M;\n\
         Agglo 7/11.1/9.990M; Furthest 9/10.4/10.169M; Balls 10/14.2/11.448M;\n\
         LocalSearch 10/10.7/9.929M; ROCK k=2 48.2/16.777M, k=7 25.9/10.568M,\n\
         k=9 9.9/10.312M; LIMBO k=2 10.9/13.011M, k=7 4.2/10.505M, k=9 4.2/10.360M."
    );
}
