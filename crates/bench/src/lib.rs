//! # aggclust-bench
//!
//! The experiment harness: one binary per table/figure of the paper
//! (`fig3_robustness`, `fig4_correct_k`, `table2_votes`, `table3_mushrooms`,
//! `census_sampling`, `fig5_sampling`, `ablations`) plus Criterion
//! micro-benchmarks. This library holds the shared plumbing: a tiny
//! argument parser, aligned table rendering, timing helpers, and the
//! standard algorithm roster used by the table experiments.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod args;
pub mod obs;
pub mod plot;
pub mod roster;
pub mod table;

use std::time::Instant;

/// Run a closure and return its result together with the elapsed seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}
