//! Telemetry bootstrap shared by the experiment binaries.
//!
//! Every bin accepts the same observability options as the CLI:
//! `--log-level LEVEL` (default `info`; the `AGGCLUST_LOG` environment
//! variable sets the default, the flag wins), `--trace-out PATH` (JSONL
//! span/event trace), and `--metrics-out PATH` (final JSON run report of
//! the algorithm counters). The returned guard writes the run report when
//! it drops, so a binary's whole integration is one line:
//!
//! ```ignore
//! let _telemetry = aggclust_bench::obs::init_from_args(&args);
//! ```

use crate::args::Args;
use aggclust_core::obs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Writes the `--metrics-out` run report when dropped (i.e. when the
/// experiment binary finishes normally; error paths that `exit(2)` skip
/// it, matching the CLI's "the report is advisory" stance).
pub struct TelemetryGuard {
    metrics_out: Option<PathBuf>,
}

impl Drop for TelemetryGuard {
    fn drop(&mut self) {
        if let Some(path) = self.metrics_out.take() {
            write_run_report(&path);
        }
    }
}

/// Install the leveled stderr logger (and the optional JSONL trace) from
/// the shared flags, and enable the metrics registry when any
/// machine-readable output was requested. An unparsable value prints a
/// one-line usage error and exits 2, like every other bench flag.
pub fn init_from_args(args: &Args) -> TelemetryGuard {
    let level = match args.get("log-level") {
        Some(spec) => obs::Level::parse(spec).unwrap_or_else(|| {
            eprintln!("error: could not parse --log-level value {spec:?}"); // lint:allow-eprintln
            std::process::exit(2);
        }),
        None => obs::Level::from_env().unwrap_or(obs::Level::Info),
    };
    let stderr_sink: Arc<dyn obs::Collector> = Arc::new(obs::StderrSink::new(level));
    match args.get("trace-out") {
        Some(path) => {
            let trace =
                obs::JsonlSink::to_file(Path::new(path), obs::Level::Trace).unwrap_or_else(|e| {
                    eprintln!("error: could not create trace file {path}: {e}"); // lint:allow-eprintln
                    std::process::exit(2);
                });
            let mut tee = obs::TeeCollector::new();
            tee.push(stderr_sink);
            tee.push(Arc::new(trace));
            obs::install_collector(Arc::new(tee));
        }
        None => obs::install_collector(stderr_sink),
    }
    let metrics_out = args.get("metrics-out").map(PathBuf::from);
    if metrics_out.is_some() || args.get("trace-out").is_some() {
        obs::set_metrics_enabled(true);
    }
    TelemetryGuard { metrics_out }
}

/// Serialize the current metrics registry as the standard run report
/// (`{"schema":"aggclust-run-report-v1","host":{...},"metrics":{...}}`)
/// — the same shape the CLI's `--metrics-out` writes and the bench
/// harness embeds into `BENCH_*.json`. The `host` block records the
/// machine (arch, CPU count, SIMD features and selected tier) so stored
/// benchmark reports are comparable across hosts.
pub fn run_report_json() -> String {
    obs::run_report_json()
}

fn write_run_report(path: &Path) {
    let mut json = run_report_json();
    json.push('\n');
    if let Err(e) = std::fs::write(path, json) {
        obs::warn!(format!(
            "could not write metrics report {}: {e}",
            path.display()
        ));
    }
}
