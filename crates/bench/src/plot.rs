//! Minimal ASCII scatter plots for the Figure-3/4 binaries: clusters render
//! as letters on a character grid, so the paper's panels can be eyeballed
//! directly in the terminal.

use aggclust_core::clustering::Clustering;

/// Character assigned to cluster `i` (cycles after 52 clusters; clusters
/// beyond that render as `*`).
fn glyph(i: usize) -> char {
    const GLYPHS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    if i < GLYPHS.len() {
        GLYPHS[i] as char
    } else {
        '*'
    }
}

/// Render points labeled by a clustering onto a `width × height` grid.
/// Later points overwrite earlier ones in the same cell; empty cells are
/// spaces. Returns a newline-joined string with a border.
///
/// # Panics
/// Panics if `points` and `clustering` disagree, or the grid is empty.
pub fn scatter(
    points: &[[f64; 2]],
    clustering: &Clustering,
    width: usize,
    height: usize,
) -> String {
    assert_eq!(points.len(), clustering.len(), "points/labels mismatch");
    assert!(width >= 2 && height >= 2, "grid too small");
    let mut grid = vec![vec![' '; width]; height];
    if !points.is_empty() {
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for p in points {
            min_x = min_x.min(p[0]);
            max_x = max_x.max(p[0]);
            min_y = min_y.min(p[1]);
            max_y = max_y.max(p[1]);
        }
        let span_x = (max_x - min_x).max(f64::MIN_POSITIVE);
        let span_y = (max_y - min_y).max(f64::MIN_POSITIVE);
        for (v, p) in points.iter().enumerate() {
            let col = (((p[0] - min_x) / span_x) * (width - 1) as f64).round() as usize;
            // Rows top-down: larger y first.
            let row = (((max_y - p[1]) / span_y) * (height - 1) as f64).round() as usize;
            grid[row][col] = glyph(clustering.label(v) as usize);
        }
    }
    let mut out = String::with_capacity((width + 3) * (height + 2));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push_str("+\n");
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push_str("|\n");
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push_str("+\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_expected_corners() {
        let points = [[0.0, 0.0], [10.0, 10.0]];
        let c = Clustering::from_labels(vec![0, 1]);
        let s = scatter(&points, &c, 10, 5);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 7); // border + 5 rows + border
                                    // Cluster 1 (higher y) is on the top row, cluster 0 bottom.
        assert!(lines[1].contains('b'));
        assert!(lines[5].contains('a'));
    }

    #[test]
    fn grid_dimensions_respected() {
        let points = [[1.0, 1.0]];
        let c = Clustering::one_cluster(1);
        let s = scatter(&points, &c, 20, 8);
        for line in s.lines() {
            assert_eq!(line.chars().count(), 22);
        }
    }

    #[test]
    fn many_clusters_cycle_glyphs() {
        assert_eq!(glyph(0), 'a');
        assert_eq!(glyph(26), 'A');
        assert_eq!(glyph(100), '*');
    }

    #[test]
    fn empty_points() {
        let s = scatter(&[], &Clustering::from_labels(vec![]), 5, 3);
        assert!(s.lines().count() == 5);
    }
}
