//! The standard experiment roster for the categorical-data tables
//! (Tables 2 and 3): prepare a correlation-clustering instance from a
//! categorical dataset and evaluate every algorithm on it, producing the
//! paper's `(k, E_C, E_D)` rows.

use aggclust_core::algorithms::{
    AgglomerativeParams, Algorithm, BallsParams, FurthestParams, LocalSearchParams,
};
use aggclust_core::clustering::Clustering;
use aggclust_core::cost::{correlation_cost, lower_bound};
use aggclust_core::instance::{CorrelationInstance, DenseOracle, MissingPolicy};
use aggclust_data::categorical::CategoricalDataset;
use aggclust_data::to_clusterings::attribute_clusterings;
use aggclust_metrics::classification_error;

/// One row of a Table-2/3-style report.
#[derive(Clone, Debug)]
pub struct RosterRow {
    /// Algorithm name as printed.
    pub name: String,
    /// Number of clusters produced.
    pub k: usize,
    /// Classification error in percent.
    pub ec_percent: f64,
    /// Expected disagreement error `E_D`.
    pub ed: f64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// The clustering itself (for follow-up analysis, e.g. Table 1).
    pub clustering: Clustering,
}

/// A prepared categorical-aggregation experiment: the dataset, the
/// attribute clusterings, and the dense correlation oracle.
pub struct CategoricalExperiment {
    /// The dataset under test.
    pub dataset: CategoricalDataset,
    /// The instance built from the attribute clusterings (coin policy ½).
    pub instance: CorrelationInstance,
    /// Precomputed dense distances.
    pub oracle: DenseOracle,
}

impl CategoricalExperiment {
    /// Build the instance (attribute clusterings under the paper's fair-coin
    /// missing-value policy) and precompute the dense oracle.
    pub fn prepare(dataset: CategoricalDataset) -> Self {
        let clusterings = attribute_clusterings(&dataset);
        let instance = CorrelationInstance::from_partial(clusterings, MissingPolicy::Coin(0.5));
        let oracle = instance.dense_oracle();
        CategoricalExperiment {
            dataset,
            instance,
            oracle,
        }
    }

    /// Number of input clusterings `m`.
    pub fn m(&self) -> usize {
        self.instance.num_clusterings()
    }

    /// Evaluate an externally produced clustering into a row.
    ///
    /// `E_D` is the correlation-clustering cost `d(C)` — the expected
    /// number of pair disagreements per input clustering — which is the
    /// scale the paper's Tables 2–3 report (their lower-bound and
    /// class-label rows are consistent with `d(C)`, not `m·d(C)`).
    pub fn evaluate(&self, name: &str, clustering: Clustering, seconds: f64) -> RosterRow {
        let ec = classification_error(&clustering, self.dataset.class_labels());
        let ed = correlation_cost(&self.oracle, &clustering);
        RosterRow {
            name: name.to_string(),
            k: clustering.num_clusters(),
            ec_percent: 100.0 * ec,
            ed,
            seconds,
            clustering,
        }
    }

    /// The "Class labels" reference row: the ground-truth classes viewed as
    /// a clustering.
    pub fn class_row(&self) -> RosterRow {
        let c = Clustering::from_labels(self.dataset.class_labels().to_vec());
        self.evaluate("Class labels", c, 0.0)
    }

    /// The instance-wide `E_D` lower bound (no clustering attains less),
    /// in the same `d(C)` scale as [`CategoricalExperiment::evaluate`].
    pub fn lower_bound_ed(&self) -> f64 {
        lower_bound(&self.oracle)
    }

    /// The BESTCLUSTERING row. Inputs with missing labels are completed
    /// with singleton clusters before being evaluated as candidates (the
    /// candidate must be a total clustering); the winner is the input with
    /// the smallest expected disagreement.
    pub fn best_clustering_row(&self) -> RosterRow {
        let (result, secs) = crate::timed(|| {
            let mut best: Option<(f64, Clustering)> = None;
            for input in self.instance.inputs() {
                let candidate = input.complete_with_singletons();
                let cost = correlation_cost(&self.oracle, &candidate);
                if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                    best = Some((cost, candidate));
                }
            }
            // Unreachable fallback: instances always carry >= 1 input.
            best.map_or_else(
                || Clustering::singletons(self.instance.len()),
                |(_, candidate)| candidate,
            )
        });
        self.evaluate("BestClustering", result, secs)
    }

    /// Run one aggregation algorithm and produce its row.
    pub fn run(&self, name: &str, algorithm: &Algorithm) -> RosterRow {
        let (clustering, secs) = crate::timed(|| algorithm.run(&self.oracle));
        self.evaluate(name, clustering, secs)
    }

    /// Run the full parameter-free roster plus BALLS at the paper's
    /// practical `α = 0.4`, in the paper's table order.
    pub fn standard_rows(&self) -> Vec<RosterRow> {
        let mut rows = vec![self.best_clustering_row()];
        for (name, algo) in standard_roster() {
            rows.push(self.run(&name, &algo));
        }
        rows
    }
}

/// The aggregation algorithms of the paper's tables, with their table
/// names: AGGLOMERATIVE, FURTHEST, BALLS(α = 0.4), LOCALSEARCH.
pub fn standard_roster() -> Vec<(String, Algorithm)> {
    vec![
        (
            "Agglomerative".into(),
            Algorithm::Agglomerative(AgglomerativeParams::default()),
        ),
        (
            "Furthest".into(),
            Algorithm::Furthest(FurthestParams::default()),
        ),
        (
            "Balls (a=0.4)".into(),
            Algorithm::Balls(BallsParams::practical()),
        ),
        (
            "LocalSearch".into(),
            Algorithm::LocalSearch(LocalSearchParams::default()),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggclust_data::presets::votes_like;

    #[test]
    fn roster_runs_on_small_votes_sample() {
        let (ds, _) = votes_like(3);
        let ds = ds.subsample_random(80, 1);
        let exp = CategoricalExperiment::prepare(ds);
        assert_eq!(exp.m(), 16);
        let rows = exp.standard_rows();
        assert_eq!(rows.len(), 5);
        let lb = exp.lower_bound_ed();
        for row in &rows {
            assert!(row.ed >= lb - 1e-6, "{} beat the lower bound", row.name);
            assert!(row.k >= 1);
            assert!((0.0..=100.0).contains(&row.ec_percent));
        }
        // The class-label row has E_C = 0 by definition.
        let class = exp.class_row();
        assert_eq!(class.ec_percent, 0.0);
    }
}
