//! Aligned plain-text table rendering for the experiment binaries, matching
//! the row/column layout of the paper's tables.

/// A simple column-aligned table builder.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with padded columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for c in 0..cols {
                if c > 0 {
                    out.push_str("  ");
                }
                // First column left-aligned, the rest right-aligned.
                if c == 0 {
                    out.push_str(&format!("{:<width$}", cells[c], width = widths[c]));
                } else {
                    out.push_str(&format!("{:>width$}", cells[c], width = widths[c]));
                }
            }
            out.push('\n');
        };
        render_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }
}

/// Format a float with the given number of decimals.
pub fn fmt_f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Format a disagreement error the way the paper does: plain integers below
/// one million, `x.yyy M` above.
pub fn fmt_ed(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.3} M", v / 1e6)
    } else {
        format!("{}", v.round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "k", "E_C(%)"]);
        t.row(vec!["Agglomerative".into(), "2".into(), "14.7".into()]);
        t.row(vec!["Balls".into(), "10".into(), "9.9".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[2].starts_with("Agglomerative"));
    }

    #[test]
    fn ed_formatting() {
        assert_eq!(fmt_ed(34184.0), "34184");
        assert_eq!(fmt_ed(13_537_000.0), "13.537 M");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }
}
