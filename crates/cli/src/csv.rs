//! Label-matrix CSV I/O for the CLI.
//!
//! The input format is one row per object and one column per input
//! clustering; cells are arbitrary label tokens (interned per column) and
//! `?` (or an empty cell) marks a missing label. An optional header row is
//! auto-detected: if every cell of the first row is unique within its
//! column's remaining values... that is unreliable, so instead a header is
//! assumed when `--header` is passed by the caller.

use aggclust_core::clustering::{Clustering, PartialClustering};
use std::collections::HashMap;
use std::fmt;

/// Errors from CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Ragged rows.
    Shape {
        /// 1-based line number.
        line: usize,
        /// 1-based column where the row diverges from the expected shape
        /// (the first missing or first surplus field).
        column: usize,
        /// Expected column count.
        expected: usize,
        /// Found column count.
        found: usize,
    },
    /// No data rows.
    Empty,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Shape {
                line,
                column,
                expected,
                found,
            } => write!(
                f,
                "line {line}, column {column}: expected {expected} columns, found {found}"
            ),
            CsvError::Empty => write!(f, "no data rows"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<CsvError> for aggclust_core::AggError {
    fn from(e: CsvError) -> Self {
        match e {
            CsvError::Shape {
                line,
                column,
                expected,
                found,
            } => aggclust_core::AggError::Parse {
                line,
                column: Some(column),
                reason: format!("expected {expected} columns, found {found}"),
            },
            CsvError::Empty => aggclust_core::AggError::Parse {
                line: 0,
                column: None,
                reason: "no data rows".to_string(),
            },
        }
    }
}

/// Parse a label matrix: columns become [`PartialClustering`]s.
///
/// `separator` is a single character (`,` for CSV, `\t` for TSV);
/// `skip_header` drops the first non-empty line.
pub fn parse_label_matrix(
    text: &str,
    separator: char,
    skip_header: bool,
) -> Result<Vec<PartialClustering>, CsvError> {
    let mut rows: Vec<Vec<&str>> = Vec::new();
    let mut expected = None;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(separator).map(str::trim).collect();
        match expected {
            None => expected = Some(fields.len()),
            Some(e) if e != fields.len() => {
                return Err(CsvError::Shape {
                    line: lineno + 1,
                    column: e.min(fields.len()) + 1,
                    expected: e,
                    found: fields.len(),
                })
            }
            _ => {}
        }
        rows.push(fields);
    }
    if skip_header && !rows.is_empty() {
        rows.remove(0);
    }
    if rows.is_empty() {
        return Err(CsvError::Empty);
    }
    let columns = rows[0].len();
    let mut out = Vec::with_capacity(columns);
    for col in 0..columns {
        let mut intern: HashMap<&str, u32> = HashMap::new();
        let labels: Vec<Option<u32>> = rows
            .iter()
            .map(|row| {
                let cell = row[col];
                if cell == "?" || cell.is_empty() {
                    None
                } else {
                    let next = intern.len() as u32;
                    Some(*intern.entry(cell).or_insert(next))
                }
            })
            .collect();
        out.push(PartialClustering::from_labels(labels));
    }
    Ok(out)
}

/// Parse a single-column label file into a total clustering (for
/// `aggclust eval --candidate`). Missing markers are not allowed.
pub fn parse_single_clustering(
    text: &str,
    separator: char,
    skip_header: bool,
) -> Result<Clustering, CsvError> {
    let partials = parse_label_matrix(text, separator, skip_header)?;
    // Use the first column; complete would be wrong for a candidate, so
    // missing cells become singletons (documented).
    Ok(partials[0].complete_with_singletons())
}

/// Render a clustering as one label per line.
pub fn render_labels(c: &Clustering) -> String {
    let mut out = String::with_capacity(c.len() * 4);
    for v in 0..c.len() {
        out.push_str(&c.label(v).to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_columns_into_clusterings() {
        let text = "a,x\na,y\nb,x\nb,?\n";
        let cs = parse_label_matrix(text, ',', false).unwrap();
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].num_clusters(), 2);
        assert_eq!(cs[0].label(0), cs[0].label(1));
        assert_ne!(cs[0].label(0), cs[0].label(2));
        assert_eq!(cs[1].label(3), None);
        assert_eq!(cs[1].num_missing(), 1);
    }

    #[test]
    fn header_skipping() {
        let text = "alg1,alg2\n0,0\n0,1\n";
        let cs = parse_label_matrix(text, ',', true).unwrap();
        assert_eq!(cs[0].len(), 2);
    }

    #[test]
    fn tsv_separator() {
        let text = "0\t1\n0\t1\n1\t0\n";
        let cs = parse_label_matrix(text, '\t', false).unwrap();
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].len(), 3);
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = parse_label_matrix("0,1\n0\n", ',', false).unwrap_err();
        assert!(matches!(
            err,
            CsvError::Shape {
                line: 2,
                column: 2,
                ..
            }
        ));
        assert_eq!(
            err.to_string(),
            "line 2, column 2: expected 2 columns, found 1"
        );
        let long = parse_label_matrix("0,1\n0,1,2\n", ',', false).unwrap_err();
        assert!(matches!(
            long,
            CsvError::Shape {
                line: 2,
                column: 3,
                ..
            }
        ));
    }

    #[test]
    fn csv_errors_convert_to_agg_errors() {
        let err = parse_label_matrix("0,1\n0\n", ',', false).unwrap_err();
        let agg: aggclust_core::AggError = err.into();
        assert!(matches!(
            agg,
            aggclust_core::AggError::Parse {
                line: 2,
                column: Some(2),
                ..
            }
        ));
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(
            parse_label_matrix("", ',', false),
            Err(CsvError::Empty)
        ));
        assert!(matches!(
            parse_label_matrix("h1,h2\n", ',', true),
            Err(CsvError::Empty)
        ));
    }

    #[test]
    fn labels_round_trip() {
        let c = Clustering::from_labels(vec![0, 1, 0, 2]);
        let text = render_labels(&c);
        let parsed = parse_single_clustering(&text, ',', false).unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn empty_cells_are_missing() {
        let text = "0,\n1,2\n";
        let cs = parse_label_matrix(text, ',', false).unwrap();
        assert_eq!(cs[1].label(0), None);
    }
}
