//! Library surface of the `aggclust` CLI.
//!
//! Exposes the label-matrix CSV parser so integration tests (and other
//! tooling) can exercise the exact parsing code the binary runs, without
//! shelling out.

#![warn(clippy::all)]

pub mod csv;
