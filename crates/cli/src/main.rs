//! `aggclust` — clustering aggregation from the command line.
//!
//! ```text
//! aggclust aggregate --input clusterings.csv [options]   # find consensus
//! aggclust eval --input clusterings.csv --candidate labels.txt
//! aggclust diagnose --input clusterings.csv              # consensus health
//! aggclust demo                                          # paper Figure 1
//! ```
//!
//! The input is a label matrix: one row per object, one column per input
//! clustering, `?` or empty for a missing label. See `aggclust help`.

mod csv;

use aggclust_bench::args::Args;
use aggclust_core::algorithms::{
    AgglomerativeParams, Algorithm, AnnealingParams, BallsParams, FurthestParams,
    LocalSearchParams, PivotParams,
};
use aggclust_core::clustering::PartialClustering;
use aggclust_core::consensus::ConsensusBuilder;
use aggclust_core::instance::MissingPolicy;
use std::process::ExitCode;

const HELP: &str = "\
aggclust — clustering aggregation (Gionis, Mannila, Tsaparas; ICDE 2005)

USAGE:
    aggclust <command> [options]

COMMANDS:
    aggregate   Aggregate the input clusterings into a consensus clustering
    eval        Evaluate a candidate clustering against the inputs
    diagnose    Report consensus health and likely outliers
    demo        Run the paper's Figure-1 worked example
    help        Show this message

COMMON OPTIONS:
    --input PATH          label-matrix file (rows = objects, columns =
                          clusterings, '?' or empty = missing label)
    --separator CHAR      field separator (default ',')
    --header              skip the first line
    --missing POLICY      coin (default) | ignore

AGGREGATE OPTIONS:
    --algorithm NAME      agglomerative (default) | balls | furthest |
                          local-search | pivot | annealing
    --alpha X             Balls threshold (default 0.4)
    --no-refine           skip the LocalSearch refinement pass
    --sample N            force SAMPLING with this sample size
    --seed N              RNG seed (default 0)
    --output PATH         write one label per line (default: stdout)

EVAL OPTIONS:
    --candidate PATH      single-column label file to evaluate
";

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().unwrap_or_else(|| "help".to_string());
    let args = Args::parse(argv);
    let result = match command.as_str() {
        "aggregate" => cmd_aggregate(&args),
        "eval" => cmd_eval(&args),
        "diagnose" => cmd_diagnose(&args),
        "demo" => {
            cmd_demo();
            Ok(())
        }
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; try `aggclust help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn load_inputs(args: &Args) -> Result<Vec<PartialClustering>, String> {
    let path = args
        .get("input")
        .ok_or_else(|| "--input PATH is required".to_string())?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let separator = parse_separator(args)?;
    csv::parse_label_matrix(&text, separator, args.flag("header"))
        .map_err(|e| format!("parsing {path}: {e}"))
}

fn parse_separator(args: &Args) -> Result<char, String> {
    match args.get("separator") {
        None => Ok(','),
        Some("\\t") | Some("tab") => Ok('\t'),
        Some(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
        Some(s) => Err(format!("--separator must be one character, got {s:?}")),
    }
}

fn parse_policy(args: &Args) -> Result<MissingPolicy, String> {
    match args.get("missing").unwrap_or("coin") {
        "coin" => Ok(MissingPolicy::Coin(0.5)),
        "ignore" => Ok(MissingPolicy::Ignore),
        other => Err(format!("--missing must be coin or ignore, got {other:?}")),
    }
}

fn parse_algorithm(args: &Args) -> Result<Algorithm, String> {
    let seed = args.get_or("seed", 0u64);
    Ok(match args.get("algorithm").unwrap_or("agglomerative") {
        "agglomerative" => Algorithm::Agglomerative(AgglomerativeParams::default()),
        "balls" => Algorithm::Balls(BallsParams::with_alpha(args.get_or("alpha", 0.4))),
        "furthest" => Algorithm::Furthest(FurthestParams::default()),
        "local-search" => Algorithm::LocalSearch(LocalSearchParams::default()),
        "pivot" => Algorithm::Pivot(PivotParams::randomized(seed, 9)),
        "annealing" => Algorithm::Annealing(AnnealingParams {
            seed,
            ..Default::default()
        }),
        other => return Err(format!("unknown --algorithm {other:?}")),
    })
}

fn cmd_aggregate(args: &Args) -> Result<(), String> {
    let inputs = load_inputs(args)?;
    let n = inputs[0].len();
    let mut builder = ConsensusBuilder::new()
        .algorithm(parse_algorithm(args)?)
        .missing_policy(parse_policy(args)?)
        .refine(!args.flag("no-refine"))
        .seed(args.get_or("seed", 0u64));
    if let Some(sample) = args.get("sample") {
        let sample: usize = sample
            .parse()
            .map_err(|_| "--sample must be an integer".to_string())?;
        builder = builder.sampling_threshold(0).sample_size(sample);
    }
    let result = builder.aggregate_partial(inputs);
    eprintln!(
        "aggregated {} objects into {} clusters{}",
        n,
        result.clustering.num_clusters(),
        if result.sampled {
            " (sampled)".to_string()
        } else {
            format!(
                " (cost {:.3}, lower bound {:.3})",
                result.cost,
                result.lower_bound.unwrap_or(f64::NAN)
            )
        }
    );
    let rendered = csv::render_labels(&result.clustering);
    match args.get("output") {
        Some(path) => {
            std::fs::write(path, rendered).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("labels written to {path}");
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<(), String> {
    let inputs = load_inputs(args)?;
    let candidate_path = args
        .get("candidate")
        .ok_or_else(|| "--candidate PATH is required".to_string())?;
    let text =
        std::fs::read_to_string(candidate_path).map_err(|e| format!("{candidate_path}: {e}"))?;
    let candidate =
        csv::parse_single_clustering(&text, parse_separator(args)?, args.flag("header"))
            .map_err(|e| format!("parsing {candidate_path}: {e}"))?;
    if candidate.len() != inputs[0].len() {
        return Err(format!(
            "candidate covers {} objects, inputs cover {}",
            candidate.len(),
            inputs[0].len()
        ));
    }
    let instance =
        aggclust_core::instance::CorrelationInstance::from_partial(inputs, parse_policy(args)?);
    let oracle = instance.dense_oracle();
    let cost = aggclust_core::cost::correlation_cost(&oracle, &candidate);
    let lb = aggclust_core::cost::lower_bound(&oracle);
    println!("objects:          {}", candidate.len());
    println!("clusters:         {}", candidate.num_clusters());
    println!("cost d(C):        {cost:.4}");
    println!("lower bound:      {lb:.4}");
    println!(
        "gap to bound:     {:.2}%",
        if lb > 0.0 {
            100.0 * (cost - lb) / lb
        } else {
            0.0
        }
    );
    println!(
        "E_D = m·d(C):     {:.1}",
        cost * instance.num_clusterings() as f64
    );
    Ok(())
}

fn cmd_diagnose(args: &Args) -> Result<(), String> {
    let inputs = load_inputs(args)?;
    let instance =
        aggclust_core::instance::CorrelationInstance::from_partial(inputs, parse_policy(args)?);
    let oracle = instance.dense_oracle();
    let hist = aggclust_metrics::stability::agreement_histogram(&oracle, 10);
    let total: u64 = hist.iter().sum();
    println!("pairwise distance histogram (10 bins over [0,1]):");
    for (b, &count) in hist.iter().enumerate() {
        let share = if total > 0 {
            100.0 * count as f64 / total as f64
        } else {
            0.0
        };
        let bar = "#".repeat((share / 2.0).round() as usize);
        println!(
            "  [{:.1},{:.1}) {:>7} {:>5.1}% {}",
            b as f64 / 10.0,
            (b + 1) as f64 / 10.0,
            count,
            share,
            bar
        );
    }
    let ambiguous = aggclust_metrics::stability::ambiguous_pair_fraction(&oracle, 0.25, 0.75);
    println!(
        "\nambiguous pairs (X in (0.25, 0.75)): {:.1}%",
        100.0 * ambiguous
    );
    let outliers = aggclust_metrics::stability::top_outliers(&oracle, 10.min(oracle_len(&oracle)));
    println!("top outlier candidates (object indices): {outliers:?}");
    Ok(())
}

fn oracle_len(o: &impl aggclust_core::instance::DistanceOracle) -> usize {
    o.len()
}

fn cmd_demo() {
    use aggclust_core::clustering::Clustering;
    let inputs = vec![
        Clustering::from_labels(vec![0, 0, 1, 1, 2, 2]),
        Clustering::from_labels(vec![0, 1, 0, 1, 2, 3]),
        Clustering::from_labels(vec![0, 1, 0, 1, 2, 2]),
    ];
    let result = aggclust_core::consensus::aggregate(&inputs);
    println!("Figure 1 of the paper: 6 objects, 3 input clusterings.");
    println!(
        "consensus: {:?} with {} total disagreements (paper: 5)",
        result.clustering.labels(),
        result.disagreements
    );
}
