//! `aggclust` — clustering aggregation from the command line.
//!
//! ```text
//! aggclust aggregate --input clusterings.csv [options]   # find consensus
//! aggclust eval --input clusterings.csv --candidate labels.txt
//! aggclust diagnose --input clusterings.csv              # consensus health
//! aggclust demo                                          # paper Figure 1
//! ```
//!
//! The input is a label matrix: one row per object, one column per input
//! clustering, `?` or empty for a missing label. See `aggclust help`.

use aggclust_bench::args::Args;
use aggclust_cli::csv;
use aggclust_core::algorithms::{
    AgglomerativeParams, Algorithm, AnnealingParams, BallsParams, FurthestParams,
    LocalSearchParams, PivotParams,
};
use aggclust_core::clustering::PartialClustering;
use aggclust_core::consensus::ConsensusBuilder;
use aggclust_core::failpoint::{self, FaultPlan};
use aggclust_core::instance::MissingPolicy;
use aggclust_core::iofs;
use aggclust_core::obs;
use aggclust_core::snapshot::{load_snapshot, RetryPolicy, SnapshotLoad};
use aggclust_core::spill::cleanup_spill_dir;
use aggclust_core::{AggError, CancelToken, RunBudget, RunStatus};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const HELP: &str = "\
aggclust — clustering aggregation (Gionis, Mannila, Tsaparas; ICDE 2005)

USAGE:
    aggclust <command> [options]

COMMANDS:
    aggregate   Aggregate the input clusterings into a consensus clustering
    eval        Evaluate a candidate clustering against the inputs
    diagnose    Report consensus health and likely outliers
    demo        Run the paper's Figure-1 worked example
    help        Show this message

COMMON OPTIONS:
    --input PATH          label-matrix file (rows = objects, columns =
                          clusterings, '?' or empty = missing label)
    --separator CHAR      field separator (default ',')
    --header              skip the first line
    --missing POLICY      coin (default, p = 0.5) | coin:P | ignore
    --threads N           worker threads for the O(n^2) kernels
                          (overrides RAYON_NUM_THREADS; default: auto)
    --log-level LEVEL     stderr verbosity: error | warn | info (default) |
                          debug | trace; the AGGCLUST_LOG environment
                          variable sets the default, the flag wins
    --trace-out PATH      write a machine-readable JSONL trace (one JSON
                          object per span/event) alongside the run
    --progress            render rate-limited progress heartbeats (phase,
                          done/total, ETA, tracked memory, remaining
                          deadline) as single stderr lines, without the
                          debug-level firehose
    --metrics-out PATH    write a JSON run report of the algorithm counters
                          (oracle evaluations, moves, merges, checkpoints)
    --fault-plan SPEC     arm deterministic fault injection for this run
                          (robustness testing): comma-separated clauses
                          like snapshot.rename=io_error:nth=3 or
                          spill.write=torn:prob=0.25:seed=7; see DESIGN.md
                          section 6i for the site catalog and grammar. The
                          AGGCLUST_FAULTS environment variable sets the
                          default, the flag wins

AGGREGATE OPTIONS:
    --algorithm NAME      agglomerative (default) | balls | furthest |
                          local-search | pivot | annealing
    --alpha X             Balls threshold (default 0.4)
    --no-refine           skip the LocalSearch refinement pass
    --exact               prefer exact branch-and-bound when n <= 24
                          (degrades to Balls with a warning when larger)
    --sample N            force SAMPLING with this sample size
    --sampling-threshold N
                          switch to SAMPLING above this many objects
                          (default 6000); raise it to keep large instances
                          on the dense/spilled path
    --seed N              RNG seed (default 0)
    --deadline-ms N       wall-clock run budget; on expiry the best
                          clustering found so far is still written
    --max-iters N         iteration budget (same anytime semantics)
    --mem-budget-mb N     tracked-memory cap; runs that would exceed it
                          degrade (dense matrix -> disk spill -> lazy
                          oracle / sampling) instead of allocating past
                          the cap
    --spill-dir PATH      directory for out-of-core condensed-matrix tiles
                          when the memory cap refuses the dense matrix
                          (checksummed frames, bit-identical distances;
                          default: '<checkpoint>.spill' when --checkpoint
                          is set, otherwise spilling is off); tiles are
                          removed on converged success and valid orphans
                          are reclaimed on --resume
    --checkpoint PATH     crash-safe checkpoint file, written atomically
                          while the run is in flight and deleted on
                          converged success; SIGINT also flushes a final
                          checkpoint before the anytime exit
    --checkpoint-every-ms N
                          minimum interval between checkpoints (default 250)
    --resume              resume from --checkpoint PATH if it holds a valid
                          snapshot (corrupt or missing: start fresh with a
                          warning); a resumed run produces bit-identical
                          labels to an uninterrupted one
    --output PATH         write one label per line (default: stdout)

EVAL OPTIONS:
    --candidate PATH      single-column label file to evaluate

EXIT CODES:
    0   success
    2   usage error (unknown command, bad flag or parameter value)
    3   I/O error reading or writing a file
    4   parse error in an input file (reported with line and column)
    5   invalid instance (e.g. inputs disagree on the object count)
    6   degenerate input (nothing to aggregate)
    7   run budget exceeded (anytime: best-so-far labels were written)
    8   cancelled (Ctrl-C: best-so-far labels and a final checkpoint
        were written)
    9   memory budget exceeded with no degraded mode available
";

/// A CLI failure, mapped one-to-one onto the exit codes documented in
/// `aggclust help`. Every error prints as a single human-readable line —
/// never a backtrace.
#[derive(Debug)]
enum CliError {
    /// Exit 2: bad command line.
    Usage(String),
    /// Exit 3: filesystem I/O failed.
    Io(String),
    /// Exit 4: an input file did not parse.
    Parse(String),
    /// Exit 5: inputs are structurally invalid.
    InvalidInstance(String),
    /// Exit 6: input is degenerate (empty, all-missing, …).
    Degenerate(String),
    /// Exit 7: the run budget expired (anytime output was still produced).
    BudgetExceeded(String),
    /// Exit 8: the run was cancelled.
    Cancelled(String),
    /// Exit 9: the memory budget was exceeded and no degraded mode applied.
    Memory(String),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Io(_) => 3,
            CliError::Parse(_) => 4,
            CliError::InvalidInstance(_) => 5,
            CliError::Degenerate(_) => 6,
            CliError::BudgetExceeded(_) => 7,
            CliError::Cancelled(_) => 8,
            CliError::Memory(_) => 9,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m)
            | CliError::Io(m)
            | CliError::Parse(m)
            | CliError::InvalidInstance(m)
            | CliError::Degenerate(m)
            | CliError::BudgetExceeded(m)
            | CliError::Cancelled(m)
            | CliError::Memory(m) => m,
        }
    }
}

impl From<AggError> for CliError {
    fn from(e: AggError) -> Self {
        let message = e.to_string();
        match e {
            AggError::InvalidParameter { .. } => CliError::Usage(message),
            AggError::Parse { .. } => CliError::Parse(message),
            AggError::InvalidInstance { .. } | AggError::TooLarge { .. } => {
                CliError::InvalidInstance(message)
            }
            AggError::Degenerate { .. } => CliError::Degenerate(message),
            AggError::BudgetExceeded { .. } => CliError::BudgetExceeded(message),
            AggError::Cancelled { .. } => CliError::Cancelled(message),
            AggError::MemoryExceeded { .. } => CliError::Memory(message),
        }
    }
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().unwrap_or_else(|| "help".to_string());
    let args = Args::parse(argv);
    let metrics_out = match setup_telemetry(&args) {
        Ok(path) => path,
        Err(e) => {
            eprintln!("error: {}", e.message()); // lint:allow-eprintln
            return ExitCode::from(e.exit_code());
        }
    };
    // Armed for the whole process so every site the run touches is in
    // scope; dropping the guard at exit disarms them again.
    let _fault_guard = match arm_fault_plan(&args) {
        Ok(guard) => guard,
        Err(e) => {
            eprintln!("error: {}", e.message()); // lint:allow-eprintln
            return ExitCode::from(e.exit_code());
        }
    };
    let run = || match command.as_str() {
        "aggregate" => cmd_aggregate(&args),
        "eval" => cmd_eval(&args),
        "diagnose" => cmd_diagnose(&args),
        "demo" => {
            cmd_demo();
            Ok(())
        }
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command {other:?}; try `aggclust help`"
        ))),
    };
    // --threads takes precedence over RAYON_NUM_THREADS, which in turn
    // beats the detected core count (see aggclust_core::parallel).
    let result = match args.threads() {
        Some(t) => aggclust_core::parallel::with_num_threads(t, run),
        None => run(),
    };
    // The report covers the whole process (one run per invocation), so it
    // is written even when the run tripped its budget — the counters then
    // describe the partial work, which is exactly what a post-mortem wants.
    if let Some(path) = &metrics_out {
        write_metrics_report(path);
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message()); // lint:allow-eprintln
            ExitCode::from(e.exit_code())
        }
    }
}

/// Install the stderr logger (and the optional JSONL trace sink) and switch
/// the metrics registry on when a machine-readable output was requested.
/// Returns the `--metrics-out` path, if any.
fn setup_telemetry(args: &Args) -> Result<Option<PathBuf>, CliError> {
    let level = match args.get("log-level") {
        Some(spec) => obs::Level::parse(spec).ok_or_else(|| {
            CliError::Usage(format!(
                "--log-level must be error, warn, info, debug or trace, got {spec:?}"
            ))
        })?,
        None => obs::Level::from_env().unwrap_or(obs::Level::Info),
    };
    let stderr_sink: Arc<dyn obs::Collector> = Arc::new(obs::StderrSink::new(level));
    let mut extra_sinks: Vec<Arc<dyn obs::Collector>> = Vec::new();
    if let Some(path) = args.get("trace-out") {
        let trace = obs::JsonlSink::to_file(Path::new(path), obs::Level::Trace)
            .map_err(|e| CliError::Io(format!("creating trace file {path}: {e}")))?;
        extra_sinks.push(Arc::new(trace));
    }
    // The heartbeat renderer rides next to the human logger: it only
    // reacts to `progress` events, so the stderr log stays at `level`.
    if args.flag("progress") {
        extra_sinks.push(Arc::new(obs::ProgressSink::new()));
    }
    if extra_sinks.is_empty() {
        obs::install_collector(stderr_sink);
    } else {
        let mut tee = obs::TeeCollector::new();
        tee.push(stderr_sink);
        for sink in extra_sinks {
            tee.push(sink);
        }
        obs::install_collector(Arc::new(tee));
    }
    let metrics_out = args.get("metrics-out").map(PathBuf::from);
    if metrics_out.is_some() || args.get("trace-out").is_some() {
        obs::set_metrics_enabled(true);
    }
    Ok(metrics_out)
}

/// Write the final run report: host metadata (arch, CPU count, SIMD
/// features and selected kernel tier) plus every counter, gauge, and
/// histogram in the metrics registry as one stable JSON object. Failures
/// are reported but never change the exit code — the labels are the
/// contract, the report is advisory.
fn write_metrics_report(path: &Path) {
    let mut json = obs::run_report_json();
    json.push('\n');
    if let Err(e) = iofs::write("cli.metrics", path, json) {
        obs::warn!(format!(
            "could not write metrics report {}: {e}",
            path.display()
        ));
    }
}

/// Parse the fault plan from `--fault-plan` (the flag wins) or the
/// `AGGCLUST_FAULTS` environment variable and arm it. `None` when neither
/// is set; a malformed spec is a usage error, never a silent no-op.
fn arm_fault_plan(args: &Args) -> Result<Option<failpoint::ArmedGuard>, CliError> {
    let plan = match args.get("fault-plan") {
        Some(spec) => Some(FaultPlan::parse(spec)?),
        None => FaultPlan::from_env()?,
    };
    Ok(plan.map(failpoint::arm))
}

/// Install a SIGINT handler that flips `token`, so Ctrl-C turns into a
/// cooperative cancellation: the algorithms stop at the next budget poll,
/// write a final checkpoint if one is configured, and the CLI still emits
/// the best-so-far labels before exiting 8.
///
/// The handler itself only stores to an atomic (the only thing that is
/// async-signal-safe); a small watcher thread translates the flag into the
/// `CancelToken` from normal code.
#[cfg(unix)]
fn install_sigint_cancel(token: CancelToken) {
    use std::sync::atomic::{AtomicBool, Ordering};
    static SIGINT_SEEN: AtomicBool = AtomicBool::new(false);
    extern "C" fn on_sigint(_signum: i32) {
        SIGINT_SEEN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    // SAFETY: `signal(2)` is declared with the signature libc gives it and
    // `on_sigint` is an `extern "C" fn(i32)` that only stores to an atomic,
    // which is async-signal-safe. Installing a handler has no memory-safety
    // preconditions beyond a valid function pointer.
    unsafe {
        signal(SIGINT, on_sigint as *const () as usize);
    }
    std::thread::spawn(move || loop {
        if SIGINT_SEEN.load(Ordering::SeqCst) {
            token.cancel();
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    });
}

#[cfg(not(unix))]
fn install_sigint_cancel(_token: CancelToken) {}

/// Attempts and backoff base for transient-I/O retries (dataset reads;
/// checkpoint writes use the same policy inside `Checkpointer`).
const IO_RETRY_ATTEMPTS: u32 = 3;
const IO_RETRY_BASE: Duration = Duration::from_millis(10);

fn load_inputs(
    args: &Args,
    budget: Option<&RunBudget>,
) -> Result<Vec<PartialClustering>, CliError> {
    let path = args
        .get("input")
        .ok_or_else(|| CliError::Usage("--input PATH is required".to_string()))?;
    let policy = RetryPolicy {
        attempts: IO_RETRY_ATTEMPTS,
        base: IO_RETRY_BASE,
        jitter: true,
    };
    let text = policy
        .run_supervised(0x5eed_da7a, budget, || {
            iofs::read_to_string("cli.input", Path::new(path))
        })
        .map_err(|e| CliError::Io(format!("reading {path}: {e}")))?;
    let separator = parse_separator(args)?;
    csv::parse_label_matrix(&text, separator, args.flag("header"))
        .map_err(|e| CliError::Parse(format!("parsing {path}: {e}")))
}

fn parse_separator(args: &Args) -> Result<char, CliError> {
    match args.get("separator") {
        None => Ok(','),
        Some("\\t") | Some("tab") => Ok('\t'),
        Some(s) => {
            let mut chars = s.chars();
            match (chars.next(), chars.next()) {
                (Some(c), None) => Ok(c),
                _ => Err(CliError::Usage(format!(
                    "--separator must be one character, got {s:?}"
                ))),
            }
        }
    }
}

fn parse_policy(args: &Args) -> Result<MissingPolicy, CliError> {
    let spec = args.get("missing").unwrap_or("coin");
    match spec {
        "coin" => Ok(MissingPolicy::Coin(0.5)),
        "ignore" => Ok(MissingPolicy::Ignore),
        _ => match spec.strip_prefix("coin:") {
            Some(p) => {
                let p: f64 = p.parse().map_err(|_| {
                    CliError::Usage(format!("--missing coin:P needs a number, got {spec:?}"))
                })?;
                // try_coin rejects NaN and p outside [0, 1] as a typed error.
                Ok(MissingPolicy::try_coin(p)?)
            }
            None => Err(CliError::Usage(format!(
                "--missing must be coin, coin:P or ignore, got {spec:?}"
            ))),
        },
    }
}

fn parse_algorithm(args: &Args) -> Result<Algorithm, CliError> {
    let seed = args.get_or("seed", 0u64);
    Ok(match args.get("algorithm").unwrap_or("agglomerative") {
        "agglomerative" => Algorithm::Agglomerative(AgglomerativeParams::default()),
        "balls" => Algorithm::Balls(BallsParams::with_alpha(args.get_or("alpha", 0.4))),
        "furthest" => Algorithm::Furthest(FurthestParams::default()),
        "local-search" => Algorithm::LocalSearch(LocalSearchParams::default()),
        "pivot" => Algorithm::Pivot(PivotParams::randomized(seed, 9)),
        "annealing" => Algorithm::Annealing(AnnealingParams {
            seed,
            ..Default::default()
        }),
        other => return Err(CliError::Usage(format!("unknown --algorithm {other:?}"))),
    })
}

fn cmd_aggregate(args: &Args) -> Result<(), CliError> {
    let cancel = CancelToken::new();
    install_sigint_cancel(cancel.clone());
    // One budget for the whole run: dataset-read retries, checkpoint-write
    // retries, and the solve itself all draw down the same deadline.
    let budget = args.run_budget().with_cancel_token(cancel);
    let inputs = load_inputs(args, Some(&budget))?;
    let n = inputs[0].len();
    let mut builder = ConsensusBuilder::new()
        .algorithm(parse_algorithm(args)?)
        .missing_policy(parse_policy(args)?)
        .refine(!args.flag("no-refine"))
        .prefer_exact(args.flag("exact"))
        .budget(budget)
        .seed(args.get_or("seed", 0u64));
    if let Some(sample) = args.get("sample") {
        let sample: usize = sample
            .parse()
            .map_err(|_| CliError::Usage("--sample must be an integer".to_string()))?;
        builder = builder.sampling_threshold(0).sample_size(sample);
    }
    if let Some(threshold) = args.get("sampling-threshold") {
        let threshold: usize = threshold
            .parse()
            .map_err(|_| CliError::Usage("--sampling-threshold must be an integer".to_string()))?;
        builder = builder.sampling_threshold(threshold);
    }
    let checkpoint_path = args.get("checkpoint").map(PathBuf::from);
    if let Some(path) = &checkpoint_path {
        let every = Duration::from_millis(args.get_or("checkpoint-every-ms", 250u64));
        builder = builder.checkpoint(path, every);
        if args.flag("resume") {
            match load_snapshot(path) {
                SnapshotLoad::Loaded(snapshot) => {
                    obs::info!(format!("resuming from checkpoint {}", path.display()));
                    builder = builder.resume_from(snapshot);
                }
                SnapshotLoad::Missing => {
                    obs::warn!(format!(
                        "no checkpoint at {}; starting fresh",
                        path.display()
                    ));
                }
                SnapshotLoad::Corrupt(reason) => {
                    obs::warn!(format!(
                        "checkpoint {} is unusable ({reason}); starting fresh",
                        path.display()
                    ));
                }
            }
        }
    } else if args.flag("resume") {
        return Err(CliError::Usage(
            "--resume requires --checkpoint PATH".to_string(),
        ));
    }
    // Out-of-core spill: explicit --spill-dir wins; otherwise checkpointed
    // runs default to a sibling '<checkpoint>.spill' directory so a killed
    // spilled run leaves its tiles where --resume will reclaim them.
    let spill_dir = args.get("spill-dir").map(PathBuf::from).or_else(|| {
        checkpoint_path.as_ref().map(|p| {
            let mut os = p.as_os_str().to_os_string();
            os.push(".spill");
            PathBuf::from(os)
        })
    });
    if let Some(dir) = &spill_dir {
        builder = builder.spill_dir(dir);
    }
    let result = builder.try_aggregate_partial(inputs)?;
    // Degradation warnings surface through the telemetry layer: the core
    // emits each `Warning` as a warn-level event the moment it is recorded,
    // and the stderr sink renders it as the same `warning: ...` line this
    // loop used to print.
    obs::info!(format!(
        "aggregated {} objects into {} clusters{}",
        n,
        result.clustering.num_clusters(),
        if result.sampled || !result.cost.is_finite() {
            if result.sampled {
                " (sampled)".to_string()
            } else {
                String::new()
            }
        } else {
            format!(
                " (cost {:.3}, lower bound {:.3})",
                result.cost,
                result.lower_bound.unwrap_or(f64::NAN)
            )
        }
    ));
    let rendered = csv::render_labels(&result.clustering);
    match args.get("output") {
        Some(path) => {
            iofs::write("cli.output", Path::new(path), rendered)
                .map_err(|e| CliError::Io(format!("writing {path}: {e}")))?;
            obs::info!(format!("labels written to {path}"));
        }
        None => print!("{rendered}"),
    }
    match result.status {
        RunStatus::Converged => {
            // The run finished; the checkpoint has nothing left to resume
            // and any spilled tiles have nothing left to serve.
            if let Some(path) = &checkpoint_path {
                if let Err(e) = iofs::remove_file("cli.cleanup", path) {
                    if e.kind() != std::io::ErrorKind::NotFound {
                        obs::warn!(format!(
                            "could not remove checkpoint {}: {e}",
                            path.display()
                        ));
                    }
                }
            }
            if let Some(dir) = &spill_dir {
                let removed = cleanup_spill_dir(dir);
                if removed > 0 {
                    obs::info!(format!(
                        "removed {removed} spilled tiles from {}",
                        dir.display()
                    ));
                }
            }
            Ok(())
        }
        RunStatus::BudgetExceeded => Err(CliError::BudgetExceeded(
            "run budget exceeded; the labels above are the best found so far".to_string(),
        )),
        RunStatus::Cancelled => Err(CliError::Cancelled(
            "run cancelled; the labels above are the best found so far".to_string(),
        )),
    }
}

fn cmd_eval(args: &Args) -> Result<(), CliError> {
    let budget = args.run_budget();
    let inputs = load_inputs(args, Some(&budget))?;
    let candidate_path = args
        .get("candidate")
        .ok_or_else(|| CliError::Usage("--candidate PATH is required".to_string()))?;
    let text = iofs::read_to_string("cli.candidate", Path::new(candidate_path))
        .map_err(|e| CliError::Io(format!("{candidate_path}: {e}")))?;
    let candidate =
        csv::parse_single_clustering(&text, parse_separator(args)?, args.flag("header"))
            .map_err(|e| CliError::Parse(format!("parsing {candidate_path}: {e}")))?;
    if candidate.len() != inputs[0].len() {
        return Err(CliError::InvalidInstance(format!(
            "candidate covers {} objects, inputs cover {}",
            candidate.len(),
            inputs[0].len()
        )));
    }
    let instance = aggclust_core::instance::CorrelationInstance::try_from_partial(
        inputs,
        parse_policy(args)?,
    )?;
    let oracle = instance.dense_oracle();
    let cost = aggclust_core::cost::correlation_cost(&oracle, &candidate);
    let lb = aggclust_core::cost::lower_bound(&oracle);
    println!("objects:          {}", candidate.len());
    println!("clusters:         {}", candidate.num_clusters());
    println!("cost d(C):        {cost:.4}");
    println!("lower bound:      {lb:.4}");
    println!(
        "gap to bound:     {:.2}%",
        if lb > 0.0 {
            100.0 * (cost - lb) / lb
        } else {
            0.0
        }
    );
    println!(
        "E_D = m·d(C):     {:.1}",
        cost * instance.num_clusterings() as f64
    );
    Ok(())
}

fn cmd_diagnose(args: &Args) -> Result<(), CliError> {
    let budget = args.run_budget();
    let inputs = load_inputs(args, Some(&budget))?;
    let instance = aggclust_core::instance::CorrelationInstance::try_from_partial(
        inputs,
        parse_policy(args)?,
    )?;
    let oracle = instance.dense_oracle();
    let hist = aggclust_metrics::stability::agreement_histogram(&oracle, 10);
    let total: u64 = hist.iter().sum();
    println!("pairwise distance histogram (10 bins over [0,1]):");
    for (b, &count) in hist.iter().enumerate() {
        let share = if total > 0 {
            100.0 * count as f64 / total as f64
        } else {
            0.0
        };
        let bar = "#".repeat((share / 2.0).round() as usize);
        println!(
            "  [{:.1},{:.1}) {:>7} {:>5.1}% {}",
            b as f64 / 10.0,
            (b + 1) as f64 / 10.0,
            count,
            share,
            bar
        );
    }
    let ambiguous = aggclust_metrics::stability::ambiguous_pair_fraction(&oracle, 0.25, 0.75);
    println!(
        "\nambiguous pairs (X in (0.25, 0.75)): {:.1}%",
        100.0 * ambiguous
    );
    let outliers = aggclust_metrics::stability::top_outliers(&oracle, 10.min(oracle_len(&oracle)));
    println!("top outlier candidates (object indices): {outliers:?}");
    Ok(())
}

fn oracle_len(o: &impl aggclust_core::instance::DistanceOracle) -> usize {
    o.len()
}

fn cmd_demo() {
    use aggclust_core::clustering::Clustering;
    let inputs = vec![
        Clustering::from_labels(vec![0, 0, 1, 1, 2, 2]),
        Clustering::from_labels(vec![0, 1, 0, 1, 2, 3]),
        Clustering::from_labels(vec![0, 1, 0, 1, 2, 2]),
    ];
    let result = aggclust_core::consensus::aggregate(&inputs);
    println!("Figure 1 of the paper: 6 objects, 3 input clusterings.");
    println!(
        "consensus: {:?} with {} total disagreements (paper: 5)",
        result.clustering.labels(),
        result.disagreements
    );
}
