//! End-to-end tests of the `aggclust` binary.

use std::fs;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_aggclust"))
}

fn tmp(name: &str, content: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("aggclust-cli-{name}"));
    fs::write(&path, content).unwrap();
    path
}

/// The Figure-1 instance as a label matrix (columns C1, C2, C3).
const FIGURE1: &str = "0,0,0\n0,1,1\n1,0,0\n1,1,1\n2,2,2\n2,3,2\n";

#[test]
fn demo_prints_the_paper_example() {
    let out = bin().arg("demo").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("5 total disagreements"), "{stdout}");
}

#[test]
fn aggregate_finds_the_figure1_optimum() {
    let input = tmp("fig1.csv", FIGURE1);
    let out = bin()
        .args(["aggregate", "--input", input.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let labels: Vec<&str> = std::str::from_utf8(&out.stdout).unwrap().lines().collect();
    assert_eq!(labels, vec!["0", "1", "0", "1", "2", "2"]);
    fs::remove_file(input).ok();
}

#[test]
fn aggregate_eval_round_trip() {
    let input = tmp("rt.csv", FIGURE1);
    let output = std::env::temp_dir().join("aggclust-cli-rt-labels.txt");
    let status = bin()
        .args([
            "aggregate",
            "--input",
            input.to_str().unwrap(),
            "--output",
            output.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    assert!(status.success());

    let out = bin()
        .args([
            "eval",
            "--input",
            input.to_str().unwrap(),
            "--candidate",
            output.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("clusters:         3"), "{stdout}");
    assert!(stdout.contains("E_D = m·d(C):     5.0"), "{stdout}");
    fs::remove_file(input).ok();
    fs::remove_file(output).ok();
}

#[test]
fn all_algorithms_run() {
    let input = tmp("algos.csv", FIGURE1);
    for algo in [
        "agglomerative",
        "balls",
        "furthest",
        "local-search",
        "pivot",
        "annealing",
    ] {
        let out = bin()
            .args([
                "aggregate",
                "--input",
                input.to_str().unwrap(),
                "--algorithm",
                algo,
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "{algo} failed");
        let lines = out.stdout.split(|&b| b == b'\n').filter(|l| !l.is_empty());
        assert_eq!(lines.count(), 6, "{algo} wrong label count");
    }
    fs::remove_file(input).ok();
}

#[test]
fn diagnose_reports_histogram() {
    let input = tmp("diag.csv", FIGURE1);
    let out = bin()
        .args(["diagnose", "--input", input.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("histogram"), "{stdout}");
    assert!(stdout.contains("outlier candidates"), "{stdout}");
    fs::remove_file(input).ok();
}

#[test]
fn missing_values_and_header_flags() {
    let input = tmp("hdr.csv", "c1,c2\n0,0\n0,?\n1,1\n1,1\n");
    let out = bin()
        .args([
            "aggregate",
            "--input",
            input.to_str().unwrap(),
            "--header",
            "--missing",
            "ignore",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{:?}", out);
    fs::remove_file(input).ok();
}

#[test]
fn unknown_command_fails_gracefully() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown command"));
}

#[test]
fn missing_input_is_an_error_not_a_panic() {
    let out = bin()
        .args(["aggregate", "--input", "/nonexistent/file.csv"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.starts_with("error:"), "{stderr}");
}

#[test]
fn sampled_aggregation_runs() {
    // Repeat the figure-1 rows to get a bigger instance and force sampling.
    let mut big = String::new();
    for _ in 0..40 {
        big.push_str(FIGURE1);
    }
    let input = tmp("big.csv", &big);
    let out = bin()
        .args([
            "aggregate",
            "--input",
            input.to_str().unwrap(),
            "--sample",
            "60",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("(sampled)"), "{stderr}");
    fs::remove_file(input).ok();
}

#[test]
fn help_documents_exit_codes_and_budget_flags() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("EXIT CODES"), "{stdout}");
    assert!(stdout.contains("--deadline-ms"), "{stdout}");
    assert!(stdout.contains("--max-iters"), "{stdout}");
}

#[test]
fn exit_code_2_on_usage_errors() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin().args(["aggregate"]).output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "--input missing should be usage"
    );
    let input = tmp("usage.csv", FIGURE1);
    let out = bin()
        .args([
            "aggregate",
            "--input",
            input.to_str().unwrap(),
            "--algorithm",
            "quantum",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin()
        .args([
            "aggregate",
            "--input",
            input.to_str().unwrap(),
            "--separator",
            "ab",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    fs::remove_file(input).ok();
}

#[test]
fn exit_code_3_on_io_errors() {
    let out = bin()
        .args(["aggregate", "--input", "/nonexistent/file.csv"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn exit_code_4_on_parse_errors_with_line_and_column() {
    let input = tmp("ragged.csv", "0,1\n0\n1,1\n");
    let out = bin()
        .args(["aggregate", "--input", input.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("line 2, column 2"), "{stderr}");
    fs::remove_file(input).ok();
}

#[test]
fn exit_code_5_on_mismatched_candidate() {
    let input = tmp("ev5.csv", FIGURE1);
    let cand = tmp("ev5-cand.txt", "0\n1\n");
    let out = bin()
        .args([
            "eval",
            "--input",
            input.to_str().unwrap(),
            "--candidate",
            cand.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(5));
    fs::remove_file(input).ok();
    fs::remove_file(cand).ok();
}

#[test]
fn exit_code_6_on_degenerate_all_missing_input() {
    let input = tmp("allmiss.csv", "?,?\n?,?\n?,?\n");
    let out = bin()
        .args(["aggregate", "--input", input.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(6));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("error: degenerate input"), "{stderr}");
    fs::remove_file(input).ok();
}

#[test]
fn exit_code_7_still_writes_anytime_labels() {
    let input = tmp("budget7.csv", FIGURE1);
    let out = bin()
        .args([
            "aggregate",
            "--input",
            input.to_str().unwrap(),
            "--max-iters",
            "0",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(7), "{:?}", out);
    // Anytime contract: a valid labeling is still written for all 6 objects.
    let labels: Vec<&str> = std::str::from_utf8(&out.stdout).unwrap().lines().collect();
    assert_eq!(labels.len(), 6);
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("warning:"), "{stderr}");
    fs::remove_file(input).ok();
}

#[test]
fn unlimited_budget_flags_preserve_the_optimum() {
    let input = tmp("budget-ok.csv", FIGURE1);
    let out = bin()
        .args([
            "aggregate",
            "--input",
            input.to_str().unwrap(),
            "--deadline-ms",
            "60000",
            "--max-iters",
            "1000000",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{:?}", out);
    let labels: Vec<&str> = std::str::from_utf8(&out.stdout).unwrap().lines().collect();
    assert_eq!(labels, vec!["0", "1", "0", "1", "2", "2"]);
    fs::remove_file(input).ok();
}

#[test]
fn exact_flag_solves_small_instances() {
    let input = tmp("exact.csv", FIGURE1);
    let out = bin()
        .args(["aggregate", "--input", input.to_str().unwrap(), "--exact"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{:?}", out);
    let labels: Vec<&str> = std::str::from_utf8(&out.stdout).unwrap().lines().collect();
    assert_eq!(labels, vec!["0", "1", "0", "1", "2", "2"]);
    fs::remove_file(input).ok();
}
