//! End-to-end tests of the `aggclust` binary.

use std::fs;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_aggclust"))
}

fn tmp(name: &str, content: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("aggclust-cli-{name}"));
    fs::write(&path, content).unwrap();
    path
}

/// The Figure-1 instance as a label matrix (columns C1, C2, C3).
const FIGURE1: &str = "0,0,0\n0,1,1\n1,0,0\n1,1,1\n2,2,2\n2,3,2\n";

#[test]
fn demo_prints_the_paper_example() {
    let out = bin().arg("demo").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("5 total disagreements"), "{stdout}");
}

#[test]
fn aggregate_finds_the_figure1_optimum() {
    let input = tmp("fig1.csv", FIGURE1);
    let out = bin()
        .args(["aggregate", "--input", input.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let labels: Vec<&str> = std::str::from_utf8(&out.stdout).unwrap().lines().collect();
    assert_eq!(labels, vec!["0", "1", "0", "1", "2", "2"]);
    fs::remove_file(input).ok();
}

#[test]
fn aggregate_eval_round_trip() {
    let input = tmp("rt.csv", FIGURE1);
    let output = std::env::temp_dir().join("aggclust-cli-rt-labels.txt");
    let status = bin()
        .args([
            "aggregate",
            "--input",
            input.to_str().unwrap(),
            "--output",
            output.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    assert!(status.success());

    let out = bin()
        .args([
            "eval",
            "--input",
            input.to_str().unwrap(),
            "--candidate",
            output.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("clusters:         3"), "{stdout}");
    assert!(stdout.contains("E_D = m·d(C):     5.0"), "{stdout}");
    fs::remove_file(input).ok();
    fs::remove_file(output).ok();
}

#[test]
fn all_algorithms_run() {
    let input = tmp("algos.csv", FIGURE1);
    for algo in [
        "agglomerative",
        "balls",
        "furthest",
        "local-search",
        "pivot",
        "annealing",
    ] {
        let out = bin()
            .args([
                "aggregate",
                "--input",
                input.to_str().unwrap(),
                "--algorithm",
                algo,
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "{algo} failed");
        let lines = out.stdout.split(|&b| b == b'\n').filter(|l| !l.is_empty());
        assert_eq!(lines.count(), 6, "{algo} wrong label count");
    }
    fs::remove_file(input).ok();
}

#[test]
fn diagnose_reports_histogram() {
    let input = tmp("diag.csv", FIGURE1);
    let out = bin()
        .args(["diagnose", "--input", input.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("histogram"), "{stdout}");
    assert!(stdout.contains("outlier candidates"), "{stdout}");
    fs::remove_file(input).ok();
}

#[test]
fn missing_values_and_header_flags() {
    let input = tmp("hdr.csv", "c1,c2\n0,0\n0,?\n1,1\n1,1\n");
    let out = bin()
        .args([
            "aggregate",
            "--input",
            input.to_str().unwrap(),
            "--header",
            "--missing",
            "ignore",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{:?}", out);
    fs::remove_file(input).ok();
}

#[test]
fn unknown_command_fails_gracefully() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown command"));
}

#[test]
fn missing_input_is_an_error_not_a_panic() {
    let out = bin()
        .args(["aggregate", "--input", "/nonexistent/file.csv"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.starts_with("error:"), "{stderr}");
}

#[test]
fn sampled_aggregation_runs() {
    // Repeat the figure-1 rows to get a bigger instance and force sampling.
    let mut big = String::new();
    for _ in 0..40 {
        big.push_str(FIGURE1);
    }
    let input = tmp("big.csv", &big);
    let out = bin()
        .args([
            "aggregate",
            "--input",
            input.to_str().unwrap(),
            "--sample",
            "60",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("(sampled)"), "{stderr}");
    fs::remove_file(input).ok();
}

#[test]
fn help_documents_exit_codes_and_budget_flags() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("EXIT CODES"), "{stdout}");
    assert!(stdout.contains("--deadline-ms"), "{stdout}");
    assert!(stdout.contains("--max-iters"), "{stdout}");
}

#[test]
fn exit_code_2_on_usage_errors() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin().args(["aggregate"]).output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "--input missing should be usage"
    );
    let input = tmp("usage.csv", FIGURE1);
    let out = bin()
        .args([
            "aggregate",
            "--input",
            input.to_str().unwrap(),
            "--algorithm",
            "quantum",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin()
        .args([
            "aggregate",
            "--input",
            input.to_str().unwrap(),
            "--separator",
            "ab",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    fs::remove_file(input).ok();
}

#[test]
fn exit_code_3_on_io_errors() {
    let out = bin()
        .args(["aggregate", "--input", "/nonexistent/file.csv"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn exit_code_4_on_parse_errors_with_line_and_column() {
    let input = tmp("ragged.csv", "0,1\n0\n1,1\n");
    let out = bin()
        .args(["aggregate", "--input", input.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("line 2, column 2"), "{stderr}");
    fs::remove_file(input).ok();
}

#[test]
fn exit_code_5_on_mismatched_candidate() {
    let input = tmp("ev5.csv", FIGURE1);
    let cand = tmp("ev5-cand.txt", "0\n1\n");
    let out = bin()
        .args([
            "eval",
            "--input",
            input.to_str().unwrap(),
            "--candidate",
            cand.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(5));
    fs::remove_file(input).ok();
    fs::remove_file(cand).ok();
}

#[test]
fn exit_code_6_on_degenerate_all_missing_input() {
    let input = tmp("allmiss.csv", "?,?\n?,?\n?,?\n");
    let out = bin()
        .args(["aggregate", "--input", input.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(6));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("error: degenerate input"), "{stderr}");
    fs::remove_file(input).ok();
}

#[test]
fn exit_code_7_still_writes_anytime_labels() {
    let input = tmp("budget7.csv", FIGURE1);
    let out = bin()
        .args([
            "aggregate",
            "--input",
            input.to_str().unwrap(),
            "--max-iters",
            "0",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(7), "{:?}", out);
    // Anytime contract: a valid labeling is still written for all 6 objects.
    let labels: Vec<&str> = std::str::from_utf8(&out.stdout).unwrap().lines().collect();
    assert_eq!(labels.len(), 6);
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("warning:"), "{stderr}");
    fs::remove_file(input).ok();
}

#[test]
fn unlimited_budget_flags_preserve_the_optimum() {
    let input = tmp("budget-ok.csv", FIGURE1);
    let out = bin()
        .args([
            "aggregate",
            "--input",
            input.to_str().unwrap(),
            "--deadline-ms",
            "60000",
            "--max-iters",
            "1000000",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{:?}", out);
    let labels: Vec<&str> = std::str::from_utf8(&out.stdout).unwrap().lines().collect();
    assert_eq!(labels, vec!["0", "1", "0", "1", "2", "2"]);
    fs::remove_file(input).ok();
}

/// Deterministic label matrix with planted blocks plus disagreement — big
/// enough that LOCALSEARCH needs several passes.
fn planted_csv(n: usize, k: usize) -> String {
    let mut csv = String::new();
    for v in 0..n {
        let base = v % k;
        let b = (base + usize::from(v % 5 == 0)) % k;
        let c = (base + usize::from(v % 7 == 0)) % k;
        csv.push_str(&format!("{base},{b},{c}\n"));
    }
    csv
}

/// The tentpole acceptance path: SIGKILL a checkpointing run mid-flight,
/// resume from the checkpoint, and get bit-identical labels and cost to the
/// same run left uninterrupted.
#[cfg(unix)]
#[test]
fn sigkill_and_resume_is_bit_identical() {
    let input = tmp("kill.csv", &planted_csv(1500, 9));
    let dir = std::env::temp_dir();
    let ckpt = dir.join("aggclust-cli-kill.ckpt");
    let ref_out = dir.join("aggclust-cli-kill-ref.txt");
    let res_out = dir.join("aggclust-cli-kill-res.txt");
    let victim_out = dir.join("aggclust-cli-kill-victim.txt");
    fs::remove_file(&ckpt).ok();

    let base_args = |out: &std::path::Path| {
        vec![
            "aggregate".to_string(),
            "--input".to_string(),
            input.to_str().unwrap().to_string(),
            "--algorithm".to_string(),
            "local-search".to_string(),
            "--no-refine".to_string(),
            "--output".to_string(),
            out.to_str().unwrap().to_string(),
        ]
    };

    // Reference: the same run, uninterrupted, no checkpointing.
    let reference = bin().args(base_args(&ref_out)).output().unwrap();
    assert!(reference.status.success(), "{reference:?}");

    // Victim: checkpointing every 5 ms, killed hard (SIGKILL — no handler
    // can run, exactly like a crash or OOM kill).
    let mut victim = bin()
        .args(base_args(&victim_out))
        .args(["--checkpoint", ckpt.to_str().unwrap()])
        .args(["--checkpoint-every-ms", "5"])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(150));
    if victim.try_wait().unwrap().is_none() {
        victim.kill().unwrap(); // SIGKILL on unix
    }
    victim.wait().unwrap();

    // Resume. If the kill landed before the first checkpoint the CLI warns
    // and starts fresh — the final labels must be identical either way.
    let resumed = bin()
        .args(base_args(&res_out))
        .args(["--checkpoint", ckpt.to_str().unwrap()])
        .args(["--resume"])
        .output()
        .unwrap();
    assert!(resumed.status.success(), "{resumed:?}");
    assert_eq!(
        fs::read(&ref_out).unwrap(),
        fs::read(&res_out).unwrap(),
        "resumed labels differ from uninterrupted labels"
    );
    // Bit-identical cost too: both summaries print "(cost X, lower bound Y)".
    let cost_of = |stderr: &[u8]| {
        let text = String::from_utf8_lossy(stderr).to_string();
        let at = text
            .find("(cost ")
            .unwrap_or_else(|| panic!("no cost in {text}"));
        text[at..].split(')').next().unwrap().to_string()
    };
    assert_eq!(cost_of(&reference.stderr), cost_of(&resumed.stderr));
    // Converged success removes the checkpoint.
    assert!(!ckpt.exists(), "checkpoint survived a converged run");
    for p in [&input, &ref_out, &res_out, &victim_out] {
        fs::remove_file(p).ok();
    }
}

#[test]
fn interrupted_run_leaves_a_checkpoint_and_resume_completes() {
    // Deterministic interrupt (iteration cap) instead of timing: exit 7
    // leaves a resumable checkpoint behind; --resume finishes the job and
    // matches the uninterrupted run exactly.
    let input = tmp("ckpt7.csv", &planted_csv(400, 7));
    let dir = std::env::temp_dir();
    let ckpt = dir.join("aggclust-cli-ckpt7.ckpt");
    let ref_out = dir.join("aggclust-cli-ckpt7-ref.txt");
    let res_out = dir.join("aggclust-cli-ckpt7-res.txt");
    fs::remove_file(&ckpt).ok();

    let run = |extra: &[&str], out: &std::path::Path| {
        let mut args = vec![
            "aggregate",
            "--input",
            input.to_str().unwrap(),
            "--algorithm",
            "local-search",
            "--no-refine",
        ];
        args.extend_from_slice(extra);
        let out_s = out.to_str().unwrap();
        args.extend_from_slice(&["--output", out_s]);
        bin().args(&args).output().unwrap()
    };

    let reference = run(&[], &ref_out);
    assert!(reference.status.success());

    let capped = run(
        &[
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--checkpoint-every-ms",
            "0",
            "--max-iters",
            "500",
        ],
        &res_out,
    );
    assert_eq!(capped.status.code(), Some(7), "{capped:?}");
    assert!(ckpt.exists(), "interrupted run left no checkpoint");

    let resumed = run(
        &["--checkpoint", ckpt.to_str().unwrap(), "--resume"],
        &res_out,
    );
    assert!(resumed.status.success(), "{resumed:?}");
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(stderr.contains("resuming from checkpoint"), "{stderr}");
    assert_eq!(fs::read(&ref_out).unwrap(), fs::read(&res_out).unwrap());
    assert!(!ckpt.exists());
    for p in [&input, &ref_out, &res_out] {
        fs::remove_file(p).ok();
    }
}

#[test]
fn corrupt_checkpoint_warns_and_starts_fresh() {
    let input = tmp("corrupt-ck.csv", &planted_csv(120, 5));
    let ckpt = std::env::temp_dir().join("aggclust-cli-corrupt.ckpt");
    fs::write(&ckpt, b"garbage, not a snapshot").unwrap();
    let out = bin()
        .args([
            "aggregate",
            "--input",
            input.to_str().unwrap(),
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--resume",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unusable") && stderr.contains("starting fresh"),
        "{stderr}"
    );
    fs::remove_file(input).ok();
    fs::remove_file(ckpt).ok();
}

#[test]
fn resume_without_checkpoint_is_a_usage_error() {
    let input = tmp("resume-usage.csv", FIGURE1);
    let out = bin()
        .args(["aggregate", "--input", input.to_str().unwrap(), "--resume"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    fs::remove_file(input).ok();
}

#[test]
fn mem_budget_degrades_to_the_lazy_oracle_with_identical_labels() {
    // n = 600: the dense matrix needs 600·599/2·8 ≈ 1.4 MB, over a 1 MB
    // cap. The run must complete through the lazy oracle, warn, and
    // produce exactly the labels of the uncapped run.
    let input = tmp("mem.csv", &planted_csv(600, 8));
    let run = |extra: &[&str]| {
        let mut args = vec![
            "aggregate",
            "--input",
            input.to_str().unwrap(),
            "--algorithm",
            "local-search",
        ];
        args.extend_from_slice(extra);
        bin().args(&args).output().unwrap()
    };
    let unlimited = run(&[]);
    assert!(unlimited.status.success());
    let capped = run(&["--mem-budget-mb", "1"]);
    assert!(capped.status.success(), "{capped:?}");
    let stderr = String::from_utf8_lossy(&capped.stderr);
    assert!(stderr.contains("lazy oracle"), "{stderr}");
    assert_eq!(unlimited.stdout, capped.stdout);
    fs::remove_file(input).ok();
}

#[test]
fn mem_budget_degrades_agglomerative_to_sampling() {
    let input = tmp("mem-agg.csv", &planted_csv(600, 8));
    let out = bin()
        .args([
            "aggregate",
            "--input",
            input.to_str().unwrap(),
            "--mem-budget-mb",
            "1",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("degrading to SAMPLING"), "{stderr}");
    assert!(stderr.contains("(sampled)"), "{stderr}");
    fs::remove_file(input).ok();
}

#[test]
fn coin_probability_is_validated_at_the_flag() {
    let input = tmp("coinp.csv", "0,0\n0,?\n1,1\n1,1\n");
    for (spec, want) in [
        ("coin:0.3", Some(0)),
        ("coin:1.5", Some(2)),
        ("coin:-0.1", Some(2)),
        ("coin:nan", Some(2)),
        ("coin:abc", Some(2)),
        ("dice", Some(2)),
    ] {
        let out = bin()
            .args([
                "aggregate",
                "--input",
                input.to_str().unwrap(),
                "--missing",
                spec,
            ])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), want, "--missing {spec}: {out:?}");
    }
    fs::remove_file(input).ok();
}

#[test]
fn thread_count_does_not_change_the_labels() {
    let input = tmp("threads.csv", &planted_csv(300, 6));
    let run = |threads: &str| {
        let out = bin()
            .args([
                "aggregate",
                "--input",
                input.to_str().unwrap(),
                "--threads",
                threads,
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "--threads {threads}: {out:?}");
        out.stdout
    };
    let single = run("1");
    assert_eq!(single, run("2"));
    assert_eq!(single, run("8"));
    fs::remove_file(input).ok();
}

#[test]
fn help_documents_the_robustness_flags() {
    let out = bin().arg("help").output().unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    for flag in [
        "--checkpoint PATH",
        "--checkpoint-every-ms",
        "--resume",
        "--mem-budget-mb",
        "--threads",
        "coin:P",
    ] {
        assert!(stdout.contains(flag), "help is missing {flag}");
    }
    assert!(stdout.contains("9   memory budget exceeded"), "{stdout}");
}

#[test]
fn exact_flag_solves_small_instances() {
    let input = tmp("exact.csv", FIGURE1);
    let out = bin()
        .args(["aggregate", "--input", input.to_str().unwrap(), "--exact"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{:?}", out);
    let labels: Vec<&str> = std::str::from_utf8(&out.stdout).unwrap().lines().collect();
    assert_eq!(labels, vec!["0", "1", "0", "1", "2", "2"]);
    fs::remove_file(input).ok();
}
