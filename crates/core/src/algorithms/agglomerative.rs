//! The AGGLOMERATIVE algorithm: bottom-up average-linkage merging with the
//! ½ stopping rule.
//!
//! Start from singletons; repeatedly merge the pair of clusters with the
//! smallest *average* inter-cluster distance, stopping when that minimum
//! reaches ½ — at that point no merge can improve the correlation cost
//! `d(C)`. The produced clusters have the property that the average distance
//! between any pair of their nodes is at most ½ ("the opinion of the
//! majority is respected on average"), which yields a 2-approximation for
//! `m = 3` input clusterings.
//!
//! The implementation delegates to the shared nearest-neighbor-chain engine
//! in [`crate::linkage`] (`O(n²)` time after the `O(n²)` matrix build),
//! mathematically identical to the naive `O(n³)` greedy procedure because
//! average linkage is reducible.

use crate::clustering::Clustering;
use crate::instance::DistanceOracle;
use crate::linkage::{linkage, CondensedMatrix, LinkageMethod};

/// Parameters for [`agglomerative`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AgglomerativeParams {
    /// Merge while the smallest average inter-cluster distance is strictly
    /// below this threshold. The paper's rule is ½.
    pub threshold: f64,
    /// If set, ignore the threshold and keep merging until exactly this many
    /// clusters remain — the paper's "user insists on a predefined number of
    /// clusters" variant.
    pub num_clusters: Option<usize>,
}

impl Default for AgglomerativeParams {
    fn default() -> Self {
        AgglomerativeParams {
            threshold: 0.5,
            num_clusters: None,
        }
    }
}

impl AgglomerativeParams {
    /// The paper's parameter-free rule (merge while average distance < ½).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Force a fixed number of output clusters.
    pub fn with_num_clusters(k: usize) -> Self {
        AgglomerativeParams {
            threshold: 0.5,
            num_clusters: Some(k),
        }
    }
}

/// Run the AGGLOMERATIVE algorithm on a correlation-clustering instance.
pub fn agglomerative<O: DistanceOracle + Sync + ?Sized>(
    oracle: &O,
    params: AgglomerativeParams,
) -> Clustering {
    let n = oracle.len();
    if n == 0 {
        return Clustering::from_labels(Vec::new());
    }
    let matrix = CondensedMatrix::from_oracle(oracle);
    let dendrogram = linkage(matrix, LinkageMethod::Average);
    match params.num_clusters {
        Some(k) => dendrogram.cut_num_clusters(k.clamp(1, n)),
        None => dendrogram.cut_height(params.threshold),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::correlation_cost;
    use crate::instance::DenseOracle;

    fn c(labels: &[u32]) -> Clustering {
        Clustering::from_labels(labels.to_vec())
    }

    fn figure1_oracle() -> DenseOracle {
        DenseOracle::from_clusterings(&[
            c(&[0, 0, 1, 1, 2, 2]),
            c(&[0, 1, 0, 1, 2, 3]),
            c(&[0, 1, 0, 1, 2, 2]),
        ])
    }

    #[test]
    fn recovers_figure1_optimum() {
        let result = agglomerative(&figure1_oracle(), AgglomerativeParams::paper());
        assert_eq!(result, c(&[0, 1, 0, 1, 2, 2]));
    }

    #[test]
    fn perfect_consensus_is_reproduced() {
        let consensus = c(&[0, 0, 1, 1, 1, 2, 2]);
        let oracle = DenseOracle::from_clusterings(&[consensus.clone(), consensus.clone()]);
        assert_eq!(
            agglomerative(&oracle, AgglomerativeParams::paper()),
            consensus
        );
    }

    #[test]
    fn threshold_zero_gives_singletons() {
        let oracle = figure1_oracle();
        let result = agglomerative(
            &oracle,
            AgglomerativeParams {
                threshold: 0.0,
                num_clusters: None,
            },
        );
        assert_eq!(result, Clustering::singletons(6));
    }

    #[test]
    fn threshold_above_one_gives_one_cluster() {
        let oracle = figure1_oracle();
        let result = agglomerative(
            &oracle,
            AgglomerativeParams {
                threshold: 1.1,
                num_clusters: None,
            },
        );
        assert_eq!(result, Clustering::one_cluster(6));
    }

    #[test]
    fn fixed_k_variant() {
        let oracle = figure1_oracle();
        for k in 1..=6 {
            let result = agglomerative(&oracle, AgglomerativeParams::with_num_clusters(k));
            assert_eq!(result.num_clusters(), k);
        }
    }

    #[test]
    fn average_distance_within_clusters_at_most_half() {
        // The paper's desirable feature: every produced cluster has average
        // pairwise node distance ≤ ½ — check on a slightly larger instance.
        let inputs = vec![
            c(&[0, 0, 0, 1, 1, 1, 2, 2]),
            c(&[0, 0, 1, 1, 1, 2, 2, 2]),
            c(&[0, 0, 0, 0, 1, 1, 2, 2]),
        ];
        let oracle = DenseOracle::from_clusterings(&inputs);
        let result = agglomerative(&oracle, AgglomerativeParams::paper());
        for members in result.clusters() {
            if members.len() < 2 {
                continue;
            }
            let mut total = 0.0;
            let mut pairs = 0usize;
            for (i, &u) in members.iter().enumerate() {
                for &v in &members[i + 1..] {
                    total += oracle.dist(u, v);
                    pairs += 1;
                }
            }
            assert!(
                total / pairs as f64 <= 0.5 + 1e-9,
                "cluster {members:?} has average distance {}",
                total / pairs as f64
            );
        }
    }

    #[test]
    fn never_worse_than_singletons_or_one_cluster() {
        let oracle = figure1_oracle();
        let result = agglomerative(&oracle, AgglomerativeParams::paper());
        let cost = correlation_cost(&oracle, &result);
        assert!(cost <= correlation_cost(&oracle, &Clustering::singletons(6)) + 1e-9);
        assert!(cost <= correlation_cost(&oracle, &Clustering::one_cluster(6)) + 1e-9);
    }

    #[test]
    fn empty_instance() {
        let oracle = DenseOracle::from_fn(0, |_, _| 0.0);
        assert_eq!(
            agglomerative(&oracle, AgglomerativeParams::paper()).len(),
            0
        );
    }
}
