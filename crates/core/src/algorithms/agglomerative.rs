//! The AGGLOMERATIVE algorithm: bottom-up average-linkage merging with the
//! ½ stopping rule.
//!
//! Start from singletons; repeatedly merge the pair of clusters with the
//! smallest *average* inter-cluster distance, stopping when that minimum
//! reaches ½ — at that point no merge can improve the correlation cost
//! `d(C)`. The produced clusters have the property that the average distance
//! between any pair of their nodes is at most ½ ("the opinion of the
//! majority is respected on average"), which yields a 2-approximation for
//! `m = 3` input clusterings.
//!
//! The implementation delegates to the shared nearest-neighbor-chain engine
//! in [`crate::linkage`] (`O(n²)` time after the `O(n²)` matrix build),
//! mathematically identical to the naive `O(n³)` greedy procedure because
//! average linkage is reducible.

use crate::clustering::Clustering;
use crate::error::AggResult;
use crate::instance::DistanceOracle;
use crate::linkage::{linkage, linkage_resumable, CondensedMatrix, LinkageMethod};
use crate::robust::{RunBudget, RunOutcome};
use crate::snapshot::{AgglomerativeSnapshot, Checkpointer};

/// Parameters for [`agglomerative`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AgglomerativeParams {
    /// Merge while the smallest average inter-cluster distance is strictly
    /// below this threshold. The paper's rule is ½.
    pub threshold: f64,
    /// If set, ignore the threshold and keep merging until exactly this many
    /// clusters remain — the paper's "user insists on a predefined number of
    /// clusters" variant.
    pub num_clusters: Option<usize>,
}

impl Default for AgglomerativeParams {
    fn default() -> Self {
        AgglomerativeParams {
            threshold: 0.5,
            num_clusters: None,
        }
    }
}

impl AgglomerativeParams {
    /// The paper's parameter-free rule (merge while average distance < ½).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Force a fixed number of output clusters.
    pub fn with_num_clusters(k: usize) -> Self {
        AgglomerativeParams {
            threshold: 0.5,
            num_clusters: Some(k),
        }
    }
}

/// Run the AGGLOMERATIVE algorithm on a correlation-clustering instance.
pub fn agglomerative<O: DistanceOracle + Sync + ?Sized>(
    oracle: &O,
    params: AgglomerativeParams,
) -> Clustering {
    let n = oracle.len();
    if n == 0 {
        return Clustering::from_labels(Vec::new());
    }
    let matrix = CondensedMatrix::from_oracle(oracle);
    let dendrogram = linkage(matrix, LinkageMethod::Average);
    match params.num_clusters {
        Some(k) => dendrogram.cut_num_clusters(k.clamp(1, n)),
        None => dendrogram.cut_height(params.threshold),
    }
}

/// Budgeted AGGLOMERATIVE with anytime semantics. One budget iteration per
/// merge; the `O(n²)` matrix build polls the budget between parallel row
/// chunks. On a trip during the build the result degrades to singletons; on
/// a trip mid-merging the partial dendrogram is cut as usual, yielding a
/// valid (finer) clustering whose applied merges each lowered the cost.
pub fn agglomerative_budgeted<O: DistanceOracle + Sync + ?Sized>(
    oracle: &O,
    params: AgglomerativeParams,
    budget: &RunBudget,
) -> AggResult<RunOutcome> {
    agglomerative_resumable(oracle, params, budget, None, None)
}

/// [`agglomerative_budgeted`] with crash-safe checkpoint/resume.
///
/// The distance matrix is rebuilt on every (re)start — it is derived data —
/// and the recorded merges are *replayed* through the identical
/// Lance–Williams update sequence, which reproduces the matrix state
/// bit-for-bit before new merges continue (see
/// [`crate::linkage::linkage_resumable`]). A snapshot inconsistent with
/// this instance falls back to a fresh run.
pub fn agglomerative_resumable<O: DistanceOracle + Sync + ?Sized>(
    oracle: &O,
    params: AgglomerativeParams,
    budget: &RunBudget,
    resume: Option<&AgglomerativeSnapshot>,
    ckpt: Option<&mut Checkpointer>,
) -> AggResult<RunOutcome> {
    if params.threshold.is_nan() {
        return Err(crate::error::AggError::invalid_parameter(
            "threshold",
            "must not be NaN",
        ));
    }
    let n = oracle.len();
    let _span = crate::span!("agglomerative", n = n, resuming = resume.is_some());
    if n == 0 {
        return Ok(RunOutcome::converged(Clustering::from_labels(Vec::new())));
    }
    let matrix = match CondensedMatrix::try_from_oracle(oracle, budget) {
        Ok(matrix) => matrix,
        Err(interrupt) => {
            // No partial matrix to salvage: the only valid anytime answer
            // before any merge is the all-singletons start.
            return Ok(RunOutcome {
                clustering: Clustering::singletons(n),
                status: interrupt.status(),
                iterations: 0,
            });
        }
    };
    let (dendrogram, status, iterations) =
        linkage_resumable(matrix, LinkageMethod::Average, budget, resume, ckpt);
    let clustering = match params.num_clusters {
        Some(k) => dendrogram.cut_num_clusters(k.clamp(1, n)),
        None => dendrogram.cut_height(params.threshold),
    };
    Ok(RunOutcome {
        clustering,
        status,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::correlation_cost;
    use crate::instance::DenseOracle;
    use crate::robust::RunStatus;

    fn c(labels: &[u32]) -> Clustering {
        Clustering::from_labels(labels.to_vec())
    }

    fn figure1_oracle() -> DenseOracle {
        DenseOracle::from_clusterings(&[
            c(&[0, 0, 1, 1, 2, 2]),
            c(&[0, 1, 0, 1, 2, 3]),
            c(&[0, 1, 0, 1, 2, 2]),
        ])
    }

    #[test]
    fn recovers_figure1_optimum() {
        let result = agglomerative(&figure1_oracle(), AgglomerativeParams::paper());
        assert_eq!(result, c(&[0, 1, 0, 1, 2, 2]));
    }

    #[test]
    fn perfect_consensus_is_reproduced() {
        let consensus = c(&[0, 0, 1, 1, 1, 2, 2]);
        let oracle = DenseOracle::from_clusterings(&[consensus.clone(), consensus.clone()]);
        assert_eq!(
            agglomerative(&oracle, AgglomerativeParams::paper()),
            consensus
        );
    }

    #[test]
    fn threshold_zero_gives_singletons() {
        let oracle = figure1_oracle();
        let result = agglomerative(
            &oracle,
            AgglomerativeParams {
                threshold: 0.0,
                num_clusters: None,
            },
        );
        assert_eq!(result, Clustering::singletons(6));
    }

    #[test]
    fn threshold_above_one_gives_one_cluster() {
        let oracle = figure1_oracle();
        let result = agglomerative(
            &oracle,
            AgglomerativeParams {
                threshold: 1.1,
                num_clusters: None,
            },
        );
        assert_eq!(result, Clustering::one_cluster(6));
    }

    #[test]
    fn fixed_k_variant() {
        let oracle = figure1_oracle();
        for k in 1..=6 {
            let result = agglomerative(&oracle, AgglomerativeParams::with_num_clusters(k));
            assert_eq!(result.num_clusters(), k);
        }
    }

    #[test]
    fn average_distance_within_clusters_at_most_half() {
        // The paper's desirable feature: every produced cluster has average
        // pairwise node distance ≤ ½ — check on a slightly larger instance.
        let inputs = vec![
            c(&[0, 0, 0, 1, 1, 1, 2, 2]),
            c(&[0, 0, 1, 1, 1, 2, 2, 2]),
            c(&[0, 0, 0, 0, 1, 1, 2, 2]),
        ];
        let oracle = DenseOracle::from_clusterings(&inputs);
        let result = agglomerative(&oracle, AgglomerativeParams::paper());
        for members in result.clusters() {
            if members.len() < 2 {
                continue;
            }
            let mut total = 0.0;
            let mut pairs = 0usize;
            for (i, &u) in members.iter().enumerate() {
                for &v in &members[i + 1..] {
                    total += oracle.dist(u, v);
                    pairs += 1;
                }
            }
            assert!(
                total / pairs as f64 <= 0.5 + 1e-9,
                "cluster {members:?} has average distance {}",
                total / pairs as f64
            );
        }
    }

    #[test]
    fn never_worse_than_singletons_or_one_cluster() {
        let oracle = figure1_oracle();
        let result = agglomerative(&oracle, AgglomerativeParams::paper());
        let cost = correlation_cost(&oracle, &result);
        assert!(cost <= correlation_cost(&oracle, &Clustering::singletons(6)) + 1e-9);
        assert!(cost <= correlation_cost(&oracle, &Clustering::one_cluster(6)) + 1e-9);
    }

    #[test]
    fn empty_instance() {
        let oracle = DenseOracle::from_fn(0, |_, _| 0.0);
        assert_eq!(
            agglomerative(&oracle, AgglomerativeParams::paper()).len(),
            0
        );
    }

    #[test]
    fn budgeted_unlimited_matches_unbudgeted() {
        let oracle = figure1_oracle();
        let outcome = agglomerative_budgeted(
            &oracle,
            AgglomerativeParams::paper(),
            &RunBudget::unlimited(),
        )
        .unwrap();
        assert_eq!(outcome.status, RunStatus::Converged);
        assert_eq!(
            outcome.clustering,
            agglomerative(&oracle, AgglomerativeParams::paper())
        );
    }

    #[test]
    fn budget_trip_degrades_to_finer_clustering() {
        let oracle = figure1_oracle();
        // One merge allowed, then the cap trips: the cut of the partial
        // dendrogram is a complete clustering no coarser than the optimum.
        let tight = RunBudget::unlimited().with_max_iters(1);
        let outcome =
            agglomerative_budgeted(&oracle, AgglomerativeParams::paper(), &tight).unwrap();
        assert_eq!(outcome.status, RunStatus::BudgetExceeded);
        assert_eq!(outcome.clustering.len(), 6);
        assert!(outcome.clustering.num_clusters() >= 3);
        let cost = correlation_cost(&oracle, &outcome.clustering);
        assert!(cost <= correlation_cost(&oracle, &Clustering::singletons(6)) + 1e-9);
    }

    #[test]
    fn nan_threshold_is_a_typed_error() {
        let oracle = figure1_oracle();
        let params = AgglomerativeParams {
            threshold: f64::NAN,
            num_clusters: None,
        };
        let err = agglomerative_budgeted(&oracle, params, &RunBudget::unlimited()).unwrap_err();
        assert!(matches!(
            err,
            crate::error::AggError::InvalidParameter { .. }
        ));
    }
}
