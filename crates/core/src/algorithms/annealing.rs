//! Simulated annealing for clustering aggregation — the approach of Filkov
//! & Skiena (reference [13] of the paper, which "proposes a simulated
//! annealing algorithm for finding an aggregate solution and a local search
//! algorithm similar to ours").
//!
//! Included as the related-work comparator: it explores the same move set
//! as LOCALSEARCH (move one node to another cluster or to a fresh
//! singleton) but accepts uphill moves with probability
//! `exp(−Δ/T)` under a geometric cooling schedule, so it can escape the
//! local optima LOCALSEARCH stops at. A final zero-temperature descent
//! guarantees the output is itself a single-move local optimum.

use crate::algorithms::local_search::{local_search_from, local_search_from_budgeted};
use crate::clustering::Clustering;
use crate::cost::within_cost;
use crate::error::{AggError, AggResult};
use crate::instance::DistanceOracle;
use crate::robust::{BudgetMeter, Interrupt, RunBudget, RunOutcome};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`simulated_annealing`].
#[derive(Clone, Debug)]
pub struct AnnealingParams {
    /// Initial temperature (in units of the per-pair cost, which is `O(n)`
    /// per move; `1.0` is a conservative default).
    pub initial_temperature: f64,
    /// Multiplicative cooling factor per sweep, in `(0, 1)`.
    pub cooling: f64,
    /// Number of sweeps (each sweep proposes `n` random moves).
    pub sweeps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealingParams {
    fn default() -> Self {
        AnnealingParams {
            initial_temperature: 1.0,
            cooling: 0.95,
            sweeps: 100,
            seed: 0,
        }
    }
}

/// Run simulated annealing from the all-singletons start, followed by a
/// zero-temperature LOCALSEARCH descent.
pub fn simulated_annealing<O: DistanceOracle + Sync + ?Sized>(
    oracle: &O,
    params: &AnnealingParams,
) -> Clustering {
    let n = oracle.len();
    if n <= 1 {
        return Clustering::singletons(n);
    }
    assert!(
        params.cooling > 0.0 && params.cooling < 1.0,
        "cooling factor must be in (0, 1)"
    );
    let budget = RunBudget::unlimited();
    let mut meter = budget.meter();
    let state = anneal_loop(oracle, params, &mut meter);

    // Zero-temperature descent to a guaranteed local optimum.
    let annealed = Clustering::from_labels(state.labels);
    local_search_from(oracle, &annealed, 200, 1e-9)
}

/// Budgeted simulated annealing with anytime semantics. One budget
/// iteration per proposed move (each is an `O(n)` M-sums pass). The loop
/// keeps a snapshot of the cheapest state visited; a trip returns that
/// snapshot, which can never cost more than the all-singletons start. On
/// natural completion the final descent runs under the same budget and the
/// cheaper of (descended, snapshot) is returned.
pub fn simulated_annealing_budgeted<O: DistanceOracle + Sync + ?Sized>(
    oracle: &O,
    params: &AnnealingParams,
    budget: &RunBudget,
) -> AggResult<RunOutcome> {
    if !(params.cooling > 0.0 && params.cooling < 1.0) {
        return Err(AggError::invalid_parameter(
            "cooling",
            format!("{} not in (0, 1)", params.cooling),
        ));
    }
    if params.initial_temperature.is_nan() {
        return Err(AggError::invalid_parameter(
            "initial_temperature",
            "must not be NaN",
        ));
    }
    let n = oracle.len();
    if n <= 1 {
        return Ok(RunOutcome::converged(Clustering::singletons(n)));
    }
    let mut meter = budget.meter();
    let state = anneal_loop(oracle, params, &mut meter);
    let anneal_iters = meter.iterations();
    if let Some(interrupt) = state.tripped {
        return Ok(RunOutcome {
            clustering: Clustering::from_labels(state.best_labels),
            status: interrupt.status(),
            iterations: anneal_iters,
        });
    }

    // Budgeted descent from the annealed state, then keep the cheaper of
    // the descended result and the best mid-anneal snapshot (the descent
    // start can be an uphill excursion the snapshot predates).
    let annealed = Clustering::from_labels(state.labels);
    let descended = local_search_from_budgeted(oracle, &annealed, 200, 1e-9, budget)?;
    let snapshot = Clustering::from_labels(state.best_labels);
    let clustering = if within_cost(oracle, &descended.clustering) <= within_cost(oracle, &snapshot)
    {
        descended.clustering
    } else {
        snapshot
    };
    Ok(RunOutcome {
        clustering,
        status: descended.status,
        iterations: anneal_iters.saturating_add(descended.iterations),
    })
}

/// Result of the annealing sweeps: the final state, the cheapest snapshot
/// seen (by accumulated accepted deltas), and whether the budget tripped.
struct AnnealState {
    labels: Vec<u32>,
    best_labels: Vec<u32>,
    tripped: Option<Interrupt>,
}

/// The shared sweeps loop behind both entry points. Identical RNG
/// consumption to the original implementation, so the unbudgeted path is
/// bit-for-bit unchanged.
fn anneal_loop<O: DistanceOracle + Sync + ?Sized>(
    oracle: &O,
    params: &AnnealingParams,
    meter: &mut BudgetMeter<'_>,
) -> AnnealState {
    let n = oracle.len();
    let _span = crate::span!("annealing", n = n, sweeps = params.sweeps);
    let mut rng = StdRng::seed_from_u64(params.seed);

    // State: labels + sizes; fresh singleton labels appended at the end.
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut sizes: Vec<usize> = vec![1; n];
    let mut temperature = params.initial_temperature;

    // Anytime bookkeeping: `acc` is the cost relative to the singletons
    // start (the sum of accepted move deltas); the cheapest state seen is
    // snapshotted so a budget trip can return it.
    let mut acc = 0.0f64;
    let mut best_acc = 0.0f64;
    let mut best_labels = labels.clone();
    let mut tripped = None;

    // Move cost delta for node v → cluster `target` (usize::MAX = fresh
    // singleton), computed through the LOCALSEARCH M-sums in O(n).
    let mut m_sums: Vec<f64> = Vec::new();
    'sweeps: for _sweep in 0..params.sweeps {
        for _ in 0..n {
            if let Err(interrupt) = meter.tick() {
                tripped = Some(interrupt);
                break 'sweeps;
            }
            let v = rng.gen_range(0..n);
            let k = sizes.len();
            m_sums.clear();
            m_sums.resize(k, 0.0);
            let mut t_v = 0.0;
            for u in 0..n {
                if u != v {
                    let x = oracle.dist(v, u);
                    m_sums[labels[u] as usize] += x;
                    t_v += x;
                }
            }
            let cur = labels[v] as usize;
            let others = (n - 1) as f64;
            let cost_of = |i: usize| -> f64 {
                let size_wo_v = sizes[i] - usize::from(i == cur);
                2.0 * m_sums[i] - t_v + others - size_wo_v as f64
            };
            let cur_cost = cost_of(cur);

            // Propose: random existing non-empty cluster or a singleton.
            let target = if rng.gen_bool(0.2) {
                usize::MAX
            } else {
                // Rejection-sample a non-empty cluster different from cur.
                let mut t = rng.gen_range(0..k);
                let mut guard = 0;
                while (sizes[t] == 0 || t == cur) && guard < 4 * k {
                    t = rng.gen_range(0..k);
                    guard += 1;
                }
                if sizes[t] == 0 || t == cur {
                    continue;
                }
                t
            };
            let new_cost = if target == usize::MAX {
                others - t_v
            } else {
                cost_of(target)
            };
            let delta = new_cost - cur_cost;
            let accept = delta < 0.0
                || (temperature > 0.0 && rng.gen::<f64>() < (-delta / temperature).exp());
            if !accept {
                continue;
            }
            // Apply the move.
            sizes[cur] -= 1;
            let dest = if target == usize::MAX {
                if sizes[cur] == 0 {
                    cur // moving a singleton to a fresh singleton: no-op
                } else {
                    sizes.push(0);
                    sizes.len() - 1
                }
            } else {
                target
            };
            sizes[dest] += 1;
            labels[v] = dest as u32;
            acc += delta;
            if acc < best_acc - 1e-12 {
                best_acc = acc;
                best_labels.clone_from(&labels);
            }
        }
        temperature *= params.cooling;
    }

    AnnealState {
        labels,
        best_labels,
        tripped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::correlation_cost;
    use crate::exact::optimal_clustering;
    use crate::instance::DenseOracle;

    fn c(labels: &[u32]) -> Clustering {
        Clustering::from_labels(labels.to_vec())
    }

    fn figure1_oracle() -> DenseOracle {
        DenseOracle::from_clusterings(&[
            c(&[0, 0, 1, 1, 2, 2]),
            c(&[0, 1, 0, 1, 2, 3]),
            c(&[0, 1, 0, 1, 2, 2]),
        ])
    }

    #[test]
    fn finds_the_figure1_optimum() {
        let oracle = figure1_oracle();
        let result = simulated_annealing(&oracle, &AnnealingParams::default());
        assert_eq!(result, c(&[0, 1, 0, 1, 2, 2]));
    }

    #[test]
    fn matches_exact_optimum_on_small_instances() {
        for seed in 0..5u64 {
            let inputs = vec![
                c(&[0, 1, 1, 0, 2, 2, 0]),
                c(&[0, 0, 1, 1, 2, 2, 1]),
                c(&[0, 1, 0, 1, 2, 0, 2]),
            ];
            let oracle = DenseOracle::from_clusterings(&inputs);
            let opt = optimal_clustering(&oracle).cost;
            let params = AnnealingParams {
                seed,
                ..Default::default()
            };
            let cost = correlation_cost(&oracle, &simulated_annealing(&oracle, &params));
            assert!(cost <= opt + 0.35, "seed {seed}: {cost} vs opt {opt}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let oracle = figure1_oracle();
        let p = AnnealingParams {
            seed: 11,
            sweeps: 30,
            ..Default::default()
        };
        assert_eq!(
            simulated_annealing(&oracle, &p),
            simulated_annealing(&oracle, &p)
        );
    }

    #[test]
    fn output_is_a_local_optimum() {
        // The final descent means no single move improves the result.
        let oracle = figure1_oracle();
        let result = simulated_annealing(&oracle, &AnnealingParams::default());
        let base = correlation_cost(&oracle, &result);
        let k = result.num_clusters();
        for v in 0..6 {
            for target in 0..=k {
                if target == result.label(v) as usize {
                    continue;
                }
                let mut labels = result.labels().to_vec();
                labels[v] = target as u32;
                let moved = Clustering::from_labels(labels);
                assert!(correlation_cost(&oracle, &moved) >= base - 1e-9);
            }
        }
    }

    #[test]
    fn tiny_instances() {
        let o0 = DenseOracle::from_fn(0, |_, _| 0.0);
        assert_eq!(
            simulated_annealing(&o0, &AnnealingParams::default()).len(),
            0
        );
        let o1 = DenseOracle::from_fn(1, |_, _| 0.0);
        assert_eq!(
            simulated_annealing(&o1, &AnnealingParams::default()).num_clusters(),
            1
        );
    }

    #[test]
    fn budgeted_unlimited_is_no_worse_than_legacy() {
        let oracle = figure1_oracle();
        let params = AnnealingParams::default();
        let outcome =
            simulated_annealing_budgeted(&oracle, &params, &RunBudget::unlimited()).unwrap();
        assert!(outcome.status.is_converged());
        // The budgeted path takes min(descended, best snapshot), so it can
        // only improve on the legacy result.
        assert!(
            correlation_cost(&oracle, &outcome.clustering)
                <= correlation_cost(&oracle, &simulated_annealing(&oracle, &params)) + 1e-9
        );
    }

    #[test]
    fn budget_trip_is_no_worse_than_singletons() {
        let oracle = figure1_oracle();
        let tight = RunBudget::unlimited().with_max_iters(7);
        let outcome =
            simulated_annealing_budgeted(&oracle, &AnnealingParams::default(), &tight).unwrap();
        assert_eq!(outcome.status, crate::robust::RunStatus::BudgetExceeded);
        assert_eq!(outcome.clustering.len(), 6);
        assert!(
            correlation_cost(&oracle, &outcome.clustering)
                <= correlation_cost(&oracle, &Clustering::singletons(6)) + 1e-9
        );
    }

    #[test]
    fn bad_cooling_is_a_typed_error() {
        let oracle = figure1_oracle();
        let params = AnnealingParams {
            cooling: 1.5,
            ..Default::default()
        };
        let err =
            simulated_annealing_budgeted(&oracle, &params, &RunBudget::unlimited()).unwrap_err();
        assert!(matches!(err, AggError::InvalidParameter { .. }));
    }
}
