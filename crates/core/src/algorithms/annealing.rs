//! Simulated annealing for clustering aggregation — the approach of Filkov
//! & Skiena (reference [13] of the paper, which "proposes a simulated
//! annealing algorithm for finding an aggregate solution and a local search
//! algorithm similar to ours").
//!
//! Included as the related-work comparator: it explores the same move set
//! as LOCALSEARCH (move one node to another cluster or to a fresh
//! singleton) but accepts uphill moves with probability
//! `exp(−Δ/T)` under a geometric cooling schedule, so it can escape the
//! local optima LOCALSEARCH stops at. A final zero-temperature descent
//! guarantees the output is itself a single-move local optimum.

use crate::algorithms::local_search::local_search_from;
use crate::clustering::Clustering;
use crate::instance::DistanceOracle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`simulated_annealing`].
#[derive(Clone, Debug)]
pub struct AnnealingParams {
    /// Initial temperature (in units of the per-pair cost, which is `O(n)`
    /// per move; `1.0` is a conservative default).
    pub initial_temperature: f64,
    /// Multiplicative cooling factor per sweep, in `(0, 1)`.
    pub cooling: f64,
    /// Number of sweeps (each sweep proposes `n` random moves).
    pub sweeps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealingParams {
    fn default() -> Self {
        AnnealingParams {
            initial_temperature: 1.0,
            cooling: 0.95,
            sweeps: 100,
            seed: 0,
        }
    }
}

/// Run simulated annealing from the all-singletons start, followed by a
/// zero-temperature LOCALSEARCH descent.
pub fn simulated_annealing<O: DistanceOracle + Sync + ?Sized>(
    oracle: &O,
    params: &AnnealingParams,
) -> Clustering {
    let n = oracle.len();
    if n <= 1 {
        return Clustering::singletons(n);
    }
    assert!(
        params.cooling > 0.0 && params.cooling < 1.0,
        "cooling factor must be in (0, 1)"
    );
    let mut rng = StdRng::seed_from_u64(params.seed);

    // State: labels + sizes; fresh singleton labels appended at the end.
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut sizes: Vec<usize> = vec![1; n];
    let mut temperature = params.initial_temperature;

    // Move cost delta for node v → cluster `target` (usize::MAX = fresh
    // singleton), computed through the LOCALSEARCH M-sums in O(n).
    let mut m_sums: Vec<f64> = Vec::new();
    for _sweep in 0..params.sweeps {
        for _ in 0..n {
            let v = rng.gen_range(0..n);
            let k = sizes.len();
            m_sums.clear();
            m_sums.resize(k, 0.0);
            let mut t_v = 0.0;
            for u in 0..n {
                if u != v {
                    let x = oracle.dist(v, u);
                    m_sums[labels[u] as usize] += x;
                    t_v += x;
                }
            }
            let cur = labels[v] as usize;
            let others = (n - 1) as f64;
            let cost_of = |i: usize| -> f64 {
                let size_wo_v = sizes[i] - usize::from(i == cur);
                2.0 * m_sums[i] - t_v + others - size_wo_v as f64
            };
            let cur_cost = cost_of(cur);

            // Propose: random existing non-empty cluster or a singleton.
            let target = if rng.gen_bool(0.2) {
                usize::MAX
            } else {
                // Rejection-sample a non-empty cluster different from cur.
                let mut t = rng.gen_range(0..k);
                let mut guard = 0;
                while (sizes[t] == 0 || t == cur) && guard < 4 * k {
                    t = rng.gen_range(0..k);
                    guard += 1;
                }
                if sizes[t] == 0 || t == cur {
                    continue;
                }
                t
            };
            let new_cost = if target == usize::MAX {
                others - t_v
            } else {
                cost_of(target)
            };
            let delta = new_cost - cur_cost;
            let accept = delta < 0.0
                || (temperature > 0.0 && rng.gen::<f64>() < (-delta / temperature).exp());
            if !accept {
                continue;
            }
            // Apply the move.
            sizes[cur] -= 1;
            let dest = if target == usize::MAX {
                if sizes[cur] == 0 {
                    cur // moving a singleton to a fresh singleton: no-op
                } else {
                    sizes.push(0);
                    sizes.len() - 1
                }
            } else {
                target
            };
            sizes[dest] += 1;
            labels[v] = dest as u32;
        }
        temperature *= params.cooling;
    }

    // Zero-temperature descent to a guaranteed local optimum.
    let annealed = Clustering::from_labels(labels);
    local_search_from(oracle, &annealed, 200, 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::correlation_cost;
    use crate::exact::optimal_clustering;
    use crate::instance::DenseOracle;

    fn c(labels: &[u32]) -> Clustering {
        Clustering::from_labels(labels.to_vec())
    }

    fn figure1_oracle() -> DenseOracle {
        DenseOracle::from_clusterings(&[
            c(&[0, 0, 1, 1, 2, 2]),
            c(&[0, 1, 0, 1, 2, 3]),
            c(&[0, 1, 0, 1, 2, 2]),
        ])
    }

    #[test]
    fn finds_the_figure1_optimum() {
        let oracle = figure1_oracle();
        let result = simulated_annealing(&oracle, &AnnealingParams::default());
        assert_eq!(result, c(&[0, 1, 0, 1, 2, 2]));
    }

    #[test]
    fn matches_exact_optimum_on_small_instances() {
        for seed in 0..5u64 {
            let inputs = vec![
                c(&[0, 1, 1, 0, 2, 2, 0]),
                c(&[0, 0, 1, 1, 2, 2, 1]),
                c(&[0, 1, 0, 1, 2, 0, 2]),
            ];
            let oracle = DenseOracle::from_clusterings(&inputs);
            let opt = optimal_clustering(&oracle).cost;
            let params = AnnealingParams {
                seed,
                ..Default::default()
            };
            let cost = correlation_cost(&oracle, &simulated_annealing(&oracle, &params));
            assert!(cost <= opt + 0.35, "seed {seed}: {cost} vs opt {opt}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let oracle = figure1_oracle();
        let p = AnnealingParams {
            seed: 11,
            sweeps: 30,
            ..Default::default()
        };
        assert_eq!(
            simulated_annealing(&oracle, &p),
            simulated_annealing(&oracle, &p)
        );
    }

    #[test]
    fn output_is_a_local_optimum() {
        // The final descent means no single move improves the result.
        let oracle = figure1_oracle();
        let result = simulated_annealing(&oracle, &AnnealingParams::default());
        let base = correlation_cost(&oracle, &result);
        let k = result.num_clusters();
        for v in 0..6 {
            for target in 0..=k {
                if target == result.label(v) as usize {
                    continue;
                }
                let mut labels = result.labels().to_vec();
                labels[v] = target as u32;
                let moved = Clustering::from_labels(labels);
                assert!(correlation_cost(&oracle, &moved) >= base - 1e-9);
            }
        }
    }

    #[test]
    fn tiny_instances() {
        let o0 = DenseOracle::from_fn(0, |_, _| 0.0);
        assert_eq!(
            simulated_annealing(&o0, &AnnealingParams::default()).len(),
            0
        );
        let o1 = DenseOracle::from_fn(1, |_, _| 0.0);
        assert_eq!(
            simulated_annealing(&o1, &AnnealingParams::default()).num_clusters(),
            1
        );
    }
}
