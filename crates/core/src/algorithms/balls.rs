//! The BALLS algorithm — the paper's combinatorial 3-approximation for
//! correlation clustering with triangle-inequality distances (Theorem 1).
//!
//! The intuition: good clusters are ball-shaped, because the cost function
//! penalizes long uncut edges. The algorithm repeatedly picks an unclustered
//! vertex `u`, looks at the "ball" `S` of unclustered vertices within
//! distance ½ of `u`, and turns `S ∪ {u}` into a cluster if the *average*
//! distance from `u` to `S` is at most `α`; otherwise `u` becomes a
//! singleton. The triangle inequality guarantees members of a tight ball are
//! pairwise close.
//!
//! With `α = ¼` the cost is at most 3× optimal — an improvement over the
//! 9-approximation known before the paper. The paper observes `α = ¼`
//! produces many singletons on real data and recommends `α = ⅖`; both are
//! provided as constructors.

use crate::clustering::Clustering;
use crate::error::{AggError, AggResult};
use crate::instance::DistanceOracle;
use crate::parallel;
use crate::robust::{RunBudget, RunOutcome, RunStatus};
use crate::telemetry;

/// Minimum number of candidate vertices in a ball scan before the distance
/// lookups are farmed out to worker threads; below this the serial loop is
/// faster. The threshold cannot affect results — both paths compute the
/// same distances and accumulate them in the same order.
const SCAN_PAR_MIN: usize = 4096;

/// The order in which BALLS visits vertices. The paper sorts by increasing
/// total incident weight ("a heuristic that we observed to work well in
/// practice"); the alternatives exist to quantify that choice (see the
/// `ablations` binary).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BallsOrdering {
    /// Increasing total incident edge weight — the paper's heuristic.
    #[default]
    IncreasingWeight,
    /// Decreasing total incident edge weight (the adversarial flip).
    DecreasingWeight,
    /// Natural index order (no preprocessing pass).
    Index,
}

/// Parameters for [`balls`]. The only parameterized algorithm in the paper.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BallsParams {
    /// Average-distance threshold `α` for accepting a ball as a cluster.
    pub alpha: f64,
    /// Vertex visit order.
    pub ordering: BallsOrdering,
}

impl BallsParams {
    /// The theoretical setting `α = ¼` achieving the 3-approximation.
    pub fn theoretical() -> Self {
        Self::with_alpha(0.25)
    }

    /// The practical setting `α = ⅖` the paper recommends for real data.
    pub fn practical() -> Self {
        Self::with_alpha(0.4)
    }

    /// Custom `α ∈ [0, 1]` with the paper's ordering.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `[0, 1]`.
    pub fn with_alpha(alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha {alpha} out of [0,1]");
        BallsParams {
            alpha,
            ordering: BallsOrdering::IncreasingWeight,
        }
    }

    /// Override the vertex visit order.
    pub fn with_ordering(mut self, ordering: BallsOrdering) -> Self {
        self.ordering = ordering;
        self
    }
}

impl Default for BallsParams {
    /// Defaults to the practical `α = ⅖`.
    fn default() -> Self {
        BallsParams::practical()
    }
}

/// Run the BALLS algorithm.
///
/// Vertices are visited in increasing order of total incident edge weight
/// (the heuristic the paper reports working well); each visit either carves
/// out the ball around the vertex or emits a singleton. `O(n²)` oracle
/// lookups after the `O(n²)` ordering pass.
pub fn balls<O: DistanceOracle + Sync + ?Sized>(oracle: &O, params: BallsParams) -> Clustering {
    let (labels, _, _) = run(oracle, params, &RunBudget::unlimited());
    Clustering::from_labels(labels)
}

/// Budgeted BALLS: validates `alpha` as a typed error instead of panicking
/// and honors a [`RunBudget`] with anytime semantics. One budget iteration
/// per vertex visit (each is an `O(n)` ball scan). On a budget trip the
/// vertices not yet visited become fresh singletons, so the result is always
/// a complete, valid clustering.
pub fn balls_budgeted<O: DistanceOracle + Sync + ?Sized>(
    oracle: &O,
    params: BallsParams,
    budget: &RunBudget,
) -> AggResult<RunOutcome> {
    if !(0.0..=1.0).contains(&params.alpha) {
        return Err(AggError::invalid_parameter(
            "alpha",
            format!("{} out of [0,1]", params.alpha),
        ));
    }
    let (labels, status, iterations) = run(oracle, params, budget);
    Ok(RunOutcome {
        clustering: Clustering::from_labels(labels),
        status,
        iterations,
    })
}

/// Shared engine behind [`balls`] and [`balls_budgeted`]. Returns raw labels
/// plus how the run ended; every label is assigned on every path.
fn run<O: DistanceOracle + Sync + ?Sized>(
    oracle: &O,
    params: BallsParams,
    budget: &RunBudget,
) -> (Vec<u32>, RunStatus, u64) {
    let n = oracle.len();
    let _span = crate::span!("balls", n = n, alpha = params.alpha);
    if n == 0 {
        return (Vec::new(), RunStatus::Converged, 0);
    }
    let mut meter = budget.meter();

    // Establish the visit order (the paper: increasing incident weight).
    // Each vertex weight is an independent full-row sum, computed in
    // parallel; accumulation order within a row is fixed (ascending v), so
    // the keys — and the sort — are identical at any thread count.
    let mut order: Vec<usize> = (0..n).collect();
    if params.ordering != BallsOrdering::Index {
        let mut weight = vec![0.0f64; n];
        parallel::fill_slice(&mut weight, |u| {
            let mut w = 0.0;
            for v in 0..n {
                if v != u {
                    w += oracle.dist(u, v);
                }
            }
            w
        });
        order.sort_by(|&a, &b| {
            let cmp = weight[a]
                .partial_cmp(&weight[b])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b));
            if params.ordering == BallsOrdering::DecreasingWeight {
                cmp.reverse()
            } else {
                cmp
            }
        });
    }

    let mut labels = vec![u32::MAX; n];
    let mut next_label = 0u32;

    // The ordering pass above is O(n) per vertex; account for it in bulk.
    // If the budget is already blown, every vertex becomes a singleton —
    // the only valid anytime answer before any ball has been carved.
    if params.ordering != BallsOrdering::Index {
        if let Err(interrupt) = meter.tick_n(n as u64) {
            return (
                finish_singletons(labels, next_label),
                interrupt.status(),
                meter.iterations(),
            );
        }
    }

    let mut ball: Vec<usize> = Vec::new();
    let mut candidates: Vec<usize> = Vec::new();
    let mut cand_dist: Vec<f64> = Vec::new();

    let mut heartbeat = telemetry::Heartbeat::new("balls", n as u64).with_budget(budget);
    for (visited, &u) in order.iter().enumerate() {
        heartbeat.tick(visited as u64);
        if labels[u] != u32::MAX {
            continue;
        }
        if let Err(interrupt) = meter.tick() {
            return (
                finish_singletons(labels, next_label),
                interrupt.status(),
                meter.iterations(),
            );
        }
        // Collect unclustered vertices within distance ½ of u. For large
        // candidate sets the distance lookups run in parallel into a row
        // buffer; membership and the average are then accumulated serially
        // in ascending v order, matching the small-instance path exactly.
        ball.clear();
        let mut total = 0.0;
        candidates.clear();
        candidates.extend(
            labels
                .iter()
                .enumerate()
                .filter(|&(v, &label)| v != u && label == u32::MAX)
                .map(|(v, _)| v),
        );
        if candidates.len() >= SCAN_PAR_MIN {
            cand_dist.clear();
            cand_dist.resize(candidates.len(), 0.0);
            let candidates = &candidates;
            parallel::fill_slice(&mut cand_dist, |i| oracle.dist(u, candidates[i]));
            for (&v, &d) in candidates.iter().zip(&cand_dist) {
                if d <= 0.5 {
                    ball.push(v);
                    total += d;
                }
            }
        } else {
            for &v in &candidates {
                let d = oracle.dist(u, v);
                if d <= 0.5 {
                    ball.push(v);
                    total += d;
                }
            }
        }
        let label = next_label;
        next_label += 1;
        labels[u] = label;
        if !ball.is_empty() && total / ball.len() as f64 <= params.alpha {
            for &v in &ball {
                labels[v] = label;
            }
            if telemetry::metrics_enabled() {
                telemetry::metrics().balls_formed.incr();
            }
        }
        // Otherwise u stays a singleton and the ball members remain
        // unclustered for later iterations.
    }

    (labels, RunStatus::Converged, meter.iterations())
}

/// Complete a partially-labelled vector by making every unvisited vertex a
/// fresh singleton, continuing the label counter.
fn finish_singletons(mut labels: Vec<u32>, mut next_label: u32) -> Vec<u32> {
    for label in labels.iter_mut().filter(|label| **label == u32::MAX) {
        *label = next_label;
        next_label += 1;
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::correlation_cost;
    use crate::instance::DenseOracle;

    fn c(labels: &[u32]) -> Clustering {
        Clustering::from_labels(labels.to_vec())
    }

    fn figure1_oracle() -> DenseOracle {
        DenseOracle::from_clusterings(&[
            c(&[0, 0, 1, 1, 2, 2]),
            c(&[0, 1, 0, 1, 2, 3]),
            c(&[0, 1, 0, 1, 2, 2]),
        ])
    }

    #[test]
    fn recovers_figure1_optimum_with_practical_alpha() {
        let result = balls(&figure1_oracle(), BallsParams::practical());
        assert_eq!(result, c(&[0, 1, 0, 1, 2, 2]));
    }

    #[test]
    fn perfect_consensus_is_reproduced() {
        // All inputs agree → X is 0/1 and BALLS must return the consensus.
        let consensus = c(&[0, 0, 0, 1, 1, 2]);
        let oracle = DenseOracle::from_clusterings(&[
            consensus.clone(),
            consensus.clone(),
            consensus.clone(),
        ]);
        for alpha in [0.25, 0.4] {
            assert_eq!(balls(&oracle, BallsParams::with_alpha(alpha)), consensus);
        }
    }

    #[test]
    fn all_far_apart_yields_singletons() {
        // Every pair at distance 1 → each vertex is alone in its ball.
        let oracle = DenseOracle::from_fn(5, |_, _| 1.0);
        let result = balls(&oracle, BallsParams::theoretical());
        assert_eq!(result, Clustering::singletons(5));
    }

    #[test]
    fn tight_alpha_makes_more_singletons() {
        // A ball whose average distance is between ¼ and ⅖: accepted at
        // α = 0.4, rejected at α = 0.25.
        let mut oracle = DenseOracle::from_fn(4, |_, _| 1.0);
        // Vertex 0 close-ish to 1, 2, 3 at distance 0.3.
        oracle.set(0, 1, 0.3);
        oracle.set(0, 2, 0.3);
        oracle.set(0, 3, 0.3);
        oracle.set(1, 2, 0.6);
        oracle.set(1, 3, 0.6);
        oracle.set(2, 3, 0.6);
        let loose = balls(&oracle, BallsParams::practical());
        assert_eq!(loose.num_clusters(), 1);
        let tight = balls(&oracle, BallsParams::theoretical());
        assert_eq!(tight, Clustering::singletons(4));
    }

    #[test]
    fn orderings_all_produce_valid_clusterings() {
        let oracle = figure1_oracle();
        for ordering in [
            BallsOrdering::IncreasingWeight,
            BallsOrdering::DecreasingWeight,
            BallsOrdering::Index,
        ] {
            let result = balls(&oracle, BallsParams::practical().with_ordering(ordering));
            assert_eq!(result.len(), 6);
            // On this easy instance every ordering still finds the optimum.
            assert_eq!(result, c(&[0, 1, 0, 1, 2, 2]), "{ordering:?}");
        }
    }

    #[test]
    fn cost_never_below_lower_bound() {
        let oracle = figure1_oracle();
        let result = balls(&oracle, BallsParams::default());
        assert!(correlation_cost(&oracle, &result) >= crate::cost::lower_bound(&oracle) - 1e-12);
    }

    #[test]
    fn empty_instance() {
        let oracle = DenseOracle::from_fn(0, |_, _| 0.0);
        assert_eq!(balls(&oracle, BallsParams::default()).len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn alpha_validation() {
        let _ = BallsParams::with_alpha(1.5);
    }

    #[test]
    fn budgeted_unlimited_matches_unbudgeted() {
        let oracle = figure1_oracle();
        let outcome = balls_budgeted(
            &oracle,
            BallsParams::practical(),
            &crate::robust::RunBudget::unlimited(),
        )
        .unwrap();
        assert_eq!(outcome.clustering, balls(&oracle, BallsParams::practical()));
        assert_eq!(outcome.status, crate::robust::RunStatus::Converged);
    }

    #[test]
    fn budget_trip_yields_complete_clustering() {
        let oracle = figure1_oracle();
        let tight = crate::robust::RunBudget::unlimited().with_max_iters(1);
        let outcome = balls_budgeted(&oracle, BallsParams::practical(), &tight).unwrap();
        assert_eq!(outcome.status, crate::robust::RunStatus::BudgetExceeded);
        // Every vertex carries a label — unvisited ones became singletons.
        assert_eq!(outcome.clustering.len(), 6);
    }

    #[test]
    fn bad_alpha_is_a_typed_error() {
        let oracle = figure1_oracle();
        let params = BallsParams {
            alpha: f64::NAN,
            ordering: BallsOrdering::Index,
        };
        let err =
            balls_budgeted(&oracle, params, &crate::robust::RunBudget::unlimited()).unwrap_err();
        assert!(matches!(
            err,
            crate::error::AggError::InvalidParameter { .. }
        ));
    }
}
