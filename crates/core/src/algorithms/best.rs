//! The BESTCLUSTERING algorithm: return the input clustering closest to all
//! others.
//!
//! Because the disagreement distance `d_V` satisfies the triangle inequality
//! (paper Observation 1), the best of the `m` inputs is a
//! `2(1 − 1/m)`-approximation to the optimal aggregate — the classic
//! "best medoid" argument. The bound is tight (the paper's full version
//! exhibits a matching instance), and the paper notes the solution is often
//! unintuitive in practice; it is included as the baseline it is.
//!
//! This is the only algorithm that needs the input clusterings themselves
//! rather than a distance oracle, so it is not part of
//! [`crate::algorithms::Algorithm`].

use crate::clustering::Clustering;
use crate::distance::total_disagreement;

/// Result of [`best_clustering`]: the winning input and its objective value.
#[derive(Clone, Debug)]
pub struct BestClusteringResult {
    /// Index of the chosen clustering among the inputs.
    pub index: usize,
    /// The chosen clustering.
    pub clustering: Clustering,
    /// Its total disagreement `D(C_i) = Σ_j d_V(C_j, C_i)`.
    pub cost: u64,
}

/// Pick the input clustering `C_i` minimizing `D(C_i) = Σ_j d_V(C_j, C_i)`.
///
/// Runs in `O(m² · (n + k²))` using the contingency-table distance; ties are
/// broken toward the smallest index.
///
/// # Panics
/// Panics if `inputs` is empty.
pub fn best_clustering(inputs: &[Clustering]) -> BestClusteringResult {
    assert!(!inputs.is_empty(), "need at least one input clustering");
    let _span = crate::span!("best_clustering", m = inputs.len());
    let mut best_index = 0;
    let mut best_cost = u64::MAX;
    for (i, c) in inputs.iter().enumerate() {
        let cost = total_disagreement(inputs, c);
        if cost < best_cost {
            best_cost = cost;
            best_index = i;
        }
    }
    BestClusteringResult {
        index: best_index,
        clustering: inputs[best_index].clone(),
        cost: best_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(labels: &[u32]) -> Clustering {
        Clustering::from_labels(labels.to_vec())
    }

    #[test]
    fn picks_the_central_clustering() {
        // Two identical clusterings and one outlier: an identical one wins.
        let a = c(&[0, 0, 1, 1]);
        let b = c(&[0, 0, 1, 1]);
        let outlier = c(&[0, 1, 2, 3]);
        let res = best_clustering(&[a.clone(), b, outlier]);
        assert_eq!(res.clustering, a);
        assert!(res.index <= 1);
    }

    #[test]
    fn figure1_best_input() {
        // Of the three Figure-1 inputs, C3 = {{v1,v3},{v2,v4},{v5,v6}} is
        // itself the global optimum (D = 5), so BESTCLUSTERING finds it.
        let inputs = vec![
            c(&[0, 0, 1, 1, 2, 2]),
            c(&[0, 1, 0, 1, 2, 3]),
            c(&[0, 1, 0, 1, 2, 2]),
        ];
        let res = best_clustering(&inputs);
        assert_eq!(res.index, 2);
        assert_eq!(res.cost, 5);
    }

    #[test]
    fn single_input_is_returned_verbatim() {
        let only = c(&[0, 1, 0, 2]);
        let res = best_clustering(std::slice::from_ref(&only));
        assert_eq!(res.clustering, only);
        assert_eq!(res.cost, 0);
    }

    #[test]
    fn cost_matches_total_disagreement() {
        let inputs = vec![c(&[0, 0, 1]), c(&[0, 1, 1]), c(&[0, 1, 2])];
        let res = best_clustering(&inputs);
        assert_eq!(res.cost, total_disagreement(&inputs, &res.clustering));
    }
}
