//! The FURTHEST algorithm: top-down partitioning by furthest-first
//! traversal.
//!
//! Inspired by Hochbaum & Shmoys' furthest-first 2-approximation for
//! `p`-centers, the algorithm grows a set of cluster centers: start with the
//! two most distant nodes, then repeatedly add the node furthest from the
//! existing centers (maximizing the minimum distance to them). After each
//! center addition every node is assigned to the center incurring the least
//! cost, the correlation cost of the new solution is computed, and the
//! algorithm stops — returning the *previous* solution — as soon as the cost
//! fails to improve.
//!
//! `O(k·n)` oracle lookups for assignments plus `O(k·Σs_i²)` for the
//! incremental cost evaluations, where `k` is the number of centers tried.

use crate::clustering::Clustering;
use crate::cost::within_cost;
use crate::error::AggResult;
use crate::instance::DistanceOracle;
use crate::parallel;
use crate::robust::{RunBudget, RunOutcome, RunStatus};
use crate::telemetry;

/// Parameters for [`furthest`].
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct FurthestParams {
    /// Upper bound on the number of centers to try (`None` = up to `n`).
    /// The paper's algorithm is unbounded; the cap is an engineering guard
    /// for degenerate instances.
    pub max_centers: Option<usize>,
    /// Force exactly this many clusters: keep adding centers (ignoring the
    /// cost-improvement stopping rule) until `k` centers exist, then return
    /// that assignment — the paper's "user insists on a predefined number
    /// of clusters" modification.
    pub num_clusters: Option<usize>,
}

impl FurthestParams {
    /// Force exactly `k` output clusters.
    pub fn with_num_clusters(k: usize) -> Self {
        FurthestParams {
            max_centers: None,
            num_clusters: Some(k),
        }
    }
}

/// Run the FURTHEST algorithm.
///
/// The `O(n²)` furthest-pair search, the per-round nearest-center
/// assignments, the candidate cost evaluations, and the `min_dist` updates
/// all run in parallel (see [`crate::parallel`]); tie-breaks match the
/// serial strict-comparison scans exactly, so the result is identical at
/// any thread count.
pub fn furthest<O: DistanceOracle + Sync + ?Sized>(
    oracle: &O,
    params: FurthestParams,
) -> Clustering {
    let (clustering, _, _) = run(oracle, params, &RunBudget::unlimited());
    clustering
}

/// Budgeted FURTHEST with anytime semantics. One budget iteration per
/// center round (each is at least `O(n)` work); the `O(n²)` furthest-pair
/// search is metered in bulk. The algorithm already tracks the
/// best-cost-so-far solution, which doubles as the anytime result — never
/// worse than the one-cluster start it is seeded with.
pub fn furthest_budgeted<O: DistanceOracle + Sync + ?Sized>(
    oracle: &O,
    params: FurthestParams,
    budget: &RunBudget,
) -> AggResult<RunOutcome> {
    let (clustering, status, iterations) = run(oracle, params, budget);
    Ok(RunOutcome {
        clustering,
        status,
        iterations,
    })
}

/// Shared engine behind [`furthest`] and [`furthest_budgeted`].
fn run<O: DistanceOracle + Sync + ?Sized>(
    oracle: &O,
    params: FurthestParams,
    budget: &RunBudget,
) -> (Clustering, RunStatus, u64) {
    let n = oracle.len();
    let _span = crate::span!("furthest", n = n, fixed_k = params.num_clusters.is_some());
    if n == 0 {
        return (Clustering::from_labels(Vec::new()), RunStatus::Converged, 0);
    }
    if n == 1 {
        return (Clustering::one_cluster(1), RunStatus::Converged, 0);
    }
    let fixed_k = params.num_clusters;
    if fixed_k == Some(1) {
        return (Clustering::one_cluster(n), RunStatus::Converged, 0);
    }
    let cap = fixed_k
        .unwrap_or_else(|| params.max_centers.unwrap_or(n))
        .clamp(2, n);
    let mut meter = budget.meter();

    // The cost comparison only needs the C-dependent "within" term
    // Σ_{same-cluster pairs} (2X − 1); the Σ(1−X) base is constant.
    let mut best = Clustering::one_cluster(n);
    let mut best_within = within_cost(oracle, &best);

    // The furthest-pair search is an O(n²) block; account for it as n
    // units. Tripping here means the one-cluster seed is the result.
    if let Err(interrupt) = meter.tick_n(n as u64) {
        return (best, interrupt.status(), meter.iterations());
    }

    // First two centers: the furthest-apart pair (earliest pair on ties,
    // like the serial strict-`>` scan). n >= 2 here, so a pair always
    // exists; the fallback only avoids a panic path.
    let (ca, cb, _) = parallel::max_pair(n, |u, v| oracle.dist(u, v)).unwrap_or((0, 1, 0.0));
    let mut centers: Vec<usize> = vec![ca, cb];
    telemetry::metrics().furthest_centers.add_if_enabled(2);
    // min_dist[v] = distance from v to its nearest center (for picking the
    // next center in O(n) per round).
    let mut min_dist: Vec<f64> = vec![0.0; n];
    parallel::fill_slice(&mut min_dist, |v| {
        oracle.dist(v, ca).min(oracle.dist(v, cb))
    });

    let mut heartbeat = telemetry::Heartbeat::new("furthest", cap as u64).with_budget(budget);
    loop {
        heartbeat.tick(centers.len() as u64);
        if let Err(interrupt) = meter.tick() {
            return (best, interrupt.status(), meter.iterations());
        }
        // Assign every node to the nearest center (ties → earliest center).
        let mut labels = vec![0u32; n];
        {
            let centers = &centers;
            parallel::fill_slice(&mut labels, |v| {
                let mut best_c = 0usize;
                let mut best_d = f64::INFINITY;
                for (ci, &c) in centers.iter().enumerate() {
                    let d = oracle.dist(v, c);
                    if d < best_d {
                        best_d = d;
                        best_c = ci;
                    }
                }
                best_c as u32
            });
        }
        let candidate = Clustering::from_labels(labels);
        let cand_within = within_cost(oracle, &candidate);

        if fixed_k.is_some() {
            // Fixed-k mode: always keep the latest assignment; stop only
            // when k centers exist.
            best = candidate;
            best_within = cand_within;
        } else if cand_within < best_within {
            best = candidate;
            best_within = cand_within;
        } else {
            // No improvement: output the previous step's solution.
            break;
        }

        if centers.len() >= cap {
            break;
        }
        // Next center: the node furthest from all existing centers.
        let mut next = usize::MAX;
        let mut next_d = -1.0;
        for (v, &d) in min_dist.iter().enumerate() {
            if d > next_d && !centers.contains(&v) {
                next_d = d;
                next = v;
            }
        }
        if next == usize::MAX || next_d <= 0.0 {
            // Every remaining node coincides with a center; no split helps.
            break;
        }
        centers.push(next);
        telemetry::metrics().furthest_centers.incr_if_enabled();
        parallel::update_slice(&mut min_dist, |v, slot| {
            let d = oracle.dist(v, next);
            if d < *slot {
                *slot = d;
            }
        });
    }

    (best, RunStatus::Converged, meter.iterations())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::correlation_cost;
    use crate::instance::DenseOracle;

    fn c(labels: &[u32]) -> Clustering {
        Clustering::from_labels(labels.to_vec())
    }

    fn figure1_oracle() -> DenseOracle {
        DenseOracle::from_clusterings(&[
            c(&[0, 0, 1, 1, 2, 2]),
            c(&[0, 1, 0, 1, 2, 3]),
            c(&[0, 1, 0, 1, 2, 2]),
        ])
    }

    #[test]
    fn recovers_figure1_optimum() {
        let result = furthest(&figure1_oracle(), FurthestParams::default());
        assert_eq!(result, c(&[0, 1, 0, 1, 2, 2]));
    }

    #[test]
    fn perfect_consensus_is_reproduced() {
        let consensus = c(&[0, 0, 0, 1, 1, 2, 2, 2]);
        let oracle = DenseOracle::from_clusterings(&[consensus.clone(), consensus.clone()]);
        assert_eq!(furthest(&oracle, FurthestParams::default()), consensus);
    }

    #[test]
    fn all_identical_stays_one_cluster() {
        // X ≡ 0: splitting anything only costs; keep the single cluster.
        let oracle = DenseOracle::from_fn(5, |_, _| 0.0);
        assert_eq!(
            furthest(&oracle, FurthestParams::default()),
            Clustering::one_cluster(5)
        );
    }

    #[test]
    fn never_worse_than_one_cluster() {
        let oracle = figure1_oracle();
        let result = furthest(&oracle, FurthestParams::default());
        assert!(
            correlation_cost(&oracle, &result)
                <= correlation_cost(&oracle, &Clustering::one_cluster(6)) + 1e-9
        );
    }

    #[test]
    fn max_centers_cap_respected() {
        let oracle = figure1_oracle();
        let result = furthest(
            &oracle,
            FurthestParams {
                max_centers: Some(2),
                num_clusters: None,
            },
        );
        assert!(result.num_clusters() <= 2);
    }

    #[test]
    fn fixed_k_variant() {
        let oracle = figure1_oracle();
        for k in 1..=5 {
            let result = furthest(&oracle, FurthestParams::with_num_clusters(k));
            assert_eq!(result.num_clusters(), k, "k = {k}");
        }
    }

    #[test]
    fn tiny_instances() {
        let o0 = DenseOracle::from_fn(0, |_, _| 0.0);
        assert_eq!(furthest(&o0, FurthestParams::default()).len(), 0);
        let o1 = DenseOracle::from_fn(1, |_, _| 0.0);
        assert_eq!(furthest(&o1, FurthestParams::default()).num_clusters(), 1);
        let o2 = DenseOracle::from_fn(2, |_, _| 1.0);
        let r2 = furthest(&o2, FurthestParams::default());
        assert_eq!(r2.num_clusters(), 2);
    }

    #[test]
    fn budgeted_unlimited_matches_unbudgeted() {
        let oracle = figure1_oracle();
        let outcome =
            furthest_budgeted(&oracle, FurthestParams::default(), &RunBudget::unlimited()).unwrap();
        assert_eq!(outcome.status, RunStatus::Converged);
        assert_eq!(
            outcome.clustering,
            furthest(&oracle, FurthestParams::default())
        );
    }

    #[test]
    fn budget_trip_returns_best_so_far() {
        let oracle = figure1_oracle();
        // Budget burns out during the furthest-pair search (6 units > 1):
        // the anytime result is the one-cluster seed.
        let tight = RunBudget::unlimited().with_max_iters(1);
        let outcome = furthest_budgeted(&oracle, FurthestParams::default(), &tight).unwrap();
        assert_eq!(outcome.status, RunStatus::BudgetExceeded);
        assert_eq!(outcome.clustering.len(), 6);
        assert!(
            correlation_cost(&oracle, &outcome.clustering)
                <= correlation_cost(&oracle, &Clustering::one_cluster(6)) + 1e-9
        );
    }
}
