//! The LOCALSEARCH algorithm: steepest-descent node moves.
//!
//! Starting from some clustering, repeatedly pick up a node and place it in
//! the cluster (possibly a fresh singleton) minimizing the cost
//!
//! ```text
//! d(v, C_i) = Σ_{u ∈ C_i} X_vu + Σ_{u ∉ C_i} (1 − X_vu),
//! ```
//!
//! until no move improves the solution. The paper computes `d(v, C_i)`
//! through the per-cluster sums `M(v, C_i) = Σ_{u ∈ C_i} X_vu`:
//! with `T_v = Σ_u X_vu` the move cost collapses to
//! `d(v, C_i) = 2·M(v, C_i) − T_v + (n − 1) − |C_i \ {v}|`,
//! so evaluating all clusters for one node costs `O(n)` oracle lookups and
//! a pass over the data is `O(n²)` — matching the paper's `O(I·n²)`.
//!
//! LOCALSEARCH doubles as a post-processing step for any other algorithm
//! (see [`local_search_from`]); the experiments show it improves solutions
//! significantly at the price of many iterations.
//!
//! ## Parallel execution
//!
//! Steepest descent is inherently sequential — every move changes the
//! labels that the next node's evaluation depends on — but the expensive
//! part of a node visit, the `n − 1` oracle lookups `X_vu`, depends only on
//! the (immutable) distances. The implementation therefore prefetches the
//! distance rows for a fixed-size *block* of upcoming nodes in parallel
//! (one big [`crate::parallel::fill_slice`] call amortizes thread
//! dispatch), then replays the nodes serially against the cached rows,
//! accumulating `M(v, C_i)` and `T_v` in the same naive `u` order as the
//! serial code. The move sequence — and hence the result — is bit-identical
//! to a fully serial run at any thread count.

use crate::clustering::Clustering;
use crate::error::{AggError, AggResult};
use crate::instance::DistanceOracle;
use crate::parallel;
use crate::robust::{RunBudget, RunOutcome, RunStatus};
use crate::snapshot::{AlgorithmSnapshot, Checkpointer, LocalSearchSnapshot};
use crate::telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Nodes per prefetched block: large enough that one parallel fill of
/// `ROW_BLOCK · n` distances dwarfs thread-dispatch overhead, small enough
/// to keep the row cache (`ROW_BLOCK · n` f64s) modest.
const ROW_BLOCK: usize = 32;

/// Below this instance size the row cache is skipped entirely: the plain
/// serial loop is faster and produces the same result.
const PREFETCH_MIN_N: usize = 2048;

/// The starting point for [`local_search`].
#[derive(Clone, Debug, Default)]
pub enum LocalSearchInit {
    /// Every node in its own cluster.
    #[default]
    Singletons,
    /// All nodes in one cluster.
    OneCluster,
    /// A uniformly random assignment into `k` clusters.
    Random {
        /// Number of clusters in the random start.
        k: usize,
        /// RNG seed (the algorithm is deterministic given the seed).
        seed: u64,
    },
    /// Start from a given clustering (for standalone use; prefer
    /// [`local_search_from`] when post-processing).
    Given(Clustering),
}

/// Parameters for [`local_search`].
#[derive(Clone, Debug)]
pub struct LocalSearchParams {
    /// Initial clustering.
    pub init: LocalSearchInit,
    /// Safety cap on full passes over the data (the algorithm usually
    /// converges long before; the paper notes `I` tends to be large but
    /// finite).
    pub max_passes: usize,
    /// Minimum cost improvement for a move to be taken (guards against
    /// floating-point oscillation).
    pub epsilon: f64,
}

impl Default for LocalSearchParams {
    fn default() -> Self {
        LocalSearchParams {
            init: LocalSearchInit::Singletons,
            max_passes: 200,
            epsilon: 1e-9,
        }
    }
}

/// Run LOCALSEARCH from the configured initial clustering.
pub fn local_search<O: DistanceOracle + Sync + ?Sized>(
    oracle: &O,
    params: LocalSearchParams,
) -> Clustering {
    let n = oracle.len();
    let start = match &params.init {
        LocalSearchInit::Singletons => Clustering::singletons(n),
        LocalSearchInit::OneCluster => Clustering::one_cluster(n),
        LocalSearchInit::Random { k, seed } => {
            let k = (*k).max(1) as u32;
            let mut rng = StdRng::seed_from_u64(*seed);
            Clustering::from_labels((0..n).map(|_| rng.gen_range(0..k)).collect())
        }
        LocalSearchInit::Given(c) => {
            assert_eq!(c.len(), n, "given clustering does not match the instance");
            c.clone()
        }
    };
    local_search_from(oracle, &start, params.max_passes, params.epsilon)
}

/// Run LOCALSEARCH as a post-processing step from an explicit start.
///
/// Guaranteed never to increase the correlation cost; each accepted move
/// strictly decreases it by more than `epsilon`.
pub fn local_search_from<O: DistanceOracle + Sync + ?Sized>(
    oracle: &O,
    start: &Clustering,
    max_passes: usize,
    epsilon: f64,
) -> Clustering {
    let n = oracle.len();
    assert_eq!(start.len(), n, "clustering does not match the instance");
    if n <= 1 {
        return start.clone();
    }
    let (labels, _, _) = descend(oracle, start, max_passes, epsilon, &RunBudget::unlimited());
    Clustering::from_labels(labels)
}

/// Budget-aware [`local_search`]: validates the parameters and runs the
/// descent under `budget`, returning the best-so-far clustering when the
/// budget trips (see [`local_search_from_budgeted`]).
pub fn local_search_budgeted<O: DistanceOracle + Sync + ?Sized>(
    oracle: &O,
    params: LocalSearchParams,
    budget: &RunBudget,
) -> AggResult<RunOutcome> {
    local_search_resumable(oracle, params, budget, None, None)
}

/// [`local_search_budgeted`] with crash-safe checkpoint/resume.
///
/// A valid `resume` snapshot replaces the configured init entirely — the
/// descent re-enters the pass loop at the exact node where the snapshot was
/// taken, with the budget meter pre-charged so an iteration cap bounds the
/// *total* work across interrupts. A snapshot whose labels do not cover this
/// instance is ignored (fresh run). When `ckpt` is given, state is persisted
/// at its cadence after node visits and once more when the budget trips.
///
/// Resumed runs are **bit-identical** to uninterrupted ones: the snapshot
/// carries the labels, the pass/node cursor, and the pass-level `moved`
/// flag, which together determine every subsequent steepest-descent
/// decision. (Cluster *ids* may differ after a resume when the interrupted
/// run had empty trailing clusters, but [`Clustering::from_labels`]
/// normalizes ids by first occurrence, and move evaluation never depends on
/// id values — only on the relative order of non-empty clusters, which is
/// preserved.)
pub fn local_search_resumable<O: DistanceOracle + Sync + ?Sized>(
    oracle: &O,
    params: LocalSearchParams,
    budget: &RunBudget,
    resume: Option<&LocalSearchSnapshot>,
    ckpt: Option<&mut Checkpointer>,
) -> AggResult<RunOutcome> {
    let n = oracle.len();
    let resume = resume.filter(|s| s.labels.len() == n && s.next_node as usize <= n);
    let (start, rng_state) = if resume.is_some() {
        // The snapshot supersedes the init; the labels inside it are the
        // start. A placeholder keeps the code path uniform.
        (Clustering::singletons(n), resume.map_or([0; 4], |s| s.rng))
    } else {
        match &params.init {
            LocalSearchInit::Singletons => (Clustering::singletons(n), [0; 4]),
            LocalSearchInit::OneCluster => (Clustering::one_cluster(n), [0; 4]),
            LocalSearchInit::Random { k, seed } => {
                let k = (*k).max(1) as u32;
                let mut rng = StdRng::seed_from_u64(*seed);
                let labels = (0..n).map(|_| rng.gen_range(0..k)).collect();
                (Clustering::from_labels(labels), rng.state())
            }
            LocalSearchInit::Given(c) => {
                if c.len() != n {
                    return Err(AggError::invalid_parameter(
                        "init",
                        format!(
                            "given clustering covers {} objects, instance has {n}",
                            c.len()
                        ),
                    ));
                }
                (c.clone(), [0; 4])
            }
        }
    };
    if params.epsilon.is_nan() {
        return Err(AggError::invalid_parameter("epsilon", "must not be NaN"));
    }
    if n <= 1 {
        return Ok(RunOutcome::converged(start));
    }
    let (labels, status, iterations) = descend_resumable(
        oracle,
        &start,
        params.max_passes,
        params.epsilon,
        budget,
        resume,
        ckpt,
        rng_state,
    );
    Ok(RunOutcome {
        clustering: Clustering::from_labels(labels),
        status,
        iterations,
    })
}

/// Budget-aware [`local_search_from`] with **anytime semantics**: every
/// accepted move strictly decreases the correlation cost, so whenever the
/// deadline, iteration cap, or cancel token trips, the current labels are a
/// valid clustering costing no more than `start` — they are returned with
/// [`RunStatus::BudgetExceeded`] / [`RunStatus::Cancelled`] instead of an
/// error. One budget iteration is one node visit (`O(n)` oracle lookups).
pub fn local_search_from_budgeted<O: DistanceOracle + Sync + ?Sized>(
    oracle: &O,
    start: &Clustering,
    max_passes: usize,
    epsilon: f64,
    budget: &RunBudget,
) -> AggResult<RunOutcome> {
    let n = oracle.len();
    if start.len() != n {
        return Err(AggError::invalid_parameter(
            "start",
            format!(
                "clustering covers {} objects, instance has {n}",
                start.len()
            ),
        ));
    }
    if epsilon.is_nan() {
        return Err(AggError::invalid_parameter("epsilon", "must not be NaN"));
    }
    if n <= 1 {
        return Ok(RunOutcome::converged(start.clone()));
    }
    let (labels, status, iterations) = descend(oracle, start, max_passes, epsilon, budget);
    Ok(RunOutcome {
        clustering: Clustering::from_labels(labels),
        status,
        iterations,
    })
}

/// [`local_search_from_budgeted`] with crash-safe checkpoint/resume; the
/// post-processing analogue of [`local_search_resumable`]. A valid `resume`
/// snapshot supersedes `start`.
pub fn local_search_from_resumable<O: DistanceOracle + Sync + ?Sized>(
    oracle: &O,
    start: &Clustering,
    max_passes: usize,
    epsilon: f64,
    budget: &RunBudget,
    resume: Option<&LocalSearchSnapshot>,
    ckpt: Option<&mut Checkpointer>,
) -> AggResult<RunOutcome> {
    let n = oracle.len();
    if start.len() != n {
        return Err(AggError::invalid_parameter(
            "start",
            format!(
                "clustering covers {} objects, instance has {n}",
                start.len()
            ),
        ));
    }
    if epsilon.is_nan() {
        return Err(AggError::invalid_parameter("epsilon", "must not be NaN"));
    }
    if n <= 1 {
        return Ok(RunOutcome::converged(start.clone()));
    }
    let resume = resume.filter(|s| s.labels.len() == n && s.next_node as usize <= n);
    let rng_state = resume.map_or([0; 4], |s| s.rng);
    let (labels, status, iterations) = descend_resumable(
        oracle, start, max_passes, epsilon, budget, resume, ckpt, rng_state,
    );
    Ok(RunOutcome {
        clustering: Clustering::from_labels(labels),
        status,
        iterations,
    })
}

/// The steepest-descent engine shared by the panicking and budgeted entry
/// points. Callers guarantee `start.len() == oracle.len()` and `n >= 2`.
fn descend<O: DistanceOracle + Sync + ?Sized>(
    oracle: &O,
    start: &Clustering,
    max_passes: usize,
    epsilon: f64,
    budget: &RunBudget,
) -> (Vec<u32>, RunStatus, u64) {
    descend_resumable(
        oracle, start, max_passes, epsilon, budget, None, None, [0; 4],
    )
}

/// The descent engine with checkpoint/resume hooks. `resume`, when present,
/// is pre-validated (`labels.len() == n`, `next_node <= n`) and overrides
/// `start`; `rng_state` is stamped into snapshots so a resumed `Random`-init
/// run stays fully determined by the file.
#[allow(clippy::too_many_arguments)]
fn descend_resumable<O: DistanceOracle + Sync + ?Sized>(
    oracle: &O,
    start: &Clustering,
    max_passes: usize,
    epsilon: f64,
    budget: &RunBudget,
    resume: Option<&LocalSearchSnapshot>,
    mut ckpt: Option<&mut Checkpointer>,
    rng_state: [u64; 4],
) -> (Vec<u32>, RunStatus, u64) {
    let n = oracle.len();
    let _span = crate::span!(
        "local_search",
        n = n,
        max_passes = max_passes,
        resuming = resume.is_some()
    );
    // Where to re-enter the loop: (labels, pass, first unvisited node of
    // that pass, `moved` flag carried into it, completed budget iterations).
    let (mut labels, first_pass, resume_node, resumed_moved, done): (Vec<u32>, _, _, _, u64) =
        match resume {
            Some(s) => (
                s.labels.clone(),
                s.pass as usize,
                s.next_node as usize,
                s.moved_in_pass,
                s.iterations,
            ),
            None => (start.labels().to_vec(), 0, 0, false, 0),
        };
    // Cluster sizes, indexed by label; empty slots may appear as nodes move
    // out and are reused only implicitly (fresh singletons get new ids).
    let mut sizes: Vec<usize> = {
        let k = (labels.iter().copied().max().unwrap_or(0) + 1) as usize;
        let mut s = vec![0usize; k];
        for &l in &labels {
            s[l as usize] += 1;
        }
        s
    };

    let prefetch = n >= PREFETCH_MIN_N;
    let block = if prefetch { ROW_BLOCK.min(n) } else { 1 };
    let mut rows: Vec<f64> = if prefetch {
        vec![0.0; block * n]
    } else {
        Vec::new()
    };

    let mut m_sums: Vec<f64> = Vec::new();
    let mut meter = budget.meter_from(done);
    let mut heartbeat = telemetry::Heartbeat::new("local_search", n as u64).with_budget(budget);
    for pass in first_pass..max_passes {
        // The pass in progress when the snapshot was taken resumes its
        // node cursor and its pass-level convergence flag.
        let resuming = pass == first_pass && resume.is_some();
        let skip_before = if resuming { resume_node } else { 0 };
        let mut moved = resuming && resumed_moved;
        let mut block_start = (skip_before.min(n.saturating_sub(1)) / block) * block;
        while block_start < n {
            let block_end = (block_start + block).min(n);
            if prefetch {
                // Prefetch the distance rows of the whole block in one
                // parallel fill; distances never change, so the rows stay
                // valid however the labels move below.
                let width = block_end - block_start;
                parallel::fill_slice(&mut rows[..width * n], |i| {
                    oracle.dist(block_start + i / n, i % n)
                });
            }
            for v in block_start..block_end {
                if v < skip_before {
                    continue;
                }
                // One budget iteration per node visit: each costs O(n)
                // lookups, and the labels between visits always describe a
                // valid clustering no costlier than the start.
                if let Err(interrupt) = meter.tick() {
                    if let Some(c) = ckpt.as_deref_mut() {
                        // Final checkpoint at the interrupt point; `v` has
                        // not been visited, and the failed tick is not
                        // completed work.
                        let _ = c.save_now(AlgorithmSnapshot::LocalSearch(LocalSearchSnapshot {
                            labels: labels.clone(),
                            pass: pass as u64,
                            next_node: v as u64,
                            moved_in_pass: moved,
                            iterations: meter.iterations() - 1,
                            rng: rng_state,
                        }));
                    }
                    return (labels, interrupt.status(), meter.iterations());
                }
                let row = if prefetch {
                    Some(&rows[(v - block_start) * n..(v - block_start + 1) * n])
                } else {
                    None
                };
                if visit_node(
                    oracle,
                    row,
                    v,
                    epsilon,
                    &mut labels,
                    &mut sizes,
                    &mut m_sums,
                ) {
                    moved = true;
                }
                // Progress within the current pass; each pass restarts the
                // cursor, so `done/total` reads as pass completion.
                heartbeat.tick((v + 1) as u64);
                if let Some(c) = ckpt.as_deref_mut() {
                    c.maybe_save(|| {
                        AlgorithmSnapshot::LocalSearch(LocalSearchSnapshot {
                            labels: labels.clone(),
                            pass: pass as u64,
                            next_node: (v + 1) as u64,
                            moved_in_pass: moved,
                            iterations: meter.iterations(),
                            rng: rng_state,
                        })
                    });
                }
            }
            block_start = block_end;
        }
        // Completed passes only, so an interrupt-at-k + resume run counts
        // each pass exactly once — matching the uninterrupted run.
        if telemetry::metrics_enabled() {
            telemetry::metrics().ls_passes.incr();
        }
        if !moved {
            break;
        }
    }

    (labels, RunStatus::Converged, meter.iterations())
}

/// Evaluate all candidate moves for node `v` against the current labels and
/// apply the best strictly improving one. `row`, when present, caches
/// `oracle.dist(v, u)` for all `u`; the accumulation order over `u` is the
/// same either way, so both paths produce bit-identical decisions. Returns
/// `true` if the node moved.
fn visit_node<O: DistanceOracle + ?Sized>(
    oracle: &O,
    row: Option<&[f64]>,
    v: usize,
    epsilon: f64,
    labels: &mut [u32],
    sizes: &mut Vec<usize>,
    m_sums: &mut Vec<f64>,
) -> bool {
    let n = labels.len();
    let k = sizes.len();
    if telemetry::metrics_enabled() {
        telemetry::metrics().ls_nodes_visited.incr();
    }
    m_sums.clear();
    m_sums.resize(k, 0.0);
    let mut t_v = 0.0;
    match row {
        Some(xs) => {
            for u in 0..n {
                if u != v {
                    let x = xs[u];
                    m_sums[labels[u] as usize] += x;
                    t_v += x;
                }
            }
        }
        None => {
            for u in 0..n {
                if u != v {
                    let x = oracle.dist(v, u);
                    m_sums[labels[u] as usize] += x;
                    t_v += x;
                }
            }
        }
    }
    let cur = labels[v] as usize;
    let others = (n - 1) as f64;
    // d(v, C_i) = 2·M_i − T_v + (n−1) − |C_i \ {v}|
    let move_cost = |i: usize, sizes: &[usize]| -> f64 {
        let size_wo_v = sizes[i] - usize::from(i == cur);
        2.0 * m_sums[i] - t_v + others - size_wo_v as f64
    };
    let singleton_cost = others - t_v;

    let mut best_i = usize::MAX; // MAX = fresh singleton
    let mut best_cost = singleton_cost;
    for i in 0..k {
        if sizes[i] == 0 && i != cur {
            continue;
        }
        let c = move_cost(i, sizes);
        if c < best_cost {
            best_cost = c;
            best_i = i;
        }
    }
    let cur_cost = move_cost(cur, sizes);
    if best_cost < cur_cost - epsilon && best_i != cur {
        sizes[cur] -= 1;
        let target = if best_i == usize::MAX {
            if sizes[cur] == 0 {
                // Moving a singleton to a fresh singleton is a
                // no-op; keep the label. (Unreachable because the
                // costs are equal, but kept for safety.)
                cur
            } else {
                sizes.push(0);
                sizes.len() - 1
            }
        } else {
            best_i
        };
        sizes[target] += 1;
        labels[v] = target as u32;
        if telemetry::metrics_enabled() {
            let m = telemetry::metrics();
            m.ls_moves.incr();
            // The move's strict cost improvement; accumulated serially (the
            // descent visits nodes one at a time), so the sum's rounding
            // order is fixed and the total is bit-reproducible.
            let delta = cur_cost - best_cost;
            m.ls_improvement.add(delta);
            m.ls_delta_hist.observe(delta);
        }
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::correlation_cost;
    use crate::instance::DenseOracle;

    fn c(labels: &[u32]) -> Clustering {
        Clustering::from_labels(labels.to_vec())
    }

    fn figure1_oracle() -> DenseOracle {
        DenseOracle::from_clusterings(&[
            c(&[0, 0, 1, 1, 2, 2]),
            c(&[0, 1, 0, 1, 2, 3]),
            c(&[0, 1, 0, 1, 2, 2]),
        ])
    }

    #[test]
    fn recovers_figure1_optimum_from_singletons() {
        let result = local_search(&figure1_oracle(), LocalSearchParams::default());
        assert_eq!(result, c(&[0, 1, 0, 1, 2, 2]));
    }

    #[test]
    fn recovers_figure1_optimum_from_one_cluster() {
        let result = local_search(
            &figure1_oracle(),
            LocalSearchParams {
                init: LocalSearchInit::OneCluster,
                ..Default::default()
            },
        );
        assert_eq!(result, c(&[0, 1, 0, 1, 2, 2]));
    }

    #[test]
    fn random_inits_converge_to_low_cost() {
        let oracle = figure1_oracle();
        let opt_cost = 5.0 / 3.0;
        for seed in 0..5 {
            let result = local_search(
                &oracle,
                LocalSearchParams {
                    init: LocalSearchInit::Random { k: 3, seed },
                    ..Default::default()
                },
            );
            let cost = correlation_cost(&oracle, &result);
            assert!(cost <= opt_cost + 1e-9, "seed {seed}: cost {cost}");
        }
    }

    #[test]
    fn never_increases_cost_as_postprocessor() {
        let oracle = figure1_oracle();
        let starts = [
            Clustering::singletons(6),
            Clustering::one_cluster(6),
            c(&[0, 0, 0, 1, 1, 1]),
            c(&[0, 1, 1, 0, 2, 0]),
        ];
        for s in &starts {
            let refined = local_search_from(&oracle, s, 100, 1e-9);
            assert!(correlation_cost(&oracle, &refined) <= correlation_cost(&oracle, s) + 1e-9);
        }
    }

    #[test]
    fn local_optimum_is_fixed_point() {
        let oracle = figure1_oracle();
        let opt = c(&[0, 1, 0, 1, 2, 2]);
        let refined = local_search_from(&oracle, &opt, 100, 1e-9);
        assert_eq!(refined, opt);
    }

    #[test]
    fn perfect_consensus_is_reproduced() {
        let consensus = c(&[0, 0, 1, 1, 2]);
        let oracle = DenseOracle::from_clusterings(&[consensus.clone(), consensus.clone()]);
        assert_eq!(
            local_search(&oracle, LocalSearchParams::default()),
            consensus
        );
    }

    #[test]
    fn given_init_is_used() {
        let oracle = figure1_oracle();
        let given = c(&[0, 1, 0, 1, 2, 2]);
        let result = local_search(
            &oracle,
            LocalSearchParams {
                init: LocalSearchInit::Given(given.clone()),
                max_passes: 0,
                epsilon: 1e-9,
            },
        );
        assert_eq!(result, given);
    }

    #[test]
    fn tiny_instances() {
        let o1 = DenseOracle::from_fn(1, |_, _| 0.0);
        assert_eq!(
            local_search(&o1, LocalSearchParams::default()).num_clusters(),
            1
        );
        let o0 = DenseOracle::from_fn(0, |_, _| 0.0);
        assert_eq!(local_search(&o0, LocalSearchParams::default()).len(), 0);
    }

    #[test]
    fn budgeted_unlimited_matches_unbudgeted() {
        let oracle = figure1_oracle();
        let plain = local_search(&oracle, LocalSearchParams::default());
        let outcome = local_search_budgeted(
            &oracle,
            LocalSearchParams::default(),
            &RunBudget::unlimited(),
        )
        .unwrap();
        assert_eq!(outcome.clustering, plain);
        assert_eq!(outcome.status, RunStatus::Converged);
        assert!(outcome.iterations > 0);
    }

    #[test]
    fn budget_trip_returns_best_so_far() {
        use crate::cost::correlation_cost;
        let oracle = figure1_oracle();
        let start = Clustering::singletons(6);
        // A one-iteration cap trips immediately; the result must still be a
        // valid clustering no costlier than the start.
        let tight = RunBudget::unlimited().with_max_iters(1);
        let outcome = local_search_from_budgeted(&oracle, &start, 200, 1e-9, &tight).unwrap();
        assert_eq!(outcome.status, RunStatus::BudgetExceeded);
        assert_eq!(outcome.clustering.len(), 6);
        assert!(
            correlation_cost(&oracle, &outcome.clustering)
                <= correlation_cost(&oracle, &start) + 1e-9
        );
    }

    #[test]
    fn cancellation_is_reported() {
        let oracle = figure1_oracle();
        let token = crate::robust::CancelToken::new();
        token.cancel();
        let budget = RunBudget::unlimited().with_cancel_token(token);
        let outcome =
            local_search_budgeted(&oracle, LocalSearchParams::default(), &budget).unwrap();
        assert_eq!(outcome.status, RunStatus::Cancelled);
    }

    #[test]
    fn mismatched_start_is_a_typed_error() {
        let oracle = figure1_oracle();
        let bad = Clustering::singletons(3);
        let err = local_search_from_budgeted(&oracle, &bad, 200, 1e-9, &RunBudget::unlimited())
            .unwrap_err();
        assert!(matches!(err, AggError::InvalidParameter { .. }));
        let err = local_search_budgeted(
            &oracle,
            LocalSearchParams {
                init: LocalSearchInit::Given(bad),
                ..Default::default()
            },
            &RunBudget::unlimited(),
        )
        .unwrap_err();
        assert!(matches!(err, AggError::InvalidParameter { .. }));
    }

    #[test]
    fn interrupt_and_resume_matches_uninterrupted() {
        use crate::snapshot::{load_snapshot, SnapshotLoad};
        use std::time::Duration;

        let oracle = DenseOracle::from_fn(24, |u, v| ((u * 7 + v * 13) % 11) as f64 / 11.0);
        let params = LocalSearchParams {
            init: LocalSearchInit::Random { k: 4, seed: 42 },
            ..Default::default()
        };
        let full = local_search_budgeted(&oracle, params.clone(), &RunBudget::unlimited()).unwrap();
        assert_eq!(full.status, RunStatus::Converged);

        let dir = std::env::temp_dir().join("aggclust_ls_resume_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("ckpt.bin");
        for cap in [1u64, 2, 5, 11, 23, 24, 25, 47, 90] {
            let tight = RunBudget::unlimited().with_max_iters(cap);
            let mut ckpt = Checkpointer::new(&path, Duration::ZERO);
            let partial =
                local_search_resumable(&oracle, params.clone(), &tight, None, Some(&mut ckpt))
                    .unwrap();
            if partial.status == RunStatus::Converged {
                assert_eq!(partial.clustering, full.clustering);
                continue;
            }
            let snap = match load_snapshot(&path) {
                SnapshotLoad::Loaded(s) => s,
                other => panic!("cap {cap}: expected snapshot, got {other:?}"),
            };
            let AlgorithmSnapshot::LocalSearch(ls) = snap.state else {
                panic!("cap {cap}: wrong snapshot variant");
            };
            assert_eq!(ls.iterations, cap, "snapshot records completed work");
            let resumed = local_search_resumable(
                &oracle,
                params.clone(),
                &RunBudget::unlimited(),
                Some(&ls),
                None,
            )
            .unwrap();
            assert_eq!(
                resumed.clustering, full.clustering,
                "cap {cap}: resumed labels differ"
            );
            assert_eq!(
                resumed.iterations, full.iterations,
                "cap {cap}: resumed total work differs"
            );
            assert_eq!(resumed.status, RunStatus::Converged);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_snapshot_is_ignored() {
        let oracle = figure1_oracle();
        let stale = LocalSearchSnapshot {
            labels: vec![0; 99],
            pass: 1,
            next_node: 3,
            moved_in_pass: true,
            iterations: 12,
            rng: [0; 4],
        };
        let outcome = local_search_resumable(
            &oracle,
            LocalSearchParams::default(),
            &RunBudget::unlimited(),
            Some(&stale),
            None,
        )
        .unwrap();
        assert_eq!(outcome.clustering, c(&[0, 1, 0, 1, 2, 2]));
    }

    #[test]
    fn nan_epsilon_rejected() {
        let oracle = figure1_oracle();
        let start = Clustering::singletons(6);
        let err =
            local_search_from_budgeted(&oracle, &start, 10, f64::NAN, &RunBudget::unlimited())
                .unwrap_err();
        assert!(matches!(err, AggError::InvalidParameter { .. }));
    }
}
