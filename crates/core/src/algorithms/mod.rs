//! The clustering-aggregation / correlation-clustering algorithms of the
//! paper (§4), plus a composable [`Algorithm`] descriptor used by the
//! SAMPLING meta-algorithm and the experiment harness.

pub mod agglomerative;
pub mod annealing;
pub mod balls;
pub mod best;
pub mod furthest;
pub mod local_search;
pub mod pivot;
pub mod sampling;

use crate::clustering::Clustering;
use crate::error::AggResult;
use crate::instance::DistanceOracle;
use crate::robust::{RunBudget, RunOutcome};
use crate::snapshot::{AlgorithmSnapshot, Checkpointer};

pub use agglomerative::AgglomerativeParams;
pub use annealing::AnnealingParams;
pub use balls::{BallsOrdering, BallsParams};
pub use furthest::FurthestParams;
pub use local_search::{LocalSearchInit, LocalSearchParams};
pub use pivot::{PivotParams, PivotRounding};
pub use sampling::SamplingParams;

/// A first-class description of a correlation-clustering algorithm and its
/// parameters, runnable on any [`DistanceOracle`].
///
/// BESTCLUSTERING is absent: it needs the input clusterings, not just the
/// distance oracle, so it lives outside this enum
/// (see [`best::best_clustering`]).
#[derive(Clone, Debug)]
pub enum Algorithm {
    /// The BALLS 3-approximation (paper Theorem 1).
    Balls(BallsParams),
    /// Bottom-up average-linkage agglomeration stopping at ½.
    Agglomerative(AgglomerativeParams),
    /// Top-down furthest-first traversal.
    Furthest(FurthestParams),
    /// Node-move local search.
    LocalSearch(LocalSearchParams),
    /// CC-PIVOT (extension; Ailon–Charikar–Newman).
    Pivot(PivotParams),
    /// Simulated annealing (extension; Filkov–Skiena, the paper's ref 13).
    Annealing(AnnealingParams),
}

impl Algorithm {
    /// Run the algorithm on a correlation-clustering instance.
    pub fn run<O: DistanceOracle + Sync>(&self, oracle: &O) -> Clustering {
        match self {
            Algorithm::Balls(p) => balls::balls(oracle, *p),
            Algorithm::Agglomerative(p) => agglomerative::agglomerative(oracle, *p),
            Algorithm::Furthest(p) => furthest::furthest(oracle, *p),
            Algorithm::LocalSearch(p) => local_search::local_search(oracle, p.clone()),
            Algorithm::Pivot(p) => pivot::pivot(oracle, *p),
            Algorithm::Annealing(p) => annealing::simulated_annealing(oracle, p),
        }
    }

    /// Run the algorithm under a [`RunBudget`] with anytime semantics:
    /// invalid parameters come back as typed errors, and a budget trip
    /// yields the best-so-far clustering tagged with how the run ended
    /// instead of panicking or running to completion.
    pub fn run_budgeted<O: DistanceOracle + Sync>(
        &self,
        oracle: &O,
        budget: &RunBudget,
    ) -> AggResult<RunOutcome> {
        match self {
            Algorithm::Balls(p) => balls::balls_budgeted(oracle, *p, budget),
            Algorithm::Agglomerative(p) => {
                agglomerative::agglomerative_budgeted(oracle, *p, budget)
            }
            Algorithm::Furthest(p) => furthest::furthest_budgeted(oracle, *p, budget),
            Algorithm::LocalSearch(p) => {
                local_search::local_search_budgeted(oracle, p.clone(), budget)
            }
            Algorithm::Pivot(p) => pivot::pivot_budgeted(oracle, *p, budget),
            Algorithm::Annealing(p) => annealing::simulated_annealing_budgeted(oracle, p, budget),
        }
    }

    /// Run the algorithm with crash-safe checkpoint/resume on top of the
    /// budgeted semantics.
    ///
    /// AGGLOMERATIVE and LOCALSEARCH — the long-running algorithms — honor
    /// both the `resume` snapshot and the `ckpt` cadence (the SAMPLING
    /// meta-algorithm, which is not an [`Algorithm`] variant, resumes via
    /// [`sampling::sampling_resumable`]); the rest are single-sweep
    /// constructions that finish within one checkpoint interval anyway and
    /// simply delegate to [`Algorithm::run_budgeted`]. A snapshot for the
    /// wrong algorithm (or the wrong instance) is ignored: the run starts
    /// fresh.
    pub fn run_resumable<O: DistanceOracle + Sync>(
        &self,
        oracle: &O,
        budget: &RunBudget,
        resume: Option<&AlgorithmSnapshot>,
        ckpt: Option<&mut Checkpointer>,
    ) -> AggResult<RunOutcome> {
        match self {
            Algorithm::Agglomerative(p) => {
                let snap = match resume {
                    Some(AlgorithmSnapshot::Agglomerative(s)) => Some(s),
                    _ => None,
                };
                agglomerative::agglomerative_resumable(oracle, *p, budget, snap, ckpt)
            }
            Algorithm::LocalSearch(p) => {
                let snap = match resume {
                    Some(AlgorithmSnapshot::LocalSearch(s)) => Some(s),
                    _ => None,
                };
                local_search::local_search_resumable(oracle, p.clone(), budget, snap, ckpt)
            }
            _ => self.run_budgeted(oracle, budget),
        }
    }

    /// Short display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Balls(_) => "Balls",
            Algorithm::Agglomerative(_) => "Agglomerative",
            Algorithm::Furthest(_) => "Furthest",
            Algorithm::LocalSearch(_) => "LocalSearch",
            Algorithm::Pivot(_) => "Pivot",
            Algorithm::Annealing(_) => "Annealing",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::DenseOracle;

    fn figure1_oracle() -> DenseOracle {
        let cs = vec![
            Clustering::from_labels(vec![0, 0, 1, 1, 2, 2]),
            Clustering::from_labels(vec![0, 1, 0, 1, 2, 3]),
            Clustering::from_labels(vec![0, 1, 0, 1, 2, 2]),
        ];
        DenseOracle::from_clusterings(&cs)
    }

    #[test]
    fn every_algorithm_recovers_the_paper_optimum() {
        // The optimum for Figure 1 is {{v1,v3},{v2,v4},{v5,v6}}, cost 5/3.
        let oracle = figure1_oracle();
        let optimum = Clustering::from_labels(vec![0, 1, 0, 1, 2, 2]);
        let algos = [
            Algorithm::Balls(BallsParams::default()),
            Algorithm::Agglomerative(AgglomerativeParams::default()),
            Algorithm::Furthest(FurthestParams::default()),
            Algorithm::LocalSearch(LocalSearchParams::default()),
        ];
        for a in &algos {
            let result = a.run(&oracle);
            assert_eq!(result, optimum, "{} failed", a.name());
        }
    }

    #[test]
    fn run_budgeted_matches_run_with_unlimited_budget() {
        let oracle = figure1_oracle();
        let algos = [
            Algorithm::Balls(BallsParams::default()),
            Algorithm::Agglomerative(AgglomerativeParams::default()),
            Algorithm::Furthest(FurthestParams::default()),
            Algorithm::LocalSearch(LocalSearchParams::default()),
            Algorithm::Pivot(PivotParams::default()),
        ];
        for a in &algos {
            let outcome = a.run_budgeted(&oracle, &RunBudget::unlimited()).unwrap();
            assert!(outcome.status.is_converged(), "{}", a.name());
            assert_eq!(outcome.clustering, a.run(&oracle), "{} diverged", a.name());
        }
    }

    #[test]
    fn run_budgeted_never_panics_on_a_tight_budget() {
        let oracle = figure1_oracle();
        let algos = [
            Algorithm::Balls(BallsParams::default()),
            Algorithm::Agglomerative(AgglomerativeParams::default()),
            Algorithm::Furthest(FurthestParams::default()),
            Algorithm::LocalSearch(LocalSearchParams::default()),
            Algorithm::Pivot(PivotParams::default()),
            Algorithm::Annealing(AnnealingParams::default()),
        ];
        for cap in [0u64, 1, 2, 5] {
            let budget = RunBudget::unlimited().with_max_iters(cap);
            for a in &algos {
                let outcome = a.run_budgeted(&oracle, &budget).unwrap();
                assert_eq!(outcome.clustering.len(), 6, "{} cap {cap}", a.name());
            }
        }
    }
}
