//! CC-PIVOT: the randomized pivot algorithm for correlation clustering
//! (Ailon, Charikar & Newman, contemporaneous with the paper and cited by
//! the consensus-clustering line of work it started).
//!
//! Not part of the paper's §4 roster — included as the natural extension
//! baseline: it achieves expected 3-approximation on ±1 instances and
//! expected 4/3 with triangle-inequality distances when pairs are joined
//! with probability `1 − X_uv`, at essentially zero implementation
//! complexity.
//!
//! The algorithm: pick a random unclustered *pivot* `u`, put every
//! unclustered `v` with `X_uv < ½` (deterministic variant) — or with
//! probability `1 − X_uv` (randomized-rounding variant) — into `u`'s
//! cluster, remove them, repeat. `O(n²)` oracle lookups worst case.

use crate::clustering::Clustering;
use crate::error::AggResult;
use crate::instance::DistanceOracle;
use crate::robust::{BudgetMeter, Interrupt, RunBudget, RunOutcome, RunStatus};
use crate::telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How a non-pivot node decides to join the pivot's cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PivotRounding {
    /// Join iff `X_uv < ½` (deterministic; only the pivot order is random).
    #[default]
    Majority,
    /// Join with probability `1 − X_uv` (the randomized-rounding variant
    /// with the stronger expected guarantee on triangle-inequality
    /// instances).
    Randomized,
}

/// Parameters for [`pivot`].
#[derive(Clone, Copy, Debug, Default)]
pub struct PivotParams {
    /// Join rule.
    pub rounding: PivotRounding,
    /// Seed for the pivot order (and the coin flips, if randomized).
    pub seed: u64,
    /// Run this many independent repetitions and keep the cheapest
    /// clustering (0 behaves as 1). The guarantee is in expectation, so
    /// repetitions sharpen it cheaply.
    pub repetitions: usize,
}

impl PivotParams {
    /// Majority rounding with the given seed, single repetition.
    pub fn majority(seed: u64) -> Self {
        PivotParams {
            rounding: PivotRounding::Majority,
            seed,
            repetitions: 1,
        }
    }

    /// Randomized rounding with the given seed and repetition count.
    pub fn randomized(seed: u64, repetitions: usize) -> Self {
        PivotParams {
            rounding: PivotRounding::Randomized,
            seed,
            repetitions,
        }
    }
}

/// Run CC-PIVOT; with `repetitions > 1` the cheapest of the independent
/// runs (by correlation cost) is returned.
pub fn pivot<O: DistanceOracle + Sync + ?Sized>(oracle: &O, params: PivotParams) -> Clustering {
    let (clustering, _, _) = run(oracle, params, &RunBudget::unlimited());
    clustering
}

/// Budgeted CC-PIVOT with anytime semantics. One budget iteration per pivot
/// (each pivot scans the remaining unclustered nodes). On a trip, the
/// current repetition is completed by turning every unclustered node into a
/// fresh singleton, and the cheapest clustering across the finished
/// repetitions is returned.
pub fn pivot_budgeted<O: DistanceOracle + Sync + ?Sized>(
    oracle: &O,
    params: PivotParams,
    budget: &RunBudget,
) -> AggResult<RunOutcome> {
    let (clustering, status, iterations) = run(oracle, params, budget);
    Ok(RunOutcome {
        clustering,
        status,
        iterations,
    })
}

/// Shared engine behind [`pivot`] and [`pivot_budgeted`].
fn run<O: DistanceOracle + Sync + ?Sized>(
    oracle: &O,
    params: PivotParams,
    budget: &RunBudget,
) -> (Clustering, RunStatus, u64) {
    let n = oracle.len();
    let _span = crate::span!(
        "pivot",
        n = n,
        repetitions = params.repetitions.max(1),
        randomized = params.rounding == PivotRounding::Randomized
    );
    if n == 0 {
        return (Clustering::from_labels(Vec::new()), RunStatus::Converged, 0);
    }
    let reps = params.repetitions.max(1);
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut meter = budget.meter();
    let mut best: Option<(f64, Clustering)> = None;
    for _ in 0..reps {
        let (candidate, tripped) = pivot_once(oracle, params.rounding, &mut rng, &mut meter);
        let cost = crate::cost::correlation_cost(oracle, &candidate);
        if best.as_ref().is_none_or(|(c, _)| cost < *c) {
            best = Some((cost, candidate));
        }
        if let Some(interrupt) = tripped {
            let iterations = meter.iterations();
            return (take_best(best, n), interrupt.status(), iterations);
        }
    }
    let iterations = meter.iterations();
    (take_best(best, n), RunStatus::Converged, iterations)
}

/// `best` is always `Some` after at least one repetition; the singleton
/// fallback only avoids a panic path.
fn take_best(best: Option<(f64, Clustering)>, n: usize) -> Clustering {
    best.map_or_else(|| Clustering::singletons(n), |(_, clustering)| clustering)
}

fn pivot_once<O: DistanceOracle + Sync + ?Sized>(
    oracle: &O,
    rounding: PivotRounding,
    rng: &mut StdRng,
    meter: &mut BudgetMeter<'_>,
) -> (Clustering, Option<Interrupt>) {
    let n = oracle.len();
    // Random pivot order = random permutation, first unclustered wins.
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut labels = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut tripped = None;
    let mut heartbeat = telemetry::Heartbeat::new("pivot", n as u64);
    for (visited, &u) in order.iter().enumerate() {
        heartbeat.tick(visited as u64);
        if labels[u] != u32::MAX {
            continue;
        }
        if let Err(interrupt) = meter.tick() {
            // Finish the repetition cheaply: the unclustered remainder
            // becomes fresh singletons so the result is complete and valid.
            tripped = Some(interrupt);
            break;
        }
        telemetry::metrics().pivot_rounds.incr_if_enabled();
        let label = next;
        next += 1;
        labels[u] = label;
        for (v, slot) in labels.iter_mut().enumerate() {
            if *slot == u32::MAX && v != u {
                let x = oracle.dist(u, v);
                let join = match rounding {
                    PivotRounding::Majority => x < 0.5,
                    PivotRounding::Randomized => rng.gen::<f64>() < 1.0 - x,
                };
                if join {
                    *slot = label;
                }
            }
        }
    }
    if tripped.is_some() {
        for slot in labels.iter_mut().filter(|slot| **slot == u32::MAX) {
            *slot = next;
            next += 1;
        }
    }
    (Clustering::from_labels(labels), tripped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::correlation_cost;
    use crate::exact::optimal_clustering;
    use crate::instance::DenseOracle;

    fn c(labels: &[u32]) -> Clustering {
        Clustering::from_labels(labels.to_vec())
    }

    fn figure1_oracle() -> DenseOracle {
        DenseOracle::from_clusterings(&[
            c(&[0, 0, 1, 1, 2, 2]),
            c(&[0, 1, 0, 1, 2, 3]),
            c(&[0, 1, 0, 1, 2, 2]),
        ])
    }

    #[test]
    fn perfect_consensus_is_reproduced() {
        let consensus = c(&[0, 0, 1, 1, 2, 2, 2]);
        let oracle = DenseOracle::from_clusterings(&[consensus.clone(), consensus.clone()]);
        for seed in 0..5 {
            assert_eq!(pivot(&oracle, PivotParams::majority(seed)), consensus);
        }
    }

    #[test]
    fn repetitions_find_the_figure1_optimum() {
        let oracle = figure1_oracle();
        let result = pivot(&oracle, PivotParams::randomized(1, 20));
        let opt = optimal_clustering(&oracle);
        assert!(
            correlation_cost(&oracle, &result) <= opt.cost + 1e-9,
            "20 repetitions should reach the optimum on 6 nodes"
        );
    }

    #[test]
    fn expected_three_approximation_holds_on_average() {
        // Average the randomized variant's cost over many seeds; it must be
        // within 3× the optimum with slack (Markov would allow single runs
        // to exceed it).
        let oracle = figure1_oracle();
        let opt = optimal_clustering(&oracle).cost;
        let mut total = 0.0;
        let runs = 50;
        for seed in 0..runs {
            let result = pivot(
                &oracle,
                PivotParams {
                    rounding: PivotRounding::Randomized,
                    seed,
                    repetitions: 1,
                },
            );
            total += correlation_cost(&oracle, &result);
        }
        let mean = total / runs as f64;
        assert!(
            mean <= 3.0 * opt + 1e-9,
            "mean {mean} vs 3·OPT {}",
            3.0 * opt
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let oracle = figure1_oracle();
        let p = PivotParams::randomized(9, 3);
        assert_eq!(pivot(&oracle, p), pivot(&oracle, p));
    }

    #[test]
    fn empty_instance() {
        let oracle = DenseOracle::from_fn(0, |_, _| 0.0);
        assert_eq!(pivot(&oracle, PivotParams::default()).len(), 0);
    }

    #[test]
    fn budgeted_unlimited_matches_unbudgeted() {
        let oracle = figure1_oracle();
        let params = PivotParams::randomized(7, 4);
        let outcome = pivot_budgeted(&oracle, params, &RunBudget::unlimited()).unwrap();
        assert_eq!(outcome.status, RunStatus::Converged);
        assert_eq!(outcome.clustering, pivot(&oracle, params));
    }

    #[test]
    fn budget_trip_returns_complete_clustering() {
        let oracle = figure1_oracle();
        // One pivot allowed, then the cap trips mid-repetition: the rest of
        // the nodes become singletons and the clustering is still complete.
        let tight = RunBudget::unlimited().with_max_iters(1);
        let outcome = pivot_budgeted(&oracle, PivotParams::majority(3), &tight).unwrap();
        assert_eq!(outcome.status, RunStatus::BudgetExceeded);
        assert_eq!(outcome.clustering.len(), 6);
    }
}
