//! The SAMPLING meta-algorithm (paper §4.1): scale any aggregation
//! algorithm to large datasets.
//!
//! The quadratic cost of correlation clustering is inherent — the input is a
//! complete graph — so the paper wraps the base algorithms in a three-phase
//! procedure that is linear in `n` outside the sample:
//!
//! 1. **Pre-processing**: draw a uniform sample `S` (size `O(log n)`
//!    suffices, by a Chernoff argument, for every *large* cluster to be
//!    hit with high probability).
//! 2. **Clustering**: run the base algorithm on the restricted instance.
//! 3. **Post-processing**: every non-sampled node joins the sample cluster
//!    of least cost — or becomes a singleton — using the same `M(v, C_i)`
//!    bookkeeping as LOCALSEARCH. Because small clusters may be missed by
//!    the sample, all singletons are then collected and aggregated once
//!    more among themselves.

use super::Algorithm;
use crate::clustering::Clustering;
use crate::error::AggResult;
use crate::instance::DistanceOracle;
use crate::robust::{RunBudget, RunOutcome, RunStatus};
use crate::snapshot::{AlgorithmSnapshot, Checkpointer, SamplingSnapshot};
use crate::telemetry;
use rand::rngs::StdRng;
use rand::seq::index::sample as index_sample;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// How large a sample to draw.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SampleSize {
    /// A fixed number of nodes (clamped to `n`).
    Absolute(usize),
    /// `⌈c · ln n⌉` nodes — the Chernoff-bound-driven choice; `c` trades
    /// confidence for speed.
    LogFactor(f64),
}

impl SampleSize {
    /// Resolve to a concrete sample size for an instance with `n` nodes.
    pub fn resolve(self, n: usize) -> usize {
        match self {
            SampleSize::Absolute(s) => s.min(n),
            SampleSize::LogFactor(c) => {
                let s = (c * (n.max(2) as f64).ln()).ceil() as usize;
                s.clamp(1, n)
            }
        }
    }
}

/// Parameters for [`sampling`].
#[derive(Clone, Debug)]
pub struct SamplingParams {
    /// Sample size policy.
    pub size: SampleSize,
    /// Base aggregation algorithm run on the sample (and on the collected
    /// singletons).
    pub base: Algorithm,
    /// RNG seed for the uniform sample.
    pub seed: u64,
    /// Whether to run the paper's singleton re-aggregation pass
    /// (on by default; off shows its effect in ablations).
    pub recluster_singletons: bool,
}

impl SamplingParams {
    /// Sensible defaults: absolute sample size with the given base.
    pub fn new(sample_size: usize, base: Algorithm, seed: u64) -> Self {
        SamplingParams {
            size: SampleSize::Absolute(sample_size),
            base,
            seed,
            recluster_singletons: true,
        }
    }
}

/// Phase timing and bookkeeping returned by [`sampling_with_details`].
#[derive(Clone, Debug)]
pub struct SamplingDetails {
    /// The final clustering.
    pub clustering: Clustering,
    /// Indices of the sampled nodes.
    pub sample: Vec<usize>,
    /// Number of clusters produced on the sample before assignment.
    pub sample_clusters: usize,
    /// Number of nodes that ended up singletons after assignment (before
    /// the re-aggregation pass).
    pub singletons_before_recluster: usize,
    /// Wall-clock time spent clustering the sample.
    pub cluster_time: Duration,
    /// Wall-clock time spent assigning non-sampled nodes.
    pub assign_time: Duration,
    /// Wall-clock time of the singleton re-aggregation pass.
    pub recluster_time: Duration,
}

/// Run the SAMPLING algorithm, returning just the clustering.
pub fn sampling<O: DistanceOracle + Sync>(oracle: &O, params: &SamplingParams) -> Clustering {
    sampling_with_details(oracle, params).clustering
}

/// Budgeted SAMPLING with anytime semantics. The base algorithm runs under
/// the same budget in the sample phase and the singleton-recluster phase;
/// the per-node assignment loop ticks once per node (each an `O(s)` scan).
/// On a trip mid-assignment the remaining nodes become fresh singletons and
/// the recluster pass is skipped; statuses from the phases combine to the
/// worst one observed.
pub fn sampling_budgeted<O: DistanceOracle + Sync>(
    oracle: &O,
    params: &SamplingParams,
    budget: &RunBudget,
) -> AggResult<RunOutcome> {
    sampling_resumable(oracle, params, budget, None, None)
}

/// [`sampling_budgeted`] with crash-safe checkpoint/resume.
///
/// Only phase 3 — the per-node assignment loop, the one phase whose cost
/// grows with `n` — checkpoints and resumes mid-flight; an interrupt during
/// the sample clustering (phase 2) or singleton recluster (phase 3b) simply
/// reruns that phase on resume. A valid snapshot skips phases 1–2 entirely
/// (the sample and its labels are in the file) and re-enters the assignment
/// loop at the recorded node with the meter pre-charged. A snapshot whose
/// `n` or sample is inconsistent with this instance falls back to a fresh
/// run.
pub fn sampling_resumable<O: DistanceOracle + Sync>(
    oracle: &O,
    params: &SamplingParams,
    budget: &RunBudget,
    resume: Option<&SamplingSnapshot>,
    mut ckpt: Option<&mut Checkpointer>,
) -> AggResult<RunOutcome> {
    let n = oracle.len();
    let _span = crate::span!(
        "sampling",
        n = n,
        base = params.base.name(),
        resuming = resume.is_some()
    );
    if n == 0 {
        return Ok(RunOutcome::converged(Clustering::from_labels(Vec::new())));
    }
    let resume = resume.filter(|snap| {
        snap.n as usize == n
            && !snap.sample.is_empty()
            && snap.sample.windows(2).all(|w| w[0] < w[1])
            && snap.sample.iter().all(|&v| (v as usize) < n)
            && snap.sample.len() == snap.sample_labels.len()
            && snap.labels.len() == n
            && snap.next_node as usize <= n
    });

    let mut status;
    let mut iterations: u64;
    let sample: Vec<usize>;
    let sample_labels: Vec<u32>;
    let mut labels: Vec<u32>;
    let start_node: usize;
    let done: u64;
    if let Some(snap) = resume {
        // Phases 1–2 are fully captured by the snapshot: the sample, its
        // clustering, and every assignment made before the interrupt.
        sample = snap.sample.iter().map(|&v| v as usize).collect();
        sample_labels = snap.sample_labels.clone();
        labels = snap.labels.clone();
        for (si, &v) in sample.iter().enumerate() {
            labels[v] = sample_labels[si];
        }
        start_node = snap.next_node as usize;
        done = snap.iterations;
        status = RunStatus::Converged;
        iterations = 0;
    } else {
        let s = params.size.resolve(n);
        // Fresh starts only: a resumed run restores the sample from the
        // snapshot, so interrupt-at-k + resume counts each run/sample once —
        // matching the uninterrupted run.
        if telemetry::metrics_enabled() {
            let m = telemetry::metrics();
            m.sampling_runs.incr();
            m.sampling_sampled.add(s as u64);
        }

        // Phase 1: uniform sample without replacement (same RNG discipline
        // as the unbudgeted path, so results match when nothing trips).
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut smp: Vec<usize> = index_sample(&mut rng, n, s).into_vec();
        smp.sort_unstable();

        // Phase 2: aggregate the sample with the budgeted base algorithm.
        let sub = oracle.restrict(&smp);
        let base_outcome = params.base.run_budgeted(&sub, budget)?;
        status = base_outcome.status;
        iterations = base_outcome.iterations;
        sample_labels = (0..smp.len())
            .map(|si| base_outcome.clustering.label(si))
            .collect();
        labels = vec![u32::MAX; n];
        for (si, &v) in smp.iter().enumerate() {
            labels[v] = sample_labels[si];
        }
        sample = smp;
        start_node = 0;
        done = 0;
    }

    let s = sample.len();
    let ell = sample_labels
        .iter()
        .map(|&l| l as usize + 1)
        .max()
        .unwrap_or(0);
    let mut cluster_sizes = vec![0usize; ell];
    for &l in &sample_labels {
        cluster_sizes[l as usize] += 1;
    }

    // Phase 3: assign every non-sampled node to the cheapest sample cluster
    // or to a fresh singleton. Fresh singleton labels are handed out in
    // node order, so the resumed `next_label` is recoverable from the
    // assignments already made.
    let mut next_label = labels
        .iter()
        .filter(|&&l| l != u32::MAX)
        .map(|&l| l + 1)
        .max()
        .unwrap_or(0)
        .max(ell as u32);
    let mut in_sample = vec![false; n];
    for &v in &sample {
        in_sample[v] = true;
    }
    let mut meter = budget.meter_from(done);
    let mut m_sums = vec![0.0f64; ell];
    let mut tripped = false;
    let mut heartbeat = telemetry::Heartbeat::new("sampling_assign", n as u64).with_budget(budget);
    for v in start_node..n {
        heartbeat.tick(v as u64);
        if in_sample[v] {
            continue;
        }
        if let Err(interrupt) = meter.tick() {
            status = status.combine(interrupt.status());
            tripped = true;
            // Final checkpoint first — the snapshot keeps the unassigned
            // markers so a resume redoes real assignment, not the
            // singleton fallback below.
            if let Some(c) = ckpt.as_deref_mut() {
                let _ = c.save_now(AlgorithmSnapshot::Sampling(SamplingSnapshot {
                    n: n as u64,
                    sample: sample.iter().map(|&x| x as u64).collect(),
                    sample_labels: sample_labels.clone(),
                    labels: labels.clone(),
                    next_node: v as u64,
                    iterations: meter.iterations() - 1,
                }));
            }
            // Unassigned nodes become fresh singletons — complete and
            // valid, if suboptimal.
            for slot in labels.iter_mut().filter(|slot| **slot == u32::MAX) {
                *slot = next_label;
                next_label += 1;
            }
            break;
        }
        m_sums.iter_mut().for_each(|x| *x = 0.0);
        let mut t_sum = 0.0;
        for (si, &u) in sample.iter().enumerate() {
            let x = oracle.dist(v, u);
            m_sums[sample_labels[si] as usize] += x;
            t_sum += x;
        }
        let mut best = f64::INFINITY;
        let mut best_i = usize::MAX;
        for i in 0..ell {
            let c = 2.0 * m_sums[i] - t_sum + s as f64 - cluster_sizes[i] as f64;
            if c < best {
                best = c;
                best_i = i;
            }
        }
        let singleton_cost = s as f64 - t_sum;
        if best_i == usize::MAX || singleton_cost < best {
            labels[v] = next_label;
            next_label += 1;
        } else {
            labels[v] = best_i as u32;
        }
        // Real assignments only — the singleton fallback after a budget trip
        // is not counted, so resumed totals match uninterrupted ones.
        telemetry::metrics().sampling_assigned.incr_if_enabled();
        if let Some(c) = ckpt.as_deref_mut() {
            c.maybe_save(|| {
                AlgorithmSnapshot::Sampling(SamplingSnapshot {
                    n: n as u64,
                    sample: sample.iter().map(|&x| x as u64).collect(),
                    sample_labels: sample_labels.clone(),
                    labels: labels.clone(),
                    next_node: (v + 1) as u64,
                    iterations: meter.iterations(),
                })
            });
        }
    }
    iterations = iterations.saturating_add(meter.iterations());

    // Phase 3b: re-aggregate the singletons, skipped when the budget
    // already tripped.
    if !tripped && params.recluster_singletons {
        let mut sizes = vec![0usize; next_label as usize];
        for &l in &labels {
            sizes[l as usize] += 1;
        }
        let singleton_nodes: Vec<usize> =
            (0..n).filter(|&v| sizes[labels[v] as usize] == 1).collect();
        if singleton_nodes.len() >= 2 {
            telemetry::metrics()
                .sampling_reclustered
                .add_if_enabled(singleton_nodes.len() as u64);
            let sub = oracle.restrict(&singleton_nodes);
            let re = params.base.run_budgeted(&sub, budget)?;
            status = status.combine(re.status);
            iterations = iterations.saturating_add(re.iterations);
            for (i, &v) in singleton_nodes.iter().enumerate() {
                labels[v] = next_label + re.clustering.label(i);
            }
        }
    }

    Ok(RunOutcome {
        clustering: Clustering::from_labels(labels),
        status,
        iterations,
    })
}

/// Run the SAMPLING algorithm with phase-level instrumentation (used by the
/// Figure-5 experiments).
pub fn sampling_with_details<O: DistanceOracle + Sync>(
    oracle: &O,
    params: &SamplingParams,
) -> SamplingDetails {
    let n = oracle.len();
    let s = params.size.resolve(n);
    let _span = crate::span!("sampling", n = n, base = params.base.name(), s = s);
    if n == 0 {
        return SamplingDetails {
            clustering: Clustering::from_labels(Vec::new()),
            sample: Vec::new(),
            sample_clusters: 0,
            singletons_before_recluster: 0,
            cluster_time: Duration::ZERO,
            assign_time: Duration::ZERO,
            recluster_time: Duration::ZERO,
        };
    }

    if telemetry::metrics_enabled() {
        let m = telemetry::metrics();
        m.sampling_runs.incr();
        m.sampling_sampled.add(s as u64);
    }

    // Phase 1: uniform sample without replacement.
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut sample: Vec<usize> = index_sample(&mut rng, n, s).into_vec();
    sample.sort_unstable();

    // Phase 2: aggregate the sample with the base algorithm.
    let t0 = Instant::now();
    let sub = oracle.restrict(&sample);
    let sample_clustering = params.base.run(&sub);
    let cluster_time = t0.elapsed();
    let ell = sample_clustering.num_clusters();

    // Cluster membership of the sample, as oracle-level node ids.
    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); ell];
    for (si, &v) in sample.iter().enumerate() {
        clusters[sample_clustering.label(si) as usize].push(v);
    }

    // Phase 3: assign every non-sampled node to the cheapest sample cluster
    // or to a fresh singleton.
    let t1 = Instant::now();
    let mut labels = vec![u32::MAX; n];
    for (si, &v) in sample.iter().enumerate() {
        labels[v] = sample_clustering.label(si);
    }
    let mut next_label = ell as u32;
    let mut in_sample = vec![false; n];
    for &v in &sample {
        in_sample[v] = true;
    }
    let mut m_sums = vec![0.0f64; ell];
    for v in 0..n {
        if in_sample[v] {
            continue;
        }
        m_sums.iter_mut().for_each(|x| *x = 0.0);
        let mut t_sum = 0.0;
        for (si, &u) in sample.iter().enumerate() {
            let x = oracle.dist(v, u);
            m_sums[sample_clustering.label(si) as usize] += x;
            t_sum += x;
        }
        // cost(join C_i) = M_i + Σ_{j≠i}(|C_j| − M_j)
        //               = 2·M_i − T + s − |C_i|;   cost(singleton) = s − T.
        let mut best = f64::INFINITY;
        let mut best_i = usize::MAX;
        for i in 0..ell {
            let c = 2.0 * m_sums[i] - t_sum + s as f64 - clusters[i].len() as f64;
            if c < best {
                best = c;
                best_i = i;
            }
        }
        let singleton_cost = s as f64 - t_sum;
        if best_i == usize::MAX || singleton_cost < best {
            labels[v] = next_label;
            next_label += 1;
        } else {
            labels[v] = best_i as u32;
        }
        telemetry::metrics().sampling_assigned.incr_if_enabled();
    }
    let assign_time = t1.elapsed();

    // Count cluster sizes to find singletons (both freshly-assigned ones and
    // sample clusters of size one that attracted nobody).
    let mut sizes = vec![0usize; next_label as usize];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    let singleton_nodes: Vec<usize> = (0..n).filter(|&v| sizes[labels[v] as usize] == 1).collect();
    let singletons_before = singleton_nodes.len();

    // Phase 3b: re-aggregate the singletons among themselves (paper: "we
    // collect all singleton clusters and run the clustering aggregation
    // again on this subset of nodes").
    let t2 = Instant::now();
    if params.recluster_singletons && singleton_nodes.len() >= 2 {
        telemetry::metrics()
            .sampling_reclustered
            .add_if_enabled(singleton_nodes.len() as u64);
        let sub = oracle.restrict(&singleton_nodes);
        let re = params.base.run(&sub);
        for (i, &v) in singleton_nodes.iter().enumerate() {
            labels[v] = next_label + re.label(i);
        }
    }
    let recluster_time = t2.elapsed();

    SamplingDetails {
        clustering: Clustering::from_labels(labels),
        sample,
        sample_clusters: ell,
        singletons_before_recluster: singletons_before,
        cluster_time,
        assign_time,
        recluster_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{AgglomerativeParams, BallsParams};
    use crate::cost::correlation_cost;
    use crate::instance::{ClusteringsOracle, DenseOracle};

    fn c(labels: &[u32]) -> Clustering {
        Clustering::from_labels(labels.to_vec())
    }

    /// A consensus instance with three clear blocks of 20 nodes each and
    /// slight disagreement between inputs.
    fn blocks_instance() -> (Vec<Clustering>, DenseOracle) {
        let n = 60;
        let truth: Vec<u32> = (0..n).map(|v| (v / 20) as u32).collect();
        let mut inputs = Vec::new();
        for shift in 0..4u32 {
            // Perturb: each input misplaces two nodes deterministically.
            let mut labels = truth.clone();
            let a = (shift as usize * 7) % n;
            let b = (shift as usize * 13 + 20) % n;
            labels[a] = (labels[a] + 1) % 3;
            labels[b] = (labels[b] + 2) % 3;
            inputs.push(c(&labels));
        }
        let oracle = DenseOracle::from_clusterings(&inputs);
        (inputs, oracle)
    }

    #[test]
    fn sample_size_resolution() {
        assert_eq!(SampleSize::Absolute(10).resolve(5), 5);
        assert_eq!(SampleSize::Absolute(10).resolve(100), 10);
        let s = SampleSize::LogFactor(3.0).resolve(1000);
        assert!(
            s >= (3.0 * 1000f64.ln()) as usize && s <= 1 + (3.0 * 1000f64.ln()).ceil() as usize
        );
        assert_eq!(SampleSize::LogFactor(100.0).resolve(10), 10);
    }

    #[test]
    fn recovers_block_structure_with_modest_sample() {
        let (_, oracle) = blocks_instance();
        let params = SamplingParams::new(
            20,
            Algorithm::Agglomerative(AgglomerativeParams::default()),
            42,
        );
        let result = sampling(&oracle, &params);
        // The three big blocks must be recovered as the dominant clusters.
        let truth = c(&(0..60).map(|v| (v / 20) as u32).collect::<Vec<_>>());
        let d = crate::distance::disagreement_distance(&result, &truth);
        // 60 nodes → 1770 pairs; allow a small number of stragglers.
        assert!(d < 120, "disagreement {d} too high");
    }

    #[test]
    fn full_sample_matches_base_algorithm() {
        let (_, oracle) = blocks_instance();
        let base = Algorithm::Balls(BallsParams::default());
        let params = SamplingParams {
            size: SampleSize::Absolute(60),
            base: base.clone(),
            seed: 7,
            recluster_singletons: true,
        };
        let via_sampling = sampling(&oracle, &params);
        let direct = base.run(&oracle);
        assert_eq!(via_sampling, direct);
    }

    #[test]
    fn deterministic_given_seed() {
        let (_, oracle) = blocks_instance();
        let params = SamplingParams::new(
            15,
            Algorithm::Agglomerative(AgglomerativeParams::default()),
            123,
        );
        assert_eq!(sampling(&oracle, &params), sampling(&oracle, &params));
    }

    #[test]
    fn works_on_lazy_oracle() {
        let (inputs, dense) = blocks_instance();
        let lazy = ClusteringsOracle::from_total(&inputs);
        let params = SamplingParams::new(
            20,
            Algorithm::Agglomerative(AgglomerativeParams::default()),
            42,
        );
        assert_eq!(sampling(&lazy, &params), sampling(&dense, &params));
    }

    #[test]
    fn recluster_pass_reduces_or_keeps_cost() {
        let (_, oracle) = blocks_instance();
        let mut params = SamplingParams::new(
            8,
            Algorithm::Agglomerative(AgglomerativeParams::default()),
            5,
        );
        params.recluster_singletons = false;
        let without = sampling(&oracle, &params);
        params.recluster_singletons = true;
        let with = sampling(&oracle, &params);
        assert!(correlation_cost(&oracle, &with) <= correlation_cost(&oracle, &without) + 1e-9);
    }

    #[test]
    fn details_are_consistent() {
        let (_, oracle) = blocks_instance();
        let params = SamplingParams::new(
            20,
            Algorithm::Agglomerative(AgglomerativeParams::default()),
            42,
        );
        let details = sampling_with_details(&oracle, &params);
        assert_eq!(details.sample.len(), 20);
        assert!(details.sample_clusters >= 1);
        assert_eq!(details.clustering.len(), 60);
    }

    #[test]
    fn empty_instance() {
        let oracle = DenseOracle::from_fn(0, |_, _| 0.0);
        let params = SamplingParams::new(
            5,
            Algorithm::Agglomerative(AgglomerativeParams::default()),
            1,
        );
        assert_eq!(sampling(&oracle, &params).len(), 0);
    }

    #[test]
    fn budgeted_unlimited_matches_unbudgeted() {
        let (_, oracle) = blocks_instance();
        let params = SamplingParams::new(
            20,
            Algorithm::Agglomerative(AgglomerativeParams::default()),
            42,
        );
        let outcome =
            sampling_budgeted(&oracle, &params, &crate::robust::RunBudget::unlimited()).unwrap();
        assert!(outcome.status.is_converged());
        assert_eq!(outcome.clustering, sampling(&oracle, &params));
    }

    #[test]
    fn interrupt_and_resume_matches_uninterrupted() {
        use crate::snapshot::{load_snapshot, SnapshotLoad};

        let (_, oracle) = blocks_instance();
        let params = SamplingParams::new(
            20,
            Algorithm::Agglomerative(AgglomerativeParams::default()),
            42,
        );
        let full = sampling(&oracle, &params);

        let dir = std::env::temp_dir().join("aggclust_sampling_resume_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("ckpt.bin");
        // Caps past phase 2's convergence (19 merges on the sample of 20)
        // that trip mid-assignment over the 40 non-sample nodes.
        for cap in [20u64, 25, 40, 59] {
            let tight = crate::robust::RunBudget::unlimited().with_max_iters(cap);
            let mut ckpt = Checkpointer::new(&path, Duration::ZERO);
            let partial =
                sampling_resumable(&oracle, &params, &tight, None, Some(&mut ckpt)).unwrap();
            if partial.status.is_converged() {
                assert_eq!(partial.clustering, full);
                continue;
            }
            let snap = match load_snapshot(&path) {
                SnapshotLoad::Loaded(s) => s,
                other => panic!("cap {cap}: expected snapshot, got {other:?}"),
            };
            let AlgorithmSnapshot::Sampling(sm) = snap.state else {
                panic!("cap {cap}: wrong snapshot variant");
            };
            let resumed = sampling_resumable(
                &oracle,
                &params,
                &crate::robust::RunBudget::unlimited(),
                Some(&sm),
                None,
            )
            .unwrap();
            assert_eq!(resumed.clustering, full, "cap {cap}: resumed labels differ");
            assert!(resumed.status.is_converged());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_snapshot_is_ignored() {
        let (_, oracle) = blocks_instance();
        let params = SamplingParams::new(
            20,
            Algorithm::Agglomerative(AgglomerativeParams::default()),
            42,
        );
        let stale = SamplingSnapshot {
            n: 999,
            sample: vec![0, 5],
            sample_labels: vec![0, 1],
            labels: vec![u32::MAX; 999],
            next_node: 7,
            iterations: 3,
        };
        let outcome = sampling_resumable(
            &oracle,
            &params,
            &crate::robust::RunBudget::unlimited(),
            Some(&stale),
            None,
        )
        .unwrap();
        assert_eq!(outcome.clustering, sampling(&oracle, &params));
    }

    #[test]
    fn budget_trip_still_covers_every_node() {
        let (_, oracle) = blocks_instance();
        let params = SamplingParams::new(
            20,
            Algorithm::Agglomerative(AgglomerativeParams::default()),
            42,
        );
        for cap in [0u64, 3, 25] {
            let budget = crate::robust::RunBudget::unlimited().with_max_iters(cap);
            let outcome = sampling_budgeted(&oracle, &params, &budget).unwrap();
            assert_eq!(outcome.clustering.len(), 60, "cap {cap}");
        }
    }
}
