//! Incremental assignment of new objects to an existing clustering — the
//! SAMPLING post-processing phase (§4.1) packaged as a reusable component.
//!
//! Given a *reference set* of already-clustered objects, an
//! [`ClusterAssigner`] places any further object into the reference cluster
//! of least correlation cost, or into a singleton when no cluster is worth
//! joining — exactly the `M(v, Cᵢ)` computation LOCALSEARCH and SAMPLING
//! use, exposed so that streaming/online consumers can reuse a clustered
//! core without re-running aggregation:
//!
//! ```
//! use aggclust_core::assign::ClusterAssigner;
//! use aggclust_core::clustering::Clustering;
//!
//! // Reference objects 0..4 are clustered {0,1} {2,3}; distances place a
//! // new object near the first cluster.
//! let reference = Clustering::from_labels(vec![0, 0, 1, 1]);
//! let assigner = ClusterAssigner::new(reference);
//! let decision = assigner.assign(&|u| if u < 2 { 0.0 } else { 1.0 });
//! assert_eq!(decision, Some(0));
//! ```

use crate::clustering::Clustering;

/// Assigns new objects to the clusters of a fixed reference clustering.
#[derive(Clone, Debug)]
pub struct ClusterAssigner {
    reference: Clustering,
    cluster_sizes: Vec<usize>,
}

impl ClusterAssigner {
    /// Build from the reference clustering (of the reference objects only).
    pub fn new(reference: Clustering) -> Self {
        let cluster_sizes = reference.cluster_sizes();
        ClusterAssigner {
            reference,
            cluster_sizes,
        }
    }

    /// Number of reference objects.
    pub fn reference_len(&self) -> usize {
        self.reference.len()
    }

    /// The reference clustering.
    pub fn reference(&self) -> &Clustering {
        &self.reference
    }

    /// Decide where a new object belongs. `dist(u)` must return the
    /// distance `X` between the new object and reference object `u`.
    ///
    /// Returns `Some(cluster_label)` when joining a reference cluster is
    /// at least as cheap as staying alone, `None` for "make it a
    /// singleton". Deterministic: ties prefer the lowest cluster label;
    /// the singleton option wins only when *strictly* cheaper.
    pub fn assign(&self, dist: &dyn Fn(usize) -> f64) -> Option<u32> {
        let s = self.reference.len();
        if s == 0 {
            return None;
        }
        let ell = self.reference.num_clusters();
        let mut m_sums = vec![0.0f64; ell];
        let mut total = 0.0;
        for u in 0..s {
            let x = dist(u);
            debug_assert!((0.0..=1.0).contains(&x), "distance {x} out of [0,1]");
            m_sums[self.reference.label(u) as usize] += x;
            total += x;
        }
        // cost(join Cᵢ) = 2·Mᵢ − T + s − |Cᵢ|; cost(singleton) = s − T.
        let singleton = s as f64 - total;
        let mut best = f64::INFINITY;
        let mut best_i = None;
        for (i, &m_i) in m_sums.iter().enumerate() {
            let c = 2.0 * m_i - total + s as f64 - self.cluster_sizes[i] as f64;
            if c < best {
                best = c;
                best_i = Some(i as u32);
            }
        }
        if singleton < best {
            None
        } else {
            best_i
        }
    }

    /// Assign a batch of objects given a distance matrix accessor
    /// `dist(new_index, reference_index)`. Returns one decision per object.
    pub fn assign_batch(
        &self,
        count: usize,
        dist: &dyn Fn(usize, usize) -> f64,
    ) -> Vec<Option<u32>> {
        (0..count).map(|i| self.assign(&|u| dist(i, u))).collect()
    }

    /// Extend the reference clustering with a batch of new objects: joined
    /// objects take their cluster's label, singletons get fresh labels.
    /// Returns the combined clustering over `reference_len() + count`
    /// objects (reference objects first).
    pub fn extend(&self, count: usize, dist: &dyn Fn(usize, usize) -> f64) -> Clustering {
        let mut labels: Vec<u32> = self.reference.labels().to_vec();
        let mut next = self.reference.num_clusters() as u32;
        for decision in self.assign_batch(count, dist) {
            match decision {
                Some(l) => labels.push(l),
                None => {
                    labels.push(next);
                    next += 1;
                }
            }
        }
        Clustering::from_labels(labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::correlation_cost;
    use crate::instance::DenseOracle;

    #[test]
    fn joins_the_obviously_close_cluster() {
        let reference = Clustering::from_labels(vec![0, 0, 1, 1]);
        let assigner = ClusterAssigner::new(reference);
        // Near cluster 1 (objects 2, 3).
        let decision = assigner.assign(&|u| if u >= 2 { 0.1 } else { 0.9 });
        assert_eq!(decision, Some(1));
    }

    #[test]
    fn far_from_everything_becomes_singleton() {
        let reference = Clustering::from_labels(vec![0, 0, 1, 1]);
        let assigner = ClusterAssigner::new(reference);
        assert_eq!(assigner.assign(&|_| 1.0), None);
    }

    #[test]
    fn half_distances_tie_toward_joining() {
        // At X ≡ ½ the join and singleton costs are equal; the assigner
        // joins (ties prefer clusters).
        let reference = Clustering::from_labels(vec![0, 0]);
        let assigner = ClusterAssigner::new(reference);
        assert_eq!(assigner.assign(&|_| 0.5), Some(0));
    }

    #[test]
    fn assignment_minimizes_true_correlation_cost() {
        // Brute-force check: the chosen option is the cheapest extension.
        let reference = Clustering::from_labels(vec![0, 0, 1, 1, 2]);
        let assigner = ClusterAssigner::new(reference.clone());
        let dists = [0.2, 0.4, 0.7, 0.9, 0.45];
        let decision = assigner.assign(&|u| dists[u]);

        // Evaluate every extension over the 6-object instance.
        let mut oracle = DenseOracle::from_fn(6, |_, _| 0.5);
        // Reference pairwise distances: 0 within clusters, 1 across.
        for u in 0..5 {
            for v in (u + 1)..5 {
                oracle.set(
                    u,
                    v,
                    if reference.same_cluster(u, v) {
                        0.0
                    } else {
                        1.0
                    },
                );
            }
        }
        for (u, &d) in dists.iter().enumerate() {
            oracle.set(u, 5, d);
        }
        let mut best = (f64::INFINITY, 99u32);
        for target in 0..=3u32 {
            let mut labels: Vec<u32> = reference.labels().to_vec();
            labels.push(target);
            let c = Clustering::from_labels(labels);
            let cost = correlation_cost(&oracle, &c);
            if cost < best.0 {
                best = (cost, target);
            }
        }
        let expected = if best.1 == 3 { None } else { Some(best.1) };
        assert_eq!(decision, expected);
    }

    #[test]
    fn extend_builds_the_combined_clustering() {
        let reference = Clustering::from_labels(vec![0, 0, 1]);
        let assigner = ClusterAssigner::new(reference);
        // Two new objects: one near cluster 0, one far from everything.
        let dist = |i: usize, u: usize| match (i, u) {
            (0, 0) | (0, 1) => 0.0,
            (0, _) => 1.0,
            (1, _) => 1.0,
            _ => unreachable!(),
        };
        let combined = assigner.extend(2, &dist);
        assert_eq!(combined.len(), 5);
        assert!(combined.same_cluster(0, 3));
        assert_eq!(combined.cluster_sizes()[combined.label(4) as usize], 1);
    }

    #[test]
    fn empty_reference() {
        let assigner = ClusterAssigner::new(Clustering::from_labels(vec![]));
        assert_eq!(assigner.assign(&|_| 0.0), None);
    }
}
