//! Clustering (set partition) representations.
//!
//! A [`Clustering`] is a partition of `n` objects `0..n` into disjoint
//! clusters, stored as a dense label vector. Labels are always *normalized*:
//! cluster ids are `0..k` in order of first appearance, so two label vectors
//! describe the same partition if and only if their normalized forms are
//! equal.
//!
//! A [`PartialClustering`] additionally allows objects with *no* label,
//! which models missing values when categorical attributes are interpreted
//! as clusterings (paper §2, "Missing values").

use std::collections::HashMap;
use std::fmt;

/// A partition of objects `0..n` into `k` disjoint clusters.
///
/// Internally a dense `Vec<u32>` of cluster labels, normalized to
/// first-appearance order. Construction via [`Clustering::from_labels`]
/// performs the normalization; all other methods rely on it.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Clustering {
    labels: Vec<u32>,
    num_clusters: u32,
}

impl Clustering {
    /// Build a clustering from an arbitrary label vector.
    ///
    /// Labels are relabeled to `0..k` in order of first appearance, so any
    /// two label vectors inducing the same partition produce equal
    /// `Clustering`s.
    ///
    /// ```
    /// use aggclust_core::clustering::Clustering;
    /// let a = Clustering::from_labels(vec![7, 7, 3, 3]);
    /// let b = Clustering::from_labels(vec![0, 0, 1, 1]);
    /// assert_eq!(a, b);
    /// ```
    pub fn from_labels(mut labels: Vec<u32>) -> Self {
        let mut remap: HashMap<u32, u32> = HashMap::new();
        let mut next = 0u32;
        for l in labels.iter_mut() {
            let entry = remap.entry(*l).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            });
            *l = *entry;
        }
        Clustering {
            labels,
            num_clusters: next,
        }
    }

    /// Build a clustering from explicit cluster member lists.
    ///
    /// Every object in `0..n` must appear in exactly one cluster.
    ///
    /// # Panics
    /// Panics if the sets do not form a partition of `0..n`.
    pub fn from_clusters(n: usize, clusters: &[Vec<usize>]) -> Self {
        let mut labels = vec![u32::MAX; n];
        for (id, members) in clusters.iter().enumerate() {
            for &v in members {
                assert!(v < n, "object {v} out of range 0..{n}");
                assert_eq!(
                    labels[v],
                    u32::MAX,
                    "object {v} appears in more than one cluster"
                );
                labels[v] = id as u32;
            }
        }
        assert!(
            labels.iter().all(|&l| l != u32::MAX),
            "some object is not covered by any cluster"
        );
        Clustering::from_labels(labels)
    }

    /// The all-singletons clustering of `n` objects.
    pub fn singletons(n: usize) -> Self {
        Clustering {
            labels: (0..n as u32).collect(),
            num_clusters: n as u32,
        }
    }

    /// The single-cluster clustering of `n` objects (`n ≥ 1` gives one
    /// cluster; `n = 0` gives zero clusters).
    pub fn one_cluster(n: usize) -> Self {
        Clustering {
            labels: vec![0; n],
            num_clusters: if n == 0 { 0 } else { 1 },
        }
    }

    /// Number of objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if the clustering has no objects.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of clusters `k`.
    #[inline]
    pub fn num_clusters(&self) -> usize {
        self.num_clusters as usize
    }

    /// Cluster label of object `v`.
    #[inline]
    pub fn label(&self, v: usize) -> u32 {
        self.labels[v]
    }

    /// The underlying normalized label vector.
    #[inline]
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Consume and return the normalized label vector.
    pub fn into_labels(self) -> Vec<u32> {
        self.labels
    }

    /// `true` if `u` and `v` share a cluster.
    #[inline]
    pub fn same_cluster(&self, u: usize, v: usize) -> bool {
        self.labels[u] == self.labels[v]
    }

    /// Sizes of the `k` clusters, indexed by label.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_clusters()];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// Member lists of the `k` clusters, indexed by label.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.num_clusters()];
        for (v, &l) in self.labels.iter().enumerate() {
            out[l as usize].push(v);
        }
        out
    }

    /// Number of unordered object pairs co-clustered by this clustering:
    /// `Σ_i s_i (s_i − 1) / 2`.
    pub fn pairs_together(&self) -> u64 {
        self.cluster_sizes()
            .iter()
            .map(|&s| (s as u64) * (s as u64 - 1) / 2)
            .sum()
    }

    /// Number of clusters that are singletons.
    pub fn num_singletons(&self) -> usize {
        self.cluster_sizes().iter().filter(|&&s| s == 1).count()
    }

    /// Restrict the clustering to a subset of objects (given by indices into
    /// `0..n`), renumbering both objects and cluster labels.
    pub fn restrict(&self, subset: &[usize]) -> Clustering {
        Clustering::from_labels(subset.iter().map(|&v| self.labels[v]).collect())
    }

    /// Packed-lane code of object `v` for the SWAR kernels
    /// ([`crate::kernels`]): the normalized label plus one, since lane
    /// code `0` is reserved for "missing" in the shared total/partial
    /// encoding.
    #[inline]
    pub fn lane_code(&self, v: usize) -> u64 {
        self.labels[v] as u64 + 1
    }

    /// Largest lane code this clustering can produce (= its cluster
    /// count, because normalized labels are `0..k`). Decides whether
    /// [`crate::kernels::LabelMatrix`] can use 16-bit lanes.
    #[inline]
    pub fn max_lane_code(&self) -> u64 {
        self.num_clusters as u64
    }

    /// `true` if this clustering *refines* `other`: every cluster of `self`
    /// is contained in a single cluster of `other`.
    pub fn refines(&self, other: &Clustering) -> bool {
        assert_eq!(self.len(), other.len());
        let mut seen: HashMap<u32, u32> = HashMap::new();
        for (v, &l) in self.labels.iter().enumerate() {
            match seen.entry(l) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != other.labels[v] {
                        return false;
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(other.labels[v]);
                }
            }
        }
        true
    }
}

impl fmt::Debug for Clustering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Clustering(k={}, {:?})", self.num_clusters, self.labels)
    }
}

/// A clustering in which some objects may be unlabeled (missing).
///
/// This models a categorical attribute with missing values: each distinct
/// attribute value is a cluster, and rows where the attribute is missing
/// carry no label. How missing labels contribute to pairwise distances is
/// decided by [`crate::instance::MissingPolicy`].
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct PartialClustering {
    labels: Vec<Option<u32>>,
    num_clusters: u32,
}

impl PartialClustering {
    /// Build from optional labels; present labels are normalized to `0..k`
    /// in first-appearance order.
    pub fn from_labels(mut labels: Vec<Option<u32>>) -> Self {
        let mut remap: HashMap<u32, u32> = HashMap::new();
        let mut next = 0u32;
        for l in labels.iter_mut().flatten() {
            let entry = remap.entry(*l).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            });
            *l = *entry;
        }
        PartialClustering {
            labels,
            num_clusters: next,
        }
    }

    /// A total clustering viewed as a partial one.
    pub fn from_total(c: &Clustering) -> Self {
        PartialClustering {
            labels: c.labels().iter().map(|&l| Some(l)).collect(),
            num_clusters: c.num_clusters() as u32,
        }
    }

    /// Number of objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if there are no objects.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of (non-missing) clusters.
    #[inline]
    pub fn num_clusters(&self) -> usize {
        self.num_clusters as usize
    }

    /// Label of object `v`, or `None` if missing.
    #[inline]
    pub fn label(&self, v: usize) -> Option<u32> {
        self.labels[v]
    }

    /// The underlying label vector.
    #[inline]
    pub fn labels(&self) -> &[Option<u32>] {
        &self.labels
    }

    /// Number of objects with a missing label.
    pub fn num_missing(&self) -> usize {
        self.labels.iter().filter(|l| l.is_none()).count()
    }

    /// Packed-lane code of object `v` for the SWAR kernels
    /// ([`crate::kernels`]): `0` when the label is missing, otherwise the
    /// normalized label plus one.
    #[inline]
    pub fn lane_code(&self, v: usize) -> u64 {
        self.labels[v].map_or(0, |l| l as u64 + 1)
    }

    /// Largest lane code this clustering can produce (= its cluster
    /// count). Decides whether [`crate::kernels::LabelMatrix`] can use
    /// 16-bit lanes.
    #[inline]
    pub fn max_lane_code(&self) -> u64 {
        self.num_clusters as u64
    }

    /// Convert to a total [`Clustering`] by placing every unlabeled object
    /// in its own fresh singleton cluster.
    pub fn complete_with_singletons(&self) -> Clustering {
        let mut next = self.num_clusters;
        let labels = self
            .labels
            .iter()
            .map(|l| match l {
                Some(l) => *l,
                None => {
                    let id = next;
                    next += 1;
                    id
                }
            })
            .collect();
        Clustering::from_labels(labels)
    }
}

impl fmt::Debug for PartialClustering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PartialClustering(k={}, missing={}, n={})",
            self.num_clusters,
            self.num_missing(),
            self.labels.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_first_appearance() {
        let c = Clustering::from_labels(vec![5, 2, 5, 9, 2]);
        assert_eq!(c.labels(), &[0, 1, 0, 2, 1]);
        assert_eq!(c.num_clusters(), 3);
    }

    #[test]
    fn equality_is_partition_equality() {
        let a = Clustering::from_labels(vec![1, 1, 0, 2]);
        let b = Clustering::from_labels(vec![10, 10, 20, 30]);
        assert_eq!(a, b);
        let c = Clustering::from_labels(vec![0, 1, 1, 2]);
        assert_ne!(a, c);
    }

    #[test]
    fn from_clusters_roundtrip() {
        let c = Clustering::from_clusters(5, &[vec![0, 2], vec![1], vec![3, 4]]);
        assert_eq!(c.labels(), &[0, 1, 0, 2, 2]);
        assert_eq!(c.clusters(), vec![vec![0, 2], vec![1], vec![3, 4]]);
    }

    #[test]
    #[should_panic(expected = "more than one cluster")]
    fn from_clusters_rejects_overlap() {
        let _ = Clustering::from_clusters(3, &[vec![0, 1], vec![1, 2]]);
    }

    #[test]
    #[should_panic(expected = "not covered")]
    fn from_clusters_rejects_uncovered() {
        let _ = Clustering::from_clusters(3, &[vec![0, 1]]);
    }

    #[test]
    fn singletons_and_one_cluster() {
        let s = Clustering::singletons(4);
        assert_eq!(s.num_clusters(), 4);
        assert_eq!(s.pairs_together(), 0);
        let o = Clustering::one_cluster(4);
        assert_eq!(o.num_clusters(), 1);
        assert_eq!(o.pairs_together(), 6);
        assert_eq!(Clustering::one_cluster(0).num_clusters(), 0);
    }

    #[test]
    fn cluster_sizes_and_singleton_count() {
        let c = Clustering::from_labels(vec![0, 0, 1, 2, 2, 2]);
        assert_eq!(c.cluster_sizes(), vec![2, 1, 3]);
        assert_eq!(c.num_singletons(), 1);
    }

    #[test]
    fn restrict_renumbers() {
        let c = Clustering::from_labels(vec![0, 0, 1, 1, 2]);
        let r = c.restrict(&[2, 3, 4]);
        assert_eq!(r.labels(), &[0, 0, 1]);
    }

    #[test]
    fn refinement() {
        let fine = Clustering::from_labels(vec![0, 1, 2, 2]);
        let coarse = Clustering::from_labels(vec![0, 0, 1, 1]);
        assert!(fine.refines(&coarse));
        assert!(!coarse.refines(&fine));
        assert!(fine.refines(&fine));
        assert!(Clustering::singletons(4).refines(&coarse));
        assert!(coarse.refines(&Clustering::one_cluster(4)));
    }

    #[test]
    fn partial_clustering_basics() {
        let p = PartialClustering::from_labels(vec![Some(3), None, Some(3), Some(1), None]);
        assert_eq!(p.num_clusters(), 2);
        assert_eq!(p.num_missing(), 2);
        assert_eq!(p.label(0), Some(0));
        assert_eq!(p.label(3), Some(1));
        let total = p.complete_with_singletons();
        assert_eq!(total.num_clusters(), 4);
        assert!(total.same_cluster(0, 2));
        assert!(!total.same_cluster(1, 4));
    }

    #[test]
    fn partial_from_total() {
        let c = Clustering::from_labels(vec![0, 1, 0]);
        let p = PartialClustering::from_total(&c);
        assert_eq!(p.num_missing(), 0);
        assert_eq!(p.complete_with_singletons(), c);
    }
}
