//! High-level consensus API: aggregate a set of clusterings in one call.
//!
//! The lower-level modules expose each algorithm separately; this module
//! packages the paper's recommended pipeline behind a builder:
//!
//! ```
//! use aggclust_core::clustering::Clustering;
//! use aggclust_core::consensus::ConsensusBuilder;
//!
//! let inputs = vec![
//!     Clustering::from_labels(vec![0, 0, 1, 1, 2, 2]),
//!     Clustering::from_labels(vec![0, 1, 0, 1, 2, 3]),
//!     Clustering::from_labels(vec![0, 1, 0, 1, 2, 2]),
//! ];
//! let result = ConsensusBuilder::new().aggregate(&inputs);
//! assert_eq!(result.clustering.num_clusters(), 3);
//! assert_eq!(result.disagreements, 5);
//! ```
//!
//! Defaults follow the paper's practice: AGGLOMERATIVE (parameter-free,
//! strong on every dataset in §5) refined by a LOCALSEARCH pass (the
//! post-processing use the paper suggests), switching to SAMPLING
//! automatically above a size threshold where the dense `O(n²)` matrix
//! stops being reasonable.

use crate::algorithms::local_search::local_search_from;
use crate::algorithms::local_search::local_search_from_resumable;
use crate::algorithms::sampling::{sampling, sampling_resumable, SamplingParams};
use crate::algorithms::{AgglomerativeParams, Algorithm, BallsParams};
use crate::clustering::{Clustering, PartialClustering};
use crate::cost::{correlation_cost, lower_bound};
use crate::distance::{disagreement_distance_gauged, total_disagreement};
use crate::error::AggResult;
use crate::exact::{branch_and_bound_budgeted, MAX_BNB_N};
use crate::instance::{ClusteringsOracle, CorrelationInstance, DistanceOracle, MissingPolicy};
use crate::robust::{Interrupt, RunBudget, RunStatus};
use crate::snapshot::{AlgorithmSnapshot, Checkpointer, LocalSearchSnapshot, Snapshot};
use crate::spill::{SpillConfig, SpillError, SpilledOracle};
use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

/// A graceful-degradation step taken during a consensus run, as a typed
/// value machine consumers can match on. `Display` reproduces the exact
/// human-readable strings that `ConsensusResult::warnings` carried when it
/// was a `Vec<String>`, so CLI output is byte-identical.
///
/// Each warning is also emitted as a [`crate::warn!`] telemetry event the
/// moment it is recorded.
#[derive(Clone, Debug, PartialEq)]
pub enum Warning {
    /// The dense distance matrix was refused by the memory cap and the run
    /// degraded to SAMPLING with a sample whose matrix fits.
    MemoryDegradedToSampling {
        /// Bytes the dense matrix would have needed.
        requested: u64,
        /// The configured memory cap in bytes.
        limit: u64,
        /// The clamped sample size actually used.
        sample_size: usize,
    },
    /// The dense distance matrix was refused by the memory cap and the run
    /// spilled it to disk as checksummed tiles (see [`crate::spill`]),
    /// keeping every pairwise distance bit-identical to the dense run.
    MemoryDegradedToSpill {
        /// Bytes the dense matrix would have needed.
        requested: u64,
        /// The configured memory cap in bytes.
        limit: u64,
        /// Number of tile frames the matrix was split into.
        tiles: usize,
    },
    /// Spilling to disk was configured but failed persistently (out of
    /// disk space, unwritable directory); the run degraded one more step,
    /// to the lazy oracle.
    SpillFailed {
        /// The rendered I/O error.
        reason: String,
    },
    /// The dense distance matrix was refused by the memory cap and the run
    /// fell back to the `O(n·m)` lazy oracle.
    MemoryDegradedToLazyOracle {
        /// Bytes the dense matrix would have needed.
        requested: u64,
        /// The configured memory cap in bytes.
        limit: u64,
    },
    /// The budget tripped while the distance matrix was being built; the
    /// only valid anytime answer was the all-singletons clustering.
    MatrixBuildInterrupted,
    /// The SAMPLING run stopped early; unvisited objects were left as
    /// singletons.
    SamplingStoppedEarly {
        /// How the sampling run ended.
        status: RunStatus,
    },
    /// The exact branch-and-bound search stopped early; the result is the
    /// best incumbent, not a proven optimum.
    ExactSearchStoppedEarly,
    /// The instance exceeded [`MAX_BNB_N`]; the run fell back to the BALLS
    /// 3-approximation instead of erroring.
    ExactSearchTooLarge {
        /// The instance size that was rejected.
        n: usize,
    },
    /// The main stage stopped early under checkpointing, so refinement was
    /// skipped to keep the stage-0 snapshot resumable.
    RefinementSkippedForResume,
    /// The budget tripped during the LOCALSEARCH refinement pass; the
    /// partially refined consensus was returned.
    RefinementInterrupted,
}

impl Warning {
    /// Stable machine-readable tag for this warning kind (used as the
    /// telemetry event field; `Display` carries the prose).
    pub fn kind(&self) -> &'static str {
        match self {
            Warning::MemoryDegradedToSampling { .. } => "memory_degraded_to_sampling",
            Warning::MemoryDegradedToSpill { .. } => "memory_degraded_to_spill",
            Warning::SpillFailed { .. } => "spill_failed",
            Warning::MemoryDegradedToLazyOracle { .. } => "memory_degraded_to_lazy_oracle",
            Warning::MatrixBuildInterrupted => "matrix_build_interrupted",
            Warning::SamplingStoppedEarly { .. } => "sampling_stopped_early",
            Warning::ExactSearchStoppedEarly => "exact_search_stopped_early",
            Warning::ExactSearchTooLarge { .. } => "exact_search_too_large",
            Warning::RefinementSkippedForResume => "refinement_skipped_for_resume",
            Warning::RefinementInterrupted => "refinement_interrupted",
        }
    }
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Warning::MemoryDegradedToSampling {
                requested,
                limit,
                sample_size,
            } => write!(
                f,
                "memory budget: dense distance matrix needs {requested} bytes \
                 (cap {limit}); degrading to SAMPLING with sample size {sample_size}"
            ),
            Warning::MemoryDegradedToSpill {
                requested,
                limit,
                tiles,
            } => write!(
                f,
                "memory budget: dense distance matrix needs {requested} bytes \
                 (cap {limit}); spilling the condensed matrix to disk as \
                 {tiles} checksummed tiles (distances stay bit-identical)"
            ),
            Warning::SpillFailed { reason } => write!(
                f,
                "spill to disk failed ({reason}); degrading to the next \
                 fallback instead"
            ),
            Warning::MemoryDegradedToLazyOracle { requested, limit } => write!(
                f,
                "memory budget: dense distance matrix needs {requested} bytes \
                 (cap {limit}); using the O(n·m) lazy oracle instead \
                 (slower, no quadratic memory)"
            ),
            Warning::MatrixBuildInterrupted => f.write_str(
                "budget exhausted while building the distance matrix; \
                 returning the all-singletons clustering",
            ),
            Warning::SamplingStoppedEarly { status } => write!(
                f,
                "sampling run stopped early ({status:?}); unvisited objects were left as singletons"
            ),
            Warning::ExactSearchStoppedEarly => f.write_str(
                "exact search stopped early; the result is the best \
                 incumbent found, not a proven optimum",
            ),
            Warning::ExactSearchTooLarge { n } => write!(
                f,
                "instance too large for exact search (n = {n} > {MAX_BNB_N}); \
                 falling back to the BALLS 3-approximation"
            ),
            Warning::RefinementSkippedForResume => f.write_str(
                "main stage stopped early; skipping refinement so the checkpoint \
                 stays resumable",
            ),
            Warning::RefinementInterrupted => f.write_str(
                "budget exhausted during LOCALSEARCH refinement; \
                 returning the partially refined consensus",
            ),
        }
    }
}

/// Record a degradation step: emit it as a telemetry event, then keep it in
/// the result's warning list.
fn push_warning(warnings: &mut Vec<Warning>, warning: Warning) {
    crate::warn!(&warning.to_string(), kind = warning.kind());
    warnings.push(warning);
}

/// Outcome of a consensus run.
#[derive(Clone, Debug)]
pub struct ConsensusResult {
    /// The aggregated clustering.
    pub clustering: Clustering,
    /// Its correlation cost `d(C)` (expected pair disagreements per input).
    /// `NaN` when the run sampled — evaluating it would be `O(n²)`; use
    /// [`crate::cost::correlation_cost`] explicitly if you need it.
    pub cost: f64,
    /// Total disagreements `D(C)` with the inputs (exact when the inputs
    /// are total clusterings; rounded expectation otherwise; 0 when the
    /// run sampled, see `cost`).
    pub disagreements: u64,
    /// The instance-wide per-pair lower bound on `d(C)` — how close to
    /// unimprovable the result provably is. `None` when the run sampled
    /// (computing it would be `O(n²)`).
    pub lower_bound: Option<f64>,
    /// Whether the SAMPLING path was taken.
    pub sampled: bool,
    /// How the run ended. Always `Converged` on the panicking API; the
    /// budgeted [`ConsensusBuilder::try_aggregate`] path reports
    /// `BudgetExceeded`/`Cancelled` when the result is best-so-far.
    pub status: RunStatus,
    /// Graceful-degradation steps taken (exact solver skipped, refinement
    /// interrupted, …), as typed [`Warning`] values whose `Display` gives
    /// the human-readable note. Empty on a clean run.
    pub warnings: Vec<Warning>,
}

/// Builder for consensus clustering runs. All settings optional.
#[derive(Clone, Debug)]
pub struct ConsensusBuilder {
    algorithm: Algorithm,
    refine: bool,
    missing_policy: MissingPolicy,
    sampling_threshold: usize,
    sample_size: usize,
    seed: u64,
    budget: RunBudget,
    prefer_exact: bool,
    checkpoint_path: Option<PathBuf>,
    checkpoint_every: Duration,
    resume_from: Option<Snapshot>,
    spill_dir: Option<PathBuf>,
}

impl Default for ConsensusBuilder {
    fn default() -> Self {
        ConsensusBuilder {
            algorithm: Algorithm::Agglomerative(AgglomerativeParams::default()),
            refine: true,
            missing_policy: MissingPolicy::default(),
            sampling_threshold: 6_000,
            sample_size: 1_600,
            seed: 0,
            budget: RunBudget::unlimited(),
            prefer_exact: false,
            checkpoint_path: None,
            checkpoint_every: Duration::from_millis(250),
            resume_from: None,
            spill_dir: None,
        }
    }
}

impl ConsensusBuilder {
    /// Start from the defaults described in the module docs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Use a specific aggregation algorithm instead of AGGLOMERATIVE.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Enable/disable the LOCALSEARCH refinement pass (default: on).
    pub fn refine(mut self, refine: bool) -> Self {
        self.refine = refine;
        self
    }

    /// Missing-value policy for partial inputs (default: fair coin).
    pub fn missing_policy(mut self, policy: MissingPolicy) -> Self {
        self.missing_policy = policy;
        self
    }

    /// Switch to SAMPLING above this many objects (default 6000; the dense
    /// matrix at the threshold is ~140 MB).
    pub fn sampling_threshold(mut self, n: usize) -> Self {
        self.sampling_threshold = n;
        self
    }

    /// Sample size used when sampling (default 1600, the paper's sweet
    /// spot on Mushrooms).
    pub fn sample_size(mut self, s: usize) -> Self {
        self.sample_size = s;
        self
    }

    /// Seed for the sampling RNG.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Run budget (deadline / iteration cap / cancel token) honored by the
    /// budgeted [`ConsensusBuilder::try_aggregate`] entry points. The
    /// panicking `aggregate` API always runs unlimited. Default: unlimited.
    pub fn budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Prefer an exact branch-and-bound solve when the instance is small
    /// enough (`n <= 24`); above that the builder degrades to the BALLS
    /// 3-approximation with a warning instead of erroring. Only honored by
    /// the budgeted `try_aggregate` entry points. Default: off.
    pub fn prefer_exact(mut self, prefer_exact: bool) -> Self {
        self.prefer_exact = prefer_exact;
        self
    }

    /// Periodically persist in-flight algorithm state to `path` (atomic,
    /// checksummed writes — see [`crate::snapshot`]), no more often than
    /// `every`, plus a final save whenever the budget or cancel token trips
    /// mid-run. Only honored by the budgeted `try_aggregate` entry points,
    /// and only by the long-running stages (AGGLOMERATIVE merging,
    /// LOCALSEARCH passes, SAMPLING assignment); checkpoint failures are
    /// recorded, never fatal. Default: off.
    pub fn checkpoint(mut self, path: impl Into<PathBuf>, every: Duration) -> Self {
        self.checkpoint_path = Some(path.into());
        self.checkpoint_every = every;
        self
    }

    /// Resume from a snapshot previously loaded with
    /// [`crate::snapshot::load_snapshot`]. A snapshot that does not match
    /// this run's instance or configuration is silently ignored (the run
    /// starts fresh); load-time corruption is the *caller's* signal to warn.
    /// Only honored by the budgeted `try_aggregate` entry points.
    pub fn resume_from(mut self, snapshot: Snapshot) -> Self {
        self.resume_from = Some(snapshot);
        self
    }

    /// When the memory cap refuses the dense distance matrix, spill it to
    /// disk as checksummed tiles under `dir` (see [`crate::spill`]) instead
    /// of degrading straight to the lazy oracle. Distances served from the
    /// spill store are bit-identical to the dense run at any thread count.
    /// Only honored by the budgeted `try_aggregate` entry points; not used
    /// by AGGLOMERATIVE, which needs a mutable in-RAM matrix and keeps its
    /// clamped-SAMPLING fallback. Valid orphaned tiles already in `dir`
    /// (from a killed run) are reclaimed. Default: off.
    pub fn spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Aggregate total clusterings.
    ///
    /// # Panics
    /// Panics if `inputs` is empty or the clusterings disagree on `n`.
    pub fn aggregate(&self, inputs: &[Clustering]) -> ConsensusResult {
        let partial: Vec<PartialClustering> =
            inputs.iter().map(PartialClustering::from_total).collect();
        let mut result = self.aggregate_partial(partial);
        // Exact integer disagreement count for total inputs.
        result.disagreements = total_disagreement(inputs, &result.clustering);
        result
    }

    /// Aggregate partial clusterings (missing labels allowed).
    ///
    /// # Panics
    /// Panics if `inputs` is empty or the clusterings disagree on `n`.
    pub fn aggregate_partial(&self, inputs: Vec<PartialClustering>) -> ConsensusResult {
        assert!(!inputs.is_empty(), "need at least one input clustering");
        let m = inputs.len();
        let n = inputs[0].len();
        let _span = crate::span!(
            "consensus",
            n = n,
            m = m,
            algorithm = self.algorithm.name(),
            refine = self.refine
        );
        let oracle = ClusteringsOracle::new(inputs.clone(), self.missing_policy);

        if n > self.sampling_threshold {
            let params = SamplingParams::new(self.sample_size, self.algorithm.clone(), self.seed);
            let clustering = sampling(&oracle, &params);
            // d(C) over all pairs would be O(n²); report the objective the
            // caller can evaluate later if needed.
            return ConsensusResult {
                cost: f64::NAN,
                disagreements: 0,
                lower_bound: None,
                sampled: true,
                status: RunStatus::Converged,
                warnings: Vec::new(),
                clustering,
            };
        }

        let instance = CorrelationInstance::from_partial(inputs, self.missing_policy);
        let dense = instance.dense_oracle();
        let mut clustering = self.algorithm.run(&dense);
        if self.refine {
            clustering = local_search_from(&dense, &clustering, 200, 1e-9);
        }
        let cost = correlation_cost(&dense, &clustering);
        ConsensusResult {
            disagreements: (cost * m as f64).round() as u64,
            lower_bound: Some(lower_bound(&dense)),
            sampled: false,
            status: RunStatus::Converged,
            warnings: Vec::new(),
            cost,
            clustering,
        }
    }

    /// Fallible, budget-aware variant of [`ConsensusBuilder::aggregate`].
    ///
    /// Invalid input (empty set, mismatched object counts) comes back as a
    /// typed [`crate::AggError`] instead of a panic, and the configured
    /// [`RunBudget`] is honored with anytime semantics: a budget trip yields
    /// the best consensus found so far, tagged via `status` and explained in
    /// `warnings`.
    pub fn try_aggregate(&self, inputs: &[Clustering]) -> AggResult<ConsensusResult> {
        let partial: Vec<PartialClustering> =
            inputs.iter().map(PartialClustering::from_total).collect();
        let mut result = self.try_aggregate_partial(partial)?;
        if !result.sampled && result.cost.is_finite() {
            // Contingency tables are charged to the budget's gauge so
            // `--mem-budget` diagnostics see transient usage too.
            let gauge = self.budget.mem_gauge();
            result.disagreements = inputs
                .iter()
                .map(|c| disagreement_distance_gauged(c, &result.clustering, Some(gauge)))
                .sum();
        }
        Ok(result)
    }

    /// Fallible, budget-aware variant of [`ConsensusBuilder::aggregate_partial`].
    ///
    /// Graceful-degradation chain:
    /// 1. `n` over the sampling threshold → SAMPLING (budgeted).
    /// 2. Dense matrix refused by the **memory cap** → the `O(n·m)` lazy
    ///    oracle (same answer, no quadratic memory) — except AGGLOMERATIVE,
    ///    which needs its own matrix and instead degrades to SAMPLING with
    ///    the sample clamped to fit the cap. Each step leaves a warning.
    ///    The lazy oracle answers through the packed SWAR rows of
    ///    [`crate::kernels::LabelMatrix`] (`O(n·m/4)` words, bit-identical
    ///    to the dense values), so this fallback trades build time, not
    ///    per-distance cost.
    /// 3. Dense matrix build trips the time budget → singleton clustering
    ///    plus a warning (no time left to do anything smarter).
    /// 4. `prefer_exact` on a too-large instance → warning, then the BALLS
    ///    3-approximation instead of an error.
    /// 5. Budget trips mid-refinement → the partially refined consensus is
    ///    returned with a warning rather than discarded.
    ///
    /// With [`ConsensusBuilder::checkpoint`] configured, the long-running
    /// stages persist their state (stage 0 = main algorithm, stage 1 =
    /// refinement) and a tripped main stage skips refinement so the final
    /// stage-0 snapshot survives for [`ConsensusBuilder::resume_from`].
    pub fn try_aggregate_partial(
        &self,
        inputs: Vec<PartialClustering>,
    ) -> AggResult<ConsensusResult> {
        let m = inputs.len();
        let instance = CorrelationInstance::try_from_partial(inputs, self.missing_policy)?;
        let n = instance.len();
        let _span = crate::span!(
            "consensus",
            n = n,
            m = m,
            algorithm = self.algorithm.name(),
            refine = self.refine
        );
        let mut ckpt = self
            .checkpoint_path
            .as_ref()
            .map(|p| Checkpointer::new(p, self.checkpoint_every).with_budget(&self.budget));

        // Split the resume snapshot by pipeline stage. A stage-1 snapshot
        // holds the refinement pass's own labels, so the main stage does
        // not need to re-run at all.
        let (resume_main, resume_refine) = match &self.resume_from {
            Some(s) if s.stage == 0 => (Some(&s.state), None),
            Some(s) if s.stage == 1 => match &s.state {
                AlgorithmSnapshot::LocalSearch(ls) if ls.labels.len() == n => (None, Some(ls)),
                _ => (None, None),
            },
            _ => (None, None),
        };

        if n > self.sampling_threshold {
            let params = SamplingParams::new(self.sample_size, self.algorithm.clone(), self.seed);
            return self.run_sampling(
                &instance.lazy_oracle(),
                &params,
                Vec::new(),
                &mut ckpt,
                resume_main,
            );
        }

        let mut warnings = Vec::new();
        let dense = match instance.try_dense_oracle(&self.budget) {
            Ok(dense) => dense,
            Err(Interrupt::MemoryExceeded { requested, limit }) => {
                if matches!(self.algorithm, Algorithm::Agglomerative(_)) && !self.prefer_exact {
                    // AGGLOMERATIVE is the one algorithm that cannot run
                    // from a lazy oracle (it mutates a condensed matrix):
                    // degrade to SAMPLING, clamping the sample so *its*
                    // dense matrix fits what is left of the cap.
                    let headroom = limit.saturating_sub(self.budget.mem_gauge().used_bytes());
                    let s = self
                        .sample_size
                        .min(largest_sample_within(headroom))
                        .clamp(2, n.max(2));
                    push_warning(
                        &mut warnings,
                        Warning::MemoryDegradedToSampling {
                            requested,
                            limit,
                            sample_size: s,
                        },
                    );
                    let params = SamplingParams::new(s, self.algorithm.clone(), self.seed);
                    return self.run_sampling(
                        &instance.lazy_oracle(),
                        &params,
                        warnings,
                        &mut ckpt,
                        resume_main,
                    );
                }
                // Next step down the chain: spill the condensed matrix to
                // disk when a spill directory is configured. Distances off
                // the spill store are bit-identical to the dense run, so
                // this degrades memory, not answers.
                if let Some(dir) = &self.spill_dir {
                    match SpilledOracle::try_build(&instance, &self.budget, &SpillConfig::new(dir))
                    {
                        Ok(spilled) => {
                            push_warning(
                                &mut warnings,
                                Warning::MemoryDegradedToSpill {
                                    requested,
                                    limit,
                                    tiles: spilled.tiles(),
                                },
                            );
                            return self.finish_with_oracle(
                                &spilled,
                                n,
                                m,
                                warnings,
                                &mut ckpt,
                                resume_main,
                                resume_refine,
                            );
                        }
                        Err(SpillError::Interrupted(interrupt)) => {
                            push_warning(&mut warnings, Warning::MatrixBuildInterrupted);
                            return Ok(ConsensusResult {
                                clustering: Clustering::singletons(n),
                                cost: f64::NAN,
                                disagreements: 0,
                                lower_bound: None,
                                sampled: false,
                                status: interrupt.status(),
                                warnings,
                            });
                        }
                        Err(err @ SpillError::Io { .. }) => {
                            // ENOSPC / dead disk: record the typed warning
                            // and take one more step down, to the lazy
                            // oracle.
                            push_warning(
                                &mut warnings,
                                Warning::SpillFailed {
                                    reason: err.to_string(),
                                },
                            );
                        }
                    }
                }
                push_warning(
                    &mut warnings,
                    Warning::MemoryDegradedToLazyOracle { requested, limit },
                );
                let lazy = instance.lazy_oracle();
                return self.finish_with_oracle(
                    &lazy,
                    n,
                    m,
                    warnings,
                    &mut ckpt,
                    resume_main,
                    resume_refine,
                );
            }
            Err(interrupt) => {
                // Budget died before we even had distances: the only valid
                // anytime answer is the trivial clustering.
                push_warning(&mut warnings, Warning::MatrixBuildInterrupted);
                return Ok(ConsensusResult {
                    clustering: Clustering::singletons(n),
                    cost: f64::NAN,
                    disagreements: 0,
                    lower_bound: None,
                    sampled: false,
                    status: interrupt.status(),
                    warnings,
                });
            }
        };
        self.finish_with_oracle(
            &dense,
            n,
            m,
            warnings,
            &mut ckpt,
            resume_main,
            resume_refine,
        )
    }

    /// The SAMPLING leg shared by the size-threshold and memory-degradation
    /// paths: run (or resume) budgeted sampling and package the result.
    fn run_sampling<O: DistanceOracle + Sync>(
        &self,
        oracle: &O,
        params: &SamplingParams,
        mut warnings: Vec<Warning>,
        ckpt: &mut Option<Checkpointer>,
        resume_main: Option<&AlgorithmSnapshot>,
    ) -> AggResult<ConsensusResult> {
        let resume_sampling = match resume_main {
            Some(AlgorithmSnapshot::Sampling(s)) => Some(s),
            _ => None,
        };
        if let Some(c) = ckpt.as_mut() {
            c.set_stage(0);
        }
        let outcome =
            sampling_resumable(oracle, params, &self.budget, resume_sampling, ckpt.as_mut())?;
        if !outcome.status.is_converged() {
            push_warning(
                &mut warnings,
                Warning::SamplingStoppedEarly {
                    status: outcome.status,
                },
            );
        }
        Ok(ConsensusResult {
            cost: f64::NAN,
            disagreements: 0,
            lower_bound: None,
            sampled: true,
            status: outcome.status,
            warnings,
            clustering: outcome.clustering,
        })
    }

    /// The main-algorithm + refinement tail, generic over the oracle so the
    /// memory-degraded lazy path shares every line with the dense path.
    #[allow(clippy::too_many_arguments)]
    fn finish_with_oracle<O: DistanceOracle + Sync>(
        &self,
        oracle: &O,
        n: usize,
        m: usize,
        mut warnings: Vec<Warning>,
        ckpt: &mut Option<Checkpointer>,
        resume_main: Option<&AlgorithmSnapshot>,
        resume_refine: Option<&LocalSearchSnapshot>,
    ) -> AggResult<ConsensusResult> {
        // A refinement-stage snapshot already contains the labels the main
        // stage produced (and every refinement move since); re-running the
        // main stage would discard resumed work.
        let skip_main = self.refine && resume_refine.is_some();
        let (mut clustering, mut status) = if skip_main {
            (Clustering::singletons(n), RunStatus::Converged)
        } else if self.prefer_exact {
            if n <= MAX_BNB_N {
                let (exact, status) = branch_and_bound_budgeted(oracle, &self.budget)?;
                if !status.is_converged() {
                    push_warning(&mut warnings, Warning::ExactSearchStoppedEarly);
                }
                (exact.clustering, status)
            } else {
                push_warning(&mut warnings, Warning::ExactSearchTooLarge { n });
                let outcome =
                    Algorithm::Balls(BallsParams::default()).run_budgeted(oracle, &self.budget)?;
                (outcome.clustering, outcome.status)
            }
        } else {
            if let Some(c) = ckpt.as_mut() {
                c.set_stage(0);
            }
            let outcome =
                self.algorithm
                    .run_resumable(oracle, &self.budget, resume_main, ckpt.as_mut())?;
            (outcome.clustering, outcome.status)
        };

        // When checkpointing, a tripped main stage keeps its final stage-0
        // snapshot: running refinement now would overwrite it with a
        // stage-1 snapshot of the *partial* main result, and a later resume
        // could then never finish the main stage.
        let refine_now = self.refine && (status.is_converged() || ckpt.is_none());
        if self.refine && !refine_now {
            push_warning(&mut warnings, Warning::RefinementSkippedForResume);
        }
        if refine_now {
            if let Some(c) = ckpt.as_mut() {
                c.set_stage(1);
            }
            let refined = local_search_from_resumable(
                oracle,
                &clustering,
                200,
                1e-9,
                &self.budget,
                resume_refine,
                ckpt.as_mut(),
            )?;
            if !refined.status.is_converged() {
                push_warning(&mut warnings, Warning::RefinementInterrupted);
            }
            status = status.combine(refined.status);
            clustering = refined.clustering;
        }

        let cost = correlation_cost(oracle, &clustering);
        Ok(ConsensusResult {
            disagreements: (cost * m as f64).round() as u64,
            lower_bound: Some(lower_bound(oracle)),
            sampled: false,
            status,
            warnings,
            cost,
            clustering,
        })
    }
}

/// Largest sample size whose condensed distance matrix (`8·s(s−1)/2` bytes)
/// fits in `bytes`.
fn largest_sample_within(bytes: u64) -> usize {
    // Solve 4·s·(s−1) ≤ bytes: s ≤ (1 + √(1 + bytes))/2, then correct the
    // float estimate exactly (checked arithmetic: `bytes` can approach
    // u64::MAX when no cap is set, where 4·s² would overflow).
    let fits = |s: u64| {
        s.checked_mul(s.saturating_sub(1))
            .and_then(|p| p.checked_mul(4))
            .is_some_and(|b| b <= bytes)
    };
    let mut s = ((1.0 + (1.0 + bytes as f64).sqrt()) / 2.0).floor() as u64;
    while s > 0 && !fits(s) {
        s -= 1;
    }
    while fits(s + 1) {
        s += 1;
    }
    usize::try_from(s).unwrap_or(usize::MAX)
}

/// One-call consensus with the default pipeline.
///
/// ```
/// use aggclust_core::clustering::Clustering;
/// let a = Clustering::from_labels(vec![0, 0, 1, 1]);
/// let b = Clustering::from_labels(vec![0, 0, 1, 1]);
/// let c = Clustering::from_labels(vec![0, 1, 1, 1]);
/// let result = aggclust_core::consensus::aggregate(&[a.clone(), b, c]);
/// assert_eq!(result.clustering, a); // the 2-of-3 majority wins
/// ```
pub fn aggregate(inputs: &[Clustering]) -> ConsensusResult {
    ConsensusBuilder::new().aggregate(inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::BallsParams;

    fn c(labels: &[u32]) -> Clustering {
        Clustering::from_labels(labels.to_vec())
    }

    fn figure1() -> Vec<Clustering> {
        vec![
            c(&[0, 0, 1, 1, 2, 2]),
            c(&[0, 1, 0, 1, 2, 3]),
            c(&[0, 1, 0, 1, 2, 2]),
        ]
    }

    #[test]
    fn default_pipeline_solves_figure1() {
        let result = aggregate(&figure1());
        assert_eq!(result.clustering, c(&[0, 1, 0, 1, 2, 2]));
        assert_eq!(result.disagreements, 5);
        assert!((result.cost - 5.0 / 3.0).abs() < 1e-9);
        assert!(result.lower_bound.unwrap() <= result.cost + 1e-12);
        assert!(!result.sampled);
    }

    #[test]
    fn refinement_can_be_disabled() {
        let inputs = figure1();
        let with = ConsensusBuilder::new().aggregate(&inputs);
        let without = ConsensusBuilder::new().refine(false).aggregate(&inputs);
        assert!(with.cost <= without.cost + 1e-12);
    }

    #[test]
    fn custom_algorithm() {
        let result = ConsensusBuilder::new()
            .algorithm(Algorithm::Balls(BallsParams::practical()))
            .aggregate(&figure1());
        assert_eq!(result.clustering, c(&[0, 1, 0, 1, 2, 2]));
    }

    #[test]
    fn sampling_path_kicks_in() {
        // 60 objects with a forced threshold of 30.
        let truth: Vec<u32> = (0..60).map(|v| v / 20).collect();
        let inputs = vec![c(&truth); 4];
        let result = ConsensusBuilder::new()
            .sampling_threshold(30)
            .sample_size(25)
            .aggregate(&inputs);
        assert!(result.sampled);
        assert!(result.lower_bound.is_none());
        assert_eq!(result.clustering, c(&truth));
    }

    #[test]
    fn partial_inputs_are_accepted() {
        let p1 = PartialClustering::from_labels(vec![Some(0), Some(0), Some(1), None]);
        let p2 = PartialClustering::from_labels(vec![Some(0), Some(0), None, Some(1)]);
        let result = ConsensusBuilder::new().aggregate_partial(vec![p1, p2]);
        assert!(result.clustering.same_cluster(0, 1));
        assert!(!result.sampled);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn empty_inputs_rejected() {
        let _ = aggregate(&[]);
    }

    #[test]
    fn try_aggregate_matches_aggregate_when_unlimited() {
        let inputs = figure1();
        let plain = ConsensusBuilder::new().aggregate(&inputs);
        let tried = ConsensusBuilder::new().try_aggregate(&inputs).unwrap();
        assert_eq!(tried.clustering, plain.clustering);
        assert_eq!(tried.disagreements, plain.disagreements);
        assert!(tried.status.is_converged());
        assert!(tried.warnings.is_empty());
    }

    #[test]
    fn try_aggregate_rejects_empty_and_mismatched_inputs() {
        let empty = ConsensusBuilder::new().try_aggregate(&[]);
        assert!(matches!(empty, Err(crate::AggError::Degenerate { .. })));
        let mismatched = vec![c(&[0, 0, 1]), c(&[0, 1])];
        let err = ConsensusBuilder::new().try_aggregate(&mismatched);
        assert!(matches!(err, Err(crate::AggError::InvalidInstance { .. })));
    }

    #[test]
    fn prefer_exact_solves_small_instances() {
        let result = ConsensusBuilder::new()
            .prefer_exact(true)
            .try_aggregate(&figure1())
            .unwrap();
        assert_eq!(result.clustering, c(&[0, 1, 0, 1, 2, 2]));
        assert!(result.status.is_converged());
        assert!(result.warnings.is_empty());
    }

    #[test]
    fn prefer_exact_degrades_to_balls_when_too_large() {
        // 30 objects > MAX_BNB_N = 24: must warn and fall back, not error.
        let truth: Vec<u32> = (0..30).map(|v| v / 10).collect();
        let inputs = vec![c(&truth); 3];
        let result = ConsensusBuilder::new()
            .prefer_exact(true)
            .try_aggregate(&inputs)
            .unwrap();
        assert_eq!(result.clustering, c(&truth));
        assert_eq!(result.warnings.len(), 1);
        assert!(result.warnings[0]
            .to_string()
            .contains("too large for exact search"));
        assert!(matches!(
            result.warnings[0],
            Warning::ExactSearchTooLarge { n: 30 }
        ));
        assert!(result.status.is_converged());
    }

    #[test]
    fn budget_trip_during_matrix_build_returns_singletons_with_warning() {
        let token = crate::robust::CancelToken::new();
        token.cancel();
        let result = ConsensusBuilder::new()
            .budget(RunBudget::unlimited().with_cancel_token(token))
            .try_aggregate(&figure1())
            .unwrap();
        assert_eq!(result.clustering, Clustering::singletons(6));
        assert_eq!(result.status, RunStatus::Cancelled);
        assert!(result.warnings[0].to_string().contains("distance matrix"));
    }

    #[test]
    fn memory_cap_degrades_localsearch_to_the_lazy_oracle() {
        // 40 objects: dense matrix = 40·39/2·8 = 6240 bytes. A 6000-byte
        // cap refuses it; LOCALSEARCH is oracle-generic so the run degrades
        // to the lazy oracle and still produces the same labels.
        let truth: Vec<u32> = (0..40).map(|v| v / 10).collect();
        let inputs = vec![c(&truth); 3];
        let reference = ConsensusBuilder::new()
            .algorithm(Algorithm::LocalSearch(Default::default()))
            .try_aggregate(&inputs)
            .unwrap();
        let capped = ConsensusBuilder::new()
            .algorithm(Algorithm::LocalSearch(Default::default()))
            .budget(RunBudget::unlimited().with_mem_limit_bytes(6_000))
            .try_aggregate(&inputs)
            .unwrap();
        assert_eq!(capped.clustering, reference.clustering);
        assert!(capped.status.is_converged());
        assert!(!capped.sampled);
        assert!(
            capped
                .warnings
                .iter()
                .any(|w| w.to_string().contains("lazy oracle")),
            "{:?}",
            capped.warnings
        );
        // All tracked memory is released by the end of the run.
        assert_eq!(capped.cost, reference.cost);
    }

    #[test]
    fn memory_cap_degrades_agglomerative_to_sampling() {
        // AGGLOMERATIVE cannot run from a lazy oracle; under a cap that
        // refuses the full matrix it must switch to SAMPLING with a sample
        // whose matrix fits, and still cover every object.
        let truth: Vec<u32> = (0..40).map(|v| v / 10).collect();
        let inputs = vec![c(&truth); 3];
        let capped = ConsensusBuilder::new()
            .budget(RunBudget::unlimited().with_mem_limit_bytes(2_000))
            .try_aggregate(&inputs)
            .unwrap();
        assert!(capped.sampled);
        assert_eq!(capped.clustering.len(), 40);
        assert!(capped.status.is_converged());
        assert!(
            capped
                .warnings
                .iter()
                .any(|w| w.to_string().contains("degrading to SAMPLING")),
            "{:?}",
            capped.warnings
        );
        // 2000 bytes → largest sample s with 4s(s−1) ≤ 2000 is 22; the
        // sample matrix must have been admitted under the cap.
        assert!(capped.warnings[0].to_string().contains("sample size 22"));
        assert!(matches!(
            capped.warnings[0],
            Warning::MemoryDegradedToSampling {
                sample_size: 22,
                ..
            }
        ));
    }

    #[test]
    fn largest_sample_within_is_exact() {
        assert_eq!(largest_sample_within(0), 1);
        assert_eq!(largest_sample_within(7), 1);
        assert_eq!(largest_sample_within(8), 2);
        assert_eq!(largest_sample_within(2_000), 22);
        // Never panics or overflows at the extremes.
        assert!(largest_sample_within(u64::MAX) > 1_000_000);
    }

    #[test]
    fn consensus_checkpoint_resume_matches_uninterrupted() {
        use crate::robust::CancelToken;
        use crate::snapshot::{load_snapshot, SnapshotLoad};

        let truth: Vec<u32> = (0..30).map(|v| v % 5).collect();
        let mut inputs = vec![c(&truth); 3];
        // Add disagreement so refinement has real work.
        let mut noisy = truth.clone();
        for l in noisy.iter_mut().step_by(7) {
            *l = (*l + 1) % 5;
        }
        inputs.push(c(&noisy));

        let reference = ConsensusBuilder::new().try_aggregate(&inputs).unwrap();

        let dir = std::env::temp_dir().join("aggclust_consensus_resume_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("ckpt.bin");
        // Interrupt at a range of iteration caps, resume unlimited; the
        // final labels must always match the uninterrupted pipeline.
        for cap in [1u64, 5, 20, 29, 30, 45, 70] {
            std::fs::remove_file(&path).ok();
            let partial = ConsensusBuilder::new()
                .budget(RunBudget::unlimited().with_max_iters(cap))
                .checkpoint(&path, Duration::ZERO)
                .try_aggregate(&inputs)
                .unwrap();
            if partial.status.is_converged() {
                assert_eq!(partial.clustering, reference.clustering);
                continue;
            }
            let snap = match load_snapshot(&path) {
                SnapshotLoad::Loaded(s) => s,
                other => panic!("cap {cap}: expected snapshot, got {other:?}"),
            };
            let resumed = ConsensusBuilder::new()
                .checkpoint(&path, Duration::ZERO)
                .resume_from(snap)
                .try_aggregate(&inputs)
                .unwrap();
            assert_eq!(
                resumed.clustering, reference.clustering,
                "cap {cap}: resumed consensus differs"
            );
            assert!(resumed.status.is_converged(), "cap {cap}");
            assert_eq!(resumed.cost, reference.cost, "cap {cap}");
        }

        // Cancellation mid-run behaves the same way: checkpoint, resume,
        // identical output.
        std::fs::remove_file(&path).ok();
        let token = CancelToken::new();
        token.cancel();
        let cancelled = ConsensusBuilder::new()
            .budget(RunBudget::unlimited().with_cancel_token(token))
            .checkpoint(&path, Duration::ZERO)
            .try_aggregate(&inputs)
            .unwrap();
        assert_eq!(cancelled.status, RunStatus::Cancelled);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn warning_display_matches_the_legacy_strings_exactly() {
        // These strings were public output when `warnings` was a
        // `Vec<String>`; the typed enum must render them byte-for-byte.
        let cases = [
            (
                Warning::MemoryDegradedToSampling {
                    requested: 6240,
                    limit: 2000,
                    sample_size: 22,
                },
                "memory budget: dense distance matrix needs 6240 bytes (cap 2000); \
                 degrading to SAMPLING with sample size 22",
            ),
            (
                Warning::MemoryDegradedToLazyOracle {
                    requested: 6240,
                    limit: 6000,
                },
                "memory budget: dense distance matrix needs 6240 bytes (cap 6000); \
                 using the O(n·m) lazy oracle instead (slower, no quadratic memory)",
            ),
            (
                Warning::MemoryDegradedToSpill {
                    requested: 6240,
                    limit: 2000,
                    tiles: 13,
                },
                "memory budget: dense distance matrix needs 6240 bytes (cap 2000); \
                 spilling the condensed matrix to disk as 13 checksummed tiles \
                 (distances stay bit-identical)",
            ),
            (
                Warning::SpillFailed {
                    reason: "spill I/O failed at /tmp/x: No space left on device".to_string(),
                },
                "spill to disk failed (spill I/O failed at /tmp/x: \
                 No space left on device); degrading to the next fallback instead",
            ),
            (
                Warning::MatrixBuildInterrupted,
                "budget exhausted while building the distance matrix; \
                 returning the all-singletons clustering",
            ),
            (
                Warning::SamplingStoppedEarly {
                    status: RunStatus::BudgetExceeded,
                },
                "sampling run stopped early (BudgetExceeded); \
                 unvisited objects were left as singletons",
            ),
            (
                Warning::ExactSearchStoppedEarly,
                "exact search stopped early; the result is the best incumbent found, \
                 not a proven optimum",
            ),
            (
                Warning::ExactSearchTooLarge { n: 30 },
                "instance too large for exact search (n = 30 > 24); \
                 falling back to the BALLS 3-approximation",
            ),
            (
                Warning::RefinementSkippedForResume,
                "main stage stopped early; skipping refinement so the checkpoint \
                 stays resumable",
            ),
            (
                Warning::RefinementInterrupted,
                "budget exhausted during LOCALSEARCH refinement; \
                 returning the partially refined consensus",
            ),
        ];
        for (warning, expected) in cases {
            assert_eq!(warning.to_string(), expected, "{}", warning.kind());
        }
    }

    #[test]
    fn spilled_run_matches_the_unconstrained_run_at_every_thread_count() {
        let n = 120;
        let inputs: Vec<Clustering> = (0..4)
            .map(|i| {
                c(&(0..n)
                    .map(|v| ((v * (i + 2) + i) % (4 + i)) as u32)
                    .collect::<Vec<_>>())
            })
            .collect();
        let build = || {
            ConsensusBuilder::new()
                .algorithm(Algorithm::Balls(BallsParams::practical()))
                .seed(7)
        };
        let unconstrained = build().try_aggregate(&inputs).unwrap();
        assert!(unconstrained.warnings.is_empty());
        let dir = std::env::temp_dir().join("aggclust_consensus_spill");
        std::fs::remove_dir_all(&dir).ok();
        for threads in [1usize, 2, 4] {
            let spilled = crate::parallel::with_num_threads(threads, || {
                build()
                    .budget(RunBudget::unlimited().with_mem_limit_bytes(16 * 1024))
                    .spill_dir(&dir)
                    .try_aggregate(&inputs)
                    .unwrap()
            });
            assert_eq!(
                spilled.clustering, unconstrained.clustering,
                "labels diverge at {threads} threads"
            );
            assert!(
                spilled
                    .warnings
                    .iter()
                    .any(|w| matches!(w, Warning::MemoryDegradedToSpill { .. })),
                "missing spill warning at {threads} threads: {:?}",
                spilled.warnings
            );
            assert!(
                !spilled.warnings.iter().any(|w| matches!(
                    w,
                    Warning::MemoryDegradedToSampling { .. }
                        | Warning::MemoryDegradedToLazyOracle { .. }
                )),
                "degraded past the spill step at {threads} threads"
            );
            assert!(!spilled.sampled);
            crate::spill::cleanup_spill_dir(&dir);
        }
    }

    #[test]
    fn unwritable_spill_dir_degrades_to_lazy_with_a_typed_warning() {
        let n = 80;
        let inputs: Vec<Clustering> = (0..3)
            .map(|i| c(&(0..n).map(|v| ((v + i) % 5) as u32).collect::<Vec<_>>()))
            .collect();
        // A file where the spill directory should be forces the Io error.
        let blocker = std::env::temp_dir().join("aggclust_consensus_spill_blocker");
        std::fs::write(&blocker, b"not a directory").unwrap();
        let result = ConsensusBuilder::new()
            .algorithm(Algorithm::Balls(BallsParams::practical()))
            .budget(RunBudget::unlimited().with_mem_limit_bytes(8 * 1024))
            .spill_dir(blocker.join("tiles"))
            .try_aggregate(&inputs)
            .unwrap();
        std::fs::remove_file(&blocker).ok();
        assert!(result
            .warnings
            .iter()
            .any(|w| matches!(w, Warning::SpillFailed { .. })));
        assert!(result
            .warnings
            .iter()
            .any(|w| matches!(w, Warning::MemoryDegradedToLazyOracle { .. })));
        // The lazy fallback still produces the unconstrained answer.
        let unconstrained = ConsensusBuilder::new()
            .algorithm(Algorithm::Balls(BallsParams::practical()))
            .try_aggregate(&inputs)
            .unwrap();
        assert_eq!(result.clustering, unconstrained.clustering);
    }

    #[test]
    fn sampling_path_respects_budget_and_stays_valid() {
        let truth: Vec<u32> = (0..60).map(|v| v / 20).collect();
        let inputs = vec![c(&truth); 4];
        let result = ConsensusBuilder::new()
            .sampling_threshold(30)
            .sample_size(25)
            .budget(RunBudget::unlimited().with_max_iters(3))
            .try_aggregate(&inputs)
            .unwrap();
        assert!(result.sampled);
        assert_eq!(result.clustering.len(), 60);
        assert_eq!(result.status, RunStatus::BudgetExceeded);
        assert!(!result.warnings.is_empty());
    }
}
