//! High-level consensus API: aggregate a set of clusterings in one call.
//!
//! The lower-level modules expose each algorithm separately; this module
//! packages the paper's recommended pipeline behind a builder:
//!
//! ```
//! use aggclust_core::clustering::Clustering;
//! use aggclust_core::consensus::ConsensusBuilder;
//!
//! let inputs = vec![
//!     Clustering::from_labels(vec![0, 0, 1, 1, 2, 2]),
//!     Clustering::from_labels(vec![0, 1, 0, 1, 2, 3]),
//!     Clustering::from_labels(vec![0, 1, 0, 1, 2, 2]),
//! ];
//! let result = ConsensusBuilder::new().aggregate(&inputs);
//! assert_eq!(result.clustering.num_clusters(), 3);
//! assert_eq!(result.disagreements, 5);
//! ```
//!
//! Defaults follow the paper's practice: AGGLOMERATIVE (parameter-free,
//! strong on every dataset in §5) refined by a LOCALSEARCH pass (the
//! post-processing use the paper suggests), switching to SAMPLING
//! automatically above a size threshold where the dense `O(n²)` matrix
//! stops being reasonable.

use crate::algorithms::local_search::local_search_from;
use crate::algorithms::local_search::local_search_from_budgeted;
use crate::algorithms::sampling::{sampling, sampling_budgeted, SamplingParams};
use crate::algorithms::{AgglomerativeParams, Algorithm, BallsParams};
use crate::clustering::{Clustering, PartialClustering};
use crate::cost::{correlation_cost, lower_bound};
use crate::distance::total_disagreement;
use crate::error::AggResult;
use crate::exact::{branch_and_bound_budgeted, MAX_BNB_N};
use crate::instance::{ClusteringsOracle, CorrelationInstance, MissingPolicy};
use crate::robust::{RunBudget, RunStatus};

/// Outcome of a consensus run.
#[derive(Clone, Debug)]
pub struct ConsensusResult {
    /// The aggregated clustering.
    pub clustering: Clustering,
    /// Its correlation cost `d(C)` (expected pair disagreements per input).
    /// `NaN` when the run sampled — evaluating it would be `O(n²)`; use
    /// [`crate::cost::correlation_cost`] explicitly if you need it.
    pub cost: f64,
    /// Total disagreements `D(C)` with the inputs (exact when the inputs
    /// are total clusterings; rounded expectation otherwise; 0 when the
    /// run sampled, see `cost`).
    pub disagreements: u64,
    /// The instance-wide per-pair lower bound on `d(C)` — how close to
    /// unimprovable the result provably is. `None` when the run sampled
    /// (computing it would be `O(n²)`).
    pub lower_bound: Option<f64>,
    /// Whether the SAMPLING path was taken.
    pub sampled: bool,
    /// How the run ended. Always `Converged` on the panicking API; the
    /// budgeted [`ConsensusBuilder::try_aggregate`] path reports
    /// `BudgetExceeded`/`Cancelled` when the result is best-so-far.
    pub status: RunStatus,
    /// Human-readable notes about graceful degradation steps taken (exact
    /// solver skipped, refinement interrupted, …). Empty on a clean run.
    pub warnings: Vec<String>,
}

/// Builder for consensus clustering runs. All settings optional.
#[derive(Clone, Debug)]
pub struct ConsensusBuilder {
    algorithm: Algorithm,
    refine: bool,
    missing_policy: MissingPolicy,
    sampling_threshold: usize,
    sample_size: usize,
    seed: u64,
    budget: RunBudget,
    prefer_exact: bool,
}

impl Default for ConsensusBuilder {
    fn default() -> Self {
        ConsensusBuilder {
            algorithm: Algorithm::Agglomerative(AgglomerativeParams::default()),
            refine: true,
            missing_policy: MissingPolicy::default(),
            sampling_threshold: 6_000,
            sample_size: 1_600,
            seed: 0,
            budget: RunBudget::unlimited(),
            prefer_exact: false,
        }
    }
}

impl ConsensusBuilder {
    /// Start from the defaults described in the module docs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Use a specific aggregation algorithm instead of AGGLOMERATIVE.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Enable/disable the LOCALSEARCH refinement pass (default: on).
    pub fn refine(mut self, refine: bool) -> Self {
        self.refine = refine;
        self
    }

    /// Missing-value policy for partial inputs (default: fair coin).
    pub fn missing_policy(mut self, policy: MissingPolicy) -> Self {
        self.missing_policy = policy;
        self
    }

    /// Switch to SAMPLING above this many objects (default 6000; the dense
    /// matrix at the threshold is ~140 MB).
    pub fn sampling_threshold(mut self, n: usize) -> Self {
        self.sampling_threshold = n;
        self
    }

    /// Sample size used when sampling (default 1600, the paper's sweet
    /// spot on Mushrooms).
    pub fn sample_size(mut self, s: usize) -> Self {
        self.sample_size = s;
        self
    }

    /// Seed for the sampling RNG.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Run budget (deadline / iteration cap / cancel token) honored by the
    /// budgeted [`ConsensusBuilder::try_aggregate`] entry points. The
    /// panicking `aggregate` API always runs unlimited. Default: unlimited.
    pub fn budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Prefer an exact branch-and-bound solve when the instance is small
    /// enough (`n <= 24`); above that the builder degrades to the BALLS
    /// 3-approximation with a warning instead of erroring. Only honored by
    /// the budgeted `try_aggregate` entry points. Default: off.
    pub fn prefer_exact(mut self, prefer_exact: bool) -> Self {
        self.prefer_exact = prefer_exact;
        self
    }

    /// Aggregate total clusterings.
    ///
    /// # Panics
    /// Panics if `inputs` is empty or the clusterings disagree on `n`.
    pub fn aggregate(&self, inputs: &[Clustering]) -> ConsensusResult {
        let partial: Vec<PartialClustering> =
            inputs.iter().map(PartialClustering::from_total).collect();
        let mut result = self.aggregate_partial(partial);
        // Exact integer disagreement count for total inputs.
        result.disagreements = total_disagreement(inputs, &result.clustering);
        result
    }

    /// Aggregate partial clusterings (missing labels allowed).
    ///
    /// # Panics
    /// Panics if `inputs` is empty or the clusterings disagree on `n`.
    pub fn aggregate_partial(&self, inputs: Vec<PartialClustering>) -> ConsensusResult {
        assert!(!inputs.is_empty(), "need at least one input clustering");
        let m = inputs.len();
        let n = inputs[0].len();
        let oracle = ClusteringsOracle::new(inputs.clone(), self.missing_policy);

        if n > self.sampling_threshold {
            let params = SamplingParams::new(self.sample_size, self.algorithm.clone(), self.seed);
            let clustering = sampling(&oracle, &params);
            // d(C) over all pairs would be O(n²); report the objective the
            // caller can evaluate later if needed.
            return ConsensusResult {
                cost: f64::NAN,
                disagreements: 0,
                lower_bound: None,
                sampled: true,
                status: RunStatus::Converged,
                warnings: Vec::new(),
                clustering,
            };
        }

        let instance = CorrelationInstance::from_partial(inputs, self.missing_policy);
        let dense = instance.dense_oracle();
        let mut clustering = self.algorithm.run(&dense);
        if self.refine {
            clustering = local_search_from(&dense, &clustering, 200, 1e-9);
        }
        let cost = correlation_cost(&dense, &clustering);
        ConsensusResult {
            disagreements: (cost * m as f64).round() as u64,
            lower_bound: Some(lower_bound(&dense)),
            sampled: false,
            status: RunStatus::Converged,
            warnings: Vec::new(),
            cost,
            clustering,
        }
    }

    /// Fallible, budget-aware variant of [`ConsensusBuilder::aggregate`].
    ///
    /// Invalid input (empty set, mismatched object counts) comes back as a
    /// typed [`crate::AggError`] instead of a panic, and the configured
    /// [`RunBudget`] is honored with anytime semantics: a budget trip yields
    /// the best consensus found so far, tagged via `status` and explained in
    /// `warnings`.
    pub fn try_aggregate(&self, inputs: &[Clustering]) -> AggResult<ConsensusResult> {
        let partial: Vec<PartialClustering> =
            inputs.iter().map(PartialClustering::from_total).collect();
        let mut result = self.try_aggregate_partial(partial)?;
        if !result.sampled && result.cost.is_finite() {
            result.disagreements = total_disagreement(inputs, &result.clustering);
        }
        Ok(result)
    }

    /// Fallible, budget-aware variant of [`ConsensusBuilder::aggregate_partial`].
    ///
    /// Graceful-degradation chain:
    /// 1. `n` over the sampling threshold → SAMPLING (budgeted).
    /// 2. Dense matrix build trips the budget → singleton clustering plus a
    ///    warning (no time left to do anything smarter).
    /// 3. `prefer_exact` on a too-large instance → warning, then the BALLS
    ///    3-approximation instead of an error.
    /// 4. Budget trips mid-refinement → the partially refined consensus is
    ///    returned with a warning rather than discarded.
    pub fn try_aggregate_partial(
        &self,
        inputs: Vec<PartialClustering>,
    ) -> AggResult<ConsensusResult> {
        let m = inputs.len();
        let instance = CorrelationInstance::try_from_partial(inputs, self.missing_policy)?;
        let n = instance.len();

        if n > self.sampling_threshold {
            let params = SamplingParams::new(self.sample_size, self.algorithm.clone(), self.seed);
            let outcome = sampling_budgeted(&instance.lazy_oracle(), &params, &self.budget)?;
            let mut warnings = Vec::new();
            if !outcome.status.is_converged() {
                warnings.push(format!(
                    "sampling run stopped early ({:?}); unvisited objects were left as singletons",
                    outcome.status
                ));
            }
            return Ok(ConsensusResult {
                cost: f64::NAN,
                disagreements: 0,
                lower_bound: None,
                sampled: true,
                status: outcome.status,
                warnings,
                clustering: outcome.clustering,
            });
        }

        let mut warnings = Vec::new();
        let dense = match instance.try_dense_oracle(&self.budget) {
            Ok(dense) => dense,
            Err(interrupt) => {
                // Budget died before we even had distances: the only valid
                // anytime answer is the trivial clustering.
                warnings.push(
                    "budget exhausted while building the distance matrix; \
                     returning the all-singletons clustering"
                        .to_string(),
                );
                return Ok(ConsensusResult {
                    clustering: Clustering::singletons(n),
                    cost: f64::NAN,
                    disagreements: 0,
                    lower_bound: None,
                    sampled: false,
                    status: interrupt.status(),
                    warnings,
                });
            }
        };

        let outcome = if self.prefer_exact {
            if n <= MAX_BNB_N {
                let (exact, status) = branch_and_bound_budgeted(&dense, &self.budget)?;
                if !status.is_converged() {
                    warnings.push(
                        "exact search stopped early; the result is the best \
                         incumbent found, not a proven optimum"
                            .to_string(),
                    );
                }
                crate::robust::RunOutcome {
                    clustering: exact.clustering,
                    status,
                    iterations: exact.partitions_examined,
                }
            } else {
                warnings.push(format!(
                    "instance too large for exact search (n = {n} > {MAX_BNB_N}); \
                     falling back to the BALLS 3-approximation"
                ));
                Algorithm::Balls(BallsParams::default()).run_budgeted(&dense, &self.budget)?
            }
        } else {
            self.algorithm.run_budgeted(&dense, &self.budget)?
        };
        let mut status = outcome.status;
        let mut clustering = outcome.clustering;

        if self.refine {
            let refined = local_search_from_budgeted(&dense, &clustering, 200, 1e-9, &self.budget)?;
            if !refined.status.is_converged() {
                warnings.push(
                    "budget exhausted during LOCALSEARCH refinement; \
                     returning the partially refined consensus"
                        .to_string(),
                );
            }
            status = status.combine(refined.status);
            clustering = refined.clustering;
        }

        let cost = correlation_cost(&dense, &clustering);
        Ok(ConsensusResult {
            disagreements: (cost * m as f64).round() as u64,
            lower_bound: Some(lower_bound(&dense)),
            sampled: false,
            status,
            warnings,
            cost,
            clustering,
        })
    }
}

/// One-call consensus with the default pipeline.
///
/// ```
/// use aggclust_core::clustering::Clustering;
/// let a = Clustering::from_labels(vec![0, 0, 1, 1]);
/// let b = Clustering::from_labels(vec![0, 0, 1, 1]);
/// let c = Clustering::from_labels(vec![0, 1, 1, 1]);
/// let result = aggclust_core::consensus::aggregate(&[a.clone(), b, c]);
/// assert_eq!(result.clustering, a); // the 2-of-3 majority wins
/// ```
pub fn aggregate(inputs: &[Clustering]) -> ConsensusResult {
    ConsensusBuilder::new().aggregate(inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::BallsParams;

    fn c(labels: &[u32]) -> Clustering {
        Clustering::from_labels(labels.to_vec())
    }

    fn figure1() -> Vec<Clustering> {
        vec![
            c(&[0, 0, 1, 1, 2, 2]),
            c(&[0, 1, 0, 1, 2, 3]),
            c(&[0, 1, 0, 1, 2, 2]),
        ]
    }

    #[test]
    fn default_pipeline_solves_figure1() {
        let result = aggregate(&figure1());
        assert_eq!(result.clustering, c(&[0, 1, 0, 1, 2, 2]));
        assert_eq!(result.disagreements, 5);
        assert!((result.cost - 5.0 / 3.0).abs() < 1e-9);
        assert!(result.lower_bound.unwrap() <= result.cost + 1e-12);
        assert!(!result.sampled);
    }

    #[test]
    fn refinement_can_be_disabled() {
        let inputs = figure1();
        let with = ConsensusBuilder::new().aggregate(&inputs);
        let without = ConsensusBuilder::new().refine(false).aggregate(&inputs);
        assert!(with.cost <= without.cost + 1e-12);
    }

    #[test]
    fn custom_algorithm() {
        let result = ConsensusBuilder::new()
            .algorithm(Algorithm::Balls(BallsParams::practical()))
            .aggregate(&figure1());
        assert_eq!(result.clustering, c(&[0, 1, 0, 1, 2, 2]));
    }

    #[test]
    fn sampling_path_kicks_in() {
        // 60 objects with a forced threshold of 30.
        let truth: Vec<u32> = (0..60).map(|v| v / 20).collect();
        let inputs = vec![c(&truth); 4];
        let result = ConsensusBuilder::new()
            .sampling_threshold(30)
            .sample_size(25)
            .aggregate(&inputs);
        assert!(result.sampled);
        assert!(result.lower_bound.is_none());
        assert_eq!(result.clustering, c(&truth));
    }

    #[test]
    fn partial_inputs_are_accepted() {
        let p1 = PartialClustering::from_labels(vec![Some(0), Some(0), Some(1), None]);
        let p2 = PartialClustering::from_labels(vec![Some(0), Some(0), None, Some(1)]);
        let result = ConsensusBuilder::new().aggregate_partial(vec![p1, p2]);
        assert!(result.clustering.same_cluster(0, 1));
        assert!(!result.sampled);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn empty_inputs_rejected() {
        let _ = aggregate(&[]);
    }

    #[test]
    fn try_aggregate_matches_aggregate_when_unlimited() {
        let inputs = figure1();
        let plain = ConsensusBuilder::new().aggregate(&inputs);
        let tried = ConsensusBuilder::new().try_aggregate(&inputs).unwrap();
        assert_eq!(tried.clustering, plain.clustering);
        assert_eq!(tried.disagreements, plain.disagreements);
        assert!(tried.status.is_converged());
        assert!(tried.warnings.is_empty());
    }

    #[test]
    fn try_aggregate_rejects_empty_and_mismatched_inputs() {
        let empty = ConsensusBuilder::new().try_aggregate(&[]);
        assert!(matches!(empty, Err(crate::AggError::Degenerate { .. })));
        let mismatched = vec![c(&[0, 0, 1]), c(&[0, 1])];
        let err = ConsensusBuilder::new().try_aggregate(&mismatched);
        assert!(matches!(err, Err(crate::AggError::InvalidInstance { .. })));
    }

    #[test]
    fn prefer_exact_solves_small_instances() {
        let result = ConsensusBuilder::new()
            .prefer_exact(true)
            .try_aggregate(&figure1())
            .unwrap();
        assert_eq!(result.clustering, c(&[0, 1, 0, 1, 2, 2]));
        assert!(result.status.is_converged());
        assert!(result.warnings.is_empty());
    }

    #[test]
    fn prefer_exact_degrades_to_balls_when_too_large() {
        // 30 objects > MAX_BNB_N = 24: must warn and fall back, not error.
        let truth: Vec<u32> = (0..30).map(|v| v / 10).collect();
        let inputs = vec![c(&truth); 3];
        let result = ConsensusBuilder::new()
            .prefer_exact(true)
            .try_aggregate(&inputs)
            .unwrap();
        assert_eq!(result.clustering, c(&truth));
        assert_eq!(result.warnings.len(), 1);
        assert!(result.warnings[0].contains("too large for exact search"));
        assert!(result.status.is_converged());
    }

    #[test]
    fn budget_trip_during_matrix_build_returns_singletons_with_warning() {
        let token = crate::robust::CancelToken::new();
        token.cancel();
        let result = ConsensusBuilder::new()
            .budget(RunBudget::unlimited().with_cancel_token(token))
            .try_aggregate(&figure1())
            .unwrap();
        assert_eq!(result.clustering, Clustering::singletons(6));
        assert_eq!(result.status, RunStatus::Cancelled);
        assert!(result.warnings[0].contains("distance matrix"));
    }

    #[test]
    fn sampling_path_respects_budget_and_stays_valid() {
        let truth: Vec<u32> = (0..60).map(|v| v / 20).collect();
        let inputs = vec![c(&truth); 4];
        let result = ConsensusBuilder::new()
            .sampling_threshold(30)
            .sample_size(25)
            .budget(RunBudget::unlimited().with_max_iters(3))
            .try_aggregate(&inputs)
            .unwrap();
        assert!(result.sampled);
        assert_eq!(result.clustering.len(), 60);
        assert_eq!(result.status, RunStatus::BudgetExceeded);
        assert!(!result.warnings.is_empty());
    }
}
