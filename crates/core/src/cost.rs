//! Objective functions: the correlation-clustering cost `d(C)`, the
//! aggregation objective `D(C)`, and the per-pair lower bound.
//!
//! For an instance with distances `X_uv` and a candidate clustering `C`,
//!
//! ```text
//! d(C) = Σ_{u<v, C(u)=C(v)} X_uv + Σ_{u<v, C(u)≠C(v)} (1 − X_uv)
//! ```
//!
//! When the instance is built from `m` total clusterings,
//! `D(C) = Σ_i d_V(C_i, C) = m · d(C)` — a relationship property-tested in
//! this module. Because every pair independently costs at least
//! `min(X_uv, 1 − X_uv)`, summing that quantity yields the instance-wide
//! lower bound reported in Tables 2–3 of the paper.
//!
//! All `O(n²)` sums here run as deterministic chunked reductions over
//! [`crate::parallel`]: fixed chunk boundaries, partials combined in chunk
//! order, so the value is bit-identical at any thread count.

use crate::clustering::Clustering;
use crate::instance::DistanceOracle;
use crate::parallel;

/// The correlation-clustering cost `d(C)` (Problem 2). `O(n²)` oracle
/// lookups, parallelized over pair chunks.
pub fn correlation_cost<O: DistanceOracle + Sync + ?Sized>(oracle: &O, c: &Clustering) -> f64 {
    assert_eq!(oracle.len(), c.len(), "oracle and clustering sizes differ");
    parallel::sum_pairs(c.len(), |u, v| {
        let x = oracle.dist(u, v);
        if c.same_cluster(u, v) {
            x
        } else {
            1.0 - x
        }
    })
}

/// Decomposition of [`correlation_cost`] used for incremental updates:
/// `d(C) = B + Σ_{within pairs} (2·X_uv − 1)` where
/// `B = Σ_{u<v} (1 − X_uv)` does not depend on `C`.
///
/// Returns `(B, within)` so callers comparing candidate solutions can work
/// with the cheap `within` term (`O(Σ s_i²)` lookups instead of `O(n²)`).
pub fn cost_decomposition<O: DistanceOracle + Sync + ?Sized>(
    oracle: &O,
    c: &Clustering,
) -> (f64, f64) {
    let base = split_everything_cost(oracle);
    (base, within_cost(oracle, c))
}

/// The cost of the all-singletons clustering: `B = Σ_{u<v} (1 − X_uv)`.
pub fn split_everything_cost<O: DistanceOracle + Sync + ?Sized>(oracle: &O) -> f64 {
    parallel::sum_pairs(oracle.len(), |u, v| 1.0 - oracle.dist(u, v))
}

/// The `C`-dependent part of the cost: `Σ_{u<v in same cluster} (2·X_uv − 1)`.
///
/// Adding this to [`split_everything_cost`] gives [`correlation_cost`]; on
/// its own it ranks candidate clusterings identically and costs only
/// `O(Σ s_i²)` oracle lookups.
pub fn within_cost<O: DistanceOracle + Sync + ?Sized>(oracle: &O, c: &Clustering) -> f64 {
    assert_eq!(oracle.len(), c.len(), "oracle and clustering sizes differ");
    let clusters = c.clusters();
    // Job list: (cluster, row range of its member list), split so one huge
    // cluster still spreads across workers. Boundaries depend only on the
    // clustering, keeping the partial-sum order deterministic.
    let mut jobs: Vec<(&[usize], std::ops::Range<usize>)> = Vec::new();
    for members in &clusters {
        let len = members.len();
        for rows in parallel::balanced_ranges(len, 8192, |i| len - 1 - i) {
            jobs.push((members.as_slice(), rows));
        }
    }
    parallel::sum_jobs(jobs, |(members, rows)| {
        let mut w = 0.0;
        for i in rows {
            let u = members[i];
            for &v in &members[i + 1..] {
                w += 2.0 * oracle.dist(u, v) - 1.0;
            }
        }
        w
    })
}

/// Per-pair lower bound on the optimal correlation cost:
/// `Σ_{u<v} min(X_uv, 1 − X_uv)`.
///
/// Every clustering pays at least `min(X, 1 − X)` on each pair, so no
/// solution — including the optimum — can cost less. The "Lower bound" rows
/// of Tables 2 and 3 are `m` times this value.
pub fn lower_bound<O: DistanceOracle + Sync + ?Sized>(oracle: &O) -> f64 {
    parallel::sum_pairs(oracle.len(), |u, v| {
        let x = oracle.dist(u, v);
        x.min(1.0 - x)
    })
}

/// The aggregation objective `D(C) = Σ_i d_V(C_i, C)` as an exact integer
/// count of disagreements (the `E_D` column of the paper's tables).
///
/// Re-exported convenience over [`crate::distance::total_disagreement`].
pub fn aggregation_cost(inputs: &[Clustering], candidate: &Clustering) -> u64 {
    crate::distance::total_disagreement(inputs, candidate)
}

/// Expected disagreement error `E_D = m · d(C)` for instances that may
/// involve missing values (where disagreements are fractional in
/// expectation).
pub fn expected_disagreements<O: DistanceOracle + Sync + ?Sized>(
    oracle: &O,
    c: &Clustering,
) -> f64 {
    let m = oracle.num_clusterings();
    assert!(m.is_some(), "oracle does not know its clustering count");
    m.unwrap_or(0) as f64 * correlation_cost(oracle, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::DenseOracle;

    fn c(labels: &[u32]) -> Clustering {
        Clustering::from_labels(labels.to_vec())
    }

    fn figure1() -> Vec<Clustering> {
        vec![
            c(&[0, 0, 1, 1, 2, 2]),
            c(&[0, 1, 0, 1, 2, 3]),
            c(&[0, 1, 0, 1, 2, 2]),
        ]
    }

    #[test]
    fn paper_example_cost_is_five_thirds() {
        // The optimal aggregate has 5 disagreements over m = 3 clusterings,
        // so its correlation cost is 5/3.
        let oracle = DenseOracle::from_clusterings(&figure1());
        let agg = c(&[0, 1, 0, 1, 2, 2]);
        let cost = correlation_cost(&oracle, &agg);
        assert!((cost - 5.0 / 3.0).abs() < 1e-9, "cost = {cost}");
    }

    #[test]
    fn aggregation_cost_equals_m_times_correlation_cost() {
        let inputs = figure1();
        let oracle = DenseOracle::from_clusterings(&inputs);
        let candidates = [
            c(&[0, 1, 0, 1, 2, 2]),
            c(&[0, 0, 0, 0, 0, 0]),
            c(&[0, 1, 2, 3, 4, 5]),
            c(&[0, 0, 1, 1, 2, 2]),
        ];
        for cand in &candidates {
            let d = aggregation_cost(&inputs, cand) as f64;
            let m_dc = 3.0 * correlation_cost(&oracle, cand);
            assert!((d - m_dc).abs() < 1e-9, "D = {d}, m·d(C) = {m_dc}");
        }
    }

    #[test]
    fn decomposition_matches_direct_cost() {
        let oracle = DenseOracle::from_clusterings(&figure1());
        for cand in [
            c(&[0, 1, 0, 1, 2, 2]),
            c(&[0, 0, 1, 1, 2, 2]),
            c(&[0, 0, 0, 1, 1, 1]),
        ] {
            let (base, within) = cost_decomposition(&oracle, &cand);
            let direct = correlation_cost(&oracle, &cand);
            assert!((base + within - direct).abs() < 1e-9);
        }
    }

    #[test]
    fn lower_bound_below_all_candidates() {
        let oracle = DenseOracle::from_clusterings(&figure1());
        let lb = lower_bound(&oracle);
        for cand in [
            c(&[0, 1, 0, 1, 2, 2]),
            c(&[0, 0, 0, 0, 0, 0]),
            c(&[0, 1, 2, 3, 4, 5]),
        ] {
            assert!(lb <= correlation_cost(&oracle, &cand) + 1e-12);
        }
        // The paper's example: optimum achieves 5/3, lower bound is the sum
        // of min(X, 1−X) which here is 5·(1/3) + ... compute: edges at 1/3
        // (3 of them), 2/3 (2), 1 (the rest of the 15 pairs at various
        // values). Just sanity-check it is positive and ≤ 5/3.
        assert!(lb > 0.0 && lb <= 5.0 / 3.0 + 1e-12);
    }

    #[test]
    fn expected_disagreements_matches_integer_count_for_total_inputs() {
        let inputs = figure1();
        let oracle = DenseOracle::from_clusterings(&inputs);
        let cand = c(&[0, 1, 0, 1, 2, 2]);
        let e = expected_disagreements(&oracle, &cand);
        assert!((e - 5.0).abs() < 1e-9);
    }

    #[test]
    fn singleton_cost_equals_split_everything() {
        let oracle = DenseOracle::from_clusterings(&figure1());
        let singles = Clustering::singletons(6);
        assert!(
            (correlation_cost(&oracle, &singles) - split_everything_cost(&oracle)).abs() < 1e-12
        );
        assert_eq!(within_cost(&oracle, &singles), 0.0);
    }
}
