//! The disagreement distance `d_V` between clusterings (paper §3).
//!
//! For clusterings `C₁`, `C₂` of the same objects, `d_V(C₁, C₂)` is the
//! number of unordered object pairs `{u, v}` such that one clustering puts
//! `u` and `v` in the same cluster and the other separates them. This is the
//! (unnormalized) *Mirkin metric*; it satisfies the triangle inequality on
//! the space of clusterings (Observation 1 in the paper), which is what
//! makes the `2(1 − 1/m)` guarantee of
//! [`crate::algorithms::best::best_clustering`] work.
//!
//! Two implementations are provided: a quadratic reference
//! ([`disagreement_distance_naive`]) and an `O(n + k₁·k₂)` contingency-table
//! version ([`disagreement_distance`]) used everywhere else.

use crate::clustering::Clustering;
use crate::robust::MemGauge;

/// Cell-count ceiling for the dense contingency table in
/// [`pairs_together_both`]. `k₁·k₂` at or below this (4M cells, 32 MiB)
/// uses a flat `Vec` — one multiply-add per object instead of a hash —
/// while pathological `k₁·k₂` blowups fall back to the sparse map.
const DENSE_TABLE_MAX_CELLS: usize = 1 << 22;

/// Number of unordered pairs co-clustered by *both* clusterings,
/// `Σ_{ij} n_ij (n_ij − 1) / 2` over the contingency table `n_ij`.
///
/// Labels are normalized to `0..k` by [`Clustering::from_labels`], so the
/// table is stored densely as a `k₁ × k₂` vector indexed by
/// `label₁ · k₂ + label₂` whenever it fits; the rare huge-`k₁·k₂` case
/// packs each object's label pair into one `u64` key and sorts — an
/// `O(n log n)` run-length count with no hashing and `O(n)` memory.
pub fn pairs_together_both(c1: &Clustering, c2: &Clustering) -> u64 {
    pairs_together_both_gauged(c1, c2, None)
}

/// [`pairs_together_both`] with the dense contingency table's allocation
/// charged to a [`MemGauge`] for the duration of the computation.
///
/// Budget-governed callers (the consensus pipeline under `--mem-budget-mb`)
/// route through this so the gauge reflects transient `k₁ × k₂` tables, not
/// just long-lived distance matrices. The charge is purely observational —
/// contingency tables are bounded by `DENSE_TABLE_MAX_CELLS` (32 MiB),
/// the sparse fallback's key vector by `8n` bytes, and neither is refused.
pub fn pairs_together_both_gauged(
    c1: &Clustering,
    c2: &Clustering,
    gauge: Option<&MemGauge>,
) -> u64 {
    assert_eq!(
        c1.len(),
        c2.len(),
        "clusterings must cover the same objects"
    );
    let (k1, k2) = (c1.num_clusters(), c2.num_clusters());
    if let Some(cells) = k1.checked_mul(k2).filter(|&c| c <= DENSE_TABLE_MAX_CELLS) {
        let _charge = gauge.map(|g| g.charge(cells as u64 * 8));
        let mut table = vec![0u64; cells];
        for v in 0..c1.len() {
            table[c1.label(v) as usize * k2 + c2.label(v) as usize] += 1;
        }
        // Unlike the sparse map, the dense table has empty cells: guard the
        // c·(c−1)/2 term against u64 underflow at c = 0.
        table.iter().map(|&c| c * c.saturating_sub(1) / 2).sum()
    } else {
        let _charge = gauge.map(|g| g.charge(c1.len() as u64 * 8));
        let mut keys: Vec<u64> = (0..c1.len())
            .map(|v| (u64::from(c1.label(v)) << 32) | u64::from(c2.label(v)))
            .collect();
        keys.sort_unstable();
        let mut total = 0u64;
        let mut i = 0usize;
        while i < keys.len() {
            let mut j = i + 1;
            while j < keys.len() && keys[j] == keys[i] {
                j += 1;
            }
            let run = (j - i) as u64;
            total += run * (run - 1) / 2;
            i = j;
        }
        total
    }
}

/// Disagreement distance `d_V(C₁, C₂)`: the number of unordered pairs on
/// which the clusterings disagree.
///
/// Computed as `P₁ + P₂ − 2·P₁₂` where `Pᵢ` counts pairs co-clustered by
/// `Cᵢ` and `P₁₂` counts pairs co-clustered by both. Runs in
/// `O(n + k₁·k₂)`.
///
/// ```
/// use aggclust_core::clustering::Clustering;
/// use aggclust_core::distance::disagreement_distance;
/// let c1 = Clustering::from_labels(vec![0, 0, 1, 1]);
/// let c2 = Clustering::from_labels(vec![0, 1, 1, 1]);
/// // Disagreeing pairs: {0,1}, {0,2}, {0,3} ... let's count: c1 groups
/// // {0,1},{2,3}; c2 groups {1,2},{1,3},{2,3}. Disagreements: {0,1},{1,2},{1,3}.
/// assert_eq!(disagreement_distance(&c1, &c2), 3);
/// ```
pub fn disagreement_distance(c1: &Clustering, c2: &Clustering) -> u64 {
    disagreement_distance_gauged(c1, c2, None)
}

/// [`disagreement_distance`] with contingency-table memory charged to a
/// [`MemGauge`] while the table is live (see [`pairs_together_both_gauged`]).
pub fn disagreement_distance_gauged(
    c1: &Clustering,
    c2: &Clustering,
    gauge: Option<&MemGauge>,
) -> u64 {
    let p1 = c1.pairs_together();
    let p2 = c2.pairs_together();
    let p12 = pairs_together_both_gauged(c1, c2, gauge);
    p1 + p2 - 2 * p12
}

/// Quadratic reference implementation of [`disagreement_distance`], used to
/// validate the contingency-table version in tests.
pub fn disagreement_distance_naive(c1: &Clustering, c2: &Clustering) -> u64 {
    assert_eq!(c1.len(), c2.len());
    let n = c1.len();
    let mut d = 0u64;
    for u in 0..n {
        for v in (u + 1)..n {
            if c1.same_cluster(u, v) != c2.same_cluster(u, v) {
                d += 1;
            }
        }
    }
    d
}

/// Total disagreement `D(C) = Σ_i d_V(C_i, C)` of a candidate against a set
/// of input clusterings — the objective of Problem 1 in the paper.
pub fn total_disagreement(inputs: &[Clustering], candidate: &Clustering) -> u64 {
    inputs
        .iter()
        .map(|c| disagreement_distance(c, candidate))
        .sum()
}

/// The *Rand distance* normalization of the disagreement distance:
/// `d_V / (n choose 2) ∈ [0, 1]`.
pub fn normalized_disagreement(c1: &Clustering, c2: &Clustering) -> f64 {
    let n = c1.len() as u64;
    if n < 2 {
        return 0.0;
    }
    disagreement_distance(c1, c2) as f64 / ((n * (n - 1) / 2) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(labels: &[u32]) -> Clustering {
        Clustering::from_labels(labels.to_vec())
    }

    #[test]
    fn identical_clusterings_have_zero_distance() {
        let a = c(&[0, 0, 1, 2, 2]);
        assert_eq!(disagreement_distance(&a, &a), 0);
    }

    #[test]
    fn singletons_vs_one_cluster() {
        // Every pair disagrees: n choose 2.
        let s = Clustering::singletons(5);
        let o = Clustering::one_cluster(5);
        assert_eq!(disagreement_distance(&s, &o), 10);
    }

    #[test]
    fn matches_naive_on_fixed_cases() {
        let cases = [
            (c(&[0, 0, 1, 1, 2, 2]), c(&[0, 1, 0, 1, 2, 3])),
            (c(&[0, 1, 2, 3]), c(&[0, 0, 0, 0])),
            (c(&[0, 0, 0, 1, 1]), c(&[0, 1, 0, 1, 0])),
        ];
        for (a, b) in &cases {
            assert_eq!(
                disagreement_distance(a, b),
                disagreement_distance_naive(a, b)
            );
        }
    }

    #[test]
    fn symmetric() {
        let a = c(&[0, 0, 1, 1, 2]);
        let b = c(&[0, 1, 1, 2, 2]);
        assert_eq!(disagreement_distance(&a, &b), disagreement_distance(&b, &a));
    }

    #[test]
    fn paper_figure_1_example() {
        // Figure 1: C = {{v1,v3},{v2,v4},{v5,v6}} has 5 total disagreements
        // with C1, C2, C3: four with C1 and one with C2.
        let c1 = c(&[0, 0, 1, 1, 2, 2]);
        let c2 = c(&[0, 1, 0, 1, 2, 3]);
        let c3 = c(&[0, 1, 0, 1, 2, 2]);
        let agg = c(&[0, 1, 0, 1, 2, 2]);
        assert_eq!(disagreement_distance(&c1, &agg), 4);
        assert_eq!(disagreement_distance(&c2, &agg), 1);
        assert_eq!(disagreement_distance(&c3, &agg), 0);
        assert_eq!(total_disagreement(&[c1, c2, c3], &agg), 5);
    }

    #[test]
    fn triangle_inequality_on_fixed_cases() {
        let xs = [
            c(&[0, 0, 1, 1, 2, 2]),
            c(&[0, 1, 0, 1, 2, 3]),
            c(&[0, 1, 0, 1, 2, 2]),
            c(&[0, 0, 0, 0, 0, 0]),
            c(&[0, 1, 2, 3, 4, 5]),
        ];
        for a in &xs {
            for b in &xs {
                for m in &xs {
                    assert!(
                        disagreement_distance(a, b)
                            <= disagreement_distance(a, m) + disagreement_distance(m, b)
                    );
                }
            }
        }
    }

    #[test]
    fn dense_and_sparse_tables_agree() {
        // k₁·k₂ = 2101² ≈ 4.4M exceeds DENSE_TABLE_MAX_CELLS, forcing the
        // HashMap fallback; the smaller copy of the same structure takes
        // the dense path. Both must count identically.
        let n = 2101usize;
        let big1 = c(&(0..2 * n).map(|v| (v / 2) as u32).collect::<Vec<_>>());
        let big2 = c(&(0..2 * n)
            .map(|v| (((v / 2) + (v % 2) * 7) % n) as u32)
            .collect::<Vec<_>>());
        assert!(big1.num_clusters() * big2.num_clusters() > DENSE_TABLE_MAX_CELLS);
        let expected: u64 = (0..2 * n as u64)
            .flat_map(|u| ((u + 1)..2 * n as u64).map(move |v| (u, v)))
            .filter(|&(u, v)| {
                big1.same_cluster(u as usize, v as usize)
                    && big2.same_cluster(u as usize, v as usize)
            })
            .count() as u64;
        assert_eq!(pairs_together_both(&big1, &big2), expected);

        let small1 = c(&[0, 0, 1, 1, 2, 2, 3]);
        let small2 = c(&[0, 1, 1, 1, 2, 0, 3]);
        assert!(small1.num_clusters() * small2.num_clusters() <= DENSE_TABLE_MAX_CELLS);
        // Only {2,3} is co-clustered by both: c1 pairs {0,1},{2,3},{4,5};
        // c2 separates 0|1 and 4|5.
        assert_eq!(pairs_together_both(&small1, &small2), 1);
    }

    #[test]
    fn gauged_distance_matches_ungauged_and_releases_the_charge() {
        let a = c(&[0, 0, 1, 1, 2]);
        let b = c(&[0, 1, 1, 2, 2]);
        let gauge = MemGauge::new();
        assert_eq!(
            disagreement_distance_gauged(&a, &b, Some(&gauge)),
            disagreement_distance(&a, &b)
        );
        // The table charge is RAII-scoped to the computation.
        assert_eq!(gauge.used_bytes(), 0);
    }

    #[test]
    fn normalized_bounds() {
        let a = c(&[0, 1, 2, 3]);
        let b = c(&[0, 0, 0, 0]);
        assert_eq!(normalized_disagreement(&a, &b), 1.0);
        assert_eq!(normalized_disagreement(&a, &a), 0.0);
        assert_eq!(normalized_disagreement(&c(&[0]), &c(&[0])), 0.0);
    }
}
