//! The disagreement distance `d_V` between clusterings (paper §3).
//!
//! For clusterings `C₁`, `C₂` of the same objects, `d_V(C₁, C₂)` is the
//! number of unordered object pairs `{u, v}` such that one clustering puts
//! `u` and `v` in the same cluster and the other separates them. This is the
//! (unnormalized) *Mirkin metric*; it satisfies the triangle inequality on
//! the space of clusterings (Observation 1 in the paper), which is what
//! makes the `2(1 − 1/m)` guarantee of
//! [`crate::algorithms::best::best_clustering`] work.
//!
//! Two implementations are provided: a quadratic reference
//! ([`disagreement_distance_naive`]) and an `O(n + k₁·k₂)` contingency-table
//! version ([`disagreement_distance`]) used everywhere else.

use crate::clustering::Clustering;
use std::collections::HashMap;

/// Number of unordered pairs co-clustered by *both* clusterings,
/// `Σ_{ij} n_ij (n_ij − 1) / 2` over the contingency table `n_ij`.
pub fn pairs_together_both(c1: &Clustering, c2: &Clustering) -> u64 {
    assert_eq!(
        c1.len(),
        c2.len(),
        "clusterings must cover the same objects"
    );
    let mut table: HashMap<(u32, u32), u64> = HashMap::new();
    for v in 0..c1.len() {
        *table.entry((c1.label(v), c2.label(v))).or_insert(0) += 1;
    }
    table.values().map(|&c| c * (c - 1) / 2).sum()
}

/// Disagreement distance `d_V(C₁, C₂)`: the number of unordered pairs on
/// which the clusterings disagree.
///
/// Computed as `P₁ + P₂ − 2·P₁₂` where `Pᵢ` counts pairs co-clustered by
/// `Cᵢ` and `P₁₂` counts pairs co-clustered by both. Runs in
/// `O(n + k₁·k₂)`.
///
/// ```
/// use aggclust_core::clustering::Clustering;
/// use aggclust_core::distance::disagreement_distance;
/// let c1 = Clustering::from_labels(vec![0, 0, 1, 1]);
/// let c2 = Clustering::from_labels(vec![0, 1, 1, 1]);
/// // Disagreeing pairs: {0,1}, {0,2}, {0,3} ... let's count: c1 groups
/// // {0,1},{2,3}; c2 groups {1,2},{1,3},{2,3}. Disagreements: {0,1},{1,2},{1,3}.
/// assert_eq!(disagreement_distance(&c1, &c2), 3);
/// ```
pub fn disagreement_distance(c1: &Clustering, c2: &Clustering) -> u64 {
    let p1 = c1.pairs_together();
    let p2 = c2.pairs_together();
    let p12 = pairs_together_both(c1, c2);
    p1 + p2 - 2 * p12
}

/// Quadratic reference implementation of [`disagreement_distance`], used to
/// validate the contingency-table version in tests.
pub fn disagreement_distance_naive(c1: &Clustering, c2: &Clustering) -> u64 {
    assert_eq!(c1.len(), c2.len());
    let n = c1.len();
    let mut d = 0u64;
    for u in 0..n {
        for v in (u + 1)..n {
            if c1.same_cluster(u, v) != c2.same_cluster(u, v) {
                d += 1;
            }
        }
    }
    d
}

/// Total disagreement `D(C) = Σ_i d_V(C_i, C)` of a candidate against a set
/// of input clusterings — the objective of Problem 1 in the paper.
pub fn total_disagreement(inputs: &[Clustering], candidate: &Clustering) -> u64 {
    inputs
        .iter()
        .map(|c| disagreement_distance(c, candidate))
        .sum()
}

/// The *Rand distance* normalization of the disagreement distance:
/// `d_V / (n choose 2) ∈ [0, 1]`.
pub fn normalized_disagreement(c1: &Clustering, c2: &Clustering) -> f64 {
    let n = c1.len() as u64;
    if n < 2 {
        return 0.0;
    }
    disagreement_distance(c1, c2) as f64 / ((n * (n - 1) / 2) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(labels: &[u32]) -> Clustering {
        Clustering::from_labels(labels.to_vec())
    }

    #[test]
    fn identical_clusterings_have_zero_distance() {
        let a = c(&[0, 0, 1, 2, 2]);
        assert_eq!(disagreement_distance(&a, &a), 0);
    }

    #[test]
    fn singletons_vs_one_cluster() {
        // Every pair disagrees: n choose 2.
        let s = Clustering::singletons(5);
        let o = Clustering::one_cluster(5);
        assert_eq!(disagreement_distance(&s, &o), 10);
    }

    #[test]
    fn matches_naive_on_fixed_cases() {
        let cases = [
            (c(&[0, 0, 1, 1, 2, 2]), c(&[0, 1, 0, 1, 2, 3])),
            (c(&[0, 1, 2, 3]), c(&[0, 0, 0, 0])),
            (c(&[0, 0, 0, 1, 1]), c(&[0, 1, 0, 1, 0])),
        ];
        for (a, b) in &cases {
            assert_eq!(
                disagreement_distance(a, b),
                disagreement_distance_naive(a, b)
            );
        }
    }

    #[test]
    fn symmetric() {
        let a = c(&[0, 0, 1, 1, 2]);
        let b = c(&[0, 1, 1, 2, 2]);
        assert_eq!(disagreement_distance(&a, &b), disagreement_distance(&b, &a));
    }

    #[test]
    fn paper_figure_1_example() {
        // Figure 1: C = {{v1,v3},{v2,v4},{v5,v6}} has 5 total disagreements
        // with C1, C2, C3: four with C1 and one with C2.
        let c1 = c(&[0, 0, 1, 1, 2, 2]);
        let c2 = c(&[0, 1, 0, 1, 2, 3]);
        let c3 = c(&[0, 1, 0, 1, 2, 2]);
        let agg = c(&[0, 1, 0, 1, 2, 2]);
        assert_eq!(disagreement_distance(&c1, &agg), 4);
        assert_eq!(disagreement_distance(&c2, &agg), 1);
        assert_eq!(disagreement_distance(&c3, &agg), 0);
        assert_eq!(total_disagreement(&[c1, c2, c3], &agg), 5);
    }

    #[test]
    fn triangle_inequality_on_fixed_cases() {
        let xs = [
            c(&[0, 0, 1, 1, 2, 2]),
            c(&[0, 1, 0, 1, 2, 3]),
            c(&[0, 1, 0, 1, 2, 2]),
            c(&[0, 0, 0, 0, 0, 0]),
            c(&[0, 1, 2, 3, 4, 5]),
        ];
        for a in &xs {
            for b in &xs {
                for m in &xs {
                    assert!(
                        disagreement_distance(a, b)
                            <= disagreement_distance(a, m) + disagreement_distance(m, b)
                    );
                }
            }
        }
    }

    #[test]
    fn normalized_bounds() {
        let a = c(&[0, 1, 2, 3]);
        let b = c(&[0, 0, 0, 0]);
        assert_eq!(normalized_disagreement(&a, &b), 1.0);
        assert_eq!(normalized_disagreement(&a, &a), 0.0);
        assert_eq!(normalized_disagreement(&c(&[0]), &c(&[0])), 0.0);
    }
}
