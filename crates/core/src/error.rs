//! The crate-wide error hierarchy.
//!
//! Every fallible entry point (`try_*` constructors, `*_budgeted` algorithm
//! runs, the consensus pipeline) returns [`AggResult`]. The variants are
//! deliberately coarse: they distinguish *what the caller can do about it*
//! (fix the input, fix the parameters, raise the budget, shrink the
//! instance) rather than enumerating every internal failure site.
//!
//! Budget interruptions are **not** errors for the anytime algorithms —
//! those return their best-so-far clustering tagged
//! [`crate::robust::RunStatus::BudgetExceeded`]. [`AggError::BudgetExceeded`]
//! appears only where no partial result exists (e.g. the budget tripping
//! while the distance matrix is still being materialized and no fallback is
//! possible).
//!
//! Hand-rolled (`Display` + `std::error::Error`), no external dependencies.

use std::fmt;

/// `Result` alias used by every fallible API in this workspace.
pub type AggResult<T> = Result<T, AggError>;

/// Structured error for clustering-aggregation operations.
#[derive(Clone, Debug, PartialEq)]
pub enum AggError {
    /// The instance itself is malformed: inconsistent object counts across
    /// input clusterings, a distance outside `[0, 1]`, or a NaN weight.
    InvalidInstance {
        /// Human-readable description of the defect.
        reason: String,
    },
    /// An algorithm parameter is outside its domain (e.g. `alpha ∉ [0, 1]`,
    /// a cooling factor outside `(0, 1)`, a start clustering of the wrong
    /// length).
    InvalidParameter {
        /// Which parameter was rejected.
        what: String,
        /// Why it was rejected.
        reason: String,
    },
    /// The input is structurally empty: no input clusterings, or all labels
    /// missing everywhere, so no consensus is defined.
    Degenerate {
        /// What was empty or uninformative.
        reason: String,
    },
    /// The instance exceeds a hard size limit of an exact solver.
    TooLarge {
        /// The operation that refused.
        what: String,
        /// Actual instance size.
        n: usize,
        /// Maximum supported size.
        max: usize,
    },
    /// A [`crate::robust::RunBudget`] was exhausted at a point where no
    /// best-so-far result exists (anytime algorithms report budget trips
    /// through [`crate::robust::RunStatus`] instead).
    BudgetExceeded {
        /// Which phase ran out of budget.
        context: String,
    },
    /// A [`crate::robust::CancelToken`] fired at a point where no
    /// best-so-far result exists.
    Cancelled {
        /// Which phase was cancelled.
        context: String,
    },
    /// The [`crate::robust::ResourceBudget`] memory cap refused an
    /// allocation and no smaller representation could take its place
    /// (the consensus pipeline degrades instead of raising this; it
    /// surfaces from paths with no fallback, e.g. `eval`'s dense matrix).
    MemoryExceeded {
        /// The operation that was refused.
        what: String,
        /// Bytes the refused allocation asked for.
        requested: u64,
        /// The configured memory ceiling in bytes.
        limit: u64,
    },
    /// Input text could not be parsed.
    Parse {
        /// 1-based line number in the source text.
        line: usize,
        /// 1-based column (field) number, when known.
        column: Option<usize>,
        /// What went wrong.
        reason: String,
    },
}

impl AggError {
    /// Convenience constructor for [`AggError::InvalidInstance`].
    pub fn invalid_instance(reason: impl Into<String>) -> Self {
        AggError::InvalidInstance {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`AggError::InvalidParameter`].
    pub fn invalid_parameter(what: impl Into<String>, reason: impl Into<String>) -> Self {
        AggError::InvalidParameter {
            what: what.into(),
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`AggError::Degenerate`].
    pub fn degenerate(reason: impl Into<String>) -> Self {
        AggError::Degenerate {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for AggError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggError::InvalidInstance { reason } => write!(f, "invalid instance: {reason}"),
            AggError::InvalidParameter { what, reason } => {
                write!(f, "invalid parameter {what}: {reason}")
            }
            AggError::Degenerate { reason } => write!(f, "degenerate input: {reason}"),
            AggError::TooLarge { what, n, max } => {
                write!(f, "{what} limited to n <= {max}, got {n}")
            }
            AggError::BudgetExceeded { context } => {
                write!(f, "run budget exceeded during {context}")
            }
            AggError::Cancelled { context } => write!(f, "cancelled during {context}"),
            AggError::MemoryExceeded {
                what,
                requested,
                limit,
            } => write!(
                f,
                "memory budget exceeded: {what} needs {requested} bytes, limit is {limit}"
            ),
            AggError::Parse {
                line,
                column,
                reason,
            } => match column {
                Some(col) => write!(f, "line {line}, column {col}: {reason}"),
                None => write!(f, "line {line}: {reason}"),
            },
        }
    }
}

impl std::error::Error for AggError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = AggError::invalid_instance("distance 2.0 out of [0,1]");
        assert_eq!(e.to_string(), "invalid instance: distance 2.0 out of [0,1]");
        let e = AggError::invalid_parameter("alpha", "1.5 out of [0,1]");
        assert_eq!(e.to_string(), "invalid parameter alpha: 1.5 out of [0,1]");
        let e = AggError::TooLarge {
            what: "exact search".into(),
            n: 30,
            max: 24,
        };
        assert_eq!(e.to_string(), "exact search limited to n <= 24, got 30");
        let e = AggError::Parse {
            line: 3,
            column: Some(2),
            reason: "expected 4 columns, found 2".into(),
        };
        assert_eq!(
            e.to_string(),
            "line 3, column 2: expected 4 columns, found 2"
        );
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(AggError::degenerate("no inputs"));
        assert!(e.to_string().contains("no inputs"));
    }
}
