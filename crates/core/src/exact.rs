//! Exact (exponential-time) optimal correlation clustering for tiny
//! instances, by enumerating all set partitions.
//!
//! Clustering aggregation and correlation clustering are NP-complete, and
//! the paper's guarantees (2(1 − 1/m) for BESTCLUSTERING, 3 for BALLS,
//! 2 for AGGLOMERATIVE at m = 3) are stated against the optimum. This module
//! provides that optimum for `n ≤ MAX_EXACT_N` via restricted-growth-string
//! enumeration (Bell(12) ≈ 4.2M partitions), with incremental cost updates
//! so each partition costs `O(n)` rather than `O(n²)` to evaluate.
//!
//! Used by the test suite and the ablation harness; not part of any
//! algorithm.

use crate::clustering::Clustering;
use crate::error::{AggError, AggResult};
use crate::instance::DistanceOracle;
use crate::robust::{BudgetMeter, Interrupt, RunBudget, RunStatus};

/// Largest instance size accepted by [`optimal_clustering`].
pub const MAX_EXACT_N: usize = 14;

/// Result of the exhaustive search.
#[derive(Clone, Debug)]
pub struct ExactResult {
    /// An optimal clustering (the lexicographically first among optima, in
    /// restricted-growth-string order).
    pub clustering: Clustering,
    /// Its correlation cost `d(C)`.
    pub cost: f64,
    /// Number of partitions examined (the Bell number of `n`).
    pub partitions_examined: u64,
}

/// Find the optimal correlation clustering by exhaustive enumeration.
///
/// # Panics
/// Panics if `oracle.len() > MAX_EXACT_N`.
pub fn optimal_clustering<O: DistanceOracle + Sync + ?Sized>(oracle: &O) -> ExactResult {
    let n = oracle.len();
    assert!(
        n <= MAX_EXACT_N,
        "exact search limited to n ≤ {MAX_EXACT_N}, got {n}"
    );
    if n == 0 {
        return ExactResult {
            clustering: Clustering::from_labels(Vec::new()),
            cost: 0.0,
            partitions_examined: 1,
        };
    }

    // Cost decomposition: d(C) = B + Σ_{within pairs} (2X − 1), where
    // B = Σ(1 − X). We search over the within term.
    let base = crate::cost::split_everything_cost(oracle);
    // gain[u][v] = 2·X_uv − 1: the cost delta of co-clustering u and v.
    let gain: Vec<Vec<f64>> = (0..n)
        .map(|u| (0..n).map(|v| 2.0 * oracle.dist(u, v) - 1.0).collect())
        .collect();

    // Depth-first enumeration of restricted growth strings with incremental
    // within-cost: placing node `depth` into cluster `c` adds
    // Σ_{u already in c} gain[depth][u].
    let mut labels = vec![0u32; n];
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut best_labels = vec![0u32; n];
    let mut best_within = f64::INFINITY;
    let mut examined = 0u64;

    struct Search<'a> {
        n: usize,
        gain: &'a [Vec<f64>],
        labels: &'a mut [u32],
        members: &'a mut [Vec<usize>],
        best_labels: &'a mut [u32],
        best_within: &'a mut f64,
        examined: &'a mut u64,
    }

    fn dfs(s: &mut Search<'_>, depth: usize, used: usize, within: f64) {
        if depth == s.n {
            *s.examined += 1;
            if within < *s.best_within {
                *s.best_within = within;
                s.best_labels.copy_from_slice(s.labels);
            }
            return;
        }
        // Node `depth` may join any existing cluster or open cluster `used`.
        for c in 0..=used.min(s.n - 1) {
            let delta: f64 = s.members[c].iter().map(|&u| s.gain[depth][u]).sum();
            s.labels[depth] = c as u32;
            s.members[c].push(depth);
            let next_used = if c == used { used + 1 } else { used };
            dfs(s, depth + 1, next_used, within + delta);
            s.members[c].pop();
        }
    }

    dfs(
        &mut Search {
            n,
            gain: &gain,
            labels: &mut labels,
            members: &mut members,
            best_labels: &mut best_labels,
            best_within: &mut best_within,
            examined: &mut examined,
        },
        0,
        0,
        0.0,
    );

    ExactResult {
        clustering: Clustering::from_labels(best_labels),
        cost: base + best_within,
        partitions_examined: examined,
    }
}

/// Exact optimum of the *aggregation* objective `D(C)` for tiny inputs:
/// reduces to correlation clustering and rescales the cost by `m`.
pub fn optimal_aggregation(inputs: &[Clustering]) -> (Clustering, f64) {
    let oracle = crate::instance::DenseOracle::from_clusterings(inputs);
    let res = optimal_clustering(&oracle);
    (res.clustering, res.cost * inputs.len() as f64)
}

/// Largest instance size accepted by [`branch_and_bound`]. The worst case
/// is still exponential, but the admissible bound prunes structured
/// instances (the kind aggregation produces) to a small fraction of the
/// Bell-number search space.
pub const MAX_BNB_N: usize = 24;

/// Exact optimal correlation clustering by branch-and-bound over restricted
/// growth strings.
///
/// Nodes are placed one at a time; a branch is cut when the accumulated
/// within-cost plus an *admissible* bound on the remaining pairs cannot
/// beat the incumbent. The bound is `Σ min(0, 2·X_uv − 1)` over all pairs
/// with at least one unplaced endpoint — every such pair contributes at
/// least that much, since the search may still separate it (contributing 0)
/// or join it (contributing `2X − 1`). The incumbent starts from a
/// LOCALSEARCH warm start, so strong instances prune immediately.
///
/// Returns the same optimum as [`optimal_clustering`] and additionally
/// reports the number of search nodes expanded.
///
/// # Panics
/// Panics if `oracle.len() > MAX_BNB_N`.
pub fn branch_and_bound<O: DistanceOracle + Sync + ?Sized>(oracle: &O) -> ExactResult {
    let n = oracle.len();
    assert!(
        n <= MAX_BNB_N,
        "branch-and-bound limited to n ≤ {MAX_BNB_N}, got {n}"
    );
    match branch_and_bound_budgeted(oracle, &RunBudget::unlimited()) {
        Ok((result, _)) => result,
        // Unreachable: the size guard above is the only error source and an
        // unlimited budget never trips.
        Err(_) => ExactResult {
            clustering: Clustering::singletons(n),
            cost: f64::INFINITY,
            partitions_examined: 0,
        },
    }
}

/// Budgeted [`branch_and_bound`]: the size guard becomes a typed
/// [`AggError::TooLarge`] and the search ticks its budget once per expanded
/// node. On a trip the incumbent — seeded by the LOCALSEARCH warm start, so
/// always a valid clustering — is returned with
/// [`RunStatus::BudgetExceeded`]; its `cost` field is then an upper bound
/// on the optimum rather than the proven optimum.
pub fn branch_and_bound_budgeted<O: DistanceOracle + Sync + ?Sized>(
    oracle: &O,
    budget: &RunBudget,
) -> AggResult<(ExactResult, RunStatus)> {
    let n = oracle.len();
    if n > MAX_BNB_N {
        return Err(AggError::TooLarge {
            what: "branch-and-bound".into(),
            n,
            max: MAX_BNB_N,
        });
    }
    let _span = crate::span!("exact", n = n);
    if n == 0 {
        return Ok((
            ExactResult {
                clustering: Clustering::from_labels(Vec::new()),
                cost: 0.0,
                partitions_examined: 1,
            },
            RunStatus::Converged,
        ));
    }

    let base = crate::cost::split_everything_cost(oracle);
    let gain: Vec<Vec<f64>> = (0..n)
        .map(|u| (0..n).map(|v| 2.0 * oracle.dist(u, v) - 1.0).collect())
        .collect();

    // remaining_lb[d] = Σ_{v ≥ d} Σ_{u < v} min(0, gain[u][v]): an
    // admissible bound on the within-cost still to be paid once nodes
    // 0..d are placed.
    let mut remaining_lb = vec![0.0f64; n + 1];
    for d in (0..n).rev() {
        // Pairs (u, d) with u < d are decided exactly when node d is placed;
        // pairs (d, v) with v > d are accounted in remaining_lb[d + 1].
        let row: f64 = (0..d).map(|u| gain[d][u].min(0.0)).sum();
        remaining_lb[d] = remaining_lb[d + 1] + row;
    }

    // Warm start: LOCALSEARCH from singletons gives a strong incumbent.
    let warm = crate::algorithms::local_search::local_search_from(
        oracle,
        &Clustering::singletons(n),
        200,
        1e-9,
    );
    let mut best_within = crate::cost::within_cost(oracle, &warm);
    let mut best_labels: Vec<u32> = warm.labels().to_vec();

    let mut labels = vec![0u32; n];
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut expanded = 0u64;
    let mut meter = budget.meter();

    struct Search<'a, 'b> {
        n: usize,
        gain: &'a [Vec<f64>],
        remaining_lb: &'a [f64],
        labels: &'a mut [u32],
        members: &'a mut [Vec<usize>],
        best_labels: &'a mut Vec<u32>,
        best_within: &'a mut f64,
        expanded: &'a mut u64,
        meter: &'a mut BudgetMeter<'b>,
    }

    fn dfs(
        s: &mut Search<'_, '_>,
        depth: usize,
        used: usize,
        within: f64,
    ) -> Result<(), Interrupt> {
        *s.expanded += 1;
        s.meter.tick()?;
        if depth == s.n {
            if within < *s.best_within - 1e-12 {
                *s.best_within = within;
                s.best_labels.copy_from_slice(s.labels);
            }
            return Ok(());
        }
        if within + s.remaining_lb[depth] >= *s.best_within - 1e-12 {
            return Ok(()); // admissible bound: no completion can win
        }
        for c in 0..=used.min(s.n - 1) {
            let delta: f64 = s.members[c].iter().map(|&u| s.gain[depth][u]).sum();
            s.labels[depth] = c as u32;
            s.members[c].push(depth);
            let next_used = if c == used { used + 1 } else { used };
            let descent = dfs(s, depth + 1, next_used, within + delta);
            s.members[c].pop();
            descent?;
        }
        Ok(())
    }

    let status = match dfs(
        &mut Search {
            n,
            gain: &gain,
            remaining_lb: &remaining_lb,
            labels: &mut labels,
            members: &mut members,
            best_labels: &mut best_labels,
            best_within: &mut best_within,
            expanded: &mut expanded,
            meter: &mut meter,
        },
        0,
        0,
        0.0,
    ) {
        Ok(()) => RunStatus::Converged,
        Err(interrupt) => interrupt.status(),
    };
    // Bulk-add after the search: one atomic op instead of one per node.
    crate::telemetry::metrics()
        .exact_nodes
        .add_if_enabled(expanded);

    Ok((
        ExactResult {
            clustering: Clustering::from_labels(best_labels),
            cost: base + best_within,
            partitions_examined: expanded,
        },
        status,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::correlation_cost;
    use crate::instance::DenseOracle;

    fn c(labels: &[u32]) -> Clustering {
        Clustering::from_labels(labels.to_vec())
    }

    #[test]
    fn bell_numbers_are_enumerated() {
        // Bell numbers: 1, 1, 2, 5, 15, 52, 203, 877.
        let bells = [1u64, 1, 2, 5, 15, 52, 203, 877];
        for (n, &b) in bells.iter().enumerate() {
            let oracle = DenseOracle::from_fn(n, |_, _| 0.5);
            assert_eq!(optimal_clustering(&oracle).partitions_examined, b, "n={n}");
        }
    }

    #[test]
    fn paper_example_optimum_is_five_thirds() {
        let oracle = DenseOracle::from_clusterings(&[
            c(&[0, 0, 1, 1, 2, 2]),
            c(&[0, 1, 0, 1, 2, 3]),
            c(&[0, 1, 0, 1, 2, 2]),
        ]);
        let res = optimal_clustering(&oracle);
        assert!((res.cost - 5.0 / 3.0).abs() < 1e-9);
        assert_eq!(res.clustering, c(&[0, 1, 0, 1, 2, 2]));
    }

    #[test]
    fn cost_field_matches_direct_evaluation() {
        let oracle = DenseOracle::from_clusterings(&[
            c(&[0, 1, 1, 0, 2]),
            c(&[0, 0, 1, 1, 2]),
            c(&[0, 1, 0, 1, 1]),
        ]);
        let res = optimal_clustering(&oracle);
        assert!((res.cost - correlation_cost(&oracle, &res.clustering)).abs() < 1e-9);
    }

    #[test]
    fn optimum_beats_every_input() {
        let inputs = vec![
            c(&[0, 1, 1, 0, 2]),
            c(&[0, 0, 1, 1, 2]),
            c(&[0, 1, 0, 1, 1]),
        ];
        let (opt, cost) = optimal_aggregation(&inputs);
        for input in &inputs {
            let d = crate::distance::total_disagreement(&inputs, input) as f64;
            assert!(cost <= d + 1e-9);
        }
        assert_eq!(opt.len(), 5);
    }

    #[test]
    fn zero_distance_instance_collapses() {
        let oracle = DenseOracle::from_fn(5, |_, _| 0.0);
        let res = optimal_clustering(&oracle);
        assert_eq!(res.clustering, Clustering::one_cluster(5));
        assert_eq!(res.cost, 0.0);
    }

    #[test]
    fn unit_distance_instance_shatters() {
        let oracle = DenseOracle::from_fn(5, |_, _| 1.0);
        let res = optimal_clustering(&oracle);
        assert_eq!(res.clustering, Clustering::singletons(5));
        assert_eq!(res.cost, 0.0);
    }

    #[test]
    fn optimum_at_least_lower_bound() {
        let oracle = DenseOracle::from_clusterings(&[
            c(&[0, 0, 1, 1, 2, 2]),
            c(&[0, 1, 0, 1, 2, 3]),
            c(&[0, 1, 0, 1, 2, 2]),
        ]);
        let res = optimal_clustering(&oracle);
        assert!(res.cost >= crate::cost::lower_bound(&oracle) - 1e-9);
    }

    #[test]
    #[should_panic(expected = "exact search limited")]
    fn too_large_rejected() {
        let oracle = DenseOracle::from_fn(MAX_EXACT_N + 1, |_, _| 0.5);
        let _ = optimal_clustering(&oracle);
    }

    /// Deterministic pseudo-random clusterings (no rand dependency needed).
    fn lcg_clusterings(n: usize, m: usize, k: u32, mut state: u64) -> Vec<Clustering> {
        (0..m)
            .map(|_| {
                let labels = (0..n)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((state >> 33) as u32) % k
                    })
                    .collect();
                Clustering::from_labels(labels)
            })
            .collect()
    }

    #[test]
    fn branch_and_bound_matches_enumeration() {
        for seed in 0..10u64 {
            let inputs = lcg_clusterings(8, 4, 3, seed + 1);
            let oracle = DenseOracle::from_clusterings(&inputs);
            let full = optimal_clustering(&oracle);
            let bnb = branch_and_bound(&oracle);
            assert!((full.cost - bnb.cost).abs() < 1e-9, "seed {seed}");
            assert!(
                (correlation_cost(&oracle, &bnb.clustering) - bnb.cost).abs() < 1e-9,
                "seed {seed}: reported cost must match the returned clustering"
            );
        }
    }

    #[test]
    fn branch_and_bound_prunes() {
        // On a structured instance the search must expand far fewer nodes
        // than the full enumeration touches partitions.
        let truth = c(&[0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]);
        let oracle = DenseOracle::from_clusterings(&[truth.clone(), truth.clone(), truth]);
        let bnb = branch_and_bound(&oracle);
        assert_eq!(bnb.cost, 0.0);
        // Bell(12) = 4_213_597; strong pruning must stay far below it.
        assert!(
            bnb.partitions_examined < 100_000,
            "expanded {}",
            bnb.partitions_examined
        );
    }

    #[test]
    fn branch_and_bound_handles_larger_structured_instances() {
        // n = 18 is beyond the enumerator but easy for the bound.
        let truth = Clustering::from_labels((0..18).map(|v| v / 6).collect());
        let oracle = DenseOracle::from_clusterings(&[truth.clone(), truth.clone(), truth.clone()]);
        let bnb = branch_and_bound(&oracle);
        assert_eq!(bnb.clustering.num_clusters(), 3);
        assert_eq!(bnb.cost, 0.0);
    }

    #[test]
    fn branch_and_bound_empty() {
        let oracle = DenseOracle::from_fn(0, |_, _| 0.0);
        assert_eq!(branch_and_bound(&oracle).cost, 0.0);
    }

    #[test]
    fn budgeted_bnb_too_large_is_a_typed_error() {
        let oracle = DenseOracle::from_fn(MAX_BNB_N + 1, |_, _| 0.5);
        let err = branch_and_bound_budgeted(&oracle, &RunBudget::unlimited()).unwrap_err();
        assert!(matches!(err, AggError::TooLarge { max: MAX_BNB_N, .. }));
    }

    #[test]
    fn budgeted_bnb_trip_returns_warm_start_quality() {
        let inputs = lcg_clusterings(10, 4, 3, 99);
        let oracle = DenseOracle::from_clusterings(&inputs);
        // One expansion, then the cap trips: the incumbent is the
        // LOCALSEARCH warm start, whose reported cost matches its clustering.
        let tight = RunBudget::unlimited().with_max_iters(1);
        let (result, status) = branch_and_bound_budgeted(&oracle, &tight).unwrap();
        assert_eq!(status, RunStatus::BudgetExceeded);
        assert!(
            (correlation_cost(&oracle, &result.clustering) - result.cost).abs() < 1e-9,
            "anytime cost must match the returned clustering"
        );
        let exact = optimal_clustering(&oracle);
        assert!(result.cost >= exact.cost - 1e-9, "still an upper bound");
    }
}
