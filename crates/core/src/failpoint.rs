//! Deterministic failpoint injection: named sites, seeded fault plans.
//!
//! Robustness claims ("checkpoint failures degrade to warnings", "a torn
//! spill frame is rebuilt, not trusted") are only as good as the failure
//! paths a test can actually reach. This module provides the missing
//! lever: a registry of **named injection sites** threaded through every
//! filesystem touch (via [`crate::iofs`]), the budget clock, and the
//! memory governor, driven by a **deterministic seeded fault plan** so a
//! failing storm replays byte-for-byte from its spec.
//!
//! # Cost model
//!
//! The design mirrors the telemetry layer: when no plan is armed, a site
//! check ([`check`] / the [`crate::fp!`] macro) is one relaxed atomic
//! load and an untaken branch — cheap enough to leave in release builds
//! and on hot paths. All bookkeeping lives behind the armed branch.
//!
//! # Plan grammar
//!
//! A plan is a comma-separated list of clauses, each
//! `site=kind[:param=value]...`:
//!
//! ```text
//! snapshot.rename=io_error:nth=3      fail the 3rd checkpoint rename
//! spill.write=torn:prob=0.25:seed=7   silently truncate ~25% of tile writes
//! cli.input=enospc                    every dataset read reports ENOSPC
//! snapshot.fsync=delay:ms=40          each checkpoint fsync sleeps 40 ms
//! clock=skew:ms=50                    the budget clock runs 50 ms fast
//! alloc=fail:after_mb=32              refuse tracked reserves past 32 MiB
//! ```
//!
//! Kinds: `io_error` (a generic injected [`std::io::Error`]), `enospc`
//! (raw OS error 28), `torn` (the write *silently* stops at a seeded cut
//! — the checksum layers must catch it), `delay` (sleep `ms` inside the
//! site), `skew` (site must be `clock`; shifts [`crate::telemetry::Clock`]
//! system time forward), and `fail` (site must be `alloc`; makes
//! [`crate::robust::ResourceBudget::try_reserve`] refuse once `after_mb`
//! MiB of reserves have been observed).
//!
//! Activation params: `nth=K` fires on exactly the K-th hit of the site
//! (1-based); `prob=P` fires each hit independently with probability `P`
//! from a splitmix64 stream seeded by `seed` (default 0); with neither,
//! every hit fires. `path=SUBSTR` scopes a filesystem clause to paths
//! containing `SUBSTR`, so concurrent tests with private temp dirs never
//! see each other's storms.
//!
//! # Determinism
//!
//! Same plan + same seed ⇒ same injection sequence: activation state is
//! per-clause (hit counters and rng streams reset at [`arm`] time), cuts
//! and coin flips come from splitmix64, and nothing reads wall-clock
//! time. On a single-threaded workload the sequence of `fault injected`
//! events is therefore reproducible byte-for-byte; with worker threads
//! the *multiset* is plan-determined but interleaving may vary, which is
//! why the chaos harness pins `--threads 1` when diffing sequences.
//!
//! # Scope
//!
//! Arming is process-global but serialized: [`arm`] returns an RAII
//! [`ArmedGuard`] holding a static mutex, so two armed sections (e.g.
//! parallel `#[test]`s) never interleave. The `clock` and `alloc` clauses
//! additionally fire only on the arming thread — filesystem clauses are
//! scoped by `path=`, these two are scoped by thread — so an armed test
//! cannot trip an unrelated test's budget arithmetic.

use crate::error::AggError;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Global state
// ---------------------------------------------------------------------------

/// Fast-path gate: `true` while a plan is armed. Relaxed load on check,
/// Release store on arm/disarm (same discipline as the telemetry
/// collector gate).
static ARMED: AtomicBool = AtomicBool::new(false);

/// Clock skew (ns) added to `Clock::system()` readings while armed.
static CLOCK_SKEW_NS: AtomicU64 = AtomicU64::new(0);

/// Serializes armed sections across threads; the guard lives inside
/// [`ArmedGuard`].
static ARM_LOCK: Mutex<()> = Mutex::new(());

/// The armed plan plus its mutable activation state.
static ACTIVE: Mutex<Option<PlanState>> = Mutex::new(None);

/// `true` while a fault plan is armed.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Plan model
// ---------------------------------------------------------------------------

/// What a clause injects when it fires.
#[derive(Clone, Debug, PartialEq)]
enum Kind {
    /// Generic injected I/O error.
    IoError,
    /// "No space left on device" (raw OS error 28).
    Enospc,
    /// Silently stop the write at a seeded cut point.
    Torn,
    /// Sleep inside the site.
    Delay { ms: u64 },
    /// Shift the system clock forward (site `clock` only).
    Skew { ms: u64 },
    /// Refuse tracked reserves past a cumulative threshold (site `alloc`).
    AllocFail { after_mb: u64 },
}

impl Kind {
    fn name(&self) -> &'static str {
        match self {
            Kind::IoError => "io_error",
            Kind::Enospc => "enospc",
            Kind::Torn => "torn",
            Kind::Delay { .. } => "delay",
            Kind::Skew { .. } => "skew",
            Kind::AllocFail { .. } => "fail",
        }
    }
}

/// One `site=kind:params` clause of a parsed plan.
#[derive(Clone, Debug, PartialEq)]
struct Clause {
    site: String,
    kind: Kind,
    /// Fire on exactly the nth hit (1-based).
    nth: Option<u64>,
    /// Fire each hit with this probability.
    prob: Option<f64>,
    /// Seed for the clause's splitmix64 stream (cuts and coin flips).
    seed: u64,
    /// Only fire for paths containing this substring.
    path: Option<String>,
}

/// A parsed, not-yet-armed fault plan. Obtain one with
/// [`FaultPlan::parse`] (the `--fault-plan` / `AGGCLUST_FAULTS` spec
/// format) and activate it with [`arm`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    clauses: Vec<Clause>,
}

/// Per-clause mutable activation state, rebuilt fresh at [`arm`] time so
/// re-arming the same plan replays the same sequence.
#[derive(Debug)]
struct ClauseState {
    hits: u64,
    rng: u64,
    /// Cumulative bytes seen by the `alloc` clause.
    charged: u64,
}

#[derive(Debug)]
struct PlanState {
    plan: FaultPlan,
    states: Vec<ClauseState>,
    /// `site:kind` entries, in injection order.
    log: Vec<String>,
    /// Thread that armed the plan; `clock`/`alloc` clauses only fire here.
    owner: std::thread::ThreadId,
}

fn parse_u64(clause: &str, key: &str, value: &str) -> Result<u64, AggError> {
    value.parse().map_err(|_| {
        AggError::invalid_parameter(
            "fault-plan",
            format!("{key}= needs an unsigned integer in {clause:?}, got {value:?}"),
        )
    })
}

impl FaultPlan {
    /// Parse a plan spec (see the module docs for the grammar). Errors are
    /// typed [`AggError::InvalidParameter`]s so the CLI maps them to its
    /// usage exit code.
    pub fn parse(spec: &str) -> Result<FaultPlan, AggError> {
        let mut clauses = Vec::new();
        for raw in spec.split(',') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            clauses.push(Self::parse_clause(raw)?);
        }
        if clauses.is_empty() {
            return Err(AggError::invalid_parameter(
                "fault-plan",
                format!("no clauses in {spec:?}"),
            ));
        }
        Ok(FaultPlan { clauses })
    }

    fn parse_clause(raw: &str) -> Result<Clause, AggError> {
        let (site, rest) = raw.split_once('=').ok_or_else(|| {
            AggError::invalid_parameter(
                "fault-plan",
                format!("expected site=kind[:param=value]..., got {raw:?}"),
            )
        })?;
        let site = site.trim();
        let mut parts = rest.split(':');
        let kind_name = parts.next().unwrap_or("").trim();
        let mut nth = None;
        let mut prob = None;
        let mut seed = 0u64;
        let mut ms = None;
        let mut after_mb = None;
        let mut path = None;
        for part in parts {
            let (key, value) = part.split_once('=').ok_or_else(|| {
                AggError::invalid_parameter(
                    "fault-plan",
                    format!("expected param=value, got {part:?} in {raw:?}"),
                )
            })?;
            match key.trim() {
                "nth" => {
                    let n = parse_u64(raw, "nth", value)?;
                    if n == 0 {
                        return Err(AggError::invalid_parameter(
                            "fault-plan",
                            format!("nth= is 1-based in {raw:?}"),
                        ));
                    }
                    nth = Some(n);
                }
                "prob" => {
                    let p: f64 = value.parse().map_err(|_| {
                        AggError::invalid_parameter(
                            "fault-plan",
                            format!("prob= needs a number in {raw:?}, got {value:?}"),
                        )
                    })?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(AggError::invalid_parameter(
                            "fault-plan",
                            format!("prob= must be in [0, 1] in {raw:?}, got {value}"),
                        ));
                    }
                    prob = Some(p);
                }
                "seed" => seed = parse_u64(raw, "seed", value)?,
                "ms" => ms = Some(parse_u64(raw, "ms", value)?),
                "after_mb" => after_mb = Some(parse_u64(raw, "after_mb", value)?),
                "path" => path = Some(value.to_string()),
                other => {
                    return Err(AggError::invalid_parameter(
                        "fault-plan",
                        format!("unknown param {other:?} in {raw:?}"),
                    ))
                }
            }
        }
        if nth.is_some() && prob.is_some() {
            return Err(AggError::invalid_parameter(
                "fault-plan",
                format!("nth= and prob= are mutually exclusive in {raw:?}"),
            ));
        }
        let kind = match kind_name {
            "io_error" => Kind::IoError,
            "enospc" => Kind::Enospc,
            "torn" => Kind::Torn,
            "delay" => Kind::Delay {
                ms: ms.ok_or_else(|| {
                    AggError::invalid_parameter("fault-plan", format!("delay needs ms= in {raw:?}"))
                })?,
            },
            "skew" => Kind::Skew {
                ms: ms.ok_or_else(|| {
                    AggError::invalid_parameter("fault-plan", format!("skew needs ms= in {raw:?}"))
                })?,
            },
            "fail" => Kind::AllocFail {
                after_mb: after_mb.ok_or_else(|| {
                    AggError::invalid_parameter(
                        "fault-plan",
                        format!("fail needs after_mb= in {raw:?}"),
                    )
                })?,
            },
            other => {
                return Err(AggError::invalid_parameter(
                    "fault-plan",
                    format!(
                        "unknown fault kind {other:?} in {raw:?} \
                         (expected io_error, enospc, torn, delay, skew or fail)"
                    ),
                ))
            }
        };
        match &kind {
            Kind::Skew { .. } if site != "clock" => {
                return Err(AggError::invalid_parameter(
                    "fault-plan",
                    format!("skew applies to the clock site only, got {raw:?}"),
                ))
            }
            Kind::AllocFail { .. } if site != "alloc" => {
                return Err(AggError::invalid_parameter(
                    "fault-plan",
                    format!("fail applies to the alloc site only, got {raw:?}"),
                ))
            }
            _ if site == "clock" && !matches!(kind, Kind::Skew { .. }) => {
                return Err(AggError::invalid_parameter(
                    "fault-plan",
                    format!("the clock site only supports skew, got {raw:?}"),
                ))
            }
            _ if site == "alloc" && !matches!(kind, Kind::AllocFail { .. }) => {
                return Err(AggError::invalid_parameter(
                    "fault-plan",
                    format!("the alloc site only supports fail, got {raw:?}"),
                ))
            }
            _ => {}
        }
        Ok(Clause {
            site: site.to_string(),
            kind,
            nth,
            prob,
            seed,
            path,
        })
    }

    /// Parse the plan in the `AGGCLUST_FAULTS` environment variable, if
    /// set. Unset (or empty) means no plan; a malformed spec is an error,
    /// not a silent no-op.
    pub fn from_env() -> Result<Option<FaultPlan>, AggError> {
        match std::env::var("AGGCLUST_FAULTS") {
            Ok(spec) if !spec.trim().is_empty() => Ok(Some(FaultPlan::parse(&spec)?)),
            _ => Ok(None),
        }
    }

    /// Number of clauses in the plan.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// `true` when the plan has no clauses (only reachable by `default()`).
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Arming
// ---------------------------------------------------------------------------

/// RAII handle for an armed plan: dropping it disarms every site and
/// clears the clock skew. Holding the guard also holds a process-wide
/// lock, so armed sections from different threads (e.g. parallel tests)
/// run one at a time instead of corrupting each other's storms.
#[derive(Debug)]
pub struct ArmedGuard {
    _lock: MutexGuard<'static, ()>,
}

impl ArmedGuard {
    /// The injection log so far: one `site:kind` entry per injected
    /// fault, in order. Used by determinism tests (same plan + seed must
    /// reproduce the same log).
    pub fn injection_log(&self) -> Vec<String> {
        injection_log()
    }
}

/// The injection log of the currently armed plan: one `site:kind` entry
/// per injected fault, in order. Empty when no plan is armed — which
/// lets run reports embed the log unconditionally
/// ([`crate::telemetry::run_report_json`]'s `faults` array), making
/// chaos runs self-describing without scraping stderr.
pub fn injection_log() -> Vec<String> {
    match ACTIVE.lock() {
        Ok(active) => active.as_ref().map(|s| s.log.clone()).unwrap_or_default(),
        Err(_) => Vec::new(),
    }
}

impl Drop for ArmedGuard {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::Release);
        CLOCK_SKEW_NS.store(0, Ordering::Release);
        if let Ok(mut active) = ACTIVE.lock() {
            *active = None;
        }
    }
}

/// Arm `plan` process-wide and return the guard that keeps it armed.
/// Clause activation state (hit counters, rng streams, the alloc meter)
/// starts fresh, so arming the same plan twice replays the same storm.
pub fn arm(plan: FaultPlan) -> ArmedGuard {
    // A panic inside an armed section (exactly what fault tests provoke)
    // must not poison arming for every later test.
    let lock = ARM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let states = plan
        .clauses
        .iter()
        .map(|c| ClauseState {
            hits: 0,
            // splitmix64 streams diverge immediately even for seed 0.
            rng: c.seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
            charged: 0,
        })
        .collect();
    let skew_ns: u64 = plan
        .clauses
        .iter()
        .filter_map(|c| match c.kind {
            Kind::Skew { ms } => Some(ms.saturating_mul(1_000_000)),
            _ => None,
        })
        .sum();
    if let Ok(mut active) = ACTIVE.lock() {
        *active = Some(PlanState {
            plan,
            states,
            log: Vec::new(),
            owner: std::thread::current().id(),
        });
    }
    CLOCK_SKEW_NS.store(skew_ns, Ordering::Release);
    ARMED.store(true, Ordering::Release);
    ArmedGuard { _lock: lock }
}

// ---------------------------------------------------------------------------
// Site checks
// ---------------------------------------------------------------------------

/// A fault the call site must act on (delays happen inside the check;
/// clock skew happens inside [`crate::telemetry::Clock`]).
#[derive(Debug)]
pub enum Fault {
    /// Fail the operation with this error.
    Io(std::io::Error),
    /// Silently stop the write after `cut` bytes — the durability layers'
    /// checksums are expected to catch the truncation later.
    Torn {
        /// Byte offset of the seeded cut, `< len`.
        cut: usize,
    },
    /// Refuse the tracked allocation.
    AllocFail {
        /// The clause's `after_mb` threshold, in bytes.
        limit: u64,
    },
}

/// Check a named site. Returns the fault to inject, if any. Disarmed
/// cost: one relaxed load and an untaken branch. `len` is the operation
/// size (bytes) used to place torn cuts; pass 0 when size-less.
#[inline]
pub fn check(site: &str, len: usize) -> Option<Fault> {
    if !armed() {
        return None;
    }
    hit(site, None, len)
}

/// [`check`] for two-segment sites named `{prefix}.{op}` (the atomic
/// writer's per-step sites) with a path filter, without allocating the
/// joined name.
#[inline]
pub fn check_op(prefix: &str, op: &str, path: &std::path::Path, len: usize) -> Option<Fault> {
    if !armed() {
        return None;
    }
    hit_scoped(prefix, Some(op), Some(path), len)
}

/// [`check`] with the touched path, for `path=`-scoped clauses.
#[inline]
pub fn check_path(site: &str, path: &std::path::Path, len: usize) -> Option<Fault> {
    if !armed() {
        return None;
    }
    hit_scoped(site, None, Some(path), len)
}

/// Consulted by [`crate::robust::ResourceBudget::try_reserve`]: should
/// this tracked reserve of `bytes` be refused? Only fires on the thread
/// that armed the plan (see the module docs on scope).
#[inline]
pub fn alloc_check(bytes: u64) -> Option<Fault> {
    if !armed() {
        return None;
    }
    alloc_hit(bytes)
}

/// Nanoseconds of injected clock skew (0 when disarmed). Added to
/// system-clock readings by [`crate::telemetry::Clock::now_ns`]; mock
/// clocks are exempt so deadline tests keep full control of time.
#[inline]
pub fn clock_skew_ns() -> u64 {
    if !armed() {
        return 0;
    }
    clock_skew_slow()
}

#[cold]
fn clock_skew_slow() -> u64 {
    // Thread-scoped like `alloc`: a skew armed by one test must not bend
    // time for a concurrently running one.
    let owner = match ACTIVE.lock() {
        Ok(active) => active.as_ref().map(|s| s.owner),
        Err(_) => None,
    };
    if owner == Some(std::thread::current().id()) {
        CLOCK_SKEW_NS.load(Ordering::Relaxed)
    } else {
        0
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cold]
fn hit(site: &str, path: Option<&std::path::Path>, len: usize) -> Option<Fault> {
    hit_scoped(site, None, path, len)
}

/// The slow path behind every armed check: match `site` (or
/// `{site}.{op}` when `op` is given) against each clause, advance its
/// activation state, and convert the first firing clause into a fault.
#[cold]
fn hit_scoped(
    site: &str,
    op: Option<&str>,
    path: Option<&std::path::Path>,
    len: usize,
) -> Option<Fault> {
    let mut active = match ACTIVE.lock() {
        Ok(a) => a,
        Err(_) => return None,
    };
    let state = active.as_mut()?;
    let mut injected: Option<(usize, Fault)> = None;
    for (i, clause) in state.plan.clauses.iter().enumerate() {
        if !site_matches(&clause.site, site, op) {
            continue;
        }
        if let Some(filter) = &clause.path {
            match path {
                Some(p) if p.to_string_lossy().contains(filter.as_str()) => {}
                _ => continue,
            }
        }
        let cs = &mut state.states[i];
        cs.hits += 1;
        let fire = if let Some(nth) = clause.nth {
            cs.hits == nth
        } else if let Some(prob) = clause.prob {
            // 53-bit uniform draw in [0, 1).
            let draw = (splitmix64(&mut cs.rng) >> 11) as f64 / (1u64 << 53) as f64;
            draw < prob
        } else {
            true
        };
        if !fire {
            continue;
        }
        let fault = match &clause.kind {
            Kind::IoError => Fault::Io(injected_io_error()),
            Kind::Enospc => Fault::Io(std::io::Error::from_raw_os_error(28)),
            Kind::Torn => Fault::Torn {
                cut: if len == 0 {
                    0
                } else {
                    (splitmix64(&mut cs.rng) % len as u64) as usize
                },
            },
            Kind::Delay { ms } => {
                let sleep = Duration::from_millis(*ms);
                let entry = record_injection(state, i, site, op);
                // Telemetry (and the sleep) must run outside the plan
                // lock: a trace sink reads the clock, and the clock reads
                // the plan's owner — re-locking here would deadlock.
                drop(active);
                announce_injection(&entry);
                std::thread::sleep(sleep);
                return None;
            }
            // clock/alloc clauses never match a filesystem site name.
            Kind::Skew { .. } | Kind::AllocFail { .. } => continue,
        };
        injected = Some((i, fault));
        break;
    }
    let (i, fault) = injected?;
    let entry = record_injection(state, i, site, op);
    drop(active);
    announce_injection(&entry);
    Some(fault)
}

#[cold]
fn alloc_hit(bytes: u64) -> Option<Fault> {
    let mut active = match ACTIVE.lock() {
        Ok(a) => a,
        Err(_) => return None,
    };
    let state = active.as_mut()?;
    if state.owner != std::thread::current().id() {
        return None;
    }
    let mut injected = None;
    for (i, clause) in state.plan.clauses.iter().enumerate() {
        let after_mb = match clause.kind {
            Kind::AllocFail { after_mb } => after_mb,
            _ => continue,
        };
        let cs = &mut state.states[i];
        cs.charged = cs.charged.saturating_add(bytes);
        if cs.charged > after_mb << 20 {
            injected = Some((
                i,
                Fault::AllocFail {
                    limit: after_mb << 20,
                },
            ));
            break;
        }
    }
    let (i, fault) = injected?;
    let entry = record_injection(state, i, "alloc", None);
    drop(active);
    announce_injection(&entry);
    Some(fault)
}

/// `clause_site` equals `site` (or `{site}.{op}` when `op` is given),
/// compared without allocating the joined name.
fn site_matches(clause_site: &str, site: &str, op: Option<&str>) -> bool {
    match op {
        None => clause_site == site,
        Some(op) => {
            clause_site.len() == site.len() + 1 + op.len()
                && clause_site.starts_with(site)
                && clause_site.as_bytes()[site.len()] == b'.'
                && clause_site.ends_with(op)
        }
    }
}

/// The generic injected I/O error. `ErrorKind::Other` keeps it distinct
/// from every real-world kind the handlers special-case (NotFound etc.).
fn injected_io_error() -> std::io::Error {
    std::io::Error::other("injected fault (failpoint)")
}

/// Append the `site:kind` entry to the plan's injection log (caller holds
/// the plan lock) and hand it back for [`announce_injection`], which must
/// run *after* the lock is released.
fn record_injection(state: &mut PlanState, clause: usize, site: &str, op: Option<&str>) -> String {
    let kind = state.plan.clauses[clause].kind.name();
    let entry = match op {
        Some(op) => format!("{site}.{op}:{kind}"),
        None => format!("{site}:{kind}"),
    };
    state.log.push(entry.clone());
    entry
}

/// Emit the injection's telemetry. Never called with the plan lock held:
/// a trace sink timestamps the event via [`crate::telemetry::Clock`],
/// whose skew check takes the same lock.
fn announce_injection(entry: &str) {
    crate::warn!(format!("fault injected at {entry}"));
    crate::telemetry::count_fault_injected();
}

/// Check a named failpoint site, yielding `Option<`[`Fault`]`>`. Forms:
/// `fp!("site")`, `fp!("site", len)` for sized operations. Disarmed cost
/// is one relaxed load and an untaken branch (see the module docs).
#[macro_export]
macro_rules! fp {
    ($site:expr) => {
        $crate::failpoint::check($site, 0)
    };
    ($site:expr, $len:expr) => {
        $crate::failpoint::check($site, $len)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(spec: &str) -> FaultPlan {
        FaultPlan::parse(spec).expect("plan must parse")
    }

    #[test]
    fn grammar_round_trips_the_documented_examples() {
        for spec in [
            "snapshot.rename=io_error:nth=3",
            "spill.write=torn:prob=0.25:seed=7",
            "clock=skew:ms=50",
            "alloc=fail:after_mb=32",
            "cli.input=enospc",
            "snapshot.fsync=delay:ms=40",
            "snapshot.rename=io_error:nth=3,spill.write=torn:prob=0.25:seed=7",
            "spill.write=torn:path=/tmp/mine",
        ] {
            assert!(FaultPlan::parse(spec).is_ok(), "{spec:?} must parse");
        }
    }

    #[test]
    fn malformed_specs_are_typed_parameter_errors() {
        for spec in [
            "",
            "snapshot.rename",
            "snapshot.rename=explode",
            "snapshot.rename=io_error:nth=0",
            "snapshot.rename=io_error:nth=1:prob=0.5",
            "snapshot.rename=io_error:prob=1.5",
            "snapshot.rename=io_error:bogus=1",
            "snapshot.rename=delay",
            "clock=io_error",
            "clock=skew",
            "alloc=skew:ms=5",
            "alloc=fail",
            "spill.write=fail:after_mb=1",
        ] {
            match FaultPlan::parse(spec) {
                Err(AggError::InvalidParameter { .. }) => {}
                other => panic!("{spec:?} must be InvalidParameter, got {other:?}"),
            }
        }
    }

    #[test]
    fn disarmed_checks_are_none() {
        // Hold the arm lock directly so no sibling test has a plan armed
        // while this one asserts the disarmed fast path.
        let _guard = ARM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!armed());
        assert!(check("snapshot.rename", 0).is_none());
        assert!(fp!("snapshot.rename").is_none());
        assert!(fp!("spill.write", 4096).is_none());
        assert!(alloc_check(1 << 30).is_none());
        assert_eq!(clock_skew_ns(), 0);
    }

    #[test]
    fn nth_fires_exactly_once_on_the_nth_hit() {
        let guard = arm(plan("s.write=io_error:nth=3"));
        for expect_hit in [false, false, true, false, false] {
            let fault = check("s.write", 0);
            assert_eq!(fault.is_some(), expect_hit);
        }
        assert_eq!(guard.injection_log(), vec!["s.write:io_error".to_string()]);
    }

    #[test]
    fn prob_stream_is_deterministic_per_seed() {
        let draws = |seed: u64| -> Vec<bool> {
            let spec = format!("s.op=io_error:prob=0.5:seed={seed}");
            let _guard = arm(plan(&spec));
            (0..64).map(|_| check("s.op", 0).is_some()).collect()
        };
        let a = draws(7);
        let b = draws(7);
        let c = draws(8);
        assert_eq!(a, b, "same seed must replay the same coin flips");
        assert_ne!(a, c, "different seeds must diverge");
        let fired = a.iter().filter(|&&f| f).count();
        assert!((8..=56).contains(&fired), "prob=0.5 fired {fired}/64");
    }

    #[test]
    fn torn_cuts_are_seeded_and_in_range() {
        let cuts = |seed: u64| -> Vec<usize> {
            let spec = format!("s.write=torn:seed={seed}");
            let _guard = arm(plan(&spec));
            (0..32)
                .map(|_| match check("s.write", 1000) {
                    Some(Fault::Torn { cut }) => cut,
                    other => panic!("expected a torn fault, got {other:?}"),
                })
                .collect()
        };
        let a = cuts(3);
        assert_eq!(a, cuts(3));
        assert_ne!(a, cuts(4));
        assert!(a.iter().all(|&c| c < 1000));
        assert!(a.windows(2).any(|w| w[0] != w[1]), "cuts must vary");
    }

    #[test]
    fn enospc_maps_to_raw_os_error_28() {
        let _guard = arm(plan("s.write=enospc"));
        match check("s.write", 10) {
            Some(Fault::Io(e)) => assert_eq!(e.raw_os_error(), Some(28)),
            other => panic!("expected ENOSPC, got {other:?}"),
        }
    }

    #[test]
    fn path_scoping_filters_foreign_paths() {
        let guard = arm(plan("s.write=io_error:path=mine"));
        let mine = std::path::Path::new("/tmp/mine/tile.bin");
        let theirs = std::path::Path::new("/tmp/theirs/tile.bin");
        assert!(check_path("s.write", theirs, 0).is_none());
        assert!(check_path("s.write", mine, 0).is_some());
        // A plain check without a path never matches a scoped clause.
        assert!(check("s.write", 0).is_none());
        assert_eq!(guard.injection_log().len(), 1);
    }

    #[test]
    fn two_segment_sites_match_without_allocation() {
        let _guard = arm(plan("snapshot.rename=io_error"));
        let p = std::path::Path::new("/tmp/x");
        assert!(check_op("snapshot", "rename", p, 0).is_some());
        assert!(check_op("snapshot", "write", p, 0).is_none());
        assert!(check_op("snap", "shot.rename", p, 0).is_none());
    }

    #[test]
    fn alloc_fail_trips_past_the_cumulative_threshold_on_owner_thread() {
        let _guard = arm(plan("alloc=fail:after_mb=1"));
        assert!(alloc_check(512 << 10).is_none(), "0.5 MiB is under");
        assert!(
            alloc_check(512 << 10).is_none(),
            "exactly 1 MiB is still under"
        );
        match alloc_check(1) {
            Some(Fault::AllocFail { limit }) => assert_eq!(limit, 1 << 20),
            other => panic!("expected AllocFail, got {other:?}"),
        }
        assert!(alloc_check(1).is_some(), "stays tripped once crossed");
        // A different thread is out of scope.
        let off_thread = std::thread::spawn(|| alloc_check(1 << 30).is_none())
            .join()
            .expect("thread must not panic");
        assert!(off_thread);
    }

    #[test]
    fn clock_skew_applies_to_owner_thread_system_clocks_only() {
        let _guard = arm(plan("clock=skew:ms=50"));
        assert_eq!(clock_skew_ns(), 50_000_000);
        let off_thread = std::thread::spawn(clock_skew_ns)
            .join()
            .expect("thread must not panic");
        assert_eq!(off_thread, 0);
        let mock = crate::telemetry::Clock::mock();
        assert_eq!(mock.now_ns(), 0, "mock clocks are exempt from skew");
        let system = crate::telemetry::Clock::system();
        assert!(
            system.now_ns() >= 50_000_000,
            "system clock must include the skew"
        );
    }

    #[test]
    fn disarm_clears_every_site() {
        {
            let _guard = arm(plan("s.write=io_error,clock=skew:ms=10"));
            assert!(armed());
            assert!(check("s.write", 0).is_some());
        }
        assert!(!armed());
        assert!(check("s.write", 0).is_none());
        assert_eq!(clock_skew_ns(), 0);
    }

    #[test]
    fn rearming_replays_the_same_storm() {
        let run = || -> Vec<String> {
            let guard = arm(plan(
                "s.write=torn:prob=0.4:seed=11,s.rename=io_error:nth=2",
            ));
            for _ in 0..16 {
                let _ = check("s.write", 256);
                let _ = check("s.rename", 0);
            }
            guard.injection_log()
        };
        let a = run();
        assert_eq!(a, run(), "same plan + seed must replay the same log");
        assert!(!a.is_empty());
    }
}
