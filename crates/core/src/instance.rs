//! Correlation-clustering instances and distance oracles.
//!
//! A correlation-clustering instance is a complete weighted graph on `n`
//! objects with edge distances `X_uv ∈ [0, 1]` (Problem 2 in the paper).
//! When the instance is built from `m` input clusterings, `X_uv` is the
//! fraction of clusterings that place `u` and `v` in *different* clusters,
//! and the distances satisfy the triangle inequality.
//!
//! All aggregation algorithms are generic over [`DistanceOracle`], so they
//! run unchanged on:
//!
//! * [`DenseOracle`] — a precomputed condensed `n(n−1)/2` matrix
//!   (`O(1)` lookups, `O(n²)` memory), or
//! * [`ClusteringsOracle`] — on-the-fly computation from the `m` label
//!   vectors (`O(m)` lookups, `O(nm)` memory), which is what makes
//!   [`crate::algorithms::sampling`] scale to millions of objects.

use std::sync::Arc;

use crate::clustering::{Clustering, PartialClustering};
use crate::error::{AggError, AggResult};
use crate::kernels::{self, LabelMatrix};
use crate::robust::{Interrupt, MemCharge, RunBudget};

/// How a clustering with missing labels contributes to pairwise distances
/// (paper §2, "Missing values").
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MissingPolicy {
    /// Average the missing attribute out: only clusterings with labels on
    /// *both* objects vote, and `X_uv` is the fraction of *those* that
    /// separate the pair. A pair with no informative clustering at all gets
    /// distance ½ (maximum uncertainty).
    Ignore,
    /// The coin model adopted by the paper: a clustering missing a label on
    /// `u` or `v` reports the pair as co-clustered with probability `p` and
    /// separated with probability `1 − p`, independently per pair; we
    /// minimize the *expected* number of disagreements, so the clustering
    /// contributes `1 − p` to the pair's distance.
    Coin(f64),
}

impl MissingPolicy {
    /// Validating constructor for [`MissingPolicy::Coin`]: NaN and
    /// probabilities outside `[0, 1]` come back as typed errors instead of
    /// silently producing out-of-range distances downstream.
    pub fn try_coin(p: f64) -> AggResult<Self> {
        let policy = MissingPolicy::Coin(p);
        policy.validate()?;
        Ok(policy)
    }

    /// Check the policy's parameter domain. The single source of truth for
    /// every `try_` constructor that accepts a policy.
    pub fn validate(self) -> AggResult<()> {
        if let MissingPolicy::Coin(p) = self {
            if p.is_nan() {
                return Err(AggError::invalid_parameter(
                    "coin probability",
                    "must not be NaN",
                ));
            }
            if !(0.0..=1.0).contains(&p) {
                return Err(AggError::invalid_parameter(
                    "coin probability",
                    format!("{p} out of [0,1]"),
                ));
            }
        }
        Ok(())
    }
}

impl Default for MissingPolicy {
    /// The paper's choice: a fair coin (`p = ½`).
    fn default() -> Self {
        MissingPolicy::Coin(0.5)
    }
}

/// Read-only access to the pairwise distances `X_uv` of a
/// correlation-clustering instance.
///
/// Implementations must be symmetric (`dist(u, v) == dist(v, u)`), zero on
/// the diagonal, and return values in `[0, 1]`.
pub trait DistanceOracle {
    /// Number of objects `n`.
    fn len(&self) -> usize;

    /// Distance `X_uv` between two objects.
    fn dist(&self, u: usize, v: usize) -> f64;

    /// `true` if the instance has no objects.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of underlying input clusterings, when the instance was built
    /// by aggregation (used only for reporting).
    fn num_clusterings(&self) -> Option<usize> {
        None
    }

    /// Cache-block band width (in rows) that condensed fills over this
    /// oracle should use. Oracles backed by a packed [`LabelMatrix`]
    /// override this with the matrix's tier-tuned figure
    /// ([`LabelMatrix::preferred_band`]); anything else gets the generic
    /// default.
    fn preferred_band(&self) -> usize {
        kernels::PACKED_BAND
    }

    /// Materialize into a [`DenseOracle`] (no-op cost model for algorithms
    /// that touch all pairs anyway). Pairs are evaluated in parallel when
    /// the `parallel` feature is enabled.
    fn to_dense(&self) -> DenseOracle
    where
        Self: Sized + Sync,
    {
        DenseOracle::from_fn_sync(self.len(), |u, v| self.dist(u, v))
            .with_num_clusterings(self.num_clusterings())
    }

    /// Dense oracle restricted to a subset of the objects, renumbered
    /// `0..subset.len()`.
    fn restrict(&self, subset: &[usize]) -> DenseOracle
    where
        Self: Sized + Sync,
    {
        DenseOracle::from_fn_sync(subset.len(), |u, v| self.dist(subset[u], subset[v]))
            .with_num_clusterings(self.num_clusterings())
    }
}

/// Index into the condensed upper-triangle representation for `u < v`.
#[inline]
pub(crate) fn condensed_index(n: usize, u: usize, v: usize) -> usize {
    debug_assert!(u < v && v < n);
    u * (2 * n - u - 1) / 2 + (v - u - 1)
}

/// A precomputed symmetric distance matrix stored as a condensed
/// upper-triangle `Vec<f64>` of length `n(n−1)/2`.
#[derive(Clone, Debug)]
pub struct DenseOracle {
    n: usize,
    data: Vec<f64>,
    m: Option<usize>,
    // Keeps the matrix's bytes on the owning budget's MemGauge for as long
    // as the oracle lives; None for ungoverned constructions.
    charge: Option<Arc<MemCharge>>,
}

impl DenseOracle {
    /// Build from a distance function evaluated on every pair `u < v`,
    /// serially in `(u asc, v asc)` order. Kept for stateful `FnMut`
    /// closures; prefer [`DenseOracle::from_fn_sync`] for pure distance
    /// functions, which fills the triangle in parallel.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for u in 0..n {
            for v in (u + 1)..n {
                let d = f(u, v);
                debug_assert!((0.0..=1.0).contains(&d), "distance {d} out of [0,1]");
                data.push(d);
            }
        }
        DenseOracle {
            n,
            data,
            m: None,
            charge: None,
        }
    }

    /// Build from a pure distance function, filling the `n(n−1)/2` triangle
    /// in parallel row chunks (see [`crate::parallel`]). Produces exactly
    /// the same matrix as [`DenseOracle::from_fn`] at any thread count.
    pub fn from_fn_sync(n: usize, f: impl Fn(usize, usize) -> f64 + Sync) -> Self {
        let data = crate::parallel::fill_condensed(n, |u, v| {
            let d = f(u, v);
            debug_assert!((0.0..=1.0).contains(&d), "distance {d} out of [0,1]");
            d
        });
        DenseOracle {
            n,
            data,
            m: None,
            charge: None,
        }
    }

    /// Validating variant of [`DenseOracle::from_fn`]: every distance is
    /// checked to be finite and in `[0, 1]` — a real check, unlike the
    /// `debug_assert!` in the unchecked constructors — so corrupted inputs
    /// (NaN weights, out-of-range values) surface as typed errors instead
    /// of silently poisoning every downstream cost.
    pub fn try_from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> AggResult<Self> {
        let mut data = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for u in 0..n {
            for v in (u + 1)..n {
                let d = f(u, v);
                if !(0.0..=1.0).contains(&d) {
                    return Err(AggError::invalid_instance(format!(
                        "distance X[{u},{v}] = {d} out of [0,1]"
                    )));
                }
                data.push(d);
            }
        }
        Ok(DenseOracle {
            n,
            data,
            m: None,
            charge: None,
        })
    }

    /// Validating variant of [`DenseOracle::from_clusterings`]: empty input
    /// and mismatched object counts come back as typed errors instead of
    /// panics.
    pub fn try_from_clusterings(clusterings: &[Clustering]) -> AggResult<Self> {
        if clusterings.is_empty() {
            return Err(AggError::degenerate("need at least one input clustering"));
        }
        let n = clusterings[0].len();
        if let Some(bad) = clusterings.iter().find(|c| c.len() != n) {
            return Err(AggError::invalid_instance(format!(
                "input clusterings disagree on the object count: {} vs {}",
                n,
                bad.len()
            )));
        }
        Ok(DenseOracle::from_clusterings(clusterings))
    }

    /// Validating variant of [`DenseOracle::from_weighted_clusterings`]:
    /// length mismatches, NaN or negative weights, and an all-zero weight
    /// vector come back as typed errors instead of panics.
    pub fn try_from_weighted_clusterings(
        clusterings: &[Clustering],
        weights: &[f64],
    ) -> AggResult<Self> {
        if clusterings.is_empty() {
            return Err(AggError::degenerate("need at least one input clustering"));
        }
        if clusterings.len() != weights.len() {
            return Err(AggError::invalid_instance(format!(
                "{} clusterings but {} weights",
                clusterings.len(),
                weights.len()
            )));
        }
        if let Some(w) = weights.iter().find(|w| w.is_nan() || **w < 0.0) {
            return Err(AggError::invalid_instance(format!(
                "weight {w} is negative or NaN"
            )));
        }
        let total: f64 = weights.iter().sum();
        if !total.is_finite() || total <= 0.0 {
            return Err(AggError::invalid_instance(format!(
                "weights must sum to a positive finite value, got {total}"
            )));
        }
        let n = clusterings[0].len();
        if let Some(bad) = clusterings.iter().find(|c| c.len() != n) {
            return Err(AggError::invalid_instance(format!(
                "input clusterings disagree on the object count: {} vs {}",
                n,
                bad.len()
            )));
        }
        Ok(DenseOracle::from_weighted_clusterings(clusterings, weights))
    }

    /// Build directly from total clusterings: `X_uv` is the fraction of
    /// clusterings separating `u` and `v`.
    ///
    /// The inputs are transposed once into a packed [`LabelMatrix`] and
    /// every pair is answered by the SWAR separation kernel
    /// ([`crate::kernels`]), filled in cache-blocked bands — same values
    /// as the scalar per-clustering walk, at a fraction of the memory
    /// traffic.
    pub fn from_clusterings(clusterings: &[Clustering]) -> Self {
        assert!(!clusterings.is_empty(), "need at least one clustering");
        let n = clusterings[0].len();
        assert!(
            clusterings.iter().all(|c| c.len() == n),
            "all clusterings must cover the same objects"
        );
        let _span = crate::span!("dense_build", n = n, m = clusterings.len());
        let m = clusterings.len() as f64;
        let matrix = LabelMatrix::from_total(clusterings);
        let band = matrix.preferred_band();
        // One scratch count buffer per worker job, reused across every row
        // segment it fills (the `kernels_row_batches` counter tracks how
        // many batches share each buffer).
        let data = crate::parallel::fill_condensed_banded_rows_scratch(
            n,
            band,
            || vec![0u32; band],
            |counts: &mut Vec<u32>, u, vs, seg| {
                let counts = &mut counts[..seg.len()];
                matrix.sep_row_into(u, vs.start, counts);
                for (entry, &c) in seg.iter_mut().zip(counts.iter()) {
                    let d = c as f64 / m;
                    debug_assert!((0.0..=1.0).contains(&d), "distance {d} out of [0,1]");
                    *entry = d;
                }
            },
        );
        crate::telemetry::count_packed_evals((n * n.saturating_sub(1) / 2) as u64);
        DenseOracle {
            n,
            data,
            m: Some(clusterings.len()),
            charge: None,
        }
    }

    /// Build from *weighted* clusterings: `X_uv` is the weight fraction of
    /// clusterings separating `u` and `v` — the natural generalization
    /// where some inputs are more trusted than others (e.g. a clustering
    /// algorithm run with better-validated parameters). Weights must be
    /// non-negative with a positive sum; the resulting distances still
    /// satisfy the triangle inequality.
    ///
    /// The distance is computed in its canonical grouped form
    /// `Σ_g w_g · sep_g / Σ w` over equal-weight groups in
    /// first-appearance order ([`kernels::weight_groups`]): groups of at
    /// least [`kernels::MIN_PACKED_GROUP`] clusterings become packed SWAR
    /// blocks, smaller groups stay on a scalar tail (counted by the
    /// `kernels_fallback_scalar` metric).
    ///
    /// # Panics
    /// Panics on length mismatch, NaN or negative weights, or all-zero
    /// weights (same wording as the errors of
    /// [`DenseOracle::try_from_weighted_clusterings`]).
    pub fn from_weighted_clusterings(clusterings: &[Clustering], weights: &[f64]) -> Self {
        assert_eq!(
            clusterings.len(),
            weights.len(),
            "one weight per clustering required"
        );
        assert!(!clusterings.is_empty(), "need at least one clustering");
        let bad = weights.iter().find(|w| w.is_nan() || **w < 0.0);
        assert!(
            bad.is_none(),
            "weight {} is negative or NaN",
            bad.copied().unwrap_or(f64::NAN)
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let n = clusterings[0].len();
        assert!(
            clusterings.iter().all(|c| c.len() == n),
            "all clusterings must cover the same objects"
        );
        let _span = crate::span!("dense_build", n = n, m = clusterings.len());
        enum Block {
            Packed(f64, LabelMatrix),
            Scalar(f64, Vec<usize>),
        }
        let blocks: Vec<Block> = kernels::weight_groups(weights)
            .into_iter()
            .map(|(w, members)| {
                if members.len() >= kernels::MIN_PACKED_GROUP {
                    Block::Packed(w, LabelMatrix::from_total_indexed(clusterings, &members))
                } else {
                    Block::Scalar(w, members)
                }
            })
            .collect();
        let tail_members: usize = blocks
            .iter()
            .map(|b| match b {
                Block::Scalar(_, ms) => ms.len(),
                Block::Packed(..) => 0,
            })
            .sum();
        // The tightest preferred band across the packed blocks keeps the
        // widest block's stripe L1-resident; scalar-only inputs fall back
        // to the default.
        let band = blocks
            .iter()
            .filter_map(|b| match b {
                Block::Packed(_, matrix) => Some(matrix.preferred_band()),
                Block::Scalar(..) => None,
            })
            .min()
            .unwrap_or(kernels::PACKED_BAND);
        let data = crate::parallel::fill_condensed_banded_rows_scratch(
            n,
            band,
            || vec![0u32; band],
            |counts: &mut Vec<u32>, u, vs, seg| {
                let counts = &mut counts[..seg.len()];
                seg.fill(0.0);
                // Blocks accumulate in first-appearance order — the canonical
                // op order shared with `kernels::reference::xuv_weighted`.
                for block in &blocks {
                    match block {
                        Block::Packed(w, matrix) => {
                            matrix.sep_row_into(u, vs.start, counts);
                            for (entry, &c) in seg.iter_mut().zip(counts.iter()) {
                                *entry += w * c as f64;
                            }
                        }
                        Block::Scalar(w, members) => {
                            for (entry, v) in seg.iter_mut().zip(vs.clone()) {
                                let sep = members
                                    .iter()
                                    .filter(|&&i| !clusterings[i].same_cluster(u, v))
                                    .count();
                                *entry += w * sep as f64;
                            }
                        }
                    }
                }
                for entry in seg.iter_mut() {
                    *entry /= total;
                    debug_assert!((0.0..=1.0).contains(entry), "distance {entry} out of [0,1]");
                }
            },
        );
        let pairs = (n * n.saturating_sub(1) / 2) as u64;
        if tail_members < clusterings.len() {
            crate::telemetry::count_packed_evals(pairs);
        }
        if tail_members > 0 {
            crate::telemetry::count_scalar_fallback(pairs * tail_members as u64);
        }
        DenseOracle {
            n,
            data,
            m: Some(clusterings.len()),
            charge: None,
        }
    }

    /// Tag the oracle with the number of source clusterings.
    pub fn with_num_clusterings(mut self, m: Option<usize>) -> Self {
        self.m = m;
        self
    }

    /// Bytes this oracle holds against a budget's
    /// [`crate::robust::MemGauge`], when it was built through a governed
    /// path ([`CorrelationInstance::try_dense_oracle`]).
    pub fn mem_charge_bytes(&self) -> Option<u64> {
        self.charge.as_ref().map(|c| c.bytes())
    }

    /// Mutable access to one entry (test/bench construction helper).
    ///
    /// # Panics
    /// Panics if `u == v`.
    pub fn set(&mut self, u: usize, v: usize, d: f64) {
        assert_ne!(u, v, "diagonal is fixed at zero");
        assert!((0.0..=1.0).contains(&d), "distance {d} out of [0,1]");
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        let idx = condensed_index(self.n, a, b);
        self.data[idx] = d;
    }

    /// Sum of distances from `u` to every other object (the vertex weight
    /// used by the BALLS ordering).
    pub fn total_weight(&self, u: usize) -> f64 {
        (0..self.n)
            .filter(|&v| v != u)
            .map(|v| self.dist(u, v))
            .sum()
    }
}

impl DistanceOracle for DenseOracle {
    #[inline]
    fn len(&self) -> usize {
        self.n
    }

    #[inline]
    fn dist(&self, u: usize, v: usize) -> f64 {
        // Gated dense-hit counter: a relaxed load and an untaken branch
        // when metrics are off, keeping the O(1) lookup hot path intact.
        crate::telemetry::count_dense_evals(1);
        if u == v {
            return 0.0;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.data[condensed_index(self.n, a, b)]
    }

    fn num_clusterings(&self) -> Option<usize> {
        self.m
    }
}

/// Lazy oracle computing `X_uv` from the input clusterings on each call,
/// honoring a [`MissingPolicy`] for partial clusterings.
///
/// Lookup is `O(m)`; memory is `O(nm)` — suitable for the SAMPLING
/// algorithm on large datasets where only a sparse set of pairs is ever
/// queried. Lookups are served by the packed SWAR kernels
/// ([`crate::kernels`]): construction transposes the inputs into a
/// [`LabelMatrix`] once, and each `dist` call XOR-scans two label rows
/// instead of chasing `m` separate label vectors.
#[derive(Clone, Debug)]
pub struct ClusteringsOracle {
    clusterings: Vec<PartialClustering>,
    n: usize,
    policy: MissingPolicy,
    packed: LabelMatrix,
}

impl ClusteringsOracle {
    /// Build from partial clusterings with the given missing-value policy.
    pub fn new(clusterings: Vec<PartialClustering>, policy: MissingPolicy) -> Self {
        assert!(!clusterings.is_empty(), "need at least one clustering");
        let n = clusterings[0].len();
        assert!(
            clusterings.iter().all(|c| c.len() == n),
            "all clusterings must cover the same objects"
        );
        if let MissingPolicy::Coin(p) = policy {
            assert!(
                (0.0..=1.0).contains(&p),
                "coin probability {p} out of [0,1]"
            );
        }
        let packed = LabelMatrix::from_partial(&clusterings);
        ClusteringsOracle {
            clusterings,
            n,
            policy,
            packed,
        }
    }

    /// Validating variant of [`ClusteringsOracle::new`]: empty input,
    /// mismatched object counts, and an out-of-range coin probability come
    /// back as typed errors instead of panics.
    pub fn try_new(clusterings: Vec<PartialClustering>, policy: MissingPolicy) -> AggResult<Self> {
        if clusterings.is_empty() {
            return Err(AggError::degenerate("need at least one input clustering"));
        }
        let n = clusterings[0].len();
        if let Some(bad) = clusterings.iter().find(|c| c.len() != n) {
            return Err(AggError::invalid_instance(format!(
                "input clusterings disagree on the object count: {} vs {}",
                n,
                bad.len()
            )));
        }
        policy.validate()?;
        let packed = LabelMatrix::from_partial(&clusterings);
        Ok(ClusteringsOracle {
            clusterings,
            n,
            policy,
            packed,
        })
    }

    /// Build from total clusterings (no missing labels).
    pub fn from_total(clusterings: &[Clustering]) -> Self {
        ClusteringsOracle::new(
            clusterings
                .iter()
                .map(PartialClustering::from_total)
                .collect(),
            MissingPolicy::default(),
        )
    }

    /// The input clusterings.
    pub fn clusterings(&self) -> &[PartialClustering] {
        &self.clusterings
    }

    /// The missing-value policy in effect.
    pub fn policy(&self) -> MissingPolicy {
        self.policy
    }

    /// The packed label matrix serving this oracle's lookups.
    pub fn packed(&self) -> &LabelMatrix {
        &self.packed
    }

    /// Heap bytes held by the packed label matrix (charged against the
    /// budget's [`crate::robust::MemGauge`] on governed paths).
    pub fn packed_bytes(&self) -> u64 {
        self.packed.bytes()
    }
}

impl DistanceOracle for ClusteringsOracle {
    #[inline]
    fn len(&self) -> usize {
        self.n
    }

    fn dist(&self, u: usize, v: usize) -> f64 {
        // Each lazy lookup is an O(m) recomputation — the quantity the
        // SAMPLING scaling claim is measured in. It is served by the
        // packed kernel, so it also counts as a packed evaluation.
        crate::telemetry::count_lazy_evals(1);
        if u == v {
            return 0.0;
        }
        crate::telemetry::count_packed_evals(1);
        let (sep, missing) = self.packed.sep_missing(u, v);
        match self.policy {
            MissingPolicy::Ignore => {
                let defined = self.clusterings.len() - missing as usize;
                if defined == 0 {
                    0.5
                } else {
                    f64::from(sep) / defined as f64
                }
            }
            // A clustering missing a label on either side separates the
            // pair with probability 1 − p; the expected separation count
            // is accumulated in closed form (the canonical shape shared
            // with `kernels::reference::xuv_partial`).
            MissingPolicy::Coin(p) => {
                (f64::from(sep) + f64::from(missing) * (1.0 - p)) / self.clusterings.len() as f64
            }
        }
    }

    fn num_clusterings(&self) -> Option<usize> {
        Some(self.clusterings.len())
    }

    fn preferred_band(&self) -> usize {
        self.packed.preferred_band()
    }
}

/// A correlation-clustering instance built from input clusterings — the
/// bridge between Problem 1 (clustering aggregation) and Problem 2
/// (correlation clustering).
///
/// Holds the inputs and hands out either oracle flavor.
#[derive(Clone, Debug)]
pub struct CorrelationInstance {
    inputs: Vec<PartialClustering>,
    policy: MissingPolicy,
    n: usize,
}

impl CorrelationInstance {
    /// Build from total clusterings.
    pub fn from_clusterings(inputs: &[Clustering]) -> Self {
        Self::from_partial(
            inputs.iter().map(PartialClustering::from_total).collect(),
            MissingPolicy::default(),
        )
    }

    /// Build from partial clusterings with an explicit missing-value policy.
    pub fn from_partial(inputs: Vec<PartialClustering>, policy: MissingPolicy) -> Self {
        assert!(!inputs.is_empty(), "need at least one clustering");
        let n = inputs[0].len();
        assert!(
            inputs.iter().all(|c| c.len() == n),
            "all clusterings must cover the same objects"
        );
        CorrelationInstance { inputs, policy, n }
    }

    /// Validating variant of [`CorrelationInstance::from_partial`]: empty
    /// input, mismatched object counts, an out-of-range coin probability,
    /// and inputs whose labels are missing *everywhere* (no pair carries
    /// any information, so no consensus is defined) come back as typed
    /// errors instead of panics or garbage.
    pub fn try_from_partial(
        inputs: Vec<PartialClustering>,
        policy: MissingPolicy,
    ) -> AggResult<Self> {
        if inputs.is_empty() {
            return Err(AggError::degenerate("need at least one input clustering"));
        }
        let n = inputs[0].len();
        if let Some(bad) = inputs.iter().find(|c| c.len() != n) {
            return Err(AggError::invalid_instance(format!(
                "input clusterings disagree on the object count: {} vs {}",
                n,
                bad.len()
            )));
        }
        policy.validate()?;
        if n > 0 && inputs.iter().all(|c| c.num_missing() == c.len()) {
            return Err(AggError::degenerate(
                "every label is missing in every input clustering",
            ));
        }
        Ok(CorrelationInstance { inputs, policy, n })
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if there are no objects.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of input clusterings `m`.
    pub fn num_clusterings(&self) -> usize {
        self.inputs.len()
    }

    /// The input clusterings.
    pub fn inputs(&self) -> &[PartialClustering] {
        &self.inputs
    }

    /// `true` when every input labels every object: with no missing lanes
    /// anywhere, `X_uv` reduces to `sep / m` under either
    /// [`MissingPolicy`] ([`MissingPolicy::Ignore`]: `defined == m`;
    /// [`MissingPolicy::Coin`]: `missing == 0` contributes exactly
    /// `+0.0`), bit-for-bit — which lets the dense fills use the batched
    /// row kernel instead of per-pair `sep_missing`.
    pub(crate) fn all_total(&self) -> bool {
        self.inputs.iter().all(|c| c.num_missing() == 0)
    }

    /// Precompute the full distance matrix (`O(n² m)` time, `O(n²)` space).
    /// Pairs are served by the packed lazy oracle and filled in
    /// cache-blocked bands — same values as a row-major scalar fill.
    /// All-total inputs go through the batched `sep_row_into` kernel
    /// (one scratch buffer per worker, counted by `kernels_row_batches`);
    /// genuinely partial inputs stay on the per-pair `sep_missing` path.
    pub fn dense_oracle(&self) -> DenseOracle {
        let _span = crate::span!("dense_build", n = self.n, m = self.inputs.len());
        let lazy = self.lazy_oracle();
        let band = lazy.preferred_band();
        let data = if self.all_total() {
            let m = self.inputs.len() as f64;
            let matrix = lazy.packed();
            let data = crate::parallel::fill_condensed_banded_rows_scratch(
                self.n,
                band,
                || vec![0u32; band],
                |counts: &mut Vec<u32>, u, vs, seg| {
                    let counts = &mut counts[..seg.len()];
                    matrix.sep_row_into(u, vs.start, counts);
                    for (entry, &c) in seg.iter_mut().zip(counts.iter()) {
                        *entry = f64::from(c) / m;
                    }
                },
            );
            crate::telemetry::count_packed_evals((self.n * self.n.saturating_sub(1) / 2) as u64);
            data
        } else {
            crate::parallel::fill_condensed_banded(self.n, band, |u, v| lazy.dist(u, v))
        };
        DenseOracle {
            n: self.n,
            data,
            m: Some(self.inputs.len()),
            charge: None,
        }
    }

    /// A lazy per-pair oracle (`O(m)` per lookup).
    pub fn lazy_oracle(&self) -> ClusteringsOracle {
        ClusteringsOracle::new(self.inputs.clone(), self.policy)
    }

    /// The bytes [`CorrelationInstance::try_dense_oracle`] would need for
    /// this instance's condensed `n(n−1)/2` matrix.
    pub fn dense_bytes(&self) -> u64 {
        (self.n as u64) * (self.n.saturating_sub(1) as u64) / 2 * 8
    }

    /// Budgeted variant of [`CorrelationInstance::dense_oracle`]: the
    /// `O(n²)` allocation is reserved against the budget's memory cap
    /// first — [`Interrupt::MemoryExceeded`] if it does not fit, letting
    /// the caller degrade to the `O(nm)` lazy oracle — and the `O(n² m)`
    /// fill then polls `budget` between row chunks and reports the
    /// interrupt instead of blowing through a deadline on a large instance.
    /// The returned oracle holds its memory charge for as long as it lives.
    pub fn try_dense_oracle(&self, budget: &RunBudget) -> Result<DenseOracle, Interrupt> {
        let _span = crate::span!("dense_build", n = self.n, m = self.inputs.len());
        let charge = budget.try_reserve(self.dense_bytes())?;
        let lazy = self.lazy_oracle();
        // The packed label matrix is transient scratch for the fill:
        // observe it on the gauge (high-water accounting) for the fill's
        // duration without holding it against the cap afterwards.
        let packed_charge = budget.mem_gauge().charge(lazy.packed_bytes());
        let band = lazy.preferred_band();
        // Same all-total batching split as [`CorrelationInstance::
        // dense_oracle`], threaded through the budget-polling fills.
        let data = if self.all_total() {
            let m = self.inputs.len() as f64;
            let matrix = lazy.packed();
            let data = crate::parallel::try_fill_condensed_banded_rows_scratch(
                self.n,
                band,
                || vec![0u32; band],
                |counts: &mut Vec<u32>, u, vs, seg| {
                    let counts = &mut counts[..seg.len()];
                    matrix.sep_row_into(u, vs.start, counts);
                    for (entry, &c) in seg.iter_mut().zip(counts.iter()) {
                        *entry = f64::from(c) / m;
                    }
                },
                budget,
            )?;
            crate::telemetry::count_packed_evals((self.n * self.n.saturating_sub(1) / 2) as u64);
            data
        } else {
            crate::parallel::try_fill_condensed_banded(
                self.n,
                band,
                |u, v| lazy.dist(u, v),
                budget,
            )?
        };
        drop(packed_charge);
        Ok(DenseOracle {
            n: self.n,
            data,
            m: Some(self.inputs.len()),
            charge: Some(Arc::new(charge)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(labels: &[u32]) -> Clustering {
        Clustering::from_labels(labels.to_vec())
    }

    /// The three clusterings of Figure 1.
    fn figure1() -> Vec<Clustering> {
        vec![
            c(&[0, 0, 1, 1, 2, 2]),
            c(&[0, 1, 0, 1, 2, 3]),
            c(&[0, 1, 0, 1, 2, 2]),
        ]
    }

    #[test]
    fn figure2_distances() {
        // Figure 2: solid edges = 1/3, dashed = 2/3, dotted = 1.
        let oracle = DenseOracle::from_clusterings(&figure1());
        let third = 1.0 / 3.0;
        // v1–v3, v2–v4, v5–v6 are solid (1/3).
        assert!((oracle.dist(0, 2) - third).abs() < 1e-12);
        assert!((oracle.dist(1, 3) - third).abs() < 1e-12);
        assert!((oracle.dist(4, 5) - third).abs() < 1e-12);
        // v1–v2, v3–v4 are dashed (2/3).
        assert!((oracle.dist(0, 1) - 2.0 * third).abs() < 1e-12);
        assert!((oracle.dist(2, 3) - 2.0 * third).abs() < 1e-12);
        // v1–v4 crosses all clusterings (1).
        assert!((oracle.dist(0, 3) - 1.0).abs() < 1e-12);
        assert_eq!(oracle.num_clusterings(), Some(3));
    }

    #[test]
    fn dense_and_lazy_agree() {
        let cs = figure1();
        let dense = DenseOracle::from_clusterings(&cs);
        let lazy = ClusteringsOracle::from_total(&cs);
        for u in 0..6 {
            for v in 0..6 {
                assert!((dense.dist(u, v) - lazy.dist(u, v)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn oracle_symmetry_and_diagonal() {
        let oracle = DenseOracle::from_clusterings(&figure1());
        for u in 0..6 {
            assert_eq!(oracle.dist(u, u), 0.0);
            for v in 0..6 {
                assert_eq!(oracle.dist(u, v), oracle.dist(v, u));
            }
        }
    }

    #[test]
    fn triangle_inequality_of_xuv() {
        let oracle = DenseOracle::from_clusterings(&figure1());
        for u in 0..6 {
            for v in 0..6 {
                for w in 0..6 {
                    assert!(oracle.dist(u, w) <= oracle.dist(u, v) + oracle.dist(v, w) + 1e-12);
                }
            }
        }
    }

    #[test]
    fn restrict_renumbers() {
        let oracle = DenseOracle::from_clusterings(&figure1());
        let sub = oracle.restrict(&[0, 3, 5]);
        assert_eq!(sub.len(), 3);
        assert!((sub.dist(0, 1) - oracle.dist(0, 3)).abs() < 1e-12);
        assert!((sub.dist(1, 2) - oracle.dist(3, 5)).abs() < 1e-12);
    }

    #[test]
    fn missing_policy_ignore() {
        // Two clusterings; the second is missing on object 1.
        let p1 = PartialClustering::from_labels(vec![Some(0), Some(0), Some(1)]);
        let p2 = PartialClustering::from_labels(vec![Some(0), None, Some(0)]);
        let o = ClusteringsOracle::new(vec![p1, p2], MissingPolicy::Ignore);
        // Pair (0,1): only clustering 1 is informative, it co-clusters.
        assert_eq!(o.dist(0, 1), 0.0);
        // Pair (0,2): both informative; c1 separates, c2 joins.
        assert_eq!(o.dist(0, 2), 0.5);
    }

    #[test]
    fn missing_policy_ignore_no_information() {
        let p1 = PartialClustering::from_labels(vec![None, Some(0)]);
        let p2 = PartialClustering::from_labels(vec![Some(0), None]);
        let o = ClusteringsOracle::new(vec![p1, p2], MissingPolicy::Ignore);
        assert_eq!(o.dist(0, 1), 0.5);
    }

    #[test]
    fn missing_policy_coin() {
        let p1 = PartialClustering::from_labels(vec![Some(0), Some(0), Some(1)]);
        let p2 = PartialClustering::from_labels(vec![Some(0), None, Some(0)]);
        let o = ClusteringsOracle::new(vec![p1.clone(), p2.clone()], MissingPolicy::Coin(0.5));
        // Pair (0,1): c1 joins (0), c2 missing (expected 0.5) → X = 0.25.
        assert!((o.dist(0, 1) - 0.25).abs() < 1e-12);
        // With p = 1 the coin always reports "together": X = 0.
        let o1 = ClusteringsOracle::new(vec![p1, p2], MissingPolicy::Coin(1.0));
        assert_eq!(o1.dist(0, 1), 0.0);
    }

    #[test]
    fn instance_round_trip() {
        let inst = CorrelationInstance::from_clusterings(&figure1());
        assert_eq!(inst.len(), 6);
        assert_eq!(inst.num_clusterings(), 3);
        let dense = inst.dense_oracle();
        let lazy = inst.lazy_oracle();
        for u in 0..6 {
            for v in 0..6 {
                assert!((dense.dist(u, v) - lazy.dist(u, v)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn total_weight() {
        let oracle = DenseOracle::from_clusterings(&figure1());
        let w0: f64 = (1..6).map(|v| oracle.dist(0, v)).sum();
        assert!((oracle.total_weight(0) - w0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "same objects")]
    fn mismatched_lengths_rejected() {
        let _ = DenseOracle::from_clusterings(&[c(&[0, 1]), c(&[0, 1, 2])]);
    }

    #[test]
    fn uniform_weights_match_unweighted() {
        let cs = figure1();
        let unweighted = DenseOracle::from_clusterings(&cs);
        let weighted = DenseOracle::from_weighted_clusterings(&cs, &[2.0, 2.0, 2.0]);
        for u in 0..6 {
            for v in 0..6 {
                assert!((unweighted.dist(u, v) - weighted.dist(u, v)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn integer_weights_equal_repetition() {
        let cs = figure1();
        let weighted = DenseOracle::from_weighted_clusterings(&cs, &[2.0, 1.0, 1.0]);
        let repeated = DenseOracle::from_clusterings(&[
            cs[0].clone(),
            cs[0].clone(),
            cs[1].clone(),
            cs[2].clone(),
        ]);
        for u in 0..6 {
            for v in 0..6 {
                assert!((weighted.dist(u, v) - repeated.dist(u, v)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn zero_weight_excludes_a_clustering() {
        let cs = figure1();
        let weighted = DenseOracle::from_weighted_clusterings(&cs, &[0.0, 1.0, 1.0]);
        let reduced = DenseOracle::from_clusterings(&cs[1..]);
        for u in 0..6 {
            for v in 0..6 {
                assert!((weighted.dist(u, v) - reduced.dist(u, v)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn weighted_triangle_inequality() {
        let cs = figure1();
        let oracle = DenseOracle::from_weighted_clusterings(&cs, &[0.5, 2.5, 1.0]);
        for u in 0..6 {
            for v in 0..6 {
                for w in 0..6 {
                    assert!(oracle.dist(u, w) <= oracle.dist(u, v) + oracle.dist(v, w) + 1e-12);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive value")]
    fn all_zero_weights_rejected() {
        let _ = DenseOracle::from_weighted_clusterings(&figure1(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "weight NaN is negative or NaN")]
    fn nan_weight_rejected_with_try_wording() {
        let _ = DenseOracle::from_weighted_clusterings(&figure1(), &[1.0, f64::NAN, 1.0]);
    }

    #[test]
    #[should_panic(expected = "weight -2 is negative or NaN")]
    fn negative_weight_rejected_with_try_wording() {
        let _ = DenseOracle::from_weighted_clusterings(&figure1(), &[1.0, -2.0, 1.0]);
    }

    #[test]
    fn try_from_fn_rejects_out_of_range_and_nan() {
        assert!(DenseOracle::try_from_fn(3, |_, _| 0.5).is_ok());
        let too_big = DenseOracle::try_from_fn(3, |_, _| 1.5);
        assert!(matches!(too_big, Err(AggError::InvalidInstance { .. })));
        let nan = DenseOracle::try_from_fn(3, |_, _| f64::NAN);
        assert!(matches!(nan, Err(AggError::InvalidInstance { .. })));
    }

    #[test]
    fn try_from_clusterings_validates() {
        assert!(DenseOracle::try_from_clusterings(&figure1()).is_ok());
        assert!(matches!(
            DenseOracle::try_from_clusterings(&[]),
            Err(AggError::Degenerate { .. })
        ));
        let mismatched = vec![c(&[0, 0, 1]), c(&[0, 1])];
        assert!(matches!(
            DenseOracle::try_from_clusterings(&mismatched),
            Err(AggError::InvalidInstance { .. })
        ));
    }

    #[test]
    fn try_from_weighted_clusterings_validates() {
        let cs = figure1();
        assert!(DenseOracle::try_from_weighted_clusterings(&cs, &[1.0, 2.0, 3.0]).is_ok());
        assert!(matches!(
            DenseOracle::try_from_weighted_clusterings(&cs, &[1.0, 2.0]),
            Err(AggError::InvalidInstance { .. })
        ));
        assert!(matches!(
            DenseOracle::try_from_weighted_clusterings(&cs, &[1.0, -1.0, 1.0]),
            Err(AggError::InvalidInstance { .. })
        ));
        assert!(matches!(
            DenseOracle::try_from_weighted_clusterings(&cs, &[1.0, f64::NAN, 1.0]),
            Err(AggError::InvalidInstance { .. })
        ));
        assert!(matches!(
            DenseOracle::try_from_weighted_clusterings(&cs, &[0.0, 0.0, 0.0]),
            Err(AggError::InvalidInstance { .. })
        ));
    }

    #[test]
    fn try_from_partial_validates() {
        let good: Vec<PartialClustering> = figure1()
            .iter()
            .map(PartialClustering::from_total)
            .collect();
        assert!(CorrelationInstance::try_from_partial(good, MissingPolicy::Ignore).is_ok());
        assert!(matches!(
            CorrelationInstance::try_from_partial(vec![], MissingPolicy::Ignore),
            Err(AggError::Degenerate { .. })
        ));
        let all_missing = vec![PartialClustering::from_labels(vec![None, None, None])];
        assert!(matches!(
            CorrelationInstance::try_from_partial(all_missing, MissingPolicy::Ignore),
            Err(AggError::Degenerate { .. })
        ));
        let bad_coin = vec![PartialClustering::from_total(&c(&[0, 1]))];
        assert!(matches!(
            CorrelationInstance::try_from_partial(bad_coin, MissingPolicy::Coin(1.5)),
            Err(AggError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn try_dense_oracle_matches_dense_when_unlimited() {
        let instance = CorrelationInstance::from_clusterings(&figure1());
        let dense = instance.dense_oracle();
        let tried = instance.try_dense_oracle(&RunBudget::unlimited()).unwrap();
        for u in 0..6 {
            for v in 0..6 {
                assert!((dense.dist(u, v) - tried.dist(u, v)).abs() < 1e-12);
            }
        }
        assert_eq!(tried.num_clusterings(), Some(3));
    }

    #[test]
    fn try_dense_oracle_reports_cancellation() {
        let instance = CorrelationInstance::from_clusterings(&figure1());
        let token = crate::robust::CancelToken::new();
        token.cancel();
        let budget = RunBudget::unlimited().with_cancel_token(token);
        assert!(instance.try_dense_oracle(&budget).is_err());
    }

    #[test]
    fn try_coin_validates_nan_and_range() {
        assert!(MissingPolicy::try_coin(0.0).is_ok());
        assert!(MissingPolicy::try_coin(1.0).is_ok());
        for bad in [f64::NAN, -0.1, 1.1, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(
                matches!(
                    MissingPolicy::try_coin(bad),
                    Err(AggError::InvalidParameter { .. })
                ),
                "coin {bad} should be rejected"
            );
        }
        let inputs = vec![PartialClustering::from_total(&c(&[0, 1]))];
        assert!(matches!(
            CorrelationInstance::try_from_partial(inputs.clone(), MissingPolicy::Coin(f64::NAN)),
            Err(AggError::InvalidParameter { .. })
        ));
        assert!(matches!(
            ClusteringsOracle::try_new(inputs, MissingPolicy::Coin(f64::NAN)),
            Err(AggError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn try_dense_oracle_refuses_over_the_memory_cap() {
        let instance = CorrelationInstance::from_clusterings(&figure1());
        // 6 objects → 15 pairs → 120 bytes; cap below that refuses.
        assert_eq!(instance.dense_bytes(), 120);
        let tight = RunBudget::unlimited().with_mem_limit_bytes(119);
        match instance.try_dense_oracle(&tight) {
            Err(Interrupt::MemoryExceeded { requested, limit }) => {
                assert_eq!(requested, 120);
                assert_eq!(limit, 119);
            }
            other => panic!("expected MemoryExceeded, got {other:?}"),
        }
        // Nothing stays charged after a refusal.
        assert_eq!(tight.mem_gauge().used_bytes(), 0);

        // A cap with room admits the matrix and holds the charge while the
        // oracle lives.
        let roomy = RunBudget::unlimited().with_mem_limit_bytes(200);
        let built = instance.try_dense_oracle(&roomy).expect("fits");
        assert_eq!(built.mem_charge_bytes(), Some(120));
        assert_eq!(roomy.mem_gauge().used_bytes(), 120);
        drop(built);
        assert_eq!(roomy.mem_gauge().used_bytes(), 0);
    }
}
