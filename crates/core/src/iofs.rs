//! The instrumented filesystem facade: every filesystem touch in the
//! crate (and the CLI) goes through here, tagged with a
//! [`crate::failpoint`] site name.
//!
//! Centralizing the `std::fs` surface buys two things:
//!
//! 1. **Totality of injection sites.** A fault plan like
//!    `snapshot.rename=io_error:nth=3` can only be trusted to cover
//!    *every* rename if no caller bypasses the facade —
//!    `ci/panic-lint.sh` enforces that bare `std::fs::` calls are
//!    illegal in non-test core/CLI code outside this module.
//! 2. **One durability idiom.** [`write_file_atomic`] (write to
//!    `path.tmp`, fsync, rename over, fsync the directory, *remove the
//!    temp file on any failure*) is the single atomic-publish routine
//!    used by checkpoints and spill tiles, each step an injection site:
//!    `{prefix}.create`, `{prefix}.write`, `{prefix}.fsync`,
//!    `{prefix}.rename`.
//!
//! Site catalog (see `DESIGN.md` §6i): `snapshot.{create,write,fsync,
//! rename}` and `snapshot.read` (checkpoints), `spill.{create,write,
//! fsync,rename}`, `spill.create_dir`, `spill.read`, `spill.cleanup`
//! (tile store), `trace.create` (the `--trace-out` sink), `cli.input`,
//! `cli.candidate`, `cli.output`, `cli.metrics`, `cli.cleanup` (the
//! command-line frontend), plus the virtual `clock` and `alloc` sites
//! handled by [`crate::telemetry::Clock`] and
//! [`crate::robust::ResourceBudget`].
//!
//! Torn faults (`kind=torn`) are *silent*: the write stops at a seeded
//! cut but reports success, so the CRC-framed formats must detect the
//! truncation at read time — exactly the contract the corruption suites
//! assert. Reads under a torn clause hand back a truncated payload the
//! same way.

use crate::failpoint::{self, Fault};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Convert a fault into the error that fails the current step. Torn and
/// alloc faults make no sense for a non-write step; they fail it with the
/// generic injected error rather than being silently dropped.
fn deny(fault: Fault) -> io::Error {
    match fault {
        Fault::Io(e) => e,
        Fault::Torn { .. } | Fault::AllocFail { .. } => {
            io::Error::other("injected fault (failpoint)")
        }
    }
}

/// [`std::fs::read`] behind the `site` failpoint. A torn clause truncates
/// the returned bytes at the seeded cut (a short read the checksums must
/// catch); an I/O clause fails the read.
pub fn read(site: &str, path: &Path) -> io::Result<Vec<u8>> {
    let mut data = fs::read(path)?;
    match failpoint::check_path(site, path, data.len()) {
        None => Ok(data),
        Some(Fault::Torn { cut }) => {
            data.truncate(cut);
            Ok(data)
        }
        Some(fault) => Err(deny(fault)),
    }
}

/// [`std::fs::read_to_string`] behind the `site` failpoint. Torn clauses
/// truncate at the seeded cut, rounded down to a char boundary.
pub fn read_to_string(site: &str, path: &Path) -> io::Result<String> {
    let mut text = fs::read_to_string(path)?;
    match failpoint::check_path(site, path, text.len()) {
        None => Ok(text),
        Some(Fault::Torn { mut cut }) => {
            while !text.is_char_boundary(cut) {
                cut -= 1;
            }
            text.truncate(cut);
            Ok(text)
        }
        Some(fault) => Err(deny(fault)),
    }
}

/// [`std::fs::write`] behind the `site` failpoint (the CLI's plain,
/// non-atomic outputs). A torn clause silently truncates the write.
pub fn write(site: &str, path: &Path, contents: impl AsRef<[u8]>) -> io::Result<()> {
    let bytes = contents.as_ref();
    match failpoint::check_path(site, path, bytes.len()) {
        None => fs::write(path, bytes),
        Some(Fault::Torn { cut }) => fs::write(path, &bytes[..cut]),
        Some(fault) => Err(deny(fault)),
    }
}

/// [`std::fs::File::create`] behind the `site` failpoint.
pub fn create(site: &str, path: &Path) -> io::Result<fs::File> {
    if let Some(fault) = failpoint::check_path(site, path, 0) {
        return Err(deny(fault));
    }
    fs::File::create(path)
}

/// [`std::fs::create_dir_all`] behind the `site` failpoint.
pub fn create_dir_all(site: &str, path: &Path) -> io::Result<()> {
    if let Some(fault) = failpoint::check_path(site, path, 0) {
        return Err(deny(fault));
    }
    fs::create_dir_all(path)
}

/// [`std::fs::remove_file`] behind the `site` failpoint.
pub fn remove_file(site: &str, path: &Path) -> io::Result<()> {
    if let Some(fault) = failpoint::check_path(site, path, 0) {
        return Err(deny(fault));
    }
    fs::remove_file(path)
}

/// [`std::fs::remove_dir`] behind the `site` failpoint.
pub fn remove_dir(site: &str, path: &Path) -> io::Result<()> {
    if let Some(fault) = failpoint::check_path(site, path, 0) {
        return Err(deny(fault));
    }
    fs::remove_dir(path)
}

/// [`std::fs::read_dir`] behind the `site` failpoint.
pub fn read_dir(site: &str, path: &Path) -> io::Result<fs::ReadDir> {
    if let Some(fault) = failpoint::check_path(site, path, 0) {
        return Err(deny(fault));
    }
    fs::read_dir(path)
}

/// Write `bytes` to `path` atomically: write to `path.tmp`, fsync,
/// rename over `path`, then best-effort fsync the directory so the
/// rename itself is durable. A crash mid-write leaves either the old
/// file or the complete new one, never a torn file — and when any step
/// fails (or a failpoint fails it), the temp file is removed instead of
/// leaking beside the target.
///
/// Each step checks the `{prefix}.create` / `{prefix}.write` /
/// `{prefix}.fsync` / `{prefix}.rename` failpoints, scoped to the final
/// `path`. A torn clause on the write step truncates the payload but
/// lets the publish *succeed* — producing exactly the corrupt-but-
/// renamed file the CRC envelope must reject at load time.
pub fn write_file_atomic(prefix: &str, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp: PathBuf = {
        let mut os = path.as_os_str().to_os_string();
        os.push(".tmp");
        PathBuf::from(os)
    };
    let result = write_atomic_steps(prefix, path, &tmp, bytes);
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

fn write_atomic_steps(prefix: &str, path: &Path, tmp: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(fault) = failpoint::check_op(prefix, "create", path, bytes.len()) {
        return Err(deny(fault));
    }
    let mut file = fs::File::create(tmp)?;
    match failpoint::check_op(prefix, "write", path, bytes.len()) {
        None => file.write_all(bytes)?,
        Some(Fault::Torn { cut }) => file.write_all(&bytes[..cut])?,
        Some(fault) => return Err(deny(fault)),
    }
    if let Some(fault) = failpoint::check_op(prefix, "fsync", path, bytes.len()) {
        return Err(deny(fault));
    }
    file.sync_all()?;
    drop(file);
    if let Some(fault) = failpoint::check_op(prefix, "rename", path, bytes.len()) {
        return Err(deny(fault));
    }
    fs::rename(tmp, path)?;
    if let Some(parent) = path.parent() {
        if let Ok(dir) = fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failpoint::{arm, FaultPlan};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aggclust-iofs-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("temp dir must be creatable");
        dir
    }

    fn plan(spec: &str, dir: &Path) -> FaultPlan {
        // Scope every clause to this test's own temp dir so parallel
        // tests never see each other's storms.
        let scoped: Vec<String> = spec
            .split(',')
            .map(|c| format!("{c}:path={}", dir.display()))
            .collect();
        FaultPlan::parse(&scoped.join(",")).expect("plan must parse")
    }

    #[test]
    fn atomic_write_round_trips_without_faults() {
        let dir = temp_dir("clean");
        let target = dir.join("out.bin");
        write_file_atomic("t", &target, b"payload").expect("clean write succeeds");
        assert_eq!(fs::read(&target).expect("readable"), b"payload");
        assert!(!tmp_of(&target).exists(), "temp file must be renamed away");
        let _ = fs::remove_dir_all(&dir);
    }

    fn tmp_of(path: &Path) -> PathBuf {
        let mut os = path.as_os_str().to_os_string();
        os.push(".tmp");
        PathBuf::from(os)
    }

    #[test]
    fn fsync_failure_fails_the_write_and_removes_the_temp_file() {
        let dir = temp_dir("fsync");
        let target = dir.join("out.bin");
        {
            let _guard = arm(plan("t.fsync=io_error", &dir));
            let err = write_file_atomic("t", &target, b"payload")
                .expect_err("fsync fault must fail the write");
            assert_eq!(err.kind(), io::ErrorKind::Other);
        }
        assert!(!target.exists(), "nothing may be published");
        assert!(!tmp_of(&target).exists(), "temp file must be cleaned up");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rename_enospc_fails_the_write_and_removes_the_temp_file() {
        let dir = temp_dir("rename");
        let target = dir.join("out.bin");
        fs::write(&target, b"old").expect("seed the old file");
        {
            let _guard = arm(plan("t.rename=enospc", &dir));
            let err = write_file_atomic("t", &target, b"new payload")
                .expect_err("rename ENOSPC must fail the write");
            assert_eq!(err.raw_os_error(), Some(28));
        }
        assert_eq!(
            fs::read(&target).expect("old file intact"),
            b"old",
            "a failed publish must leave the previous contents"
        );
        assert!(
            !tmp_of(&target).exists(),
            "the temp file must not leak after a failed rename"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_publishes_a_truncated_file_silently() {
        let dir = temp_dir("torn");
        let target = dir.join("out.bin");
        let payload = vec![0xabu8; 256];
        {
            let _guard = arm(plan("t.write=torn:seed=9", &dir));
            write_file_atomic("t", &target, &payload)
                .expect("a torn write reports success — that is the point");
        }
        let published = fs::read(&target).expect("file was renamed into place");
        assert!(
            published.len() < payload.len(),
            "the published file must be truncated"
        );
        assert_eq!(published, payload[..published.len()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_read_hands_back_a_short_payload() {
        let dir = temp_dir("shortread");
        let target = dir.join("in.bin");
        fs::write(&target, vec![7u8; 128]).expect("seed the file");
        let _guard = arm(plan("t.read=torn:seed=3", &dir));
        let data = read("t.read", &target).expect("torn reads succeed short");
        assert!(data.len() < 128);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_step_fault_prevents_the_temp_file_entirely() {
        let dir = temp_dir("create");
        let target = dir.join("out.bin");
        let _guard = arm(plan("t.create=io_error", &dir));
        write_file_atomic("t", &target, b"x").expect_err("create fault fails");
        assert!(!target.exists());
        assert!(!tmp_of(&target).exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
