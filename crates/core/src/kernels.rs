//! Bit-packed disagreement kernels with runtime SIMD dispatch
//! (DESIGN.md §6f–§6g).
//!
//! Every pipeline stage funnels through per-pair separation counts: "how
//! many of the `m` input clusterings separate objects `u` and `v`?" The
//! scalar path answers by chasing `m` separate label vectors per pair — an
//! `O(n²·m)` walk with terrible locality. This module transposes the
//! inputs once into a cache-contiguous n×m row-major [`LabelMatrix`] of
//! packed lanes and answers each pair by XOR-ing the two objects' label
//! rows, reducing with the widest implementation the host CPU supports:
//! AVX2 or SSE2+POPCNT vector compares on `x86-64`, NEON on `aarch64`
//! (see [`dispatch`] and [`simd`]), or the dependency-free SWAR ("SIMD
//! within a register") kernels below on any other target. All tiers
//! produce exact integer counts, so every tier is bit-identical.
//!
//! ## Lane layout
//!
//! * Each object `v` owns one row of `ceil(m / lanes_per_word)` logical
//!   words, stored with a row *stride* rounded up to [`STRIDE_WORDS`]
//!   words (one 256-bit vector) so the SIMD tiers can always load whole
//!   vector groups without overrunning the allocation. Padding words are
//!   zero in every row: their XOR is zero, so they never count.
//! * Lane `j` of row `v` holds the *lane code* of clustering `j` at `v`:
//!   `label + 1`, with `0` reserved for "missing". The uniform `+1` offset
//!   lets total and partial clusterings share one encoding, and makes
//!   "either side missing" detectable as a zero lane.
//! * Lanes are `u16` (4 per word) while every clustering has at most
//!   65 535 clusters — the largest lane code equals the cluster count — and
//!   fall back to `u32` lanes (2 per word) beyond that.
//! * A per-word *valid-lane mask* (every bit of each real lane set, all
//!   bits of each padding lane clear) keeps padding out of missing-lane
//!   counts; the SIMD tiers AND it directly against compare masks, the
//!   SWAR tier uses its high bits.
//!
//! ## Exact nonzero-lane detection (SWAR tier)
//!
//! The classic byte-zero trick `(x − k·1) & !x & hi` is *not* exact per
//! lane (a borrow from one lane can leak into the next), so the kernels
//! use the carry-safe form: for `u16` lanes,
//!
//! ```text
//! nonzero(x) = (((x & 0x7fff…) + 0x7fff…) | x) & 0x8000…
//! ```
//!
//! The add can only carry *within* a lane (the high bit of each lane is
//! masked off before adding), so the high bit of every lane is set iff the
//! lane is nonzero.
//!
//! ## Popcount-free reduction (SWAR tier)
//!
//! Counting the set high bits with `count_ones` would compile to a ~15-op
//! software popcount on baseline `x86-64` (no `-C target-feature=+popcnt`
//! is assumed). The kernels instead shift each word's indicator bits down
//! to lane position 0 and *accumulate* them across the row's words — every
//! lane of the accumulator becomes a per-lane hit counter — then collapse
//! the accumulator with one widening multiply (`acc · 0x0001000100010001`
//! puts the sum of all four `u16` lanes in the top 16 bits). Three ops per
//! word plus two per row, all plain integer ALU. Accumulation is chunked
//! every [`HSUM16_CHUNK`] words so neither the lane counters nor the final
//! sum can overflow, keeping the count exact for any clustering count.
//! The SIMD tiers instead use hardware `popcnt` over compare masks — see
//! the [`simd`] module docs for that counting scheme.
//!
//! ## Weighted blocks
//!
//! [`weight_groups`] groups equal-weight clusterings (by exact bit
//! pattern) in first-appearance order; each large group becomes one packed
//! [`LabelMatrix`] block and the small remainder stays on a scalar tail
//! (counted by the `kernels_fallback_scalar` metric). The canonical
//! weighted distance is `Σ_g w_g·sep_g / Σ w` with groups accumulated in
//! first-appearance order — the [`mod@reference`] implementations use the same
//! form, which is what makes packed-vs-naive comparisons exact to the bit.

use crate::clustering::{Clustering, PartialClustering};

pub mod dispatch;
pub mod simd;

use dispatch::Tier;

/// `u16` lanes per `u64` word.
pub const U16_LANES: usize = 4;
/// `u32` lanes per `u64` word.
pub const U32_LANES: usize = 2;
/// Largest lane code (= cluster count) representable in a `u16` lane.
pub const MAX_U16_CODE: u64 = u16::MAX as u64;

/// Row strides are rounded up to this many words (one 256-bit AVX2
/// vector) so every SIMD tier can load whole vector groups from any row.
pub const STRIDE_WORDS: usize = 4;

/// Column band width (in matrix rows) for cache-blocked condensed fills
/// over packed rows when no [`LabelMatrix`] is available to ask — see
/// [`LabelMatrix::preferred_band`] for the tier-aware figure.
pub const PACKED_BAND: usize = 512;

/// Equal-weight groups smaller than this stay on the scalar tail instead
/// of getting their own packed block (one block per full `u16` word of
/// lanes is the break-even point).
pub const MIN_PACKED_GROUP: usize = 4;

const LO15: u64 = 0x7fff_7fff_7fff_7fff;
const HI16: u64 = 0x8000_8000_8000_8000;
const LO31: u64 = 0x7fff_ffff_7fff_ffff;
const HI32: u64 = 0x8000_0000_8000_0000;

/// Horizontal-sum multiplier for four `u16` accumulator lanes.
const SUM16: u64 = 0x0001_0001_0001_0001;

/// Words per horizontal-sum chunk for `u16` lanes: each 16-bit lane
/// counter stays < 2¹⁴·1 + … ≤ 16 383 and the four-lane total ≤ 65 532,
/// so both the accumulator and the multiply reduction are exact.
pub const HSUM16_CHUNK: usize = 16_383;

/// Collapse a 4×16-bit lane accumulator into the total count. Exact while
/// the four lanes sum below 2¹⁶ (guaranteed by [`HSUM16_CHUNK`]).
#[inline(always)]
fn hsum16(acc: u64) -> u32 {
    ((acc.wrapping_mul(SUM16) >> 48) & 0xffff) as u32
}

/// Collapse a 2×32-bit lane accumulator into the total count. Exact while
/// the two lanes sum below 2³² (rows are far shorter than 2³¹ words).
#[inline(always)]
fn hsum32(acc: u64) -> u32 {
    acc.wrapping_add(acc >> 32) as u32
}

/// High bit of every nonzero `u16` lane of `x` (carry-safe SWAR).
#[inline(always)]
fn nonzero16(x: u64) -> u64 {
    (((x & LO15) + LO15) | x) & HI16
}

/// High bit of every nonzero `u32` lane of `x` (carry-safe SWAR).
#[inline(always)]
fn nonzero32(x: u64) -> u64 {
    (((x & LO31) + LO31) | x) & HI32
}

/// Width of the packed lanes in a [`LabelMatrix`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaneWidth {
    /// 4 × 16-bit lanes per word (cluster counts ≤ 65 535).
    U16,
    /// 2 × 32-bit lanes per word (some clustering exceeds 65 535 clusters).
    U32,
}

/// The `m` input clusterings transposed into one cache-contiguous n×m
/// row-major matrix of packed lane codes (see the module docs for the
/// layout). Row `v` answers "which cluster does each input place `v` in?"
/// in `ceil(m / lanes)` consecutive words (strided to [`STRIDE_WORDS`]).
#[derive(Clone, Debug)]
pub struct LabelMatrix {
    n: usize,
    lanes: usize,
    words_per_row: usize,
    /// Allocated words per row: `words_per_row` rounded up to
    /// [`STRIDE_WORDS`]; the excess is zero in every row.
    stride: usize,
    width: LaneWidth,
    /// Kernel tier resolved via [`dispatch::selected`] on the thread that
    /// built the matrix, pinned for the matrix's lifetime so worker
    /// threads run the same code path the constructor chose.
    tier: Tier,
    words: Vec<u64>,
    /// Per-word mask with every bit of each *real* (non-padding) lane set,
    /// `stride` words long.
    valid: Vec<u64>,
}

impl LabelMatrix {
    fn build(n: usize, m: usize, max_code: u64, code: impl Fn(usize, usize) -> u64) -> Self {
        let width = if max_code <= MAX_U16_CODE {
            LaneWidth::U16
        } else {
            LaneWidth::U32
        };
        let (lanes_per_word, lane_bits) = match width {
            LaneWidth::U16 => (U16_LANES, 16),
            LaneWidth::U32 => (U32_LANES, 32),
        };
        let words_per_row = m.div_ceil(lanes_per_word.max(1));
        let stride = words_per_row.next_multiple_of(STRIDE_WORDS);
        let mut words = vec![0u64; n * stride];
        if stride > 0 {
            for (v, row) in words.chunks_mut(stride).enumerate() {
                for j in 0..m {
                    row[j / lanes_per_word] |= code(j, v) << ((j % lanes_per_word) * lane_bits);
                }
            }
        }
        let lane_mask = (1u128 << lane_bits) as u64 - 1;
        let mut valid = vec![0u64; stride];
        for j in 0..m {
            valid[j / lanes_per_word] |= lane_mask << ((j % lanes_per_word) * lane_bits);
        }
        let tier = dispatch::selected();
        crate::telemetry::record_dispatch_tier(tier);
        LabelMatrix {
            n,
            lanes: m,
            words_per_row,
            stride,
            width,
            tier,
            words,
            valid,
        }
    }

    /// Pack total clusterings (one lane per clustering, in input order).
    ///
    /// # Panics
    /// Panics if the clusterings disagree on the object count.
    pub fn from_total(clusterings: &[Clustering]) -> Self {
        let n = clusterings.first().map_or(0, |c| c.len());
        assert!(
            clusterings.iter().all(|c| c.len() == n),
            "all clusterings must cover the same objects"
        );
        let max_code = clusterings
            .iter()
            .map(|c| c.max_lane_code())
            .max()
            .unwrap_or(0);
        LabelMatrix::build(n, clusterings.len(), max_code, |j, v| {
            clusterings[j].lane_code(v)
        })
    }

    /// Pack the subset `members` of `clusterings` (one lane per member, in
    /// `members` order) — the building block for equal-weight blocks.
    ///
    /// # Panics
    /// Panics on an out-of-range member index or mismatched object counts.
    pub fn from_total_indexed(clusterings: &[Clustering], members: &[usize]) -> Self {
        let n = members.first().map_or(0, |&i| clusterings[i].len());
        assert!(
            members.iter().all(|&i| clusterings[i].len() == n),
            "all clusterings must cover the same objects"
        );
        let max_code = members
            .iter()
            .map(|&i| clusterings[i].max_lane_code())
            .max()
            .unwrap_or(0);
        LabelMatrix::build(n, members.len(), max_code, |j, v| {
            clusterings[members[j]].lane_code(v)
        })
    }

    /// Pack partial clusterings; missing labels become zero lanes.
    ///
    /// # Panics
    /// Panics if the clusterings disagree on the object count.
    pub fn from_partial(clusterings: &[PartialClustering]) -> Self {
        let n = clusterings.first().map_or(0, |c| c.len());
        assert!(
            clusterings.iter().all(|c| c.len() == n),
            "all clusterings must cover the same objects"
        );
        let max_code = clusterings
            .iter()
            .map(|c| c.max_lane_code())
            .max()
            .unwrap_or(0);
        LabelMatrix::build(n, clusterings.len(), max_code, |j, v| {
            clusterings[j].lane_code(v)
        })
    }

    /// Number of objects (rows).
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the matrix has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of packed clusterings (lanes per row).
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The lane width chosen at construction.
    #[inline]
    pub fn width(&self) -> LaneWidth {
        self.width
    }

    /// The kernel tier this matrix dispatches to (resolved at build time
    /// on the constructing thread).
    #[inline]
    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// Heap bytes held by the packed words and masks (for `MemGauge`
    /// accounting on governed paths).
    pub fn bytes(&self) -> u64 {
        (self.words.len() as u64 + self.valid.len() as u64) * 8
    }

    /// Cache-block band width (in rows) tuned for this matrix's tier and
    /// row stride: the band should stay L1-resident while a row chunk
    /// streams against it, and the SIMD tiers chew through rows fast
    /// enough that a wider band amortizes the per-band loop overhead.
    pub fn preferred_band(&self) -> usize {
        let row_bytes = self.stride.max(STRIDE_WORDS) * 8;
        let target_bytes = match self.tier {
            Tier::Scalar | Tier::Swar => 16 * 1024,
            Tier::Sse2 | Tier::Avx2 | Tier::Avx512 | Tier::Neon => 32 * 1024,
        };
        (target_bytes / row_bytes).clamp(64, 4096)
    }

    #[inline(always)]
    fn lane_bits(&self) -> usize {
        match self.width {
            LaneWidth::U16 => 16,
            LaneWidth::U32 => 32,
        }
    }

    /// Logical row `v`: the `words_per_row` words holding real lanes.
    #[inline(always)]
    fn row(&self, v: usize) -> &[u64] {
        &self.words[v * self.stride..v * self.stride + self.words_per_row]
    }

    /// Stride-padded row `v` (what the SIMD kernels load).
    #[inline(always)]
    fn padded_row(&self, v: usize) -> &[u64] {
        &self.words[v * self.stride..(v + 1) * self.stride]
    }

    /// Hand a row batch to this matrix's SIMD tier. Returns `false` when
    /// the tier is universal (scalar/SWAR) or compiled out on this arch,
    /// in which case the caller runs the portable path.
    #[inline]
    fn sep_rows_simd(&self, a: &[u64], rows: &[u64], out: &mut [u32]) -> bool {
        match (self.tier, self.width) {
            #[cfg(target_arch = "x86_64")]
            (Tier::Avx2, LaneWidth::U16) => {
                // SAFETY: `self.tier` passed `Tier::is_available` when it
                // was selected (dispatch.rs never yields an unavailable
                // tier), so AVX2 is present; `a` and each row of `rows`
                // are exactly `stride` words, a positive multiple of 4.
                unsafe { simd::x86::sep_rows16_avx2(a, rows, self.stride, out) }
                true
            }
            #[cfg(target_arch = "x86_64")]
            (Tier::Avx2, LaneWidth::U32) => {
                // SAFETY: as above — AVX2 available, stride-sized slices.
                unsafe { simd::x86::sep_rows32_avx2(a, rows, self.stride, out) }
                true
            }
            #[cfg(target_arch = "x86_64")]
            (Tier::Avx512, LaneWidth::U16) => {
                // SAFETY: as above — AVX-512 F/BW/VL available,
                // stride-sized slices.
                unsafe { simd::x86::sep_rows16_avx512(a, rows, self.stride, out) }
                true
            }
            #[cfg(target_arch = "x86_64")]
            (Tier::Avx512, LaneWidth::U32) => {
                // SAFETY: as above.
                unsafe { simd::x86::sep_rows32_avx512(a, rows, self.stride, out) }
                true
            }
            #[cfg(target_arch = "x86_64")]
            (Tier::Sse2, LaneWidth::U16) => {
                // SAFETY: as above — SSE2+POPCNT available, stride-sized
                // slices (stride is a multiple of 4, hence of 2).
                unsafe { simd::x86::sep_rows16_sse2(a, rows, self.stride, out) }
                true
            }
            #[cfg(target_arch = "x86_64")]
            (Tier::Sse2, LaneWidth::U32) => {
                // SAFETY: as above.
                unsafe { simd::x86::sep_rows32_sse2(a, rows, self.stride, out) }
                true
            }
            #[cfg(target_arch = "aarch64")]
            (Tier::Neon, LaneWidth::U16) => {
                // SAFETY: NEON confirmed available at tier selection;
                // stride-sized slices as above.
                unsafe { simd::neon::sep_rows16_neon(a, rows, self.stride, out) }
                true
            }
            #[cfg(target_arch = "aarch64")]
            (Tier::Neon, LaneWidth::U32) => {
                // SAFETY: as above.
                unsafe { simd::neon::sep_rows32_neon(a, rows, self.stride, out) }
                true
            }
            _ => false,
        }
    }

    /// `sep_missing` on this matrix's SIMD tier, or `None` on a universal
    /// tier (see [`LabelMatrix::sep_rows_simd`]).
    #[inline]
    fn sep_missing_simd(&self, u: usize, v: usize) -> Option<(u32, u32)> {
        let (a, b) = (self.padded_row(u), self.padded_row(v));
        match (self.tier, self.width) {
            #[cfg(target_arch = "x86_64")]
            (Tier::Avx2, LaneWidth::U16) => {
                // SAFETY: tier availability checked at selection; `a`,
                // `b`, and `valid` are exactly `stride` words, a positive
                // multiple of 4.
                Some(unsafe { simd::x86::sep_missing16_avx2(a, b, &self.valid, self.stride) })
            }
            #[cfg(target_arch = "x86_64")]
            (Tier::Avx2, LaneWidth::U32) => {
                // SAFETY: as above.
                Some(unsafe { simd::x86::sep_missing32_avx2(a, b, &self.valid, self.stride) })
            }
            #[cfg(target_arch = "x86_64")]
            (Tier::Avx512, LaneWidth::U16) => {
                // SAFETY: as above (AVX-512 F/BW/VL).
                Some(unsafe { simd::x86::sep_missing16_avx512(a, b, &self.valid, self.stride) })
            }
            #[cfg(target_arch = "x86_64")]
            (Tier::Avx512, LaneWidth::U32) => {
                // SAFETY: as above.
                Some(unsafe { simd::x86::sep_missing32_avx512(a, b, &self.valid, self.stride) })
            }
            #[cfg(target_arch = "x86_64")]
            (Tier::Sse2, LaneWidth::U16) => {
                // SAFETY: as above (SSE2+POPCNT).
                Some(unsafe { simd::x86::sep_missing16_sse2(a, b, &self.valid, self.stride) })
            }
            #[cfg(target_arch = "x86_64")]
            (Tier::Sse2, LaneWidth::U32) => {
                // SAFETY: as above.
                Some(unsafe { simd::x86::sep_missing32_sse2(a, b, &self.valid, self.stride) })
            }
            #[cfg(target_arch = "aarch64")]
            (Tier::Neon, LaneWidth::U16) => {
                // SAFETY: as above (NEON).
                Some(unsafe { simd::neon::sep_missing16_neon(a, b, &self.valid, self.stride) })
            }
            #[cfg(target_arch = "aarch64")]
            (Tier::Neon, LaneWidth::U32) => {
                // SAFETY: as above.
                Some(unsafe { simd::neon::sep_missing32_neon(a, b, &self.valid, self.stride) })
            }
            _ => None,
        }
    }

    /// Number of lanes whose codes differ between rows `u` and `v`.
    ///
    /// For total clusterings this is exactly the number of inputs
    /// separating the pair. (With missing labels a zero lane differs from
    /// any present lane; use [`LabelMatrix::sep_missing`] to tell the two
    /// apart.)
    #[inline]
    pub fn sep(&self, u: usize, v: usize) -> u32 {
        if self.words_per_row == 0 {
            return 0;
        }
        match self.tier {
            Tier::Scalar => simd::sep_pair_scalar(self.row(u), self.row(v), self.lane_bits()),
            Tier::Swar => self.sep_swar(u, v),
            _ => {
                let mut out = [0u32; 1];
                if self.sep_rows_simd(self.padded_row(u), self.padded_row(v), &mut out) {
                    out[0]
                } else {
                    self.sep_swar(u, v)
                }
            }
        }
    }

    /// The universal SWAR pair kernel (also the fallback when a SIMD tier
    /// is compiled out on this target).
    fn sep_swar(&self, u: usize, v: usize) -> u32 {
        let (a, b) = (self.row(u), self.row(v));
        match self.width {
            LaneWidth::U16 => {
                let mut count = 0u32;
                for (ca, cb) in a.chunks(HSUM16_CHUNK).zip(b.chunks(HSUM16_CHUNK)) {
                    let mut acc = 0u64;
                    for (&x, &y) in ca.iter().zip(cb) {
                        acc += nonzero16(x ^ y) >> 15;
                    }
                    count += hsum16(acc);
                }
                count
            }
            LaneWidth::U32 => {
                let mut acc = 0u64;
                for (&x, &y) in a.iter().zip(b) {
                    acc += nonzero32(x ^ y) >> 31;
                }
                hsum32(acc)
            }
        }
    }

    /// Batch kernel behind the dense fills: writes `sep(u, lo + i)` into
    /// `out[i]` for every `i`. Row `u` is loaded into registers once and
    /// the `v` rows stream sequentially through the packed words; the
    /// SIMD tiers compare a whole vector group per op, the SWAR tier
    /// dispatches short rows (≤ 4 words) to fully unrolled inner loops.
    ///
    /// # Panics
    /// Panics if `lo + out.len()` exceeds the number of rows.
    pub fn sep_row_into(&self, u: usize, lo: usize, out: &mut [u32]) {
        crate::telemetry::count_row_batches();
        if self.words_per_row == 0 || out.is_empty() {
            out.fill(0);
            return;
        }
        let a = self.padded_row(u);
        let rows = &self.words[lo * self.stride..(lo + out.len()) * self.stride];
        if self.sep_rows_simd(a, rows, out) {
            return;
        }
        if self.tier == Tier::Scalar {
            for (i, o) in out.iter_mut().enumerate() {
                *o = simd::sep_pair_scalar(self.row(u), self.row(lo + i), self.lane_bits());
            }
            return;
        }
        let wpr = self.words_per_row;
        match (self.width, wpr) {
            (LaneWidth::U16, 1) => sep_rows16::<1>(a, rows, self.stride, out),
            (LaneWidth::U16, 2) => sep_rows16::<2>(a, rows, self.stride, out),
            (LaneWidth::U16, 3) => sep_rows16::<3>(a, rows, self.stride, out),
            (LaneWidth::U16, 4) => sep_rows16::<4>(a, rows, self.stride, out),
            (LaneWidth::U32, 1) => sep_rows32::<1>(a, rows, self.stride, out),
            (LaneWidth::U32, 2) => sep_rows32::<2>(a, rows, self.stride, out),
            (LaneWidth::U32, 3) => sep_rows32::<3>(a, rows, self.stride, out),
            (LaneWidth::U32, 4) => sep_rows32::<4>(a, rows, self.stride, out),
            _ => {
                for (i, o) in out.iter_mut().enumerate() {
                    *o = self.sep_swar(u, lo + i);
                }
            }
        }
    }

    /// `(separated, missing)` lane counts for the pair `(u, v)`:
    /// `separated` counts lanes where both codes are present and differ,
    /// `missing` counts lanes where either side is the zero "missing" code
    /// (padding lanes are masked out of both).
    #[inline]
    pub fn sep_missing(&self, u: usize, v: usize) -> (u32, u32) {
        if self.words_per_row == 0 {
            return (0, 0);
        }
        match self.tier {
            Tier::Scalar => simd::sep_missing_scalar(
                self.row(u),
                self.row(v),
                &self.valid[..self.words_per_row],
                self.lane_bits(),
            ),
            Tier::Swar => self.sep_missing_swar(u, v),
            _ => self
                .sep_missing_simd(u, v)
                .unwrap_or_else(|| self.sep_missing_swar(u, v)),
        }
    }

    /// The universal SWAR `sep_missing` kernel.
    fn sep_missing_swar(&self, u: usize, v: usize) -> (u32, u32) {
        let (a, b) = (self.row(u), self.row(v));
        let mut sep = 0u32;
        let mut missing = 0u32;
        match self.width {
            LaneWidth::U16 => {
                for ((ca, cb), cok) in a
                    .chunks(HSUM16_CHUNK)
                    .zip(b.chunks(HSUM16_CHUNK))
                    .zip(self.valid.chunks(HSUM16_CHUNK))
                {
                    let mut sep_acc = 0u64;
                    let mut miss_acc = 0u64;
                    for ((&x, &y), &ok) in ca.iter().zip(cb).zip(cok) {
                        let zero_either = (HI16 ^ nonzero16(x)) | (HI16 ^ nonzero16(y));
                        let miss = zero_either & ok & HI16;
                        sep_acc += (nonzero16(x ^ y) & !miss) >> 15;
                        miss_acc += miss >> 15;
                    }
                    sep += hsum16(sep_acc);
                    missing += hsum16(miss_acc);
                }
            }
            LaneWidth::U32 => {
                let mut sep_acc = 0u64;
                let mut miss_acc = 0u64;
                for ((&x, &y), &ok) in a.iter().zip(b).zip(&self.valid) {
                    let zero_either = (HI32 ^ nonzero32(x)) | (HI32 ^ nonzero32(y));
                    let miss = zero_either & ok & HI32;
                    sep_acc += (nonzero32(x ^ y) & !miss) >> 31;
                    miss_acc += miss >> 31;
                }
                sep = hsum32(sep_acc);
                missing = hsum32(miss_acc);
            }
        }
        (sep, missing)
    }
}

/// Unrolled `u16`-lane row-batch kernel (SWAR tier): `rows` is
/// `out.len()` consecutive `stride`-word label rows whose first `W` words
/// carry real lanes, compared against the fixed row `a`. `W ≤ 4` keeps
/// every lane counter ≤ 4, so a single horizontal sum per row is exact.
#[inline(always)]
fn sep_rows16<const W: usize>(a: &[u64], rows: &[u64], stride: usize, out: &mut [u32]) {
    let mut fixed = [0u64; W];
    fixed.copy_from_slice(&a[..W]);
    for (o, row) in out.iter_mut().zip(rows.chunks_exact(stride)) {
        let mut acc = 0u64;
        for j in 0..W {
            acc += nonzero16(fixed[j] ^ row[j]) >> 15;
        }
        *o = hsum16(acc);
    }
}

/// Unrolled `u32`-lane row-batch kernel (see [`sep_rows16`]).
#[inline(always)]
fn sep_rows32<const W: usize>(a: &[u64], rows: &[u64], stride: usize, out: &mut [u32]) {
    let mut fixed = [0u64; W];
    fixed.copy_from_slice(&a[..W]);
    for (o, row) in out.iter_mut().zip(rows.chunks_exact(stride)) {
        let mut acc = 0u64;
        for j in 0..W {
            acc += nonzero32(fixed[j] ^ row[j]) >> 31;
        }
        *o = hsum32(acc);
    }
}

/// Group clustering indices by weight (exact bit equality, NaN never
/// merges) in first-appearance order — the canonical grouping both the
/// packed weighted oracle and [`reference::xuv_weighted`] accumulate in,
/// so the two agree to the bit.
pub fn weight_groups(weights: &[f64]) -> Vec<(f64, Vec<usize>)> {
    let mut groups: Vec<(u64, f64, Vec<usize>)> = Vec::new();
    for (i, &w) in weights.iter().enumerate() {
        let bits = w.to_bits();
        match groups.iter_mut().find(|(b, _, _)| *b == bits) {
            Some((_, _, members)) => members.push(i),
            None => groups.push((bits, w, vec![i])),
        }
    }
    groups.into_iter().map(|(_, w, ms)| (w, ms)).collect()
}

/// Scalar reference implementations of the canonical per-pair distances —
/// deliberately independent of the packed kernels (plain `same_cluster` /
/// `label` walks) so the differential conformance suite compares two
/// genuinely different code paths.
pub mod reference {
    use super::weight_groups;
    use crate::clustering::{Clustering, PartialClustering};
    use crate::instance::MissingPolicy;

    /// `X_uv` for total clusterings: the fraction separating the pair.
    pub fn xuv_total(clusterings: &[Clustering], u: usize, v: usize) -> f64 {
        if u == v {
            return 0.0;
        }
        let sep = clusterings.iter().filter(|c| !c.same_cluster(u, v)).count();
        sep as f64 / clusterings.len() as f64
    }

    /// Canonical weighted `X_uv`: `Σ_g w_g·sep_g / Σ w` over equal-weight
    /// groups in first-appearance order (see [`weight_groups`]).
    pub fn xuv_weighted(clusterings: &[Clustering], weights: &[f64], u: usize, v: usize) -> f64 {
        if u == v {
            return 0.0;
        }
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0f64;
        for (w, members) in weight_groups(weights) {
            let sep = members
                .iter()
                .filter(|&&i| !clusterings[i].same_cluster(u, v))
                .count();
            acc += w * sep as f64;
        }
        acc / total
    }

    /// Canonical `X_uv` for partial clusterings under `policy`:
    /// `Ignore` divides separated-by by defined-on (½ when nothing is
    /// defined); `Coin(p)` computes `(sep + missing·(1 − p)) / m`.
    pub fn xuv_partial(
        clusterings: &[PartialClustering],
        policy: MissingPolicy,
        u: usize,
        v: usize,
    ) -> f64 {
        if u == v {
            return 0.0;
        }
        let mut sep = 0usize;
        let mut missing = 0usize;
        for c in clusterings {
            match (c.label(u), c.label(v)) {
                (Some(lu), Some(lv)) => {
                    if lu != lv {
                        sep += 1;
                    }
                }
                _ => missing += 1,
            }
        }
        match policy {
            MissingPolicy::Ignore => {
                let defined = clusterings.len() - missing;
                if defined == 0 {
                    0.5
                } else {
                    sep as f64 / defined as f64
                }
            }
            MissingPolicy::Coin(p) => {
                (sep as f64 + missing as f64 * (1.0 - p)) / clusterings.len() as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(labels: &[u32]) -> Clustering {
        Clustering::from_labels(labels.to_vec())
    }

    #[test]
    fn nonzero_lane_detection_is_exact() {
        // The borrow-prone patterns that break the classic (x-k)&!x trick.
        for lanes in [
            [0u64, 0, 0, 0],
            [1, 0, 0, 0],
            [0x8000, 0x0001, 0, 0xffff],
            [0xffff, 0xffff, 0xffff, 0xffff],
            [0, 0x8000, 0, 1],
        ] {
            let word = lanes
                .iter()
                .enumerate()
                .fold(0u64, |w, (i, &l)| w | (l << (i * 16)));
            let mask = nonzero16(word);
            for (i, &l) in lanes.iter().enumerate() {
                let hi = mask >> (i * 16 + 15) & 1;
                assert_eq!(hi == 1, l != 0, "lane {i} of {lanes:?}");
            }
        }
        for lanes in [[0u64, 0], [1, 0], [0x8000_0000, 1], [u32::MAX as u64, 0]] {
            let word = lanes
                .iter()
                .enumerate()
                .fold(0u64, |w, (i, &l)| w | (l << (i * 32)));
            let mask = nonzero32(word);
            for (i, &l) in lanes.iter().enumerate() {
                let hi = mask >> (i * 32 + 31) & 1;
                assert_eq!(hi == 1, l != 0, "lane {i} of {lanes:?}");
            }
        }
    }

    #[test]
    fn sep_counts_match_scalar_on_small_instances() {
        let cs = vec![
            c(&[0, 0, 1, 1, 2, 2]),
            c(&[0, 1, 0, 1, 2, 3]),
            c(&[0, 1, 0, 1, 2, 2]),
            c(&[0, 0, 0, 0, 0, 0]),
            c(&[0, 1, 2, 3, 4, 5]),
        ];
        for tier in dispatch::reachable_tiers() {
            let mx = dispatch::with_forced_tier(tier, || LabelMatrix::from_total(&cs));
            assert_eq!(mx.tier(), tier);
            assert_eq!(mx.width(), LaneWidth::U16);
            assert_eq!(mx.lanes(), 5);
            for u in 0..6 {
                for v in 0..6 {
                    let expected = cs.iter().filter(|ci| !ci.same_cluster(u, v)).count() as u32;
                    assert_eq!(
                        mx.sep(u, v),
                        expected,
                        "tier {} pair ({u},{v})",
                        tier.name()
                    );
                }
            }
        }
    }

    #[test]
    fn row_batches_match_pairwise_under_every_tier() {
        let n = 37usize;
        let cs: Vec<Clustering> = (0..9)
            .map(|j| {
                c(&(0..n)
                    .map(|v| ((v * (j + 2) + j) % 5) as u32)
                    .collect::<Vec<_>>())
            })
            .collect();
        let baseline = dispatch::with_forced_tier(Tier::Scalar, || LabelMatrix::from_total(&cs));
        for tier in dispatch::reachable_tiers() {
            let mx = dispatch::with_forced_tier(tier, || LabelMatrix::from_total(&cs));
            let mut out = vec![0u32; n];
            for u in 0..n {
                mx.sep_row_into(u, 0, &mut out);
                for (v, &got) in out.iter().enumerate() {
                    assert_eq!(
                        got,
                        baseline.sep(u, v),
                        "tier {} batch ({u},{v})",
                        tier.name()
                    );
                }
            }
        }
    }

    #[test]
    fn sep_missing_masks_padding_lanes() {
        // m = 5 lanes → 3 padding lanes in the second word; both objects
        // missing everywhere must report missing = 5, not more.
        let ps: Vec<PartialClustering> = (0..5)
            .map(|_| PartialClustering::from_labels(vec![None, None]))
            .collect();
        for tier in dispatch::reachable_tiers() {
            let mx = dispatch::with_forced_tier(tier, || LabelMatrix::from_partial(&ps));
            assert_eq!(mx.sep_missing(0, 1), (0, 5), "tier {}", tier.name());
        }
    }

    #[test]
    fn sep_missing_separates_present_from_missing() {
        let ps = vec![
            PartialClustering::from_labels(vec![Some(0), Some(1), Some(0)]),
            PartialClustering::from_labels(vec![Some(0), None, Some(0)]),
            PartialClustering::from_labels(vec![None, Some(2), Some(2)]),
        ];
        for tier in dispatch::reachable_tiers() {
            let mx = dispatch::with_forced_tier(tier, || LabelMatrix::from_partial(&ps));
            // (0,1): c0 separates; c1 missing on 1; c2 missing on 0.
            assert_eq!(mx.sep_missing(0, 1), (1, 2), "tier {}", tier.name());
            // (0,2): c0 joins, c1 joins, c2 missing on 0.
            assert_eq!(mx.sep_missing(0, 2), (0, 1), "tier {}", tier.name());
            // (1,2): c0 separates, c1 missing on 1, c2 joins (both label 2).
            assert_eq!(mx.sep_missing(1, 2), (1, 1), "tier {}", tier.name());
        }
    }

    #[test]
    fn wide_cluster_counts_switch_to_u32_lanes() {
        let n = 70_000usize;
        let narrow = c(&(0..n).map(|v| (v as u32) % 65_535).collect::<Vec<_>>());
        let wide = c(&(0..n).map(|v| (v as u32) % 65_536).collect::<Vec<_>>());
        let mx16 = LabelMatrix::from_total(std::slice::from_ref(&narrow));
        assert_eq!(mx16.width(), LaneWidth::U16);
        let mx32 = LabelMatrix::from_total(&[narrow, wide]);
        assert_eq!(mx32.width(), LaneWidth::U32);
        // Spot-check pairs around the wrap boundary in both widths.
        for (u, v) in [(0usize, 65_535usize), (1, 65_536), (7, 9), (65_534, 65_535)] {
            let expected16 = u32::from(u % 65_535 != v % 65_535);
            assert_eq!(mx16.sep(u, v), expected16, "u16 pair ({u},{v})");
            let expected32 = expected16 + u32::from(u % 65_536 != v % 65_536);
            assert_eq!(mx32.sep(u, v), expected32, "u32 pair ({u},{v})");
        }
    }

    #[test]
    fn stride_pads_rows_to_whole_vector_groups() {
        let cs = vec![c(&[0, 1, 2]); 5]; // m = 5 → 2 logical words, u16
        let mx = LabelMatrix::from_total(&cs);
        assert_eq!(mx.words_per_row, 2);
        assert_eq!(mx.stride, STRIDE_WORDS);
        assert_eq!(mx.valid.len(), STRIDE_WORDS);
        // Padding words carry no valid lanes; the first word is fully
        // valid, the second has one real lane.
        assert_eq!(mx.valid[0], u64::MAX);
        assert_eq!(mx.valid[1], 0xffff);
        assert_eq!(mx.valid[2], 0);
        assert_eq!(mx.valid[3], 0);
        let band = mx.preferred_band();
        assert!((64..=4096).contains(&band), "band {band}");
    }

    #[test]
    fn weight_groups_keep_first_appearance_order() {
        let groups = weight_groups(&[2.0, 1.0, 2.0, 0.5, 1.0]);
        assert_eq!(
            groups,
            vec![(2.0, vec![0, 2]), (1.0, vec![1, 4]), (0.5, vec![3]),]
        );
        // NaN weights never merge (bit-exact grouping is only for equal
        // bit patterns, and the try_ constructors reject NaN upstream).
        assert_eq!(weight_groups(&[]).len(), 0);
    }

    #[test]
    fn empty_and_trivial_matrices() {
        let mx = LabelMatrix::from_total(&[]);
        assert!(mx.is_empty());
        assert_eq!(mx.lanes(), 0);
        let one = LabelMatrix::from_total(&[c(&[0])]);
        assert_eq!(one.len(), 1);
        assert!(one.bytes() > 0);
    }
}
