//! Runtime SIMD tier selection for the disagreement kernels.
//!
//! The SWAR kernels in [`crate::kernels`] are the *universal* path: plain
//! `u64` arithmetic, exact on any target with baseline codegen. On hosts
//! with wider registers the same per-pair counts can be answered with one
//! vector compare per 4 words (16 `u16` lanes), so this module picks —
//! **once per process** — the widest implementation the CPU actually
//! supports and hands it to every [`crate::kernels::LabelMatrix`] built
//! afterwards:
//!
//! | Tier | Requires | Width per op |
//! |---|---|---|
//! | [`Tier::Avx512`] | `x86-64` with AVX-512 F/BW/VL | 8 × `u64` words (two rows per compare) |
//! | [`Tier::Avx2`] | `x86-64` with AVX2 | 4 × `u64` words (16 `u16` lanes) |
//! | [`Tier::Sse2`] | `x86-64` with SSE2 **and** POPCNT | 2 × `u64` words |
//! | [`Tier::Neon`] | `aarch64` with NEON | 2 × `u64` words |
//! | [`Tier::Swar`] | any | 1 × `u64` word (SWAR) |
//! | [`Tier::Scalar`] | any | one lane at a time (reference-grade) |
//!
//! Selection order: a scoped [`with_forced_tier`] override (tests and the
//! tier-vs-tier benchmarks) beats the `AGGCLUST_SIMD` environment
//! variable (`auto`, `scalar`, `swar`, `sse2`, `avx2`, `avx512`, `neon`;
//! read once), which beats feature detection (`is_x86_feature_detected!` /
//! `is_aarch64_feature_detected!`). Forcing a tier the host cannot run
//! falls back to detection with a warning — silently emitting illegal
//! instructions is never an option. The tier actually used is recorded in
//! the `kernels_dispatch_tier` metric, so run reports and traces state
//! which code path produced their numbers.
//!
//! Every tier returns **bit-identical distances**: the conformance suites
//! (`kernel_conformance.rs`, `kernel_metamorphic.rs`) run their full size
//! grids under every tier reachable on the host and compare `f64::to_bits`.

use std::cell::Cell;
use std::sync::OnceLock;

/// A kernel implementation tier, from portable reference to widest SIMD.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// One lane at a time — the slow, obviously-correct packed walk.
    Scalar,
    /// SWAR on plain `u64` words (the universal fallback).
    Swar,
    /// SSE2 vector compares + POPCNT reductions (`x86-64`).
    Sse2,
    /// AVX2: 4 words / 16 `u16` lanes per vector op (`x86-64`).
    Avx2,
    /// AVX-512 (F + BW + VL): mask-register compares covering two packed
    /// rows per 512-bit op (`x86-64`).
    Avx512,
    /// NEON 128-bit vector compares (`aarch64`).
    Neon,
}

/// Every tier, in ascending width order.
pub const ALL_TIERS: [Tier; 6] = [
    Tier::Scalar,
    Tier::Swar,
    Tier::Sse2,
    Tier::Avx2,
    Tier::Avx512,
    Tier::Neon,
];

impl Tier {
    /// Stable lower-case name (`AGGCLUST_SIMD` value, metric label).
    pub fn name(self) -> &'static str {
        match self {
            Tier::Scalar => "scalar",
            Tier::Swar => "swar",
            Tier::Sse2 => "sse2",
            Tier::Avx2 => "avx2",
            Tier::Avx512 => "avx512",
            Tier::Neon => "neon",
        }
    }

    /// Numeric code stored in the `kernels_dispatch_tier` metric
    /// (0 is reserved for "no kernel ran yet").
    pub fn code(self) -> u64 {
        match self {
            Tier::Scalar => 1,
            Tier::Swar => 2,
            Tier::Sse2 => 3,
            Tier::Avx2 => 4,
            Tier::Neon => 5,
            Tier::Avx512 => 6,
        }
    }

    /// Parse a tier name (the non-`auto` `AGGCLUST_SIMD` values).
    pub fn from_name(s: &str) -> Option<Tier> {
        ALL_TIERS.into_iter().find(|t| t.name() == s)
    }

    /// `true` if this tier can execute on the current host.
    pub fn is_available(self) -> bool {
        match self {
            Tier::Scalar | Tier::Swar => true,
            #[cfg(target_arch = "x86_64")]
            Tier::Sse2 => is_x86_feature_detected!("sse2") && is_x86_feature_detected!("popcnt"),
            #[cfg(target_arch = "x86_64")]
            Tier::Avx2 => is_x86_feature_detected!("avx2") && is_x86_feature_detected!("popcnt"),
            #[cfg(target_arch = "x86_64")]
            Tier::Avx512 => {
                is_x86_feature_detected!("avx512f")
                    && is_x86_feature_detected!("avx512bw")
                    && is_x86_feature_detected!("avx512vl")
                    && is_x86_feature_detected!("popcnt")
            }
            #[cfg(target_arch = "aarch64")]
            Tier::Neon => std::arch::is_aarch64_feature_detected!("neon"),
            #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
            _ => false,
            #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
            _ => false,
        }
    }
}

/// The metric label for a stored tier code (`"none"` before any kernel
/// has run).
pub fn tier_code_name(code: u64) -> &'static str {
    ALL_TIERS
        .into_iter()
        .find(|t| t.code() == code)
        .map_or("none", Tier::name)
}

/// The widest tier the host supports (what `AGGCLUST_SIMD=auto` picks).
pub fn best_available() -> Tier {
    ALL_TIERS
        .into_iter()
        .rev()
        .find(|t| t.is_available())
        .unwrap_or(Tier::Swar)
}

/// Every tier that can run on this host, ascending — what the
/// tier-parameterized conformance suites iterate over.
pub fn reachable_tiers() -> Vec<Tier> {
    ALL_TIERS.into_iter().filter(|t| t.is_available()).collect()
}

/// CPU features relevant to tier selection that this host actually has
/// (recorded in the run report's host block).
pub fn detected_features() -> Vec<&'static str> {
    let mut features = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        for (name, present) in [
            ("sse2", is_x86_feature_detected!("sse2")),
            ("ssse3", is_x86_feature_detected!("ssse3")),
            ("sse4.2", is_x86_feature_detected!("sse4.2")),
            ("popcnt", is_x86_feature_detected!("popcnt")),
            ("avx", is_x86_feature_detected!("avx")),
            ("avx2", is_x86_feature_detected!("avx2")),
            ("avx512f", is_x86_feature_detected!("avx512f")),
            ("avx512bw", is_x86_feature_detected!("avx512bw")),
            ("avx512vl", is_x86_feature_detected!("avx512vl")),
        ] {
            if present {
                features.push(name);
            }
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            features.push("neon");
        }
    }
    features
}

thread_local! {
    static TIER_OVERRIDE: Cell<Option<Tier>> = const { Cell::new(None) };
}

/// `(resolved tier, requested spec)` from `AGGCLUST_SIMD`, read once.
static ENV_TIER: OnceLock<(Tier, String)> = OnceLock::new();

fn env_tier() -> &'static (Tier, String) {
    ENV_TIER.get_or_init(|| {
        let spec = std::env::var("AGGCLUST_SIMD").unwrap_or_default();
        let trimmed = spec.trim().to_ascii_lowercase();
        let requested = if trimmed.is_empty() {
            "auto".to_string()
        } else {
            trimmed
        };
        let tier = match requested.as_str() {
            "auto" => best_available(),
            name => match Tier::from_name(name) {
                Some(t) if t.is_available() => t,
                Some(t) => {
                    crate::warn!(
                        "AGGCLUST_SIMD tier is not available on this host; using detection",
                        requested = t.name(),
                        selected = best_available().name()
                    );
                    best_available()
                }
                None => {
                    crate::warn!(
                        "unknown AGGCLUST_SIMD value; expected auto|scalar|swar|sse2|avx2|avx512|neon",
                        requested = requested.as_str(),
                        selected = best_available().name()
                    );
                    best_available()
                }
            },
        };
        (tier, requested)
    })
}

/// The tier new [`crate::kernels::LabelMatrix`] builds will use on this
/// thread: scoped override > `AGGCLUST_SIMD` > detection.
pub fn selected() -> Tier {
    if let Some(t) = TIER_OVERRIDE.get() {
        return t;
    }
    env_tier().0
}

/// What the user asked for: the `AGGCLUST_SIMD` value, or `"auto"`.
pub fn requested() -> &'static str {
    &env_tier().1
}

/// Run `f` with the dispatch tier pinned to `tier` on the current thread,
/// restoring the previous selection afterwards (also on panic). Matrices
/// *built* inside `f` keep the forced tier for their whole lifetime; the
/// override does not retroactively change existing matrices. Intended for
/// the conformance suites and tier-vs-tier benchmarks; production callers
/// should use the `AGGCLUST_SIMD` environment variable.
///
/// # Panics
/// Panics if `tier` cannot run on this host (forcing it would execute
/// illegal instructions); iterate [`reachable_tiers`] instead of
/// [`ALL_TIERS`].
pub fn with_forced_tier<R>(tier: Tier, f: impl FnOnce() -> R) -> R {
    assert!(
        tier.is_available(),
        "tier {} is not available on this host",
        tier.name()
    );
    struct Restore(Option<Tier>);
    impl Drop for Restore {
        fn drop(&mut self) {
            TIER_OVERRIDE.set(self.0);
        }
    }
    let _restore = Restore(TIER_OVERRIDE.replace(Some(tier)));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universal_tiers_are_always_available() {
        assert!(Tier::Scalar.is_available());
        assert!(Tier::Swar.is_available());
        assert!(reachable_tiers().contains(&Tier::Scalar));
        assert!(reachable_tiers().contains(&Tier::Swar));
        assert!(best_available() >= Tier::Swar);
    }

    #[test]
    fn names_and_codes_round_trip() {
        for tier in ALL_TIERS {
            assert_eq!(Tier::from_name(tier.name()), Some(tier));
            assert_eq!(tier_code_name(tier.code()), tier.name());
        }
        assert_eq!(tier_code_name(0), "none");
        assert_eq!(Tier::from_name("auto"), None);
    }

    #[test]
    fn forced_tier_is_scoped_and_restored() {
        let outer = selected();
        let inner = with_forced_tier(Tier::Scalar, selected);
        assert_eq!(inner, Tier::Scalar);
        assert_eq!(selected(), outer);
        // Nested overrides unwind in order.
        with_forced_tier(Tier::Swar, || {
            assert_eq!(selected(), Tier::Swar);
            with_forced_tier(Tier::Scalar, || assert_eq!(selected(), Tier::Scalar));
            assert_eq!(selected(), Tier::Swar);
        });
    }
}
