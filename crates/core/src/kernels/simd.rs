//! `#[target_feature]` SIMD implementations of the disagreement kernels,
//! plus the per-lane scalar reference tier (DESIGN.md §6g).
//!
//! ## Layout contract (shared with [`crate::kernels::LabelMatrix`])
//!
//! * Every label row occupies exactly `stride` consecutive `u64` words,
//!   where `stride` is a multiple of [`crate::kernels::STRIDE_WORDS`]
//!   (4 words — one 256-bit vector). Words past the row's logical
//!   `words_per_row` are **zero in every row**, so a vector op covering
//!   them sees equal (zero ⊕ zero) lanes and counts nothing.
//! * `valid` holds one *full-lane* mask word per row word: every bit of a
//!   real lane set, every bit of a padding lane clear. Missing-lane
//!   counts AND against it, so padding can never count as missing.
//!
//! ## Safety argument
//!
//! Every `unsafe fn` here is unsafe for exactly one reason: it compiles
//! with `#[target_feature(enable = ...)]`, so calling it on a CPU without
//! that feature is undefined behavior (illegal instruction). There is no
//! pointer arithmetic beyond in-bounds slice indexing (all accesses go
//! through safe slice ops; the intrinsics take unaligned pointers derived
//! from in-bounds subslices). The single call-site rule: a tier's kernels
//! are only reachable through a [`super::dispatch::Tier`] that
//! [`super::dispatch::Tier::is_available`] confirmed on this host, which
//! is exactly the required feature check.
//!
//! ## Counting scheme
//!
//! A vector compare (`cmpeq` on 16- or 32-bit lanes) turns each lane into
//! all-ones (equal) or all-zeros (different); `movemask` (x86) collapses
//! that to one bit per byte, so each differing `u16` lane contributes
//! exactly 2 set bits (4 for `u32` lanes) to the inverted mask, and one
//! `popcnt` per vector plus a final shift yields the exact lane count —
//! the "vectorized compare + masked popcount reduction". NEON has no
//! movemask; the lanes are shifted down to bit 0 and accumulated per lane
//! (flushed well before a `u16` lane could saturate), then horizontally
//! added with `vaddlv`.

// The scalar tier: one lane at a time, no SWAR tricks — a third
// independent implementation (after SWAR and the per-clustering
// reference walks) that the differential suite can force via
// `AGGCLUST_SIMD=scalar`.

/// Per-lane scalar separation count between two rows of `width`-bit lanes.
pub fn sep_pair_scalar(a: &[u64], b: &[u64], lane_bits: usize) -> u32 {
    let lanes = 64 / lane_bits;
    let mask = (1u128 << lane_bits) as u64 - 1;
    let mut count = 0u32;
    for (&x, &y) in a.iter().zip(b) {
        for lane in 0..lanes {
            let shift = lane * lane_bits;
            if (x >> shift) & mask != (y >> shift) & mask {
                count += 1;
            }
        }
    }
    count
}

/// Per-lane scalar `(separated, missing)` counts (see
/// [`crate::kernels::LabelMatrix::sep_missing`]).
pub fn sep_missing_scalar(a: &[u64], b: &[u64], valid: &[u64], lane_bits: usize) -> (u32, u32) {
    let lanes = 64 / lane_bits;
    let mask = (1u128 << lane_bits) as u64 - 1;
    let (mut sep, mut missing) = (0u32, 0u32);
    for ((&x, &y), &ok) in a.iter().zip(b).zip(valid) {
        for lane in 0..lanes {
            let shift = lane * lane_bits;
            if (ok >> shift) & mask == 0 {
                continue; // padding lane
            }
            let (cx, cy) = ((x >> shift) & mask, (y >> shift) & mask);
            if cx == 0 || cy == 0 {
                missing += 1;
            } else if cx != cy {
                sep += 1;
            }
        }
    }
    (sep, missing)
}

#[cfg(target_arch = "x86_64")]
pub mod x86 {
    //! SSE2+POPCNT, AVX2, and AVX-512 kernels. All loads are unaligned
    //! (`loadu`) from in-bounds `&[u64]` subslices. The AVX-512 tier
    //! (F + BW + VL) skips the movemask step: `cmpneq` writes one bit per
    //! *lane* straight into a mask register, so a single `popcnt` counts
    //! lanes with no post-shift, and the 512-bit compare covers two
    //! stride-4 rows at once.
    use core::arch::x86_64::*;

    /// Differing-lane bit count of one 256-bit group: 2 bits per
    /// differing `u16` lane, 0 for equal (and padding) lanes.
    ///
    /// # Safety
    /// Requires AVX2. `a` and `b` must each hold ≥ 4 readable words.
    #[inline]
    #[target_feature(enable = "avx2,popcnt")]
    unsafe fn neq16_bits_avx2(a: *const u64, b: *const u64) -> u32 {
        // SAFETY: caller guarantees 4 in-bounds words at both pointers;
        // loadu has no alignment requirement.
        let va = _mm256_loadu_si256(a as *const __m256i);
        let vb = _mm256_loadu_si256(b as *const __m256i);
        let eq = _mm256_cmpeq_epi16(_mm256_xor_si256(va, vb), _mm256_setzero_si256());
        !(_mm256_movemask_epi8(eq) as u32)
    }

    /// Batch row kernel, AVX2, `u16` lanes: `out[i] = sep(a, rows[i])`.
    /// `rows` holds `out.len()` consecutive `stride`-word rows.
    ///
    /// # Safety
    /// Requires AVX2 (guaranteed by tier selection). `stride` must be a
    /// positive multiple of 4, `a.len() == stride`, and
    /// `rows.len() == out.len() * stride`.
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn sep_rows16_avx2(a: &[u64], rows: &[u64], stride: usize, out: &mut [u32]) {
        debug_assert_eq!(a.len(), stride);
        debug_assert_eq!(rows.len(), out.len() * stride);
        if stride == 4 {
            // The dominant shape (m ≤ 16 clusterings): the fixed row is
            // one register, each v row one load + compare + popcount.
            // SAFETY: stride == 4 == a.len(), so 4 words are in bounds.
            let va = _mm256_loadu_si256(a.as_ptr() as *const __m256i);
            for (o, row) in out.iter_mut().zip(rows.chunks_exact(4)) {
                // SAFETY: chunks_exact(4) yields 4 in-bounds words.
                let vb = _mm256_loadu_si256(row.as_ptr() as *const __m256i);
                let eq = _mm256_cmpeq_epi16(_mm256_xor_si256(va, vb), _mm256_setzero_si256());
                *o = (!(_mm256_movemask_epi8(eq) as u32)).count_ones() / 2;
            }
            return;
        }
        for (o, row) in out.iter_mut().zip(rows.chunks_exact(stride)) {
            let mut neq_bits = 0u32;
            for g in (0..stride).step_by(4) {
                // SAFETY: g + 4 <= stride == a.len() == row.len().
                neq_bits += neq16_bits_avx2(a[g..].as_ptr(), row[g..].as_ptr()).count_ones();
            }
            *o = neq_bits / 2;
        }
    }

    /// Batch row kernel, AVX2, `u32` lanes (4 bits per differing lane).
    ///
    /// # Safety
    /// Same contract as [`sep_rows16_avx2`].
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn sep_rows32_avx2(a: &[u64], rows: &[u64], stride: usize, out: &mut [u32]) {
        debug_assert_eq!(a.len(), stride);
        debug_assert_eq!(rows.len(), out.len() * stride);
        for (o, row) in out.iter_mut().zip(rows.chunks_exact(stride)) {
            let mut neq_bits = 0u32;
            for g in (0..stride).step_by(4) {
                // SAFETY: g + 4 <= stride bounds both subslices.
                let va = _mm256_loadu_si256(a[g..].as_ptr() as *const __m256i);
                let vb = _mm256_loadu_si256(row[g..].as_ptr() as *const __m256i);
                let eq = _mm256_cmpeq_epi32(_mm256_xor_si256(va, vb), _mm256_setzero_si256());
                neq_bits += (!(_mm256_movemask_epi8(eq) as u32)).count_ones();
            }
            *o = neq_bits / 4;
        }
    }

    /// `(separated, missing)` lane counts, AVX2, `u16` lanes. `valid`
    /// holds full-lane masks (padding lanes all-zero).
    ///
    /// # Safety
    /// Requires AVX2. `a`, `b`, and `valid` must each hold exactly
    /// `stride` words, `stride` a positive multiple of 4.
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn sep_missing16_avx2(
        a: &[u64],
        b: &[u64],
        valid: &[u64],
        stride: usize,
    ) -> (u32, u32) {
        debug_assert!(a.len() == stride && b.len() == stride && valid.len() == stride);
        let zero = _mm256_setzero_si256();
        let (mut sep_bits, mut miss_bits) = (0u32, 0u32);
        for g in (0..stride).step_by(4) {
            // SAFETY: g + 4 <= stride bounds all three subslices.
            let va = _mm256_loadu_si256(a[g..].as_ptr() as *const __m256i);
            let vb = _mm256_loadu_si256(b[g..].as_ptr() as *const __m256i);
            let vv = _mm256_loadu_si256(valid[g..].as_ptr() as *const __m256i);
            let zx = _mm256_cmpeq_epi16(va, zero);
            let zy = _mm256_cmpeq_epi16(vb, zero);
            let miss = _mm256_and_si256(_mm256_or_si256(zx, zy), vv);
            let eq = _mm256_cmpeq_epi16(_mm256_xor_si256(va, vb), zero);
            let mm_miss = _mm256_movemask_epi8(miss) as u32;
            let mm_eq = _mm256_movemask_epi8(eq) as u32;
            miss_bits += mm_miss.count_ones();
            sep_bits += (!mm_eq & !mm_miss).count_ones();
        }
        (sep_bits / 2, miss_bits / 2)
    }

    /// `(separated, missing)` lane counts, AVX2, `u32` lanes.
    ///
    /// # Safety
    /// Same contract as [`sep_missing16_avx2`].
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn sep_missing32_avx2(
        a: &[u64],
        b: &[u64],
        valid: &[u64],
        stride: usize,
    ) -> (u32, u32) {
        debug_assert!(a.len() == stride && b.len() == stride && valid.len() == stride);
        let zero = _mm256_setzero_si256();
        let (mut sep_bits, mut miss_bits) = (0u32, 0u32);
        for g in (0..stride).step_by(4) {
            // SAFETY: g + 4 <= stride bounds all three subslices.
            let va = _mm256_loadu_si256(a[g..].as_ptr() as *const __m256i);
            let vb = _mm256_loadu_si256(b[g..].as_ptr() as *const __m256i);
            let vv = _mm256_loadu_si256(valid[g..].as_ptr() as *const __m256i);
            let zx = _mm256_cmpeq_epi32(va, zero);
            let zy = _mm256_cmpeq_epi32(vb, zero);
            let miss = _mm256_and_si256(_mm256_or_si256(zx, zy), vv);
            let eq = _mm256_cmpeq_epi32(_mm256_xor_si256(va, vb), zero);
            let mm_miss = _mm256_movemask_epi8(miss) as u32;
            let mm_eq = _mm256_movemask_epi8(eq) as u32;
            miss_bits += mm_miss.count_ones();
            sep_bits += (!mm_eq & !mm_miss).count_ones();
        }
        (sep_bits / 4, miss_bits / 4)
    }

    /// Batch row kernel, AVX-512, `u16` lanes. At the dominant
    /// `stride == 4` shape the fixed row is broadcast into both 256-bit
    /// halves of one zmm register and each 512-bit `cmpneq` compares **two**
    /// consecutive `v` rows, yielding a 32-bit lane mask split 16/16
    /// between them.
    ///
    /// # Safety
    /// Requires AVX-512 F, BW, and VL (guaranteed by tier selection).
    /// Same slice contract as [`sep_rows16_avx2`].
    #[target_feature(enable = "avx512f,avx512bw,avx512vl,popcnt")]
    pub unsafe fn sep_rows16_avx512(a: &[u64], rows: &[u64], stride: usize, out: &mut [u32]) {
        debug_assert_eq!(a.len(), stride);
        debug_assert_eq!(rows.len(), out.len() * stride);
        if stride == 4 {
            // SAFETY: stride == 4 == a.len(), so 4 words are in bounds.
            let a256 = _mm256_loadu_si256(a.as_ptr() as *const __m256i);
            let va = _mm512_broadcast_i64x4(a256);
            let mut out_pairs = out.chunks_exact_mut(2);
            let mut row_pairs = rows.chunks_exact(8);
            for (o2, pair) in (&mut out_pairs).zip(&mut row_pairs) {
                // SAFETY: chunks_exact(8) yields 8 in-bounds words (2 rows).
                let vr = _mm512_loadu_si512(pair.as_ptr() as *const __m512i);
                let m: u32 = _mm512_cmpneq_epi16_mask(va, vr);
                o2[0] = (m & 0xffff).count_ones();
                o2[1] = (m >> 16).count_ones();
            }
            if let Some(o) = out_pairs.into_remainder().first_mut() {
                let row = row_pairs.remainder();
                // SAFETY: the remainder is exactly the final 4-word row.
                let vb = _mm256_loadu_si256(row.as_ptr() as *const __m256i);
                *o = u32::from(_mm256_cmpneq_epi16_mask(a256, vb)).count_ones();
            }
            return;
        }
        for (o, row) in out.iter_mut().zip(rows.chunks_exact(stride)) {
            let mut lanes = 0u32;
            for g in (0..stride).step_by(4) {
                // SAFETY: g + 4 <= stride bounds both subslices.
                let va = _mm256_loadu_si256(a[g..].as_ptr() as *const __m256i);
                let vb = _mm256_loadu_si256(row[g..].as_ptr() as *const __m256i);
                lanes += u32::from(_mm256_cmpneq_epi16_mask(va, vb)).count_ones();
            }
            *o = lanes;
        }
    }

    /// Batch row kernel, AVX-512, `u32` lanes (two rows per 512-bit
    /// compare at `stride == 4`, 8 mask bits per row).
    ///
    /// # Safety
    /// Same contract as [`sep_rows16_avx512`].
    #[target_feature(enable = "avx512f,avx512bw,avx512vl,popcnt")]
    pub unsafe fn sep_rows32_avx512(a: &[u64], rows: &[u64], stride: usize, out: &mut [u32]) {
        debug_assert_eq!(a.len(), stride);
        debug_assert_eq!(rows.len(), out.len() * stride);
        if stride == 4 {
            // SAFETY: stride == 4 == a.len(), so 4 words are in bounds.
            let a256 = _mm256_loadu_si256(a.as_ptr() as *const __m256i);
            let va = _mm512_broadcast_i64x4(a256);
            let mut out_pairs = out.chunks_exact_mut(2);
            let mut row_pairs = rows.chunks_exact(8);
            for (o2, pair) in (&mut out_pairs).zip(&mut row_pairs) {
                // SAFETY: chunks_exact(8) yields 8 in-bounds words (2 rows).
                let vr = _mm512_loadu_si512(pair.as_ptr() as *const __m512i);
                let m = u32::from(_mm512_cmpneq_epi32_mask(va, vr));
                o2[0] = (m & 0xff).count_ones();
                o2[1] = (m >> 8).count_ones();
            }
            if let Some(o) = out_pairs.into_remainder().first_mut() {
                let row = row_pairs.remainder();
                // SAFETY: the remainder is exactly the final 4-word row.
                let vb = _mm256_loadu_si256(row.as_ptr() as *const __m256i);
                *o = u32::from(_mm256_cmpneq_epi32_mask(a256, vb)).count_ones();
            }
            return;
        }
        for (o, row) in out.iter_mut().zip(rows.chunks_exact(stride)) {
            let mut lanes = 0u32;
            for g in (0..stride).step_by(4) {
                // SAFETY: g + 4 <= stride bounds both subslices.
                let va = _mm256_loadu_si256(a[g..].as_ptr() as *const __m256i);
                let vb = _mm256_loadu_si256(row[g..].as_ptr() as *const __m256i);
                lanes += u32::from(_mm256_cmpneq_epi32_mask(va, vb)).count_ones();
            }
            *o = lanes;
        }
    }

    /// `(separated, missing)` lane counts, AVX-512, `u16` lanes: the
    /// zero/valid/inequality tests land directly in mask registers, so
    /// the per-group bookkeeping is three popcount-ready bitmask ops.
    ///
    /// # Safety
    /// Requires AVX-512 F, BW, and VL. Same slice contract as
    /// [`sep_missing16_avx2`].
    #[target_feature(enable = "avx512f,avx512bw,avx512vl,popcnt")]
    pub unsafe fn sep_missing16_avx512(
        a: &[u64],
        b: &[u64],
        valid: &[u64],
        stride: usize,
    ) -> (u32, u32) {
        debug_assert!(a.len() == stride && b.len() == stride && valid.len() == stride);
        let zero = _mm256_setzero_si256();
        let (mut sep, mut missing) = (0u32, 0u32);
        for g in (0..stride).step_by(4) {
            // SAFETY: g + 4 <= stride bounds all three subslices.
            let va = _mm256_loadu_si256(a[g..].as_ptr() as *const __m256i);
            let vb = _mm256_loadu_si256(b[g..].as_ptr() as *const __m256i);
            let vv = _mm256_loadu_si256(valid[g..].as_ptr() as *const __m256i);
            let za = _mm256_cmpeq_epi16_mask(va, zero);
            let zb = _mm256_cmpeq_epi16_mask(vb, zero);
            let ok = _mm256_cmpneq_epi16_mask(vv, zero);
            let miss = (za | zb) & ok;
            let neq = _mm256_cmpneq_epi16_mask(va, vb);
            missing += u32::from(miss).count_ones();
            sep += u32::from(neq & !miss).count_ones();
        }
        (sep, missing)
    }

    /// `(separated, missing)` lane counts, AVX-512, `u32` lanes.
    ///
    /// # Safety
    /// Same contract as [`sep_missing16_avx512`].
    #[target_feature(enable = "avx512f,avx512bw,avx512vl,popcnt")]
    pub unsafe fn sep_missing32_avx512(
        a: &[u64],
        b: &[u64],
        valid: &[u64],
        stride: usize,
    ) -> (u32, u32) {
        debug_assert!(a.len() == stride && b.len() == stride && valid.len() == stride);
        let zero = _mm256_setzero_si256();
        let (mut sep, mut missing) = (0u32, 0u32);
        for g in (0..stride).step_by(4) {
            // SAFETY: g + 4 <= stride bounds all three subslices.
            let va = _mm256_loadu_si256(a[g..].as_ptr() as *const __m256i);
            let vb = _mm256_loadu_si256(b[g..].as_ptr() as *const __m256i);
            let vv = _mm256_loadu_si256(valid[g..].as_ptr() as *const __m256i);
            let za = _mm256_cmpeq_epi32_mask(va, zero);
            let zb = _mm256_cmpeq_epi32_mask(vb, zero);
            let ok = _mm256_cmpneq_epi32_mask(vv, zero);
            let miss = (za | zb) & ok;
            let neq = _mm256_cmpneq_epi32_mask(va, vb);
            missing += u32::from(miss).count_ones();
            sep += u32::from(neq & !miss).count_ones();
        }
        (sep, missing)
    }

    /// Batch row kernel, SSE2+POPCNT, `u16` lanes: two words per 128-bit
    /// compare, `movemask` 16 bits, hardware `popcnt` reduction.
    ///
    /// # Safety
    /// Requires SSE2 and POPCNT (guaranteed by tier selection). Same
    /// slice contract as [`sep_rows16_avx2`] (`stride` a positive
    /// multiple of 4, so also of 2).
    #[target_feature(enable = "sse2,popcnt")]
    pub unsafe fn sep_rows16_sse2(a: &[u64], rows: &[u64], stride: usize, out: &mut [u32]) {
        debug_assert_eq!(a.len(), stride);
        debug_assert_eq!(rows.len(), out.len() * stride);
        for (o, row) in out.iter_mut().zip(rows.chunks_exact(stride)) {
            let mut neq_bits = 0u32;
            for g in (0..stride).step_by(2) {
                // SAFETY: g + 2 <= stride bounds both subslices.
                let va = _mm_loadu_si128(a[g..].as_ptr() as *const __m128i);
                let vb = _mm_loadu_si128(row[g..].as_ptr() as *const __m128i);
                let eq = _mm_cmpeq_epi16(_mm_xor_si128(va, vb), _mm_setzero_si128());
                neq_bits += (!(_mm_movemask_epi8(eq) as u32) & 0xffff).count_ones();
            }
            *o = neq_bits / 2;
        }
    }

    /// Batch row kernel, SSE2+POPCNT, `u32` lanes.
    ///
    /// # Safety
    /// Same contract as [`sep_rows16_sse2`].
    #[target_feature(enable = "sse2,popcnt")]
    pub unsafe fn sep_rows32_sse2(a: &[u64], rows: &[u64], stride: usize, out: &mut [u32]) {
        debug_assert_eq!(a.len(), stride);
        debug_assert_eq!(rows.len(), out.len() * stride);
        for (o, row) in out.iter_mut().zip(rows.chunks_exact(stride)) {
            let mut neq_bits = 0u32;
            for g in (0..stride).step_by(2) {
                // SAFETY: g + 2 <= stride bounds both subslices.
                let va = _mm_loadu_si128(a[g..].as_ptr() as *const __m128i);
                let vb = _mm_loadu_si128(row[g..].as_ptr() as *const __m128i);
                let eq = _mm_cmpeq_epi32(_mm_xor_si128(va, vb), _mm_setzero_si128());
                neq_bits += (!(_mm_movemask_epi8(eq) as u32) & 0xffff).count_ones();
            }
            *o = neq_bits / 4;
        }
    }

    /// `(separated, missing)` lane counts, SSE2+POPCNT, `u16` lanes.
    ///
    /// # Safety
    /// Requires SSE2 and POPCNT. Same slice contract as
    /// [`sep_missing16_avx2`].
    #[target_feature(enable = "sse2,popcnt")]
    pub unsafe fn sep_missing16_sse2(
        a: &[u64],
        b: &[u64],
        valid: &[u64],
        stride: usize,
    ) -> (u32, u32) {
        debug_assert!(a.len() == stride && b.len() == stride && valid.len() == stride);
        let zero = _mm_setzero_si128();
        let (mut sep_bits, mut miss_bits) = (0u32, 0u32);
        for g in (0..stride).step_by(2) {
            // SAFETY: g + 2 <= stride bounds all three subslices.
            let va = _mm_loadu_si128(a[g..].as_ptr() as *const __m128i);
            let vb = _mm_loadu_si128(b[g..].as_ptr() as *const __m128i);
            let vv = _mm_loadu_si128(valid[g..].as_ptr() as *const __m128i);
            let zx = _mm_cmpeq_epi16(va, zero);
            let zy = _mm_cmpeq_epi16(vb, zero);
            let miss = _mm_and_si128(_mm_or_si128(zx, zy), vv);
            let eq = _mm_cmpeq_epi16(_mm_xor_si128(va, vb), zero);
            let mm_miss = _mm_movemask_epi8(miss) as u32;
            let mm_eq = _mm_movemask_epi8(eq) as u32;
            miss_bits += mm_miss.count_ones();
            sep_bits += (!mm_eq & !mm_miss & 0xffff).count_ones();
        }
        (sep_bits / 2, miss_bits / 2)
    }

    /// `(separated, missing)` lane counts, SSE2+POPCNT, `u32` lanes.
    ///
    /// # Safety
    /// Same contract as [`sep_missing16_sse2`].
    #[target_feature(enable = "sse2,popcnt")]
    pub unsafe fn sep_missing32_sse2(
        a: &[u64],
        b: &[u64],
        valid: &[u64],
        stride: usize,
    ) -> (u32, u32) {
        debug_assert!(a.len() == stride && b.len() == stride && valid.len() == stride);
        let zero = _mm_setzero_si128();
        let (mut sep_bits, mut miss_bits) = (0u32, 0u32);
        for g in (0..stride).step_by(2) {
            // SAFETY: g + 2 <= stride bounds all three subslices.
            let va = _mm_loadu_si128(a[g..].as_ptr() as *const __m128i);
            let vb = _mm_loadu_si128(b[g..].as_ptr() as *const __m128i);
            let vv = _mm_loadu_si128(valid[g..].as_ptr() as *const __m128i);
            let zx = _mm_cmpeq_epi32(va, zero);
            let zy = _mm_cmpeq_epi32(vb, zero);
            let miss = _mm_and_si128(_mm_or_si128(zx, zy), vv);
            let eq = _mm_cmpeq_epi32(_mm_xor_si128(va, vb), zero);
            let mm_miss = _mm_movemask_epi8(miss) as u32;
            let mm_eq = _mm_movemask_epi8(eq) as u32;
            miss_bits += mm_miss.count_ones();
            sep_bits += (!mm_eq & !mm_miss & 0xffff).count_ones();
        }
        (sep_bits / 4, miss_bits / 4)
    }
}

#[cfg(target_arch = "aarch64")]
pub mod neon {
    //! NEON kernels: 128-bit compares, per-lane accumulators flushed via
    //! `vaddlv` widening horizontal adds (NEON has no movemask).
    use core::arch::aarch64::*;

    /// Groups (of 2 words / 8 `u16` lanes) between accumulator flushes:
    /// each lane gains at most 1 per group, so `u16` lane counters stay
    /// exact far below this bound.
    const FLUSH_GROUPS: usize = 16_384;

    /// Batch row kernel, NEON, `u16` lanes.
    ///
    /// # Safety
    /// Requires NEON (guaranteed by tier selection). `stride` must be a
    /// positive multiple of 4 (so also of 2), `a.len() == stride`, and
    /// `rows.len() == out.len() * stride`.
    #[target_feature(enable = "neon")]
    pub unsafe fn sep_rows16_neon(a: &[u64], rows: &[u64], stride: usize, out: &mut [u32]) {
        debug_assert_eq!(a.len(), stride);
        debug_assert_eq!(rows.len(), out.len() * stride);
        for (o, row) in out.iter_mut().zip(rows.chunks_exact(stride)) {
            let mut count = 0u32;
            let mut acc = vdupq_n_u16(0);
            let mut pending = 0usize;
            for g in (0..stride).step_by(2) {
                // SAFETY: g + 2 <= stride bounds both subslices.
                let va = vld1q_u16(a[g..].as_ptr() as *const u16);
                let vb = vld1q_u16(row[g..].as_ptr() as *const u16);
                let neq = vmvnq_u16(vceqq_u16(va, vb));
                acc = vaddq_u16(acc, vshrq_n_u16::<15>(neq));
                pending += 1;
                if pending == FLUSH_GROUPS {
                    count += vaddlvq_u16(acc);
                    acc = vdupq_n_u16(0);
                    pending = 0;
                }
            }
            *o = count + vaddlvq_u16(acc);
        }
    }

    /// Batch row kernel, NEON, `u32` lanes.
    ///
    /// # Safety
    /// Same contract as [`sep_rows16_neon`].
    #[target_feature(enable = "neon")]
    pub unsafe fn sep_rows32_neon(a: &[u64], rows: &[u64], stride: usize, out: &mut [u32]) {
        debug_assert_eq!(a.len(), stride);
        debug_assert_eq!(rows.len(), out.len() * stride);
        for (o, row) in out.iter_mut().zip(rows.chunks_exact(stride)) {
            let mut count = 0u64;
            let mut acc = vdupq_n_u32(0);
            let mut pending = 0usize;
            for g in (0..stride).step_by(2) {
                // SAFETY: g + 2 <= stride bounds both subslices.
                let va = vld1q_u32(a[g..].as_ptr() as *const u32);
                let vb = vld1q_u32(row[g..].as_ptr() as *const u32);
                let neq = vmvnq_u32(vceqq_u32(va, vb));
                acc = vaddq_u32(acc, vshrq_n_u32::<31>(neq));
                pending += 1;
                if pending == FLUSH_GROUPS {
                    count += vaddlvq_u32(acc);
                    acc = vdupq_n_u32(0);
                    pending = 0;
                }
            }
            *o = (count + vaddlvq_u32(acc)) as u32;
        }
    }

    /// `(separated, missing)` lane counts, NEON, `u16` lanes.
    ///
    /// # Safety
    /// Requires NEON. `a`, `b`, and `valid` must each hold exactly
    /// `stride` words, `stride` a positive multiple of 4.
    #[target_feature(enable = "neon")]
    pub unsafe fn sep_missing16_neon(
        a: &[u64],
        b: &[u64],
        valid: &[u64],
        stride: usize,
    ) -> (u32, u32) {
        debug_assert!(a.len() == stride && b.len() == stride && valid.len() == stride);
        let (mut sep, mut missing) = (0u32, 0u32);
        let mut sep_acc = vdupq_n_u16(0);
        let mut miss_acc = vdupq_n_u16(0);
        let mut pending = 0usize;
        for g in (0..stride).step_by(2) {
            // SAFETY: g + 2 <= stride bounds all three subslices.
            let va = vld1q_u16(a[g..].as_ptr() as *const u16);
            let vb = vld1q_u16(b[g..].as_ptr() as *const u16);
            let vv = vld1q_u16(valid[g..].as_ptr() as *const u16);
            let zero = vdupq_n_u16(0);
            let miss = vandq_u16(vorrq_u16(vceqq_u16(va, zero), vceqq_u16(vb, zero)), vv);
            let neq = vmvnq_u16(vceqq_u16(va, vb));
            let sep_lanes = vbicq_u16(neq, miss); // neq AND NOT miss
            sep_acc = vaddq_u16(sep_acc, vshrq_n_u16::<15>(sep_lanes));
            miss_acc = vaddq_u16(miss_acc, vshrq_n_u16::<15>(miss));
            pending += 1;
            if pending == FLUSH_GROUPS {
                sep += vaddlvq_u16(sep_acc);
                missing += vaddlvq_u16(miss_acc);
                sep_acc = vdupq_n_u16(0);
                miss_acc = vdupq_n_u16(0);
                pending = 0;
            }
        }
        (sep + vaddlvq_u16(sep_acc), missing + vaddlvq_u16(miss_acc))
    }

    /// `(separated, missing)` lane counts, NEON, `u32` lanes.
    ///
    /// # Safety
    /// Same contract as [`sep_missing16_neon`].
    #[target_feature(enable = "neon")]
    pub unsafe fn sep_missing32_neon(
        a: &[u64],
        b: &[u64],
        valid: &[u64],
        stride: usize,
    ) -> (u32, u32) {
        debug_assert!(a.len() == stride && b.len() == stride && valid.len() == stride);
        let (mut sep, mut missing) = (0u64, 0u64);
        let mut sep_acc = vdupq_n_u32(0);
        let mut miss_acc = vdupq_n_u32(0);
        let mut pending = 0usize;
        for g in (0..stride).step_by(2) {
            // SAFETY: g + 2 <= stride bounds all three subslices.
            let va = vld1q_u32(a[g..].as_ptr() as *const u32);
            let vb = vld1q_u32(b[g..].as_ptr() as *const u32);
            let vv = vld1q_u32(valid[g..].as_ptr() as *const u32);
            let zero = vdupq_n_u32(0);
            let miss = vandq_u32(vorrq_u32(vceqq_u32(va, zero), vceqq_u32(vb, zero)), vv);
            let neq = vmvnq_u32(vceqq_u32(va, vb));
            let sep_lanes = vbicq_u32(neq, miss);
            sep_acc = vaddq_u32(sep_acc, vshrq_n_u32::<31>(sep_lanes));
            miss_acc = vaddq_u32(miss_acc, vshrq_n_u32::<31>(miss));
            pending += 1;
            if pending == FLUSH_GROUPS {
                sep += vaddlvq_u32(sep_acc);
                missing += vaddlvq_u32(miss_acc);
                sep_acc = vdupq_n_u32(0);
                miss_acc = vdupq_n_u32(0);
                pending = 0;
            }
        }
        (
            (sep + vaddlvq_u32(sep_acc)) as u32,
            (missing + vaddlvq_u32(miss_acc)) as u32,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_pair_counts_lanes_exactly() {
        // Two words of u16 lanes: [1,2,3,0] vs [1,9,3,0] → 1 differing.
        let a = [0x0000_0003_0002_0001u64, 0];
        let b = [0x0000_0003_0009_0001u64, 0];
        assert_eq!(sep_pair_scalar(&a, &b, 16), 1);
        assert_eq!(sep_pair_scalar(&a, &a, 16), 0);
        // u32 lanes: [1,2] vs [9,2] → 1 differing.
        let a = [0x0000_0002_0000_0001u64];
        let b = [0x0000_0002_0000_0009u64];
        assert_eq!(sep_pair_scalar(&a, &b, 32), 1);
    }

    #[test]
    fn scalar_missing_respects_valid_mask() {
        // One word, lanes [0, 5, 5, 7] vs [3, 0, 5, 8]; only the first
        // three lanes are valid.
        let a = [0x0007_0005_0005_0000u64];
        let b = [0x0008_0005_0000_0003u64];
        let valid = [0x0000_ffff_ffff_ffffu64];
        // lane0: a missing; lane1: b missing; lane2: equal; lane3 padding.
        assert_eq!(sep_missing_scalar(&a, &b, &valid, 16), (0, 2));
    }
}
