//! # aggclust-core
//!
//! A from-scratch implementation of **clustering aggregation** and
//! **correlation clustering** as defined by Gionis, Mannila and Tsaparas,
//! *"Clustering Aggregation"*, ICDE 2005.
//!
//! ## The problem
//!
//! Given `m` clusterings `C_1, ..., C_m` of the same `n` objects, find a
//! single clustering `C` minimizing the total number of *disagreements*
//! `D(C) = Σ_i d_V(C_i, C)`, where [`distance::disagreement_distance`]
//! `d_V(C, C')` counts the object pairs that one clustering puts together
//! and the other separates.
//!
//! The problem reduces to **correlation clustering**: summarize the inputs
//! into pairwise distances `X_uv ∈ [0, 1]` (the fraction of input clusterings
//! separating `u` and `v`) and minimize
//!
//! ```text
//! d(C) = Σ_{C(u)=C(v)} X_uv  +  Σ_{C(u)≠C(v)} (1 − X_uv).
//! ```
//!
//! Both problems are NP-complete; this crate implements the paper's five
//! algorithms, all but one parameter-free:
//!
//! | Algorithm | Module | Guarantee |
//! |---|---|---|
//! | `BestClustering` | [`algorithms::best`] | `2(1 − 1/m)`-approximation |
//! | `Balls(α)` | [`algorithms::balls`] | 3-approximation at `α = 1/4` |
//! | `Agglomerative` | [`algorithms::agglomerative`] | 2-approximation for `m = 3` |
//! | `Furthest` | [`algorithms::furthest`] | heuristic (furthest-first traversal) |
//! | `LocalSearch` | [`algorithms::local_search`] | local optimum; also a post-processor |
//! | `Sampling` | [`algorithms::sampling`] | scales any of the above to large `n` |
//!
//! ## Quick start
//!
//! ```
//! use aggclust_core::clustering::Clustering;
//! use aggclust_core::instance::{CorrelationInstance, MissingPolicy};
//! use aggclust_core::algorithms::agglomerative::agglomerative;
//!
//! // The worked example from Figure 1 of the paper: three clusterings of
//! // six objects.
//! let c1 = Clustering::from_labels(vec![0, 0, 1, 1, 2, 2]);
//! let c2 = Clustering::from_labels(vec![0, 1, 0, 1, 2, 3]);
//! let c3 = Clustering::from_labels(vec![0, 1, 0, 1, 2, 2]);
//!
//! let instance = CorrelationInstance::from_clusterings(&[c1, c2, c3]);
//! let aggregated = agglomerative(&instance.dense_oracle(), Default::default());
//!
//! // The optimal aggregate groups {v1,v3}, {v2,v4}, {v5,v6}.
//! assert_eq!(aggregated.num_clusters(), 3);
//! assert_eq!(aggregated.label(0), aggregated.label(2));
//! assert_eq!(aggregated.label(1), aggregated.label(3));
//! assert_eq!(aggregated.label(4), aggregated.label(5));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod algorithms;
pub mod assign;
pub mod clustering;
pub mod consensus;
pub mod cost;
pub mod distance;
pub mod error;
pub mod exact;
pub mod failpoint;
pub mod instance;
pub mod iofs;
pub mod kernels;
pub mod linkage;
pub mod parallel;
pub mod robust;
pub mod snapshot;
pub mod spill;
pub mod telemetry;
pub mod test_support;

/// Thin observability facade: one import (`use aggclust_core::obs;` or
/// `use aggclust_core::obs::*;`) brings in the span/event macros, the
/// [`telemetry::Collector`] plumbing, the metrics registry, and the
/// mockable [`telemetry::Clock`]. Downstream crates (cli, bench) use this
/// instead of reaching into [`telemetry`] piecemeal.
pub mod obs {
    pub use crate::kernels::dispatch as simd_dispatch;
    pub use crate::telemetry::{
        clear_collector, collector_active, current_tid, dispatch_event, host_report_json,
        install_collector, metrics, metrics_enabled, run_report_json, set_metrics_enabled,
        set_timing_clock, span_stats, timing_now_ns, Cadence, Clock, Collector, Counter, Event,
        Gauge, Heartbeat, JsonlSink, Level, MaxGauge, MemoryCollector, MetricsSnapshot,
        ProgressSink, SpanData, SpanGuard, SpanStats, SpanTiming, StderrSink, TeeCollector,
        TimingsSnapshot, Value,
    };
    pub use crate::{debug, error_event, event, info, span, trace, warn};
}

pub use clustering::{Clustering, PartialClustering};
pub use consensus::{aggregate, ConsensusBuilder, ConsensusResult, Warning};
pub use error::{AggError, AggResult};
pub use failpoint::{ArmedGuard, Fault, FaultPlan};
pub use instance::{CorrelationInstance, DenseOracle, DistanceOracle, MissingPolicy};
pub use robust::{
    CancelToken, MemCharge, MemGauge, ResourceBudget, RunBudget, RunOutcome, RunStatus,
};
pub use snapshot::{Checkpointer, RetryPolicy, Snapshot, SnapshotLoad};
pub use spill::{cleanup_spill_dir, SpillConfig, SpillError, SpilledOracle};
pub use telemetry::{Clock, Collector, Level, MetricsSnapshot};
