//! Generic agglomerative (hierarchical) clustering via the
//! nearest-neighbor-chain algorithm.
//!
//! This module is the shared engine behind the paper's AGGLOMERATIVE
//! aggregation algorithm (average linkage on `X_uv`, stop at ½ — see
//! [`crate::algorithms::agglomerative`]) and the vanilla hierarchical
//! baselines of Figure 3 (single / complete / average / Ward linkage on
//! Euclidean point distances, in `aggclust-baselines`).
//!
//! The NN-chain algorithm runs in `O(n²)` time and `O(n)` memory beyond the
//! condensed distance matrix, and produces the same dendrogram as the naive
//! `O(n³)` greedy procedure for every *reducible* linkage — which all four
//! Lance–Williams linkages used here are.

use std::sync::Arc;

use crate::clustering::Clustering;
use crate::instance::DistanceOracle;
use crate::parallel;
use crate::robust::{MemCharge, RunBudget, RunStatus};
use crate::snapshot::{AgglomerativeSnapshot, AlgorithmSnapshot, Checkpointer, MergeRecord};
use crate::telemetry;

/// Minimum matrix size before the nearest-neighbor lookups inside the
/// chain loop are chunked across worker threads; the per-step scan is
/// `O(n)`, so small instances are faster serial. The threshold cannot
/// change the dendrogram — the parallel arg-min reproduces the serial
/// strict-`<` scan exactly, earliest index on ties.
const NN_PAR_MIN: usize = 32_768;

/// Linkage criterion, expressed through Lance–Williams update coefficients.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LinkageMethod {
    /// `d(A∪B, C) = min(d(A,C), d(B,C))`.
    Single,
    /// `d(A∪B, C) = max(d(A,C), d(B,C))`.
    Complete,
    /// `d(A∪B, C) = (|A|·d(A,C) + |B|·d(B,C)) / (|A|+|B|)` (UPGMA).
    Average,
    /// Ward's minimum-variance criterion; the input matrix must contain
    /// *squared* Euclidean distances and returned heights are in the same
    /// squared scale.
    Ward,
}

impl LinkageMethod {
    /// Lance–Williams update for the distance from the merged cluster
    /// `A ∪ B` to another cluster `C`, given the three pre-merge distances
    /// and cluster sizes.
    #[inline]
    fn update(self, d_ac: f64, d_bc: f64, d_ab: f64, sa: f64, sb: f64, sc: f64) -> f64 {
        match self {
            LinkageMethod::Single => d_ac.min(d_bc),
            LinkageMethod::Complete => d_ac.max(d_bc),
            LinkageMethod::Average => (sa * d_ac + sb * d_bc) / (sa + sb),
            LinkageMethod::Ward => {
                let t = sa + sb + sc;
                ((sa + sc) * d_ac + (sb + sc) * d_bc - sc * d_ab) / t
            }
        }
    }
}

/// A symmetric distance matrix in condensed (upper-triangle) form, the
/// working storage for [`linkage`]. The algorithm mutates it in place.
#[derive(Clone, Debug)]
pub struct CondensedMatrix {
    n: usize,
    data: Vec<f64>,
    // Keeps the matrix's bytes on the owning budget's MemGauge for as long
    // as the matrix lives; None for ungoverned constructions.
    charge: Option<Arc<MemCharge>>,
}

impl CondensedMatrix {
    /// Build from a distance function over pairs `u < v`, serially. Kept
    /// for stateful `FnMut` closures; prefer
    /// [`CondensedMatrix::from_fn_sync`] for pure distance functions.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for u in 0..n {
            for v in (u + 1)..n {
                data.push(f(u, v));
            }
        }
        CondensedMatrix {
            n,
            data,
            charge: None,
        }
    }

    /// Build from a pure distance function, filling the triangle in
    /// parallel row chunks. Same matrix as [`CondensedMatrix::from_fn`] at
    /// any thread count.
    pub fn from_fn_sync(n: usize, f: impl Fn(usize, usize) -> f64 + Sync) -> Self {
        CondensedMatrix {
            n,
            data: parallel::fill_condensed(n, f),
            charge: None,
        }
    }

    /// Copy the distances out of any [`DistanceOracle`] (in parallel),
    /// walking pairs in cache-blocked column bands so packed lazy oracles
    /// ([`crate::instance::ClusteringsOracle`]) stream their label rows
    /// cache-resident. Same matrix as a row-major fill.
    pub fn from_oracle<O: DistanceOracle + Sync + ?Sized>(oracle: &O) -> Self {
        CondensedMatrix {
            n: oracle.len(),
            data: parallel::fill_condensed_banded(oracle.len(), oracle.preferred_band(), |u, v| {
                oracle.dist(u, v)
            }),
            charge: None,
        }
    }

    /// Budgeted [`CondensedMatrix::from_oracle`]: the `n(n−1)/2 × 8`-byte
    /// allocation is first reserved against the budget's memory cap —
    /// [`crate::robust::Interrupt::MemoryExceeded`] if it does not fit —
    /// and the parallel fill then polls the budget between row chunks and
    /// aborts early on a trip, since a half-filled matrix is useless. The
    /// matrix holds its memory charge for as long as it lives.
    pub fn try_from_oracle<O: DistanceOracle + Sync + ?Sized>(
        oracle: &O,
        budget: &RunBudget,
    ) -> Result<Self, crate::robust::Interrupt> {
        let n = oracle.len();
        let bytes = (n as u64) * (n.saturating_sub(1) as u64) / 2 * 8;
        let charge = budget.try_reserve(bytes)?;
        let data = parallel::try_fill_condensed_banded(
            n,
            oracle.preferred_band(),
            |u, v| oracle.dist(u, v),
            budget,
        )?;
        Ok(CondensedMatrix {
            n,
            data,
            charge: Some(Arc::new(charge)),
        })
    }

    /// Bytes this matrix holds against a budget's
    /// [`crate::robust::MemGauge`], when built through the governed
    /// [`CondensedMatrix::try_from_oracle`] path.
    pub fn mem_charge_bytes(&self) -> Option<u64> {
        self.charge.as_ref().map(|c| c.bytes())
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if there are no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    fn idx(&self, u: usize, v: usize) -> usize {
        debug_assert!(u != v && u < self.n && v < self.n);
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        a * (2 * self.n - a - 1) / 2 + (b - a - 1)
    }

    /// Distance between points `u ≠ v`.
    #[inline]
    pub fn get(&self, u: usize, v: usize) -> f64 {
        self.data[self.idx(u, v)]
    }

    /// Overwrite the distance between points `u ≠ v`.
    #[inline]
    pub fn set(&mut self, u: usize, v: usize, d: f64) {
        let i = self.idx(u, v);
        self.data[i] = d;
    }
}

/// One merge step of a dendrogram. Node ids `0..n` are the original points;
/// node `n + i` is the cluster created by the `i`-th merge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Merge {
    /// First merged node.
    pub a: usize,
    /// Second merged node.
    pub b: usize,
    /// Linkage distance at which the merge happened.
    pub height: f64,
    /// Size of the resulting cluster.
    pub size: usize,
}

/// The full merge tree produced by [`linkage`].
#[derive(Clone, Debug)]
pub struct Dendrogram {
    n: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Number of original points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if built over zero points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The `n − 1` merges, in NN-chain discovery order (not necessarily by
    /// ascending height; use the cut methods, which sort internally).
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Merge indices sorted by `(height, discovery order)` — children always
    /// precede parents for monotone linkages.
    fn sorted_merge_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.merges.len()).collect();
        order.sort_by(|&i, &j| {
            self.merges[i]
                .height
                .partial_cmp(&self.merges[j].height)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(i.cmp(&j))
        });
        order
    }

    /// Flat clustering obtained by applying merges in ascending height order
    /// until exactly `k` clusters remain. On a *partial* dendrogram (a
    /// budget-interrupted [`linkage_budgeted`] run) fewer merges may exist
    /// than `n − k`; all available merges are applied and the cut has more
    /// than `k` clusters.
    ///
    /// # Panics
    /// Panics if `k` is 0 or greater than `n` (for `n > 0`).
    pub fn cut_num_clusters(&self, k: usize) -> Clustering {
        assert!(k >= 1 && k <= self.n.max(1), "k = {k} out of range");
        let to_apply = (self.n - k).min(self.merges.len());
        self.replay(&self.sorted_merge_order()[..to_apply])
    }

    /// Flat clustering obtained by applying every merge with
    /// `height < threshold` (strict, matching the paper's "merge while the
    /// closest pair's average distance is less than ½").
    pub fn cut_height(&self, threshold: f64) -> Clustering {
        let order = self.sorted_merge_order();
        let keep: Vec<usize> = order
            .into_iter()
            .filter(|&i| self.merges[i].height < threshold)
            .collect();
        self.replay(&keep)
    }

    /// Merge heights in ascending order — the sequence of linkage
    /// distances at which the clustering coarsens (useful for choosing a
    /// cut threshold by inspecting gaps).
    pub fn sorted_heights(&self) -> Vec<f64> {
        let mut hs: Vec<f64> = self.merges.iter().map(|m| m.height).collect();
        hs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        hs
    }

    /// The number of clusters obtained at every possible height: returns
    /// `(height, clusters_after_merging_at_that_height)` pairs in ascending
    /// height order, starting from `n` singleton clusters.
    pub fn cluster_count_profile(&self) -> Vec<(f64, usize)> {
        let mut out = Vec::with_capacity(self.merges.len());
        let mut k = self.n;
        for h in self.sorted_heights() {
            k -= 1;
            out.push((h, k));
        }
        out
    }

    /// Full cophenetic distance matrix: `cophenetic[u][v]` is the height of
    /// the merge at which `u` and `v` first share a cluster. The classic
    /// dendrogram-validation quantity (compare to the original distances
    /// for the cophenetic correlation). `O(n²)` output; intended for
    /// moderate `n`.
    pub fn cophenetic_matrix(&self) -> Vec<Vec<f64>> {
        let n = self.n;
        let mut out = vec![vec![0.0f64; n]; n];
        // Track the member set of every dendrogram node, replaying merges
        // in ascending height order; when two sets join, all cross pairs
        // get the merge height.
        let mut members: Vec<Option<Vec<usize>>> = (0..n).map(|v| Some(vec![v])).collect();
        members.resize_with(n + self.merges.len(), || None);
        for &i in &self.sorted_merge_order() {
            let m = self.merges[i];
            // Children are present exactly once for monotone linkages; an
            // empty set (impossible for well-formed dendrograms) simply
            // contributes no pairs instead of aborting.
            let a = members[m.a].take().unwrap_or_default();
            let b = members[m.b].take().unwrap_or_default();
            for &u in &a {
                for &v in &b {
                    out[u][v] = m.height;
                    out[v][u] = m.height;
                }
            }
            let mut joined = a;
            joined.extend(b);
            members[self.n + i] = Some(joined);
        }
        out
    }

    /// Replay a set of merges through a union-find over the node-id space.
    ///
    /// For monotone linkages the applied set (a height-sorted prefix) is
    /// downward-closed in the merge tree, so every referenced child node
    /// already has its leaves attached when its parent merge is applied.
    fn replay(&self, merge_indices: &[usize]) -> Clustering {
        let total = self.n + self.merges.len();
        let mut parent: Vec<usize> = (0..total).collect();

        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }

        for &i in merge_indices {
            let m = &self.merges[i];
            let node = self.n + i;
            let ra = find(&mut parent, m.a);
            let rb = find(&mut parent, m.b);
            parent[ra] = node;
            parent[rb] = node;
        }
        let labels: Vec<u32> = (0..self.n).map(|v| find(&mut parent, v) as u32).collect();
        Clustering::from_labels(labels)
    }
}

/// Run agglomerative clustering with the given linkage over a condensed
/// distance matrix (consumed as working storage).
///
/// Returns the full dendrogram; use [`Dendrogram::cut_num_clusters`] or
/// [`Dendrogram::cut_height`] for a flat clustering.
pub fn linkage(dist: CondensedMatrix, method: LinkageMethod) -> Dendrogram {
    linkage_budgeted(dist, method, &RunBudget::unlimited()).0
}

/// Budgeted [`linkage`]: one budget iteration per merge (each is an `O(n)`
/// chain-growth step amortized). On a trip, returns the *partial* dendrogram
/// built so far — its cut methods still produce valid (finer) clusterings —
/// along with how the run ended and the iterations consumed.
pub fn linkage_budgeted(
    dist: CondensedMatrix,
    method: LinkageMethod,
    budget: &RunBudget,
) -> (Dendrogram, RunStatus, u64) {
    linkage_resumable(dist, method, budget, None, None)
}

/// Map a snapshot's merge list (over *node ids*) onto the `(x, y)` row
/// pairs the replay must merge, validating every structural invariant on
/// the way. `None` means the snapshot cannot belong to this instance (or is
/// internally inconsistent) and the caller must start fresh — critically,
/// this runs **before** the distance matrix is mutated, so a rejected
/// snapshot leaves the matrix intact for the fresh run.
fn replay_plan(snap: &AgglomerativeSnapshot, n: usize) -> Option<Vec<(usize, usize)>> {
    if snap.n as usize != n || n == 0 || snap.merges.len() >= n {
        return None;
    }
    // node_row[id] = the matrix row currently holding dendrogram node `id`.
    let mut node_row: Vec<usize> = (0..n).collect();
    let mut consumed: Vec<bool> = vec![false; n + snap.merges.len()];
    let mut active: Vec<bool> = vec![true; n];
    let mut plan = Vec::with_capacity(snap.merges.len());
    for (i, m) in snap.merges.iter().enumerate() {
        let (a, b) = (m.a as usize, m.b as usize);
        // A merge may only reference nodes that already exist and have not
        // been merged away.
        if a >= n + i || b >= n + i || a == b || consumed[a] || consumed[b] {
            return None;
        }
        let (x, y) = (node_row[a], node_row[b]);
        if x == y || !active[x] || !active[y] {
            return None;
        }
        consumed[a] = true;
        consumed[b] = true;
        active[x] = false;
        node_row.push(y); // node n + i lives in row y
        plan.push((x, y));
    }
    // The saved NN-chain must reference live, distinct rows.
    let mut on_chain = vec![false; n];
    for &c in &snap.chain {
        let c = usize::try_from(c).ok().filter(|&c| c < n)?;
        if !active[c] || on_chain[c] {
            return None;
        }
        on_chain[c] = true;
    }
    Some(plan)
}

/// Resumable [`linkage_budgeted`].
///
/// With `resume`, the saved merge list is replayed through the same
/// Lance–Williams updates (deterministic, so the matrix state after replay
/// is bit-identical to the state when the snapshot was taken), the saved
/// NN-chain is restored verbatim — restarting with an empty chain would
/// change merge *discovery order*, and [`Dendrogram::cut_num_clusters`]
/// breaks height ties by discovery index — and the meter continues from the
/// snapshot's iteration count so an iteration cap bounds total work across
/// the interrupt. A snapshot that fails validation is ignored (fresh run).
///
/// With `ckpt`, a checkpoint becomes eligible after every merge and a final
/// one is forced when the budget interrupts the run.
pub fn linkage_resumable(
    mut dist: CondensedMatrix,
    method: LinkageMethod,
    budget: &RunBudget,
    resume: Option<&AgglomerativeSnapshot>,
    mut ckpt: Option<&mut Checkpointer>,
) -> (Dendrogram, RunStatus, u64) {
    let n = dist.n;
    let _span = crate::span!(
        "linkage",
        n = n,
        method = format!("{method:?}"),
        resuming = resume.is_some()
    );
    if n == 0 {
        return (
            Dendrogram {
                n,
                merges: Vec::new(),
            },
            RunStatus::Converged,
            0,
        );
    }
    let mut size: Vec<f64> = vec![1.0; n];
    let mut node_id: Vec<usize> = (0..n).collect();
    let mut active: Vec<bool> = vec![true; n];
    let mut chain: Vec<usize> = Vec::with_capacity(n);
    let mut merges: Vec<Merge> = Vec::with_capacity(n.saturating_sub(1));

    if let Some(plan) = resume.and_then(|snap| replay_plan(snap, n).map(|p| (snap, p))) {
        let (snap, plan) = plan;
        for (i, &(x, y)) in plan.iter().enumerate() {
            let (sa, sb) = (size[x], size[y]);
            let d_ab = dist.get(x, y);
            for z in 0..n {
                if z != x && z != y && active[z] {
                    let d_new =
                        method.update(dist.get(x, z), dist.get(y, z), d_ab, sa, sb, size[z]);
                    dist.set(y, z, d_new);
                }
            }
            active[x] = false;
            size[y] = sa + sb;
            merges.push(Merge {
                a: node_id[x],
                b: node_id[y],
                height: d_ab,
                size: size[y] as usize,
            });
            node_id[y] = n + i;
        }
        chain = snap.chain.iter().map(|&c| c as usize).collect();
    }

    let snapshot_state = |merges: &[Merge], chain: &[usize]| {
        AlgorithmSnapshot::Agglomerative(AgglomerativeSnapshot {
            n: n as u64,
            merges: merges
                .iter()
                .map(|m| MergeRecord {
                    a: m.a as u64,
                    b: m.b as u64,
                    height: m.height,
                    size: m.size as u64,
                })
                .collect(),
            chain: chain.iter().map(|&c| c as u64).collect(),
            // Completed units of work: one tick per merge performed.
            iterations: merges.len() as u64,
        })
    };

    let mut meter = budget.meter_from(merges.len() as u64);
    let mut heartbeat =
        telemetry::Heartbeat::new("linkage", n.saturating_sub(1) as u64).with_budget(budget);
    for _ in merges.len()..n.saturating_sub(1) {
        heartbeat.tick(merges.len() as u64);
        if let Err(interrupt) = meter.tick() {
            if let Some(ckpt) = ckpt.as_deref_mut() {
                let _ = ckpt.save_now(snapshot_state(&merges, &chain));
            }
            return (
                Dendrogram { n, merges },
                interrupt.status(),
                meter.iterations(),
            );
        }
        if chain.is_empty() {
            if telemetry::metrics_enabled() {
                telemetry::metrics().linkage_chain_rebuilds.incr();
            }
            // While merges remain, an active cluster always exists; the
            // fallback index is unreachable and only avoids a panic path.
            let first = active.iter().position(|&a| a).unwrap_or(0);
            chain.push(first);
        }
        // Grow the chain until we find a reciprocal nearest-neighbor pair.
        let (x, y, height) = loop {
            // Non-empty by construction: seeded above, and the reciprocal
            // pair popped at the end of each outer step leaves the re-seed
            // branch to run first.
            let x = chain.last().copied().unwrap_or(0);
            // Prefer the chain predecessor on ties so the chain terminates.
            let mut best;
            let mut best_d;
            if chain.len() >= 2 {
                best = chain[chain.len() - 2];
                best_d = dist.get(x, best);
            } else {
                best = usize::MAX;
                best_d = f64::INFINITY;
            }
            if n >= NN_PAR_MIN {
                // Chunked arg-min: earliest active index with the strictly
                // smallest distance — exactly what the serial scan below
                // finds. An equal-distance hit never displaces the chain
                // predecessor (strict `<` against its distance).
                let active = &active;
                let dist = &dist;
                if let Some((z, d)) =
                    parallel::arg_min_by(n, |z| (z != x && active[z]).then(|| dist.get(x, z)))
                {
                    if d < best_d {
                        best_d = d;
                        best = z;
                    }
                }
            } else {
                for (z, &is_active) in active.iter().enumerate() {
                    if z != x && is_active && dist.get(x, z) < best_d {
                        best_d = dist.get(x, z);
                        best = z;
                    }
                }
            }
            debug_assert!(best != usize::MAX);
            if chain.len() >= 2 && best == chain[chain.len() - 2] {
                break (x, best, best_d);
            }
            chain.push(best);
        };
        // Remove the reciprocal pair from the chain.
        chain.pop();
        chain.pop();

        // Merge x into y's slot: update distances with Lance–Williams.
        let (sa, sb) = (size[x], size[y]);
        let d_ab = dist.get(x, y);
        for z in 0..n {
            if z != x && z != y && active[z] {
                let d_new = method.update(dist.get(x, z), dist.get(y, z), d_ab, sa, sb, size[z]);
                dist.set(y, z, d_new);
            }
        }
        active[x] = false;
        size[y] = sa + sb;
        let new_node = n + merges.len();
        merges.push(Merge {
            a: node_id[x],
            b: node_id[y],
            height,
            size: size[y] as usize,
        });
        node_id[y] = new_node;
        // Fresh merges only: snapshot replay above repeats Lance–Williams
        // updates, not merge decisions, so a resumed run's merge counter
        // matches the uninterrupted run's.
        if telemetry::metrics_enabled() {
            telemetry::metrics().linkage_merges.incr();
        }

        if let Some(ckpt) = ckpt.as_deref_mut() {
            ckpt.maybe_save(|| snapshot_state(&merges, &chain));
        }
    }

    (
        Dendrogram { n, merges },
        RunStatus::Converged,
        meter.iterations(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1-D points whose single-linkage structure is obvious.
    fn line_matrix(points: &[f64]) -> CondensedMatrix {
        CondensedMatrix::from_fn(points.len(), |u, v| (points[u] - points[v]).abs())
    }

    #[test]
    fn single_linkage_on_a_line() {
        // Two well-separated groups: {0.0, 0.1, 0.2} and {10.0, 10.1}.
        let pts = [0.0, 0.1, 0.2, 10.0, 10.1];
        let dend = linkage(line_matrix(&pts), LinkageMethod::Single);
        let c = dend.cut_num_clusters(2);
        assert_eq!(c.num_clusters(), 2);
        assert!(c.same_cluster(0, 1) && c.same_cluster(1, 2));
        assert!(c.same_cluster(3, 4));
        assert!(!c.same_cluster(0, 3));
    }

    #[test]
    fn cut_height_strictness() {
        let pts = [0.0, 1.0, 3.0];
        let dend = linkage(line_matrix(&pts), LinkageMethod::Single);
        // Merges happen at 1.0 (0–1) then 2.0 ({0,1}–2).
        assert_eq!(dend.cut_height(0.5).num_clusters(), 3);
        assert_eq!(dend.cut_height(1.0).num_clusters(), 3); // strict <
        assert_eq!(dend.cut_height(1.5).num_clusters(), 2);
        assert_eq!(dend.cut_height(2.5).num_clusters(), 1);
    }

    #[test]
    fn cut_num_clusters_extremes() {
        let pts = [0.0, 1.0, 2.0, 5.0];
        let dend = linkage(line_matrix(&pts), LinkageMethod::Average);
        assert_eq!(dend.cut_num_clusters(4), Clustering::singletons(4));
        assert_eq!(dend.cut_num_clusters(1), Clustering::one_cluster(4));
    }

    #[test]
    fn average_linkage_heights_match_manual_computation() {
        // Three points on a line: 0, 1, 5.
        let pts = [0.0, 1.0, 5.0];
        let dend = linkage(line_matrix(&pts), LinkageMethod::Average);
        let mut heights: Vec<f64> = dend.merges().iter().map(|m| m.height).collect();
        heights.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // First merge 0–1 at 1.0; then {0,1}–2 at avg(5, 4) = 4.5.
        assert!((heights[0] - 1.0).abs() < 1e-12);
        assert!((heights[1] - 4.5).abs() < 1e-12);
    }

    #[test]
    fn complete_linkage_heights() {
        let pts = [0.0, 1.0, 5.0];
        let dend = linkage(line_matrix(&pts), LinkageMethod::Complete);
        let mut heights: Vec<f64> = dend.merges().iter().map(|m| m.height).collect();
        heights.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((heights[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn ward_prefers_balanced_merges() {
        // Squared distances for points 0, 1, 2 on a line: Ward should first
        // merge the closest pair like everyone else.
        let pts = [0.0f64, 1.0, 10.0];
        let m = CondensedMatrix::from_fn(3, |u, v| (pts[u] - pts[v]).powi(2));
        let dend = linkage(m, LinkageMethod::Ward);
        let c = dend.cut_num_clusters(2);
        assert!(c.same_cluster(0, 1));
        assert!(!c.same_cluster(0, 2));
    }

    #[test]
    fn matches_naive_greedy_for_average_linkage() {
        // Compare against a brute-force O(n³) greedy implementation on a
        // small random-ish matrix.
        let n = 12;
        let vals: Vec<f64> = (0..n * n)
            .map(|i| ((i * 37 + 11) % 97) as f64 / 97.0)
            .collect();
        let matrix = CondensedMatrix::from_fn(n, |u, v| {
            let a = vals[u * n + v];
            let b = vals[v * n + u];
            (a + b) / 2.0
        });

        // Naive greedy average linkage.
        let mut clusters: Vec<Vec<usize>> = (0..n).map(|v| vec![v]).collect();
        let base = matrix.clone();
        let avg = |a: &[usize], b: &[usize]| -> f64 {
            let mut s = 0.0;
            for &u in a {
                for &v in b {
                    s += base.get(u, v);
                }
            }
            s / (a.len() * b.len()) as f64
        };
        let mut naive_heights = Vec::new();
        while clusters.len() > 1 {
            let mut best = (0, 1, f64::INFINITY);
            for i in 0..clusters.len() {
                for j in (i + 1)..clusters.len() {
                    let d = avg(&clusters[i], &clusters[j]);
                    if d < best.2 {
                        best = (i, j, d);
                    }
                }
            }
            naive_heights.push(best.2);
            let merged = clusters.remove(best.1);
            clusters[best.0].extend(merged);
        }

        let dend = linkage(matrix, LinkageMethod::Average);
        let mut heights: Vec<f64> = dend.merges().iter().map(|m| m.height).collect();
        heights.sort_by(|a, b| a.partial_cmp(b).unwrap());
        naive_heights.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (h, nh) in heights.iter().zip(naive_heights.iter()) {
            assert!((h - nh).abs() < 1e-9, "{h} vs {nh}");
        }
    }

    #[test]
    fn merge_sizes_sum_to_n() {
        let pts = [0.0, 1.0, 2.0, 3.0, 10.0];
        let dend = linkage(line_matrix(&pts), LinkageMethod::Single);
        assert_eq!(dend.merges().last().unwrap().size, 5);
    }

    #[test]
    fn cophenetic_matches_single_linkage_on_a_line() {
        // For single linkage on a line, the cophenetic distance between u
        // and v is the largest gap between consecutive points in [u, v].
        let pts = [0.0, 1.0, 1.5, 4.0];
        let dend = linkage(line_matrix(&pts), LinkageMethod::Single);
        let coph = dend.cophenetic_matrix();
        assert!((coph[0][1] - 1.0).abs() < 1e-12);
        assert!((coph[1][2] - 0.5).abs() < 1e-12);
        assert!((coph[0][2] - 1.0).abs() < 1e-12); // max gap in 0..2
        assert!((coph[0][3] - 2.5).abs() < 1e-12); // the 1.5→4.0 gap
                                                   // Symmetry and zero diagonal.
        for (u, row) in coph.iter().enumerate() {
            assert_eq!(row[u], 0.0);
            for (v, &d) in row.iter().enumerate() {
                assert_eq!(d, coph[v][u]);
            }
        }
    }

    #[test]
    fn cophenetic_is_ultrametric() {
        let pts = [0.0, 0.9, 2.0, 5.5, 6.0, 9.0];
        for method in [LinkageMethod::Single, LinkageMethod::Average] {
            let dend = linkage(line_matrix(&pts), method);
            let coph = dend.cophenetic_matrix();
            for u in 0..6 {
                for v in 0..6 {
                    for w in 0..6 {
                        assert!(
                            coph[u][w] <= coph[u][v].max(coph[v][w]) + 1e-9,
                            "{method:?}: ultrametric violated"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cluster_count_profile_descends_to_one() {
        let pts = [0.0, 1.0, 2.0, 10.0, 11.0];
        let dend = linkage(line_matrix(&pts), LinkageMethod::Average);
        let profile = dend.cluster_count_profile();
        assert_eq!(profile.len(), 4);
        assert_eq!(profile.last().unwrap().1, 1);
        // Heights ascend, counts descend.
        for w in profile.windows(2) {
            assert!(w[0].0 <= w[1].0 + 1e-12);
            assert_eq!(w[0].1, w[1].1 + 1);
        }
    }

    #[test]
    fn budget_trip_leaves_a_usable_partial_dendrogram() {
        let pts = [0.0, 1.0, 2.0, 3.0, 10.0, 11.0];
        // Allow exactly two merges, then trip on the iteration cap.
        let budget = RunBudget::unlimited().with_max_iters(2);
        let (dend, status, iters) =
            linkage_budgeted(line_matrix(&pts), LinkageMethod::Average, &budget);
        assert_eq!(status, RunStatus::BudgetExceeded);
        assert_eq!(iters, 3); // the third tick tripped
        assert_eq!(dend.merges().len(), 2);
        // Cuts on the partial tree are valid clusterings, just finer than
        // requested: 6 points, 2 merges → at least 4 clusters.
        let c = dend.cut_num_clusters(1);
        assert_eq!(c.len(), 6);
        assert_eq!(c.num_clusters(), 4);
        assert_eq!(dend.cut_height(f64::INFINITY).num_clusters(), 4);
    }

    #[test]
    fn budgeted_unlimited_matches_plain_linkage() {
        let pts = [0.0, 0.9, 2.0, 5.5, 6.0, 9.0];
        let plain = linkage(line_matrix(&pts), LinkageMethod::Average);
        let (budgeted, status, _) = linkage_budgeted(
            line_matrix(&pts),
            LinkageMethod::Average,
            &RunBudget::unlimited(),
        );
        assert_eq!(status, RunStatus::Converged);
        assert_eq!(plain.merges(), budgeted.merges());
    }

    #[test]
    fn interrupt_and_resume_reproduce_the_full_dendrogram_exactly() {
        use crate::snapshot::{load_snapshot, SnapshotLoad};
        use std::time::Duration;

        let pts = [0.0, 0.9, 2.0, 5.5, 6.0, 9.0, 12.5, 13.0];
        let full = linkage(line_matrix(&pts), LinkageMethod::Average);

        let dir = std::env::temp_dir().join("aggclust_linkage_resume_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        for cap in 1..pts.len() as u64 - 1 {
            let path = dir.join(format!("ckpt_{cap}.bin"));
            let mut ckpt = Checkpointer::new(&path, Duration::ZERO);
            let budget = RunBudget::unlimited().with_max_iters(cap);
            let (partial, status, _) = linkage_resumable(
                line_matrix(&pts),
                LinkageMethod::Average,
                &budget,
                None,
                Some(&mut ckpt),
            );
            assert_eq!(status, RunStatus::BudgetExceeded);
            assert_eq!(partial.merges().len(), cap as usize);
            let snap = match load_snapshot(&path) {
                SnapshotLoad::Loaded(s) => s,
                other => panic!("no snapshot after interrupt: {other:?}"),
            };
            let agg = match snap.state {
                crate::snapshot::AlgorithmSnapshot::Agglomerative(a) => a,
                other => panic!("wrong snapshot kind: {other:?}"),
            };
            assert_eq!(agg.merges.len(), cap as usize);
            // Resume on a freshly built matrix with the same global cap the
            // reference run had (unlimited): bit-identical merge list.
            let (resumed, status, iters) = linkage_resumable(
                line_matrix(&pts),
                LinkageMethod::Average,
                &RunBudget::unlimited(),
                Some(&agg),
                None,
            );
            assert_eq!(status, RunStatus::Converged);
            assert_eq!(iters, pts.len() as u64 - 1, "global iteration count");
            assert_eq!(resumed.merges(), full.merges(), "cap {cap}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_snapshot_falls_back_to_a_fresh_run() {
        let pts = [0.0, 1.0, 2.0, 10.0, 11.0];
        let full = linkage(line_matrix(&pts), LinkageMethod::Average);
        // Snapshot from a *different* instance size: rejected, fresh run.
        let stale = AgglomerativeSnapshot {
            n: 99,
            merges: vec![],
            chain: vec![],
            iterations: 0,
        };
        let (resumed, status, _) = linkage_resumable(
            line_matrix(&pts),
            LinkageMethod::Average,
            &RunBudget::unlimited(),
            Some(&stale),
            None,
        );
        assert_eq!(status, RunStatus::Converged);
        assert_eq!(resumed.merges(), full.merges());
        // Structurally impossible merge list: also rejected.
        let garbage = AgglomerativeSnapshot {
            n: pts.len() as u64,
            merges: vec![MergeRecord {
                a: 3,
                b: 3,
                height: 0.0,
                size: 2,
            }],
            chain: vec![],
            iterations: 1,
        };
        assert!(replay_plan(&garbage, pts.len()).is_none());
        // Chain referencing a dead row: rejected.
        let bad_chain = AgglomerativeSnapshot {
            n: pts.len() as u64,
            merges: vec![MergeRecord {
                a: 0,
                b: 1,
                height: 1.0,
                size: 2,
            }],
            chain: vec![0], // row 0 was deactivated by the merge above
            iterations: 1,
        };
        assert!(replay_plan(&bad_chain, pts.len()).is_none());
    }

    #[test]
    fn try_from_oracle_refuses_over_the_memory_cap() {
        use crate::instance::DenseOracle;
        let oracle = DenseOracle::from_fn(10, |_, _| 0.5);
        // 45 pairs → 360 bytes.
        let tight = RunBudget::unlimited().with_mem_limit_bytes(359);
        assert!(matches!(
            CondensedMatrix::try_from_oracle(&oracle, &tight),
            Err(crate::robust::Interrupt::MemoryExceeded { .. })
        ));
        assert_eq!(tight.mem_gauge().used_bytes(), 0);
        let roomy = RunBudget::unlimited().with_mem_limit_bytes(360);
        let matrix = CondensedMatrix::try_from_oracle(&oracle, &roomy).expect("fits");
        assert_eq!(matrix.mem_charge_bytes(), Some(360));
        assert_eq!(roomy.mem_gauge().used_bytes(), 360);
        drop(matrix);
        assert_eq!(roomy.mem_gauge().used_bytes(), 0);
    }

    #[test]
    fn empty_and_single_point() {
        let d0 = linkage(
            CondensedMatrix::from_fn(0, |_, _| 0.0),
            LinkageMethod::Single,
        );
        assert!(d0.merges().is_empty());
        let d1 = linkage(
            CondensedMatrix::from_fn(1, |_, _| 0.0),
            LinkageMethod::Single,
        );
        assert!(d1.merges().is_empty());
        assert_eq!(d1.cut_num_clusters(1).num_clusters(), 1);
    }
}
