//! Deterministic data-parallel execution layer.
//!
//! Every `O(n²)` kernel in this crate — oracle materialization, the cost
//! functions, and the per-node scans inside BALLS, FURTHEST, AGGLOMERATIVE
//! and LOCALSEARCH — funnels through the primitives in this module. The
//! design goal is *bit-identical results at any thread count*, so the
//! parallel feature can never change what an algorithm returns:
//!
//! * Work is split into **fixed chunks whose boundaries depend only on the
//!   problem size**, never on the number of worker threads.
//! * Floating-point reductions compute one partial per chunk (each partial
//!   accumulated in ascending index order) and combine the partials
//!   **sequentially in chunk order**. Arg-min/arg-max combines keep the
//!   earliest-index winner on ties, matching a serial strict-comparison
//!   scan.
//! * The serial fallback (`--no-default-features`) executes the *same*
//!   chunked schedule sequentially, so builds with and without the
//!   `parallel` feature also agree bit-for-bit.
//!
//! Threads are plain `std::thread::scope` workers draining a shared queue
//! of chunk jobs; the environment is expected to be offline, so no external
//! thread-pool crate is used. The worker count comes from, in order of
//! precedence: a scoped [`with_num_threads`] override (used by the
//! determinism tests to compare thread counts inside one process), the
//! `RAYON_NUM_THREADS` environment variable (read once), and
//! `std::thread::available_parallelism`. Without the `parallel` feature the
//! count is always 1 and no threads are ever spawned.

use std::cell::Cell;
use std::ops::Range;
use std::sync::OnceLock;

/// Upper bound on the number of chunks a task is split into. More chunks
/// than threads keeps the shared queue effective at balancing uneven work;
/// the constant is fixed so chunk boundaries never depend on thread count.
const TARGET_CHUNKS: usize = 128;

/// Minimum elements per chunk for index-spaces (slices, rows): below this,
/// per-chunk scheduling overhead dominates the work.
const MIN_CHUNK_ITEMS: usize = 1024;

/// Minimum pairs per chunk for pair-spaces (`n(n−1)/2` triangles).
const MIN_CHUNK_PAIRS: usize = 8192;

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();

fn env_threads() -> Option<usize> {
    *ENV_THREADS.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// The number of worker threads parallel primitives may use on this thread.
///
/// Always 1 without the `parallel` feature. Results never depend on this
/// value — only wall-clock time does.
pub fn current_num_threads() -> usize {
    if cfg!(not(feature = "parallel")) {
        return 1;
    }
    if let Some(n) = THREAD_OVERRIDE.get() {
        return n;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f` with the worker-thread count pinned to `threads` (minimum 1) on
/// the current thread, restoring the previous setting afterwards (also on
/// panic). Intended for tests and benchmarks that compare thread counts
/// within one process; production callers should prefer the
/// `RAYON_NUM_THREADS` environment variable.
pub fn with_num_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.set(self.0);
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.replace(Some(threads.max(1))));
    f()
}

/// Execute every job, in parallel when the feature and thread count allow.
/// Job order of *execution* is unspecified; callers must make each job
/// write to disjoint state (typically a `&mut` chunk or partial slot).
fn run_jobs<T, F>(jobs: Vec<T>, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    #[cfg(feature = "parallel")]
    if jobs.len() > 1 {
        let threads = current_num_threads().min(jobs.len());
        if threads > 1 {
            let queue = std::sync::Mutex::new(jobs.into_iter());
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        // A worker can only have panicked inside `f`, which
                        // never leaves a partially-updated job; recover the
                        // queue so the remaining workers drain it.
                        let job = queue
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner())
                            .next();
                        match job {
                            Some(job) => f(job),
                            None => break,
                        }
                    });
                }
            });
            return;
        }
    }
    for job in jobs {
        f(job);
    }
}

/// Chunk size for a `len`-element index space (function of `len` only).
fn chunk_size(len: usize) -> usize {
    len.div_ceil(TARGET_CHUNKS).max(MIN_CHUNK_ITEMS)
}

/// Split `0..len` into consecutive ranges of roughly equal total `weight`,
/// with at most `TARGET_CHUNKS` ranges and at least `min_weight` per
/// range. Boundaries are a pure function of the weights, so reductions
/// chunked this way are deterministic.
pub fn balanced_ranges(
    len: usize,
    min_weight: usize,
    weight: impl Fn(usize) -> usize,
) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let total: usize = (0..len).map(&weight).sum();
    let target = total.div_ceil(TARGET_CHUNKS).max(min_weight).max(1);
    let mut ranges = Vec::new();
    let mut start = 0usize;
    let mut acc = 0usize;
    for i in 0..len {
        acc += weight(i);
        if acc >= target {
            ranges.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    if start < len {
        ranges.push(start..len);
    }
    ranges
}

/// Row ranges covering `0..n` such that each range holds roughly the same
/// number of pairs `(u, v)` with `u` in the range and `u < v < n`.
fn row_ranges(n: usize) -> Vec<Range<usize>> {
    balanced_ranges(n, MIN_CHUNK_PAIRS, |u| n - 1 - u)
}

/// In-place parallel update: calls `f(i, &mut out[i])` for every index.
pub fn update_slice<T, F>(out: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let cs = chunk_size(out.len());
    let mut jobs: Vec<(usize, &mut [T])> = Vec::new();
    let mut start = 0usize;
    for chunk in out.chunks_mut(cs.max(1)) {
        let len = chunk.len();
        jobs.push((start, chunk));
        start += len;
    }
    run_jobs(jobs, |(start, chunk)| {
        for (i, slot) in chunk.iter_mut().enumerate() {
            f(start + i, slot);
        }
    });
}

/// Parallel map into a slice: `out[i] = f(i)`.
pub fn fill_slice<T, F>(out: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    update_slice(out, |i, slot| *slot = f(i));
}

/// Deterministic sum of `f(i)` for `i in 0..len`: fixed chunks, partials
/// combined in chunk order. Identical at every thread count.
pub fn sum_indexed<F>(len: usize, f: F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    if len == 0 {
        return 0.0;
    }
    let cs = chunk_size(len);
    let n_chunks = len.div_ceil(cs);
    let mut partials = vec![0.0f64; n_chunks];
    let jobs: Vec<(usize, &mut f64)> = partials.iter_mut().enumerate().collect();
    run_jobs(jobs, |(ci, slot)| {
        let mut acc = 0.0;
        for i in ci * cs..((ci + 1) * cs).min(len) {
            acc += f(i);
        }
        *slot = acc;
    });
    partials.into_iter().sum()
}

/// Deterministic sum of `f(job)` over a fixed job list, one partial per
/// job, combined in job order. The caller fixes the job boundaries (e.g.
/// via [`balanced_ranges`]) so the grouping is independent of thread count.
pub fn sum_jobs<T, F>(jobs: Vec<T>, f: F) -> f64
where
    T: Send,
    F: Fn(T) -> f64 + Sync,
{
    let mut partials = vec![0.0f64; jobs.len()];
    let zipped: Vec<(T, &mut f64)> = jobs.into_iter().zip(partials.iter_mut()).collect();
    run_jobs(zipped, |(job, slot)| *slot = f(job));
    partials.into_iter().sum()
}

/// [`sum_jobs`] specialized to index ranges.
pub fn sum_ranges<F>(ranges: Vec<Range<usize>>, f: F) -> f64
where
    F: Fn(Range<usize>) -> f64 + Sync,
{
    sum_jobs(ranges, f)
}

/// Deterministic sum of `f(u, v)` over all pairs `u < v < n`, chunked by
/// row ranges; within a chunk pairs are visited in `(u asc, v asc)` order.
pub fn sum_pairs<F>(n: usize, f: F) -> f64
where
    F: Fn(usize, usize) -> f64 + Sync,
{
    sum_ranges(row_ranges(n), |rows| {
        let mut acc = 0.0;
        for u in rows {
            for v in u + 1..n {
                acc += f(u, v);
            }
        }
        acc
    })
}

/// Allocate the condensed vector and pre-fault its pages under a
/// `condensed_alloc` span.
///
/// `vec![0.0; len]` is served by lazily zeroed pages, so without this
/// the page faults — the tier-independent floor that dominates the
/// dense build at large `n` (~40 ms for the 100 MB triangle at n=5000)
/// — would fire at first write inside the worker fill jobs and be
/// smeared across `condensed_fill`. Touching one element per 4 KiB page
/// here moves that cost into its own span, so the run report's
/// `timings` block puts a number on the alloc/fault/write floor. The
/// store goes through [`std::hint::black_box`] so the write of "0.0
/// over fresh zeroes" cannot be optimized out, taking the fault with
/// it.
fn alloc_condensed(len: usize) -> Vec<f64> {
    let _span = crate::span!("condensed_alloc", len = len);
    let mut data = vec![0.0f64; len];
    const PAGE_STRIDE: usize = 4096 / std::mem::size_of::<f64>();
    for i in (0..data.len()).step_by(PAGE_STRIDE) {
        data[i] = std::hint::black_box(0.0);
    }
    data
}

/// Build the condensed upper-triangle vector `[f(u, v) for u < v]` of
/// length `n(n−1)/2` in parallel row chunks. Every entry is written exactly
/// once, so the result is trivially independent of thread count.
pub fn fill_condensed<F>(n: usize, f: F) -> Vec<f64>
where
    F: Fn(usize, usize) -> f64 + Sync,
{
    let len = n * n.saturating_sub(1) / 2;
    let mut data = alloc_condensed(len);
    let mut jobs: Vec<(Range<usize>, &mut [f64])> = Vec::new();
    let mut rest: &mut [f64] = &mut data;
    for rows in row_ranges(n) {
        let pairs: usize = rows.clone().map(|u| n - 1 - u).sum();
        let (head, tail) = rest.split_at_mut(pairs);
        jobs.push((rows, head));
        rest = tail;
    }
    let _fill = crate::span!("condensed_fill", len = len);
    run_jobs(jobs, |(rows, out)| {
        let mut i = 0usize;
        for u in rows {
            for v in u + 1..n {
                out[i] = f(u, v);
                i += 1;
            }
        }
    });
    data
}

/// Cache-blocked variant of [`fill_condensed`]: each row chunk walks its
/// columns in fixed `band`-wide stripes (`for band: for u: for v in band`)
/// so a short stripe of packed label rows stays cache-resident while the
/// chunk's rows stream against it. Every entry is still written exactly
/// once, at the same index as [`fill_condensed`] would place it, so the
/// result is identical to the row-major fill at any thread count and any
/// band width.
pub fn fill_condensed_banded<F>(n: usize, band: usize, f: F) -> Vec<f64>
where
    F: Fn(usize, usize) -> f64 + Sync,
{
    let band = band.max(1);
    let len = n * n.saturating_sub(1) / 2;
    let mut data = alloc_condensed(len);
    let mut jobs: Vec<(Range<usize>, &mut [f64])> = Vec::new();
    let mut rest: &mut [f64] = &mut data;
    for rows in row_ranges(n) {
        let pairs: usize = rows.clone().map(|u| n - 1 - u).sum();
        let (head, tail) = rest.split_at_mut(pairs);
        jobs.push((rows, head));
        rest = tail;
    }
    let _fill = crate::span!("condensed_fill", len = len);
    run_jobs(jobs, |(rows, out)| {
        fill_rows_banded(n, band, &rows, out, &f);
    });
    data
}

/// Row-segment variant of [`fill_condensed_banded`] for batch kernels:
/// instead of one `f(u, v)` call per pair, the fill hands each `(row,
/// column-band)` intersection to `g(u, lo..hi, seg)` where `seg` is the
/// condensed slice for pairs `(u, lo), …, (u, hi − 1)`. Segment boundaries
/// depend only on `n` and `band`, every entry is written exactly once at
/// its row-major condensed index, and segments never exceed `band`
/// entries — so a `g` that writes `seg` from pure per-pair values produces
/// the identical vector at any thread count and any band width.
pub fn fill_condensed_banded_rows<G>(n: usize, band: usize, g: G) -> Vec<f64>
where
    G: Fn(usize, Range<usize>, &mut [f64]) + Sync,
{
    fill_condensed_banded_rows_scratch(n, band, || (), |(): &mut (), u, vs, seg| g(u, vs, seg))
}

/// Scratch-carrying variant of [`fill_condensed_banded_rows`]: each worker
/// job calls `make_scratch()` once and threads the same `&mut S` through
/// every `g` call it makes, so batch kernels can reuse one count buffer
/// across all their row segments instead of allocating (or re-zeroing) per
/// row. The scratch never influences segment boundaries or write indices,
/// so the determinism guarantee of the scratch-free variant carries over
/// unchanged.
pub fn fill_condensed_banded_rows_scratch<S, M, G>(
    n: usize,
    band: usize,
    make_scratch: M,
    g: G,
) -> Vec<f64>
where
    M: Fn() -> S + Sync,
    G: Fn(&mut S, usize, Range<usize>, &mut [f64]) + Sync,
{
    let band = band.max(1);
    let len = n * n.saturating_sub(1) / 2;
    let mut data = alloc_condensed(len);
    let mut jobs: Vec<(Range<usize>, &mut [f64])> = Vec::new();
    let mut rest: &mut [f64] = &mut data;
    for rows in row_ranges(n) {
        let pairs: usize = rows.clone().map(|u| n - 1 - u).sum();
        let (head, tail) = rest.split_at_mut(pairs);
        jobs.push((rows, head));
        rest = tail;
    }
    let _fill = crate::span!("condensed_fill", len = len);
    run_jobs(jobs, |(rows, out)| {
        let mut scratch = make_scratch();
        fill_rows_banded_scratch_segments(n, band, &rows, out, &mut scratch, &g);
    });
    data
}

/// Restriction of [`fill_condensed_banded_rows_scratch`] to one row range:
/// returns only the condensed slice covering rows `rows.start..rows.end`
/// (pairs `(u, v)` with `u` in `rows`, `u < v < n`), filled with the same
/// banded walk and therefore bit-identical to the matching slice of the
/// full fill at any thread count. This is the tile-construction primitive
/// of [`crate::spill`]: each tile is one row range, built independently.
pub fn fill_condensed_rows_banded_scratch<S, M, G>(
    n: usize,
    band: usize,
    rows: Range<usize>,
    make_scratch: M,
    g: G,
) -> Vec<f64>
where
    M: Fn() -> S + Sync,
    G: Fn(&mut S, usize, Range<usize>, &mut [f64]) + Sync,
{
    let band = band.max(1);
    let rows = rows.start.min(n)..rows.end.min(n);
    let len: usize = rows.clone().map(|u| n - 1 - u).sum();
    let mut data = alloc_condensed(len);
    // Split the row range into pair-balanced sub-jobs exactly like the full
    // fill splits 0..n, so a wide tile still uses every worker.
    let sub = balanced_ranges(rows.len(), MIN_CHUNK_PAIRS, |i| n - 1 - (rows.start + i));
    let mut jobs: Vec<(Range<usize>, &mut [f64])> = Vec::new();
    let mut rest: &mut [f64] = &mut data;
    for r in sub {
        let abs = rows.start + r.start..rows.start + r.end;
        let pairs: usize = abs.clone().map(|u| n - 1 - u).sum();
        let (head, tail) = rest.split_at_mut(pairs);
        jobs.push((abs, head));
        rest = tail;
    }
    let _fill = crate::span!("condensed_fill", len = len);
    run_jobs(jobs, |(abs, out)| {
        let mut scratch = make_scratch();
        fill_rows_banded_scratch_segments(n, band, &abs, out, &mut scratch, &g);
    });
    data
}

/// One row chunk of [`fill_condensed_banded`]: fill `out` (the chunk's
/// condensed slice, row `rows.start`'s pairs first) in column bands.
/// `out[row_offset(u) + (v − u − 1)]` holds `f(u, v)`, matching the
/// row-major condensed layout exactly.
fn fill_rows_banded<F>(n: usize, band: usize, rows: &Range<usize>, out: &mut [f64], f: &F)
where
    F: Fn(usize, usize) -> f64 + Sync,
{
    fill_rows_banded_segments(
        n,
        band,
        rows,
        out,
        &|u, vs: Range<usize>, seg: &mut [f64]| {
            for (entry, v) in seg.iter_mut().zip(vs) {
                *entry = f(u, v);
            }
        },
    );
}

/// Shared banded walk: hand each `(u, column-band)` intersection to `g` as
/// one contiguous condensed segment.
fn fill_rows_banded_segments<G>(n: usize, band: usize, rows: &Range<usize>, out: &mut [f64], g: &G)
where
    G: Fn(usize, Range<usize>, &mut [f64]) + Sync,
{
    fill_rows_banded_scratch_segments(n, band, rows, out, &mut (), &|(): &mut (), u, vs, seg| {
        g(u, vs, seg)
    });
}

/// The scratch-threading core of the banded walks.
fn fill_rows_banded_scratch_segments<S, G>(
    n: usize,
    band: usize,
    rows: &Range<usize>,
    out: &mut [f64],
    scratch: &mut S,
    g: &G,
) where
    G: Fn(&mut S, usize, Range<usize>, &mut [f64]) + Sync,
{
    let mut band_start = rows.start + 1;
    while band_start < n {
        let band_end = (band_start + band).min(n);
        let mut off = 0usize;
        for u in rows.clone() {
            let lo = band_start.max(u + 1);
            if lo < band_end {
                let idx0 = off + (lo - u - 1);
                g(
                    scratch,
                    u,
                    lo..band_end,
                    &mut out[idx0..idx0 + (band_end - lo)],
                );
            }
            off += n - 1 - u;
        }
        band_start = band_end;
    }
}

/// Budget-aware variant of [`fill_condensed`]: workers check the budget's
/// deadline and cancel token between chunk jobs, so a trip is honored
/// within one chunk's worth of work. On a trip the partially-filled buffer
/// is discarded and the interrupt returned; callers degrade gracefully
/// (e.g. fall back to singletons). Iteration caps are algorithm-level and
/// are not consumed here.
///
/// When the budget is unlimited this is exactly [`fill_condensed`] — same
/// chunk layout, same bit-identical result at any thread count.
pub fn try_fill_condensed<F>(
    n: usize,
    f: F,
    budget: &crate::robust::RunBudget,
) -> Result<Vec<f64>, crate::robust::Interrupt>
where
    F: Fn(usize, usize) -> f64 + Sync,
{
    use crate::robust::Interrupt;
    use std::sync::atomic::{AtomicU8, Ordering};

    if budget.is_unlimited() {
        return Ok(fill_condensed(n, f));
    }
    // 0 = running, 1 = deadline, 2 = cancelled. First trip wins; later
    // jobs see the flag and return immediately without touching the clock.
    let tripped = AtomicU8::new(0);
    let len = n * n.saturating_sub(1) / 2;
    let mut data = alloc_condensed(len);
    let mut jobs: Vec<(Range<usize>, &mut [f64])> = Vec::new();
    let mut rest: &mut [f64] = &mut data;
    for rows in row_ranges(n) {
        let pairs: usize = rows.clone().map(|u| n - 1 - u).sum();
        let (head, tail) = rest.split_at_mut(pairs);
        jobs.push((rows, head));
        rest = tail;
    }
    let _fill = crate::span!("condensed_fill", len = len);
    run_jobs(jobs, |(rows, out)| {
        if tripped.load(Ordering::Relaxed) != 0 {
            return;
        }
        if let Err(interrupt) = budget.poll() {
            let code = match interrupt {
                Interrupt::Cancelled => 2,
                _ => 1,
            };
            tripped.store(code, Ordering::Relaxed);
            return;
        }
        let mut i = 0usize;
        for u in rows {
            for v in u + 1..n {
                out[i] = f(u, v);
                i += 1;
            }
        }
    });
    match tripped.load(Ordering::Relaxed) {
        0 => Ok(data),
        2 => Err(Interrupt::Cancelled),
        _ => Err(Interrupt::Deadline),
    }
}

/// Budget-aware [`fill_condensed_banded`]: the same cache-blocked fill,
/// polling the budget between chunk jobs exactly like
/// [`try_fill_condensed`]. Unlimited budgets take the unpolled fast path.
pub fn try_fill_condensed_banded<F>(
    n: usize,
    band: usize,
    f: F,
    budget: &crate::robust::RunBudget,
) -> Result<Vec<f64>, crate::robust::Interrupt>
where
    F: Fn(usize, usize) -> f64 + Sync,
{
    use crate::robust::Interrupt;
    use std::sync::atomic::{AtomicU8, Ordering};

    if budget.is_unlimited() {
        return Ok(fill_condensed_banded(n, band, f));
    }
    let band = band.max(1);
    let tripped = AtomicU8::new(0);
    let len = n * n.saturating_sub(1) / 2;
    let mut data = alloc_condensed(len);
    let mut jobs: Vec<(Range<usize>, &mut [f64])> = Vec::new();
    let mut rest: &mut [f64] = &mut data;
    for rows in row_ranges(n) {
        let pairs: usize = rows.clone().map(|u| n - 1 - u).sum();
        let (head, tail) = rest.split_at_mut(pairs);
        jobs.push((rows, head));
        rest = tail;
    }
    let _fill = crate::span!("condensed_fill", len = len);
    run_jobs(jobs, |(rows, out)| {
        if tripped.load(Ordering::Relaxed) != 0 {
            return;
        }
        if let Err(interrupt) = budget.poll() {
            let code = match interrupt {
                Interrupt::Cancelled => 2,
                _ => 1,
            };
            tripped.store(code, Ordering::Relaxed);
            return;
        }
        fill_rows_banded(n, band, &rows, out, &f);
    });
    match tripped.load(Ordering::Relaxed) {
        0 => Ok(data),
        2 => Err(Interrupt::Cancelled),
        _ => Err(Interrupt::Deadline),
    }
}

/// Budget-aware [`fill_condensed_banded_rows_scratch`]: the same batched
/// row-segment fill, polling the budget between chunk jobs exactly like
/// [`try_fill_condensed_banded`]. Unlimited budgets take the unpolled
/// fast path; segment boundaries and write indices are unchanged, so the
/// result stays bit-identical to the unbudgeted fill at any thread count.
pub fn try_fill_condensed_banded_rows_scratch<S, M, G>(
    n: usize,
    band: usize,
    make_scratch: M,
    g: G,
    budget: &crate::robust::RunBudget,
) -> Result<Vec<f64>, crate::robust::Interrupt>
where
    M: Fn() -> S + Sync,
    G: Fn(&mut S, usize, Range<usize>, &mut [f64]) + Sync,
{
    use crate::robust::Interrupt;
    use std::sync::atomic::{AtomicU8, Ordering};

    if budget.is_unlimited() {
        return Ok(fill_condensed_banded_rows_scratch(n, band, make_scratch, g));
    }
    let band = band.max(1);
    let tripped = AtomicU8::new(0);
    let len = n * n.saturating_sub(1) / 2;
    let mut data = alloc_condensed(len);
    let mut jobs: Vec<(Range<usize>, &mut [f64])> = Vec::new();
    let mut rest: &mut [f64] = &mut data;
    for rows in row_ranges(n) {
        let pairs: usize = rows.clone().map(|u| n - 1 - u).sum();
        let (head, tail) = rest.split_at_mut(pairs);
        jobs.push((rows, head));
        rest = tail;
    }
    let _fill = crate::span!("condensed_fill", len = len);
    run_jobs(jobs, |(rows, out)| {
        if tripped.load(Ordering::Relaxed) != 0 {
            return;
        }
        if let Err(interrupt) = budget.poll() {
            let code = match interrupt {
                Interrupt::Cancelled => 2,
                _ => 1,
            };
            tripped.store(code, Ordering::Relaxed);
            return;
        }
        let mut scratch = make_scratch();
        fill_rows_banded_scratch_segments(n, band, &rows, out, &mut scratch, &g);
    });
    match tripped.load(Ordering::Relaxed) {
        0 => Ok(data),
        2 => Err(Interrupt::Cancelled),
        _ => Err(Interrupt::Deadline),
    }
}

/// The pair `u < v` maximizing `f(u, v)`, earliest pair (in `(u, v)`
/// lexicographic order) on ties — exactly the result of a serial strict-`>`
/// scan. `None` for `n < 2`.
pub fn max_pair<F>(n: usize, f: F) -> Option<(usize, usize, f64)>
where
    F: Fn(usize, usize) -> f64 + Sync,
{
    if n < 2 {
        return None;
    }
    type Best<'a> = &'a mut Option<(usize, usize, f64)>;
    let ranges = row_ranges(n);
    let mut partials: Vec<Option<(usize, usize, f64)>> = vec![None; ranges.len()];
    let jobs: Vec<(Range<usize>, Best)> = ranges.into_iter().zip(partials.iter_mut()).collect();
    run_jobs(jobs, |(rows, slot)| {
        let mut best: Option<(usize, usize, f64)> = None;
        for u in rows {
            for v in u + 1..n {
                let d = f(u, v);
                if best.is_none_or(|(_, _, bd)| d > bd) {
                    best = Some((u, v, d));
                }
            }
        }
        *slot = best;
    });
    let mut best: Option<(usize, usize, f64)> = None;
    for candidate in partials.into_iter().flatten() {
        if best.is_none_or(|(_, _, bd)| candidate.2 > bd) {
            best = Some(candidate);
        }
    }
    best
}

/// The index minimizing `key(i)` over `i in 0..len`, skipping indices where
/// `key` returns `None`; earliest index on ties — exactly the result of a
/// serial strict-`<` scan.
pub fn arg_min_by<F>(len: usize, key: F) -> Option<(usize, f64)>
where
    F: Fn(usize) -> Option<f64> + Sync,
{
    if len == 0 {
        return None;
    }
    let cs = chunk_size(len);
    let n_chunks = len.div_ceil(cs);
    let mut partials: Vec<Option<(usize, f64)>> = vec![None; n_chunks];
    let jobs: Vec<(usize, &mut Option<(usize, f64)>)> = partials.iter_mut().enumerate().collect();
    run_jobs(jobs, |(ci, slot)| {
        let mut best: Option<(usize, f64)> = None;
        for i in ci * cs..((ci + 1) * cs).min(len) {
            if let Some(k) = key(i) {
                if best.is_none_or(|(_, bk)| k < bk) {
                    best = Some((i, k));
                }
            }
        }
        *slot = best;
    });
    let mut best: Option<(usize, f64)> = None;
    for candidate in partials.into_iter().flatten() {
        if best.is_none_or(|(_, bk)| candidate.1 < bk) {
            best = Some(candidate);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_slice_matches_serial_map() {
        let mut out = vec![0.0f64; 5000];
        fill_slice(&mut out, |i| (i as f64).sqrt());
        for (i, &x) in out.iter().enumerate() {
            assert_eq!(x, (i as f64).sqrt());
        }
    }

    #[test]
    fn sums_identical_across_thread_counts() {
        let f = |i: usize| ((i * 2654435761) % 1000) as f64 / 997.0;
        let one = with_num_threads(1, || sum_indexed(100_000, f));
        let four = with_num_threads(4, || sum_indexed(100_000, f));
        assert_eq!(one.to_bits(), four.to_bits());

        let g = |u: usize, v: usize| ((u * 31 + v * 17) % 101) as f64 / 101.0;
        let one = with_num_threads(1, || sum_pairs(700, g));
        let four = with_num_threads(4, || sum_pairs(700, g));
        assert_eq!(one.to_bits(), four.to_bits());
    }

    #[test]
    fn condensed_layout_matches_direct_indexing() {
        let n = 600;
        let f = |u: usize, v: usize| (u * n + v) as f64;
        let data = fill_condensed(n, f);
        assert_eq!(data.len(), n * (n - 1) / 2);
        let mut i = 0;
        for u in 0..n {
            for v in u + 1..n {
                assert_eq!(data[i], f(u, v));
                i += 1;
            }
        }
    }

    #[test]
    fn max_pair_takes_earliest_on_ties() {
        // Constant function: the very first pair must win.
        assert_eq!(max_pair(5000, |_, _| 1.0), Some((0, 1, 1.0)));
        // A unique maximum is found regardless of position.
        let target = (4321usize, 4700usize);
        let f = move |u: usize, v: usize| {
            if (u, v) == target {
                2.0
            } else {
                1.0
            }
        };
        assert_eq!(max_pair(5000, f), Some((target.0, target.1, 2.0)));
        assert_eq!(max_pair(1, |_, _| 1.0), None);
    }

    #[test]
    fn arg_min_skips_filtered_and_takes_earliest() {
        let key = |i: usize| {
            if i.is_multiple_of(2) {
                None
            } else {
                Some(((i * 7) % 13) as f64)
            }
        };
        // Serial reference.
        let mut expected: Option<(usize, f64)> = None;
        for i in 0..50_000 {
            if let Some(k) = key(i) {
                if expected.is_none_or(|(_, bk)| k < bk) {
                    expected = Some((i, k));
                }
            }
        }
        assert_eq!(with_num_threads(4, || arg_min_by(50_000, key)), expected);
        assert_eq!(arg_min_by(10, |_| None), None);
        assert_eq!(arg_min_by(0, |_| Some(0.0)), None);
    }

    #[test]
    fn balanced_ranges_cover_exactly_once() {
        for n in [0usize, 1, 7, 1000, 5000] {
            let ranges = balanced_ranges(n, 100, |i| i % 3 + 1);
            let mut covered = 0usize;
            for r in &ranges {
                assert_eq!(r.start, covered, "ranges must be consecutive");
                covered = r.end;
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn banded_fill_matches_row_major_fill() {
        let f = |u: usize, v: usize| (u * 10_007 + v) as f64;
        for n in [0usize, 1, 2, 3, 129, 600] {
            let expected = fill_condensed(n, f);
            for band in [1usize, 2, 7, 512, 10_000] {
                assert_eq!(
                    fill_condensed_banded(n, band, f),
                    expected,
                    "n={n} band={band}"
                );
            }
        }
        let one = with_num_threads(1, || fill_condensed_banded(600, 128, f));
        let four = with_num_threads(4, || fill_condensed_banded(600, 128, f));
        assert_eq!(one, four);
    }

    #[test]
    fn try_banded_fill_matches_and_trips() {
        use crate::robust::{Interrupt, RunBudget};
        let n = 300;
        let f = |u: usize, v: usize| ((u * 7 + v) % 13) as f64;
        let generous = RunBudget::unlimited().with_deadline_ms(60_000);
        assert_eq!(
            try_fill_condensed_banded(n, 64, f, &generous).unwrap(),
            fill_condensed(n, f)
        );
        assert_eq!(
            try_fill_condensed_banded(n, 64, f, &RunBudget::unlimited()).unwrap(),
            fill_condensed(n, f)
        );
        let expired = RunBudget::unlimited().with_deadline(std::time::Duration::ZERO);
        assert_eq!(
            try_fill_condensed_banded(n, 64, f, &expired),
            Err(Interrupt::Deadline)
        );
    }

    #[test]
    fn try_fill_condensed_matches_and_trips() {
        use crate::robust::{CancelToken, Interrupt, RunBudget};
        let n = 300;
        let f = |u: usize, v: usize| ((u * 7 + v) % 13) as f64;
        // A generous live budget reproduces the unbudgeted result exactly.
        let generous = RunBudget::unlimited().with_deadline_ms(60_000);
        assert_eq!(
            try_fill_condensed(n, f, &generous).unwrap(),
            fill_condensed(n, f)
        );
        // An unlimited budget takes the fast path.
        assert_eq!(
            try_fill_condensed(n, f, &RunBudget::unlimited()).unwrap(),
            fill_condensed(n, f)
        );
        // An already-expired deadline trips before any work completes.
        let expired = RunBudget::unlimited().with_deadline(std::time::Duration::ZERO);
        assert_eq!(try_fill_condensed(n, f, &expired), Err(Interrupt::Deadline));
        // A fired cancel token reports Cancelled.
        let token = CancelToken::new();
        token.cancel();
        let cancelled = RunBudget::unlimited().with_cancel_token(token);
        assert_eq!(
            try_fill_condensed(n, f, &cancelled),
            Err(Interrupt::Cancelled)
        );
    }

    #[test]
    fn row_range_fill_matches_the_full_fill_slice() {
        let n = 400;
        let f = |u: usize, v: usize| (u * 10_007 + v) as f64;
        let full = fill_condensed(n, f);
        let g = |(): &mut (), u: usize, vs: Range<usize>, seg: &mut [f64]| {
            for (entry, v) in seg.iter_mut().zip(vs) {
                *entry = f(u, v);
            }
        };
        for rows in [0..0, 0..1, 0..n, 3..17, 100..250, n - 1..n, 250..n] {
            let offset: usize = (0..rows.start).map(|u| n - 1 - u).sum();
            let pairs: usize = rows.clone().map(|u| n - 1 - u).sum();
            for band in [1usize, 64, 512] {
                let tile = fill_condensed_rows_banded_scratch(n, band, rows.clone(), || (), g);
                assert_eq!(tile.len(), pairs, "rows={rows:?} band={band}");
                assert_eq!(
                    tile,
                    full[offset..offset + pairs],
                    "rows={rows:?} band={band}"
                );
            }
            let one = with_num_threads(1, || {
                fill_condensed_rows_banded_scratch(n, 64, rows.clone(), || (), g)
            });
            let four = with_num_threads(4, || {
                fill_condensed_rows_banded_scratch(n, 64, rows.clone(), || (), g)
            });
            assert_eq!(one, four, "rows={rows:?}");
        }
    }

    #[test]
    fn override_is_scoped_and_restored() {
        let outer = current_num_threads();
        let inner = with_num_threads(3, current_num_threads);
        if cfg!(feature = "parallel") {
            assert_eq!(inner, 3);
        } else {
            assert_eq!(inner, 1);
        }
        assert_eq!(current_num_threads(), outer);
    }
}
