//! Run budgets, cooperative cancellation, and anytime-result plumbing.
//!
//! A [`RunBudget`] bundles the three ways a caller can bound an algorithm
//! run: a wall-clock deadline, an iteration cap, and a [`CancelToken`]
//! another thread can flip. Every `*_budgeted` algorithm entry point takes
//! one and checks it at `O(n)`-work granularity (per node visit, merge,
//! pivot, or center round) through a [`BudgetMeter`], so a trip is noticed
//! within one linear-time unit of work — cheap enough that `Instant::now()`
//! overhead is negligible relative to the work between checks.
//!
//! When the budget trips, the anytime algorithms (LOCALSEARCH, annealing,
//! AGGLOMERATIVE, and the rest of the roster) do **not** error: they return
//! their best-so-far clustering inside a [`RunOutcome`] tagged
//! [`RunStatus::BudgetExceeded`] or [`RunStatus::Cancelled`]. The internal
//! [`Interrupt`] type carries the trip reason from the check site to the
//! wrap-up code.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::clustering::Clustering;

/// A shareable flag for cooperative cancellation. Clone it, hand the clone
/// to the running thread's [`RunBudget`], and call [`CancelToken::cancel`]
/// from anywhere; the run returns its best-so-far result at the next check.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// `true` once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Why a budgeted run stopped early. Internal currency between the check
/// sites and the per-algorithm wrap-up code; public so downstream crates
/// can write their own budgeted loops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interrupt {
    /// The wall-clock deadline passed.
    Deadline,
    /// The iteration cap was reached.
    IterationCap,
    /// The [`CancelToken`] fired.
    Cancelled,
}

impl Interrupt {
    /// The [`RunStatus`] an anytime result should carry after this
    /// interrupt.
    pub fn status(self) -> RunStatus {
        match self {
            Interrupt::Deadline | Interrupt::IterationCap => RunStatus::BudgetExceeded,
            Interrupt::Cancelled => RunStatus::Cancelled,
        }
    }
}

/// How a budgeted run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// The algorithm ran to its natural completion.
    Converged,
    /// The deadline or iteration cap tripped; the result is the best
    /// clustering found so far.
    BudgetExceeded,
    /// The [`CancelToken`] fired; the result is the best clustering found
    /// so far.
    Cancelled,
}

impl RunStatus {
    /// `true` for [`RunStatus::Converged`].
    pub fn is_converged(self) -> bool {
        self == RunStatus::Converged
    }

    /// The worse of two statuses (`Converged < BudgetExceeded < Cancelled`),
    /// used when a pipeline combines several budgeted phases.
    pub fn combine(self, other: RunStatus) -> RunStatus {
        fn rank(s: RunStatus) -> u8 {
            match s {
                RunStatus::Converged => 0,
                RunStatus::BudgetExceeded => 1,
                RunStatus::Cancelled => 2,
            }
        }
        if rank(other) > rank(self) {
            other
        } else {
            self
        }
    }
}

/// An anytime algorithm result: the clustering, how the run ended, and how
/// much work it did.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The returned clustering — the final result when
    /// [`RunStatus::Converged`], the best-so-far otherwise.
    pub clustering: Clustering,
    /// How the run ended.
    pub status: RunStatus,
    /// Budget iterations consumed (each is one `O(n)` unit of work; see
    /// [`BudgetMeter::tick`]).
    pub iterations: u64,
}

impl RunOutcome {
    /// A converged outcome (used by trivial early-exit paths).
    pub fn converged(clustering: Clustering) -> Self {
        RunOutcome {
            clustering,
            status: RunStatus::Converged,
            iterations: 0,
        }
    }
}

/// Execution limits for one algorithm run. The default is unlimited.
///
/// ```
/// use aggclust_core::robust::RunBudget;
/// use std::time::Duration;
///
/// let budget = RunBudget::unlimited()
///     .with_deadline(Duration::from_millis(50))
///     .with_max_iters(1_000_000);
/// assert!(!budget.is_unlimited());
/// ```
#[derive(Clone, Debug, Default)]
pub struct RunBudget {
    deadline: Option<Instant>,
    max_iters: Option<u64>,
    cancel: Option<CancelToken>,
}

impl RunBudget {
    /// No limits: every check passes.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Stop after `duration` of wall-clock time from now.
    pub fn with_deadline(mut self, duration: Duration) -> Self {
        self.deadline = Some(Instant::now() + duration);
        self
    }

    /// Stop after `ms` milliseconds of wall-clock time from now.
    pub fn with_deadline_ms(self, ms: u64) -> Self {
        self.with_deadline(Duration::from_millis(ms))
    }

    /// Stop after `max_iters` budget iterations (each roughly one `O(n)`
    /// unit of work — a node visit, merge, pivot, or center round).
    pub fn with_max_iters(mut self, max_iters: u64) -> Self {
        self.max_iters = Some(max_iters);
        self
    }

    /// Attach a cancellation token.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// `true` when no deadline, cap, or token is set — checks are then
    /// branch-only and effectively free.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_iters.is_none() && self.cancel.is_none()
    }

    /// Check the deadline and the cancel token (but not the iteration cap,
    /// which only a [`BudgetMeter`] tracks). Used by parallel kernels whose
    /// workers share one budget.
    pub fn poll(&self) -> Result<(), Interrupt> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(Interrupt::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(Interrupt::Deadline);
            }
        }
        Ok(())
    }

    /// Start metering a run against this budget.
    pub fn meter(&self) -> BudgetMeter<'_> {
        BudgetMeter {
            budget: self,
            iterations: 0,
        }
    }
}

/// Per-run iteration counter bound to a [`RunBudget`].
///
/// One *iteration* is one `O(n)` unit of algorithm work, so the deadline is
/// polled often enough to be honored within a linear-time slice while the
/// `Instant::now()` call stays amortized.
#[derive(Debug)]
pub struct BudgetMeter<'a> {
    budget: &'a RunBudget,
    iterations: u64,
}

impl BudgetMeter<'_> {
    /// Record one unit of work and check every limit.
    pub fn tick(&mut self) -> Result<(), Interrupt> {
        self.tick_n(1)
    }

    /// Record `n` units of work and check every limit.
    pub fn tick_n(&mut self, n: u64) -> Result<(), Interrupt> {
        self.iterations = self.iterations.saturating_add(n);
        if self.budget.is_unlimited() {
            return Ok(());
        }
        if let Some(cap) = self.budget.max_iters {
            if self.iterations > cap {
                return Err(Interrupt::IterationCap);
            }
        }
        self.budget.poll()
    }

    /// Units of work recorded so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let budget = RunBudget::unlimited();
        let mut meter = budget.meter();
        for _ in 0..10_000 {
            assert!(meter.tick().is_ok());
        }
        assert_eq!(meter.iterations(), 10_000);
    }

    #[test]
    fn iteration_cap_trips_exactly() {
        let budget = RunBudget::unlimited().with_max_iters(5);
        let mut meter = budget.meter();
        for _ in 0..5 {
            assert!(meter.tick().is_ok());
        }
        assert_eq!(meter.tick(), Err(Interrupt::IterationCap));
    }

    #[test]
    fn expired_deadline_trips_immediately() {
        let budget = RunBudget::unlimited().with_deadline(Duration::ZERO);
        let mut meter = budget.meter();
        assert_eq!(meter.tick(), Err(Interrupt::Deadline));
        assert_eq!(budget.poll(), Err(Interrupt::Deadline));
    }

    #[test]
    fn cancel_token_is_shared() {
        let token = CancelToken::new();
        let budget = RunBudget::unlimited().with_cancel_token(token.clone());
        let mut meter = budget.meter();
        assert!(meter.tick().is_ok());
        token.cancel();
        assert_eq!(meter.tick(), Err(Interrupt::Cancelled));
        assert_eq!(budget.poll(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn cancellation_beats_deadline() {
        let token = CancelToken::new();
        token.cancel();
        let budget = RunBudget::unlimited()
            .with_deadline(Duration::ZERO)
            .with_cancel_token(token);
        assert_eq!(budget.poll(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn interrupt_to_status() {
        assert_eq!(Interrupt::Deadline.status(), RunStatus::BudgetExceeded);
        assert_eq!(Interrupt::IterationCap.status(), RunStatus::BudgetExceeded);
        assert_eq!(Interrupt::Cancelled.status(), RunStatus::Cancelled);
    }

    #[test]
    fn status_combine_takes_the_worse() {
        use RunStatus::*;
        assert_eq!(Converged.combine(BudgetExceeded), BudgetExceeded);
        assert_eq!(BudgetExceeded.combine(Converged), BudgetExceeded);
        assert_eq!(BudgetExceeded.combine(Cancelled), Cancelled);
        assert_eq!(Converged.combine(Converged), Converged);
        assert!(Converged.is_converged());
        assert!(!Cancelled.is_converged());
    }

    #[test]
    fn tick_n_counts_in_bulk() {
        let budget = RunBudget::unlimited().with_max_iters(100);
        let mut meter = budget.meter();
        assert!(meter.tick_n(100).is_ok());
        assert_eq!(meter.tick_n(1), Err(Interrupt::IterationCap));
    }
}
