//! Resource budgets, cooperative cancellation, and anytime-result plumbing.
//!
//! A [`ResourceBudget`] (aliased as [`RunBudget`] for the original name)
//! bundles the four ways a caller can bound an algorithm run: a wall-clock
//! deadline, an iteration cap, a [`CancelToken`] another thread can flip,
//! and a tracked memory ceiling. Every `*_budgeted` algorithm entry point
//! takes one and checks the time/iteration/cancel limits at `O(n)`-work
//! granularity (per node visit, merge, pivot, or center round) through a
//! [`BudgetMeter`], so a trip is noticed within one linear-time unit of
//! work — cheap enough that `Instant::now()` overhead is negligible
//! relative to the work between checks.
//!
//! The memory ceiling is enforced at allocation sites rather than check
//! sites: code about to make a large allocation (the condensed distance
//! matrix, label vectors, contingency tables) calls
//! [`ResourceBudget::try_reserve`] first, which either registers the bytes
//! with the budget's [`MemGauge`] and returns an RAII [`MemCharge`], or
//! refuses with [`Interrupt::MemoryExceeded`] so the caller can degrade to
//! a smaller representation instead of risking the OOM killer.
//!
//! When the budget trips, the anytime algorithms (LOCALSEARCH, annealing,
//! AGGLOMERATIVE, and the rest of the roster) do **not** error: they return
//! their best-so-far clustering inside a [`RunOutcome`] tagged
//! [`RunStatus::BudgetExceeded`] or [`RunStatus::Cancelled`]. The internal
//! [`Interrupt`] type carries the trip reason from the check site to the
//! wrap-up code.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::clustering::Clustering;
use crate::telemetry::{self, Clock};

/// A shareable flag for cooperative cancellation. Clone it, hand the clone
/// to the running thread's [`RunBudget`], and call [`CancelToken::cancel`]
/// from anywhere; the run returns its best-so-far result at the next check.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// `true` once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Why a budgeted run stopped early. Internal currency between the check
/// sites and the per-algorithm wrap-up code; public so downstream crates
/// can write their own budgeted loops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interrupt {
    /// The wall-clock deadline passed.
    Deadline,
    /// The iteration cap was reached.
    IterationCap,
    /// The [`CancelToken`] fired.
    Cancelled,
    /// A [`ResourceBudget::try_reserve`] request would have pushed tracked
    /// memory past the cap. Callers typically degrade to a smaller
    /// representation rather than surfacing this as an anytime stop.
    MemoryExceeded {
        /// Bytes the refused allocation asked for.
        requested: u64,
        /// The configured memory ceiling in bytes.
        limit: u64,
    },
}

impl Interrupt {
    /// The [`RunStatus`] an anytime result should carry after this
    /// interrupt.
    ///
    /// This is the single point where a trip is converted into an anytime
    /// status, so it doubles as the telemetry hook counting interrupts by
    /// kind (see [`crate::telemetry::Metrics`]).
    pub fn status(self) -> RunStatus {
        telemetry::count_interrupt(self);
        match self {
            Interrupt::Deadline | Interrupt::IterationCap | Interrupt::MemoryExceeded { .. } => {
                RunStatus::BudgetExceeded
            }
            Interrupt::Cancelled => RunStatus::Cancelled,
        }
    }
}

/// How a budgeted run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// The algorithm ran to its natural completion.
    Converged,
    /// The deadline or iteration cap tripped; the result is the best
    /// clustering found so far.
    BudgetExceeded,
    /// The [`CancelToken`] fired; the result is the best clustering found
    /// so far.
    Cancelled,
}

impl RunStatus {
    /// `true` for [`RunStatus::Converged`].
    pub fn is_converged(self) -> bool {
        self == RunStatus::Converged
    }

    /// The worse of two statuses (`Converged < BudgetExceeded < Cancelled`),
    /// used when a pipeline combines several budgeted phases.
    pub fn combine(self, other: RunStatus) -> RunStatus {
        fn rank(s: RunStatus) -> u8 {
            match s {
                RunStatus::Converged => 0,
                RunStatus::BudgetExceeded => 1,
                RunStatus::Cancelled => 2,
            }
        }
        if rank(other) > rank(self) {
            other
        } else {
            self
        }
    }
}

/// An anytime algorithm result: the clustering, how the run ended, and how
/// much work it did.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The returned clustering — the final result when
    /// [`RunStatus::Converged`], the best-so-far otherwise.
    pub clustering: Clustering,
    /// How the run ended.
    pub status: RunStatus,
    /// Budget iterations consumed (each is one `O(n)` unit of work; see
    /// [`BudgetMeter::tick`]).
    pub iterations: u64,
}

impl RunOutcome {
    /// A converged outcome (used by trivial early-exit paths).
    pub fn converged(clustering: Clustering) -> Self {
        RunOutcome {
            clustering,
            status: RunStatus::Converged,
            iterations: 0,
        }
    }
}

/// Tracked bytes for the handful of allocations large enough to matter
/// (condensed distance matrix, label vectors, contingency tables).
///
/// Clones share one counter, so a [`ResourceBudget`] cloned into worker
/// threads keeps a single account. The gauge only *counts*; the cap lives
/// on the budget and is enforced by [`ResourceBudget::try_reserve`].
#[derive(Clone, Debug, Default)]
pub struct MemGauge {
    used: Arc<AtomicU64>,
}

impl MemGauge {
    /// A fresh gauge with nothing charged.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes currently charged across all live [`MemCharge`]s.
    pub fn used_bytes(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Record `bytes` against the gauge; the returned [`MemCharge`] releases
    /// them when dropped. This never refuses — cap enforcement is
    /// [`ResourceBudget::try_reserve`]'s job. The post-charge level feeds
    /// the telemetry high-water gauge.
    pub fn charge(&self, bytes: u64) -> MemCharge {
        let before = self.used.fetch_add(bytes, Ordering::Relaxed);
        telemetry::observe_mem_bytes(before.saturating_add(bytes));
        MemCharge {
            gauge: self.clone(),
            bytes,
        }
    }
}

/// RAII receipt for bytes charged to a [`MemGauge`]; dropping it releases
/// the charge. Stored alongside the allocation it accounts for (e.g. inside
/// a governed distance matrix) so the books balance automatically.
#[derive(Debug)]
pub struct MemCharge {
    gauge: MemGauge,
    bytes: u64,
}

impl MemCharge {
    /// Bytes this charge holds against the gauge.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for MemCharge {
    fn drop(&mut self) {
        self.gauge.used.fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

/// Backwards-compatible name for [`ResourceBudget`] from before the memory
/// cap existed; every `*_budgeted` signature still reads `&RunBudget`.
pub type RunBudget = ResourceBudget;

/// Execution limits for one algorithm run. The default is unlimited.
///
/// ```
/// use aggclust_core::robust::RunBudget;
/// use std::time::Duration;
///
/// let budget = RunBudget::unlimited()
///     .with_deadline(Duration::from_millis(50))
///     .with_max_iters(1_000_000)
///     .with_mem_limit_mb(512);
/// assert!(!budget.is_unlimited());
/// ```
#[derive(Clone, Debug, Default)]
pub struct ResourceBudget {
    // Absolute deadline in nanoseconds on `clock` (not an `Instant`, so a
    // mock clock can drive deadline tests without real sleeps).
    deadline_ns: Option<u64>,
    max_iters: Option<u64>,
    cancel: Option<CancelToken>,
    mem_limit: Option<u64>,
    gauge: MemGauge,
    clock: Clock,
}

impl ResourceBudget {
    /// No limits: every check passes.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Read time from `clock` instead of the OS monotonic clock. Set this
    /// **before** [`ResourceBudget::with_deadline`]: the deadline is fixed
    /// on whichever clock the budget holds when it is computed.
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// The clock this budget measures its deadline on.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Stop after `duration` of wall-clock time from now (as told by the
    /// budget's [`Clock`]).
    pub fn with_deadline(mut self, duration: Duration) -> Self {
        let d = u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX);
        self.deadline_ns = Some(self.clock.now_ns().saturating_add(d));
        self
    }

    /// Stop after `ms` milliseconds of wall-clock time from now.
    pub fn with_deadline_ms(self, ms: u64) -> Self {
        self.with_deadline(Duration::from_millis(ms))
    }

    /// Stop after `max_iters` budget iterations (each roughly one `O(n)`
    /// unit of work — a node visit, merge, pivot, or center round).
    pub fn with_max_iters(mut self, max_iters: u64) -> Self {
        self.max_iters = Some(max_iters);
        self
    }

    /// Attach a cancellation token.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Cap tracked memory at `bytes`; [`ResourceBudget::try_reserve`]
    /// refuses any request that would push the gauge past it.
    pub fn with_mem_limit_bytes(mut self, bytes: u64) -> Self {
        self.mem_limit = Some(bytes);
        self
    }

    /// Cap tracked memory at `mb` mebibytes.
    pub fn with_mem_limit_mb(self, mb: u64) -> Self {
        self.with_mem_limit_bytes(mb.saturating_mul(1024 * 1024))
    }

    /// The configured memory ceiling in bytes, if any.
    pub fn mem_limit_bytes(&self) -> Option<u64> {
        self.mem_limit
    }

    /// The gauge this budget charges tracked allocations against.
    pub fn mem_gauge(&self) -> &MemGauge {
        &self.gauge
    }

    /// Bytes still reservable before the memory ceiling: `limit − used`,
    /// saturating at zero. `None` when no cap is set (headroom unbounded).
    /// Degraded modes size themselves with this — the sampling clamp and
    /// the spill tile cache both fit their working set into it.
    pub fn headroom_bytes(&self) -> Option<u64> {
        self.mem_limit
            .map(|limit| limit.saturating_sub(self.gauge.used_bytes()))
    }

    /// Ask permission for a large allocation of `bytes`.
    ///
    /// With no memory cap this always succeeds (the bytes are still
    /// counted, so diagnostics see real usage). With a cap it refuses —
    /// returning [`Interrupt::MemoryExceeded`] and charging nothing — when
    /// the request would push the gauge past the ceiling; the caller is
    /// expected to degrade to a smaller representation.
    pub fn try_reserve(&self, bytes: u64) -> Result<MemCharge, Interrupt> {
        if let Some(limit) = self.mem_limit {
            if self.gauge.used_bytes().saturating_add(bytes) > limit {
                return Err(Interrupt::MemoryExceeded {
                    requested: bytes,
                    limit,
                });
            }
        }
        // An armed `alloc=fail:after_mb=N` failpoint simulates memory
        // pressure the gauge cannot see (the rest of the process, another
        // tenant): past the threshold, reserves refuse exactly as if a
        // cap were hit, driving the same degradation chain.
        if let Some(crate::failpoint::Fault::AllocFail { limit }) =
            crate::failpoint::alloc_check(bytes)
        {
            return Err(Interrupt::MemoryExceeded {
                requested: bytes,
                limit,
            });
        }
        Ok(self.gauge.charge(bytes))
    }

    /// Wall-clock time left before the deadline: `None` when no deadline
    /// is set, [`Duration::ZERO`] once it has passed. Retry/backoff
    /// supervision caps its sleeps with this (see
    /// [`crate::snapshot::RetryPolicy::run_supervised`]).
    pub fn remaining_deadline(&self) -> Option<Duration> {
        self.deadline_ns
            .map(|d| Duration::from_nanos(d.saturating_sub(self.clock.now_ns())))
    }

    /// `true` when no deadline, cap, token, or memory limit is set — checks
    /// are then branch-only and effectively free.
    pub fn is_unlimited(&self) -> bool {
        self.no_run_limits() && self.mem_limit.is_none()
    }

    /// `true` when no *per-iteration* limit (deadline, iteration cap, or
    /// cancel token) is set. The memory cap is excluded: it is enforced at
    /// allocation sites, so metering can stay on the free fast path.
    pub fn no_run_limits(&self) -> bool {
        self.deadline_ns.is_none() && self.max_iters.is_none() && self.cancel.is_none()
    }

    /// Check the deadline and the cancel token (but not the iteration cap,
    /// which only a [`BudgetMeter`] tracks). Used by parallel kernels whose
    /// workers share one budget.
    pub fn poll(&self) -> Result<(), Interrupt> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(Interrupt::Cancelled);
            }
        }
        if let Some(deadline_ns) = self.deadline_ns {
            if self.clock.now_ns() >= deadline_ns {
                return Err(Interrupt::Deadline);
            }
        }
        Ok(())
    }

    /// Start metering a run against this budget.
    pub fn meter(&self) -> BudgetMeter<'_> {
        self.meter_from(0)
    }

    /// Start metering with `start_iterations` units already on the clock.
    ///
    /// Used when resuming from a checkpoint: the iteration cap then bounds
    /// the *total* work across the interrupted run and its resumption, so a
    /// resumed run is bit-identical to the same run left uninterrupted.
    pub fn meter_from(&self, start_iterations: u64) -> BudgetMeter<'_> {
        BudgetMeter {
            budget: self,
            iterations: start_iterations,
        }
    }
}

/// Per-run iteration counter bound to a [`RunBudget`].
///
/// One *iteration* is one `O(n)` unit of algorithm work, so the deadline is
/// polled often enough to be honored within a linear-time slice while the
/// `Instant::now()` call stays amortized.
#[derive(Debug)]
pub struct BudgetMeter<'a> {
    budget: &'a RunBudget,
    iterations: u64,
}

impl BudgetMeter<'_> {
    /// Record one unit of work and check every limit.
    pub fn tick(&mut self) -> Result<(), Interrupt> {
        self.tick_n(1)
    }

    /// Record `n` units of work and check every limit.
    pub fn tick_n(&mut self, n: u64) -> Result<(), Interrupt> {
        self.iterations = self.iterations.saturating_add(n);
        if self.budget.no_run_limits() {
            return Ok(());
        }
        if let Some(cap) = self.budget.max_iters {
            if self.iterations > cap {
                return Err(Interrupt::IterationCap);
            }
        }
        self.budget.poll()
    }

    /// Units of work recorded so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let budget = RunBudget::unlimited();
        let mut meter = budget.meter();
        for _ in 0..10_000 {
            assert!(meter.tick().is_ok());
        }
        assert_eq!(meter.iterations(), 10_000);
    }

    #[test]
    fn iteration_cap_trips_exactly() {
        let budget = RunBudget::unlimited().with_max_iters(5);
        let mut meter = budget.meter();
        for _ in 0..5 {
            assert!(meter.tick().is_ok());
        }
        assert_eq!(meter.tick(), Err(Interrupt::IterationCap));
    }

    #[test]
    fn expired_deadline_trips_immediately() {
        let budget = RunBudget::unlimited().with_deadline(Duration::ZERO);
        let mut meter = budget.meter();
        assert_eq!(meter.tick(), Err(Interrupt::Deadline));
        assert_eq!(budget.poll(), Err(Interrupt::Deadline));
    }

    #[test]
    fn mock_clock_drives_the_deadline_without_sleeping() {
        let clock = Clock::mock();
        let budget = RunBudget::unlimited()
            .with_clock(clock.clone())
            .with_deadline(Duration::from_millis(10));
        let mut meter = budget.meter();
        assert!(meter.tick().is_ok());
        clock.advance(Duration::from_millis(9));
        assert!(meter.tick().is_ok());
        clock.advance(Duration::from_millis(1));
        assert_eq!(meter.tick(), Err(Interrupt::Deadline));
        assert_eq!(budget.poll(), Err(Interrupt::Deadline));
    }

    #[test]
    fn cancel_token_is_shared() {
        let token = CancelToken::new();
        let budget = RunBudget::unlimited().with_cancel_token(token.clone());
        let mut meter = budget.meter();
        assert!(meter.tick().is_ok());
        token.cancel();
        assert_eq!(meter.tick(), Err(Interrupt::Cancelled));
        assert_eq!(budget.poll(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn cancellation_beats_deadline() {
        let token = CancelToken::new();
        token.cancel();
        let budget = RunBudget::unlimited()
            .with_deadline(Duration::ZERO)
            .with_cancel_token(token);
        assert_eq!(budget.poll(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn interrupt_to_status() {
        assert_eq!(Interrupt::Deadline.status(), RunStatus::BudgetExceeded);
        assert_eq!(Interrupt::IterationCap.status(), RunStatus::BudgetExceeded);
        assert_eq!(Interrupt::Cancelled.status(), RunStatus::Cancelled);
    }

    #[test]
    fn status_combine_takes_the_worse() {
        use RunStatus::*;
        assert_eq!(Converged.combine(BudgetExceeded), BudgetExceeded);
        assert_eq!(BudgetExceeded.combine(Converged), BudgetExceeded);
        assert_eq!(BudgetExceeded.combine(Cancelled), Cancelled);
        assert_eq!(Converged.combine(Converged), Converged);
        assert!(Converged.is_converged());
        assert!(!Cancelled.is_converged());
    }

    #[test]
    fn tick_n_counts_in_bulk() {
        let budget = RunBudget::unlimited().with_max_iters(100);
        let mut meter = budget.meter();
        assert!(meter.tick_n(100).is_ok());
        assert_eq!(meter.tick_n(1), Err(Interrupt::IterationCap));
    }

    #[test]
    fn meter_from_counts_total_work_across_a_resume() {
        let budget = RunBudget::unlimited().with_max_iters(10);
        let mut meter = budget.meter_from(7);
        assert!(meter.tick_n(3).is_ok());
        assert_eq!(meter.iterations(), 10);
        assert_eq!(meter.tick(), Err(Interrupt::IterationCap));
    }

    #[test]
    fn mem_charges_are_raii_and_shared_across_clones() {
        let budget = RunBudget::unlimited().with_mem_limit_bytes(100);
        assert!(!budget.is_unlimited());
        let shared = budget.clone();
        let a = budget.try_reserve(60).expect("fits");
        assert_eq!(a.bytes(), 60);
        assert_eq!(shared.mem_gauge().used_bytes(), 60);
        // 60 + 50 > 100: refused, nothing charged.
        match shared.try_reserve(50) {
            Err(Interrupt::MemoryExceeded { requested, limit }) => {
                assert_eq!(requested, 50);
                assert_eq!(limit, 100);
            }
            other => panic!("expected MemoryExceeded, got {other:?}"),
        }
        assert_eq!(budget.mem_gauge().used_bytes(), 60);
        drop(a);
        assert_eq!(budget.mem_gauge().used_bytes(), 0);
        assert!(budget.try_reserve(100).is_ok());
    }

    #[test]
    fn uncapped_budget_still_counts_reservations() {
        let budget = RunBudget::unlimited();
        assert!(budget.is_unlimited());
        let charge = budget.try_reserve(1 << 40).expect("no cap, never refuses");
        assert_eq!(budget.mem_gauge().used_bytes(), 1 << 40);
        drop(charge);
        assert_eq!(budget.mem_gauge().used_bytes(), 0);
    }

    #[test]
    fn memory_cap_alone_does_not_trip_the_meter() {
        let budget = RunBudget::unlimited().with_mem_limit_mb(1);
        assert_eq!(budget.mem_limit_bytes(), Some(1024 * 1024));
        let mut meter = budget.meter();
        for _ in 0..1000 {
            assert!(meter.tick().is_ok());
        }
        assert_eq!(
            Interrupt::MemoryExceeded {
                requested: 1,
                limit: 1
            }
            .status(),
            RunStatus::BudgetExceeded
        );
    }
}
