//! Crash-safe checkpointing of in-flight algorithm state.
//!
//! Long aggregations (LOCALSEARCH or SAMPLING on Census-scale inputs) can
//! outlive their process: the operator hits Ctrl-C, the batch scheduler
//! preempts the job, the machine dies. This module serializes enough
//! algorithm state to resume such a run **bit-identically** — the resumed
//! run produces exactly the labels, cost, and iteration count the
//! uninterrupted run would have.
//!
//! ## Snapshot format
//!
//! A snapshot file is a small binary envelope around a payload, all
//! little-endian:
//!
//! | offset | size | field |
//! |---|---|---|
//! | 0 | 8 | magic `"AGGCKPT\0"` |
//! | 8 | 4 | format version (`u32`, currently 1) |
//! | 12 | 8 | payload length in bytes (`u64`) |
//! | 20 | 4 | CRC32 (IEEE) of the payload |
//! | 24 | — | payload |
//!
//! The payload is a `stage` word (0 = main algorithm, 1 = LOCALSEARCH
//! refinement pass) followed by a tagged [`AlgorithmSnapshot`]. Decoding is
//! fully bounds-checked; any mismatch — bad magic, unknown version, short
//! file, CRC failure, inconsistent lengths — comes back as
//! [`SnapshotLoad::Corrupt`] with a reason, **never** a panic and never a
//! partially-decoded state.
//!
//! ## Atomic writes
//!
//! [`save_snapshot`] writes to `<path>.tmp`, fsyncs the file, renames it
//! over `<path>`, then best-effort fsyncs the parent directory. A crash at
//! any point leaves either the previous complete snapshot or the new one,
//! never a torn file. [`Checkpointer`] adds a wall-clock cadence and a
//! bounded, jittered exponential-backoff retry (3 attempts) on top.

use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::robust::ResourceBudget;
use crate::telemetry::{self, Cadence, Clock};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Magic bytes identifying a snapshot file.
const MAGIC: [u8; 8] = *b"AGGCKPT\0";
/// Current snapshot format version.
const VERSION: u32 = 1;
/// Envelope size: magic + version + payload length + CRC32.
const HEADER_LEN: usize = 8 + 4 + 8 + 4;
/// Write attempts before a checkpoint save is reported as failed.
const SAVE_ATTEMPTS: u32 = 3;
/// Base backoff before the first retry; doubles per attempt, plus jitter.
const BACKOFF_BASE: Duration = Duration::from_millis(10);

// ---------------------------------------------------------------------------
// Snapshot state types
// ---------------------------------------------------------------------------

/// In-flight LOCALSEARCH state: enough to re-enter the pass loop at the
/// exact node where the run stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocalSearchSnapshot {
    /// Current label of every object.
    pub labels: Vec<u32>,
    /// Zero-based index of the pass in progress.
    pub pass: u64,
    /// Next node the pass would have visited.
    pub next_node: u64,
    /// Whether any node moved earlier in the current pass (the pass-level
    /// convergence flag must survive the restart).
    pub moved_in_pass: bool,
    /// Budget iterations consumed so far (resumes the meter, so an
    /// iteration cap bounds total work across interrupts).
    pub iterations: u64,
    /// xoshiro256++ state of the init RNG (only the `Random` init draws
    /// from it; recorded so the snapshot fully determines the run).
    pub rng: [u64; 4],
}

/// One recorded merge of the agglomerative dendrogram, mirroring
/// [`crate::linkage::Merge`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MergeRecord {
    /// Node id of the deactivated side.
    pub a: u64,
    /// Node id of the surviving side.
    pub b: u64,
    /// Average-linkage distance at which the pair merged.
    pub height: f64,
    /// Size of the merged cluster.
    pub size: u64,
}

/// In-flight AGGLOMERATIVE state: the partial merge list plus the live
/// nearest-neighbor chain.
///
/// The chain matters for bit-identity: restarting NN-chain with an empty
/// chain discovers the remaining merges in a different order, and
/// [`crate::linkage::Dendrogram::cut_num_clusters`] breaks height ties by
/// discovery index.
#[derive(Clone, Debug, PartialEq)]
pub struct AgglomerativeSnapshot {
    /// Number of leaves (validated against the live instance on resume).
    pub n: u64,
    /// Merges performed so far, in discovery order.
    pub merges: Vec<MergeRecord>,
    /// The live NN-chain (row indices), bottom first.
    pub chain: Vec<u64>,
    /// Budget iterations consumed so far.
    pub iterations: u64,
}

/// In-flight SAMPLING state, checkpointable during the linear assignment
/// phase (phase 3) — the only phase whose cost grows with `n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SamplingSnapshot {
    /// Number of objects (validated against the live instance on resume).
    pub n: u64,
    /// Sorted sampled node indices.
    pub sample: Vec<u64>,
    /// Cluster label of each sampled node.
    pub sample_labels: Vec<u32>,
    /// Labels assigned so far; `u32::MAX` marks a not-yet-assigned node.
    pub labels: Vec<u32>,
    /// Next non-sample node the assignment phase would have visited.
    pub next_node: u64,
    /// Budget iterations consumed so far.
    pub iterations: u64,
}

/// Which algorithm a snapshot captures, with its state.
#[derive(Clone, Debug, PartialEq)]
pub enum AlgorithmSnapshot {
    /// LOCALSEARCH (also used for the consensus refinement pass).
    LocalSearch(LocalSearchSnapshot),
    /// AGGLOMERATIVE.
    Agglomerative(AgglomerativeSnapshot),
    /// The SAMPLING meta-algorithm.
    Sampling(SamplingSnapshot),
}

/// A complete checkpoint: which pipeline stage was running, and the
/// algorithm state.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// Pipeline stage: 0 = main algorithm, 1 = refinement pass.
    pub stage: u32,
    /// The captured algorithm state.
    pub state: AlgorithmSnapshot,
}

/// The outcome of [`load_snapshot`]. Corruption is data, not an error —
/// callers fall back to a fresh run with a warning.
#[derive(Clone, Debug, PartialEq)]
pub enum SnapshotLoad {
    /// The file decoded and checksummed cleanly.
    Loaded(Snapshot),
    /// No snapshot file exists at the path.
    Missing,
    /// The file exists but is unreadable, truncated, version-mismatched,
    /// or fails its checksum; the reason is human-readable.
    Corrupt(String),
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE), table-based — hand-rolled, the container has no crc crate
// ---------------------------------------------------------------------------

/// The standard reflected CRC32 polynomial.
const CRC32_POLY: u32 = 0xedb8_8320;

fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ CRC32_POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32 (IEEE 802.3) of `data` — the checksum guarding the payload.
pub fn crc32(data: &[u8]) -> u32 {
    // Build-once would need a OnceLock; the table is 1 KiB of shifts and
    // snapshot I/O is rare, so recomputing it per call is simpler and cheap.
    let table = crc32_table();
    let mut crc = 0xffff_ffffu32;
    for &byte in data {
        let idx = ((crc ^ byte as u32) & 0xff) as usize;
        crc = (crc >> 8) ^ table[idx];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Payload encoding / decoding
// ---------------------------------------------------------------------------

pub(crate) struct Writer {
    pub(crate) buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    pub(crate) fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub(crate) fn put_u32_slice(&mut self, vs: &[u32]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_u32(v);
        }
    }

    pub(crate) fn put_u64_slice(&mut self, vs: &[u64]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_u64(v);
        }
    }
}

pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(format!(
                "truncated payload: {what} needs {n} bytes at offset {}, only {} available",
                self.pos,
                self.buf.len() - self.pos
            )),
        }
    }

    pub(crate) fn take_u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.bytes(1, what)?[0])
    }

    pub(crate) fn take_u32(&mut self, what: &str) -> Result<u32, String> {
        let b = self.bytes(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn take_u64(&mut self, what: &str) -> Result<u64, String> {
        let b = self.bytes(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn take_f64(&mut self, what: &str) -> Result<f64, String> {
        Ok(f64::from_bits(self.take_u64(what)?))
    }

    /// A length prefix, validated against the bytes actually remaining so a
    /// corrupt length can never trigger a huge allocation.
    pub(crate) fn take_len(&mut self, item_bytes: usize, what: &str) -> Result<usize, String> {
        let len = self.take_u64(what)?;
        let len = usize::try_from(len).map_err(|_| format!("{what} length {len} overflows"))?;
        let needed = len
            .checked_mul(item_bytes)
            .filter(|&b| b <= self.remaining());
        if needed.is_none() {
            return Err(format!(
                "corrupt length: {what} claims {len} items but only {} payload bytes remain",
                self.remaining()
            ));
        }
        Ok(len)
    }

    pub(crate) fn take_u32_vec(&mut self, what: &str) -> Result<Vec<u32>, String> {
        let len = self.take_len(4, what)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.take_u32(what)?);
        }
        Ok(out)
    }

    pub(crate) fn take_u64_vec(&mut self, what: &str) -> Result<Vec<u64>, String> {
        let len = self.take_len(8, what)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.take_u64(what)?);
        }
        Ok(out)
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

// ---------------------------------------------------------------------------
// Shared envelope codec (snapshots, spill tiles)
// ---------------------------------------------------------------------------

/// Wrap `payload` in the standard envelope: `magic | version | payload length
/// (u64) | CRC32(payload) | payload`. The same layout guards both checkpoint
/// files and spilled condensed-matrix tiles; only the magic differs.
pub(crate) fn encode_envelope(magic: &[u8; 8], version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validate the envelope around `bytes` and return the checksummed payload.
/// Every failure mode — short file, wrong magic, version mismatch, length
/// mismatch, CRC failure — is a reason string, never a panic.
pub(crate) fn decode_envelope<'a>(
    magic: &[u8; 8],
    version: u32,
    bytes: &'a [u8],
) -> Result<&'a [u8], String> {
    if bytes.len() < HEADER_LEN {
        return Err(format!(
            "file too short: {} bytes, envelope needs {HEADER_LEN}",
            bytes.len()
        ));
    }
    if &bytes[..8] != magic {
        return Err("bad magic: not the expected file type".to_string());
    }
    let found = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if found != version {
        return Err(format!(
            "unsupported format version {found} (this build reads {version})"
        ));
    }
    let payload_len = u64::from_le_bytes([
        bytes[12], bytes[13], bytes[14], bytes[15], bytes[16], bytes[17], bytes[18], bytes[19],
    ]);
    let stored_crc = u32::from_le_bytes([bytes[20], bytes[21], bytes[22], bytes[23]]);
    let body = &bytes[HEADER_LEN..];
    if payload_len != body.len() as u64 {
        return Err(format!(
            "truncated file: header claims {payload_len} payload bytes, found {}",
            body.len()
        ));
    }
    let actual_crc = crc32(body);
    if actual_crc != stored_crc {
        return Err(format!(
            "checksum mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
        ));
    }
    Ok(body)
}

const TAG_LOCAL_SEARCH: u8 = 1;
const TAG_AGGLOMERATIVE: u8 = 2;
const TAG_SAMPLING: u8 = 3;

/// Serialize a snapshot into the on-disk byte format (envelope included).
pub fn encode(snapshot: &Snapshot) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u32(snapshot.stage);
    match &snapshot.state {
        AlgorithmSnapshot::LocalSearch(s) => {
            w.put_u8(TAG_LOCAL_SEARCH);
            w.put_u32_slice(&s.labels);
            w.put_u64(s.pass);
            w.put_u64(s.next_node);
            w.put_u8(s.moved_in_pass as u8);
            w.put_u64(s.iterations);
            for word in s.rng {
                w.put_u64(word);
            }
        }
        AlgorithmSnapshot::Agglomerative(s) => {
            w.put_u8(TAG_AGGLOMERATIVE);
            w.put_u64(s.n);
            w.put_u64(s.merges.len() as u64);
            for m in &s.merges {
                w.put_u64(m.a);
                w.put_u64(m.b);
                w.put_f64(m.height);
                w.put_u64(m.size);
            }
            w.put_u64_slice(&s.chain);
            w.put_u64(s.iterations);
        }
        AlgorithmSnapshot::Sampling(s) => {
            w.put_u8(TAG_SAMPLING);
            w.put_u64(s.n);
            w.put_u64_slice(&s.sample);
            w.put_u32_slice(&s.sample_labels);
            w.put_u32_slice(&s.labels);
            w.put_u64(s.next_node);
            w.put_u64(s.iterations);
        }
    }
    encode_envelope(&MAGIC, VERSION, &w.buf)
}

/// Decode snapshot bytes (envelope included). Every failure mode returns a
/// reason string; this function never panics on any input.
pub fn decode(bytes: &[u8]) -> Result<Snapshot, String> {
    let body = decode_envelope(&MAGIC, VERSION, bytes)?;
    let mut r = Reader::new(body);
    let stage = r.take_u32("stage")?;
    let tag = r.take_u8("algorithm tag")?;
    let state = match tag {
        TAG_LOCAL_SEARCH => {
            let labels = r.take_u32_vec("labels")?;
            let pass = r.take_u64("pass")?;
            let next_node = r.take_u64("next_node")?;
            let moved_in_pass = r.take_u8("moved_in_pass")? != 0;
            let iterations = r.take_u64("iterations")?;
            let mut rng = [0u64; 4];
            for word in &mut rng {
                *word = r.take_u64("rng state")?;
            }
            if next_node > labels.len() as u64 {
                return Err(format!(
                    "inconsistent state: next_node {next_node} past {} labels",
                    labels.len()
                ));
            }
            AlgorithmSnapshot::LocalSearch(LocalSearchSnapshot {
                labels,
                pass,
                next_node,
                moved_in_pass,
                iterations,
                rng,
            })
        }
        TAG_AGGLOMERATIVE => {
            let n = r.take_u64("n")?;
            let merge_count = r.take_len(8 * 4, "merges")?;
            let mut merges = Vec::with_capacity(merge_count);
            for _ in 0..merge_count {
                merges.push(MergeRecord {
                    a: r.take_u64("merge.a")?,
                    b: r.take_u64("merge.b")?,
                    height: r.take_f64("merge.height")?,
                    size: r.take_u64("merge.size")?,
                });
            }
            let chain = r.take_u64_vec("chain")?;
            let iterations = r.take_u64("iterations")?;
            if merges.len() as u64 >= n.max(1) {
                return Err(format!(
                    "inconsistent state: {} merges for n = {n}",
                    merges.len()
                ));
            }
            AlgorithmSnapshot::Agglomerative(AgglomerativeSnapshot {
                n,
                merges,
                chain,
                iterations,
            })
        }
        TAG_SAMPLING => {
            let n = r.take_u64("n")?;
            let sample = r.take_u64_vec("sample")?;
            let sample_labels = r.take_u32_vec("sample_labels")?;
            let labels = r.take_u32_vec("labels")?;
            let next_node = r.take_u64("next_node")?;
            let iterations = r.take_u64("iterations")?;
            if labels.len() as u64 != n
                || sample.len() != sample_labels.len()
                || next_node > n
                || sample.iter().any(|&s| s >= n)
            {
                return Err("inconsistent sampling state".to_string());
            }
            AlgorithmSnapshot::Sampling(SamplingSnapshot {
                n,
                sample,
                sample_labels,
                labels,
                next_node,
                iterations,
            })
        }
        other => return Err(format!("unknown algorithm tag {other}")),
    };
    if r.remaining() != 0 {
        return Err(format!("{} trailing payload bytes", r.remaining()));
    }
    Ok(Snapshot { stage, state })
}

// ---------------------------------------------------------------------------
// Atomic file I/O
// ---------------------------------------------------------------------------

/// Write `snapshot` to `path` atomically: `<path>.tmp` + fsync + rename,
/// then a best-effort fsync of the parent directory. A crash leaves either
/// the previous snapshot or the new one, never a torn file.
pub fn save_snapshot(path: &Path, snapshot: &Snapshot) -> std::io::Result<()> {
    let bytes = encode(snapshot);
    if telemetry::metrics_enabled() {
        telemetry::metrics()
            .checkpoint_bytes_hist
            .observe(bytes.len() as f64);
    }
    crate::iofs::write_file_atomic("snapshot", path, &bytes)
}

/// Read and validate the snapshot at `path`. Corruption of any kind —
/// including a file that is not a snapshot at all — is reported as
/// [`SnapshotLoad::Corrupt`], never an `Err` or a panic: the caller's
/// recovery is always "fall back to a fresh run with a warning".
pub fn load_snapshot(path: &Path) -> SnapshotLoad {
    let bytes = match crate::iofs::read("snapshot.read", path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return SnapshotLoad::Missing,
        Err(e) => {
            telemetry::metrics()
                .checkpoint_corruptions
                .incr_if_enabled();
            return SnapshotLoad::Corrupt(format!("unreadable: {e}"));
        }
    };
    match decode(&bytes) {
        Ok(snapshot) => SnapshotLoad::Loaded(snapshot),
        Err(reason) => {
            telemetry::metrics()
                .checkpoint_corruptions
                .incr_if_enabled();
            SnapshotLoad::Corrupt(reason)
        }
    }
}

// ---------------------------------------------------------------------------
// Retry with bounded, jittered exponential backoff
// ---------------------------------------------------------------------------

/// How transient-I/O retries behave: total attempts, base backoff, and
/// whether each sleep gains deterministic jitter.
///
/// The default — 3 attempts, 10 ms base, jitter on — is the policy every
/// caller used before it became configurable; [`retry_with_backoff`] keeps
/// the old signature as a thin wrapper. The sleep before retry `i` is
/// `base * 2^i` plus (when jitter is on) up to 100% extra drawn from a
/// seeded RNG, so concurrent writers against the same contended resource
/// desynchronize without losing reproducibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total tries before the last error is returned (minimum 1).
    pub attempts: u32,
    /// Backoff before the first retry; doubles each retry.
    pub base: Duration,
    /// Add up to 100% seeded jitter to each backoff sleep.
    pub jitter: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: SAVE_ATTEMPTS,
            base: BACKOFF_BASE,
            jitter: true,
        }
    }
}

impl RetryPolicy {
    /// A policy with the given attempt count and the default base/jitter.
    pub fn with_attempts(attempts: u32) -> Self {
        RetryPolicy {
            attempts,
            ..Default::default()
        }
    }

    /// The sleep before retry number `attempt` (zero-based): `base * 2^i`,
    /// plus up to 100% jitter drawn from `rng` when jitter is enabled. The
    /// exponent saturates at 2^16 so huge attempt counts cannot overflow.
    fn backoff_delay(&self, attempt: u32, rng: &mut StdRng) -> Duration {
        let backoff = self.base.saturating_mul(1u32 << attempt.min(16));
        if !self.jitter {
            return backoff;
        }
        let jitter_ns = rng.gen_range(0..backoff.as_nanos().max(1) as u64);
        backoff + Duration::from_nanos(jitter_ns)
    }

    /// Run `op` until it succeeds or the attempt budget is exhausted,
    /// sleeping [`Self::backoff_delay`] between failures. Returns the first
    /// success or the last error. `jitter_seed` makes the jitter sequence
    /// reproducible.
    pub fn run<T, E>(
        &self,
        jitter_seed: u64,
        mut op: impl FnMut() -> Result<T, E>,
    ) -> Result<T, E> {
        self.run_supervised(jitter_seed, None, &mut op)
    }

    /// [`RetryPolicy::run`] under deadline supervision: every backoff
    /// sleep is capped at `budget`'s remaining deadline, and once the
    /// deadline has expired the current error is returned *without*
    /// sleeping. Retrying exists to ride out transient I/O hiccups; it
    /// must never spend wall-clock time the run no longer has — before
    /// this cap, three exponential backoffs could overshoot a short
    /// `--deadline-ms` several times over.
    pub fn run_supervised<T, E>(
        &self,
        jitter_seed: u64,
        budget: Option<&ResourceBudget>,
        mut op: impl FnMut() -> Result<T, E>,
    ) -> Result<T, E> {
        let mut rng = StdRng::seed_from_u64(jitter_seed);
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(value) => return Ok(value),
                Err(e) if attempt + 1 >= self.attempts.max(1) => return Err(e),
                Err(e) => {
                    let mut delay = self.backoff_delay(attempt, &mut rng);
                    if let Some(remaining) = budget.and_then(ResourceBudget::remaining_deadline) {
                        if remaining.is_zero() {
                            // No time left to wait for the disk to heal:
                            // surface the error and let the anytime
                            // machinery produce best-so-far output.
                            return Err(e);
                        }
                        delay = delay.min(remaining);
                    }
                    std::thread::sleep(delay);
                    attempt += 1;
                }
            }
        }
    }
}

/// Run `op` up to `attempts` times, sleeping `base * 2^i` plus up to 100%
/// deterministic jitter between failures. Returns the first success or the
/// last error. Used for checkpoint writes and dataset reads, where
/// transient I/O errors (NFS hiccup, antivirus lock) resolve in
/// milliseconds. Equivalent to [`RetryPolicy::run`] with jitter enabled.
pub fn retry_with_backoff<T, E>(
    attempts: u32,
    base: Duration,
    jitter_seed: u64,
    op: impl FnMut() -> Result<T, E>,
) -> Result<T, E> {
    RetryPolicy {
        attempts,
        base,
        jitter: true,
    }
    .run(jitter_seed, op)
}

// ---------------------------------------------------------------------------
// Checkpointer: cadence + retry around save_snapshot
// ---------------------------------------------------------------------------

/// Periodically persists algorithm state during a run.
///
/// Algorithms call [`Checkpointer::maybe_save`] once per unit of work; the
/// closure building the snapshot is only evaluated when the cadence is due,
/// so the steady-state cost is one clock read per call. Failed writes
/// retry with jittered exponential backoff ([`SAVE_ATTEMPTS`] total
/// attempts) and are then recorded in [`Checkpointer::last_error`] rather
/// than aborting the run — a checkpointing failure must never take down the
/// computation it protects.
///
/// Cadence is a [`telemetry::Cadence`] on a [`telemetry::Clock`] — the
/// same ticker behind [`telemetry::Heartbeat`] — so tests can drive it
/// with a mock clock instead of real sleeps (see
/// [`Checkpointer::with_clock`]).
#[derive(Debug)]
pub struct Checkpointer {
    path: PathBuf,
    cadence: Cadence,
    stage: u32,
    rng: StdRng,
    saves: u64,
    last_error: Option<String>,
    budget: Option<ResourceBudget>,
}

impl Checkpointer {
    /// Checkpoint to `path` no more often than `every`. The first save
    /// becomes due `every` after construction.
    pub fn new(path: impl Into<PathBuf>, every: Duration) -> Self {
        Checkpointer {
            path: path.into(),
            cadence: Cadence::new(every),
            stage: 0,
            rng: StdRng::seed_from_u64(0xc4ec_4b01),
            saves: 0,
            last_error: None,
            budget: None,
        }
    }

    /// Replace the cadence clock (builder style). The cadence restarts at
    /// the new clock's current reading.
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.cadence = Cadence::with_clock(clock, self.cadence.every());
        self
    }

    /// Supervise save retries with `budget` (builder style): backoff
    /// sleeps are capped at the budget's remaining deadline, so a failing
    /// disk cannot make checkpointing overshoot `--deadline-ms`.
    pub fn with_budget(mut self, budget: &ResourceBudget) -> Self {
        self.budget = Some(budget.clone());
        self
    }

    /// The snapshot file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Set the pipeline stage recorded in subsequent snapshots
    /// (0 = main algorithm, 1 = refinement pass).
    pub fn set_stage(&mut self, stage: u32) {
        self.stage = stage;
    }

    /// The pipeline stage currently recorded in snapshots.
    pub fn stage(&self) -> u32 {
        self.stage
    }

    /// Successful saves so far.
    pub fn saves(&self) -> u64 {
        self.saves
    }

    /// The most recent save failure, if the last attempted save failed.
    pub fn last_error(&self) -> Option<&str> {
        self.last_error.as_deref()
    }

    /// Save a checkpoint if the cadence is due. `make` is evaluated only
    /// when a save actually happens. Returns `true` on a successful save.
    pub fn maybe_save(&mut self, make: impl FnOnce() -> AlgorithmSnapshot) -> bool {
        if !self.cadence.due() {
            return false;
        }
        self.save_now(make()).is_ok()
    }

    /// Save a checkpoint immediately (used for the final checkpoint when a
    /// run is interrupted), with retry. The cadence clock restarts either
    /// way so a persistently failing disk is retried at checkpoint cadence,
    /// not every meter tick.
    pub fn save_now(&mut self, state: AlgorithmSnapshot) -> std::io::Result<()> {
        let snapshot = Snapshot {
            stage: self.stage,
            state,
        };
        let jitter_seed = self.rng.gen::<u64>();
        let mut attempts = 0u64;
        let path = &self.path;
        let result =
            RetryPolicy::default().run_supervised(jitter_seed, self.budget.as_ref(), || {
                attempts += 1;
                save_snapshot(path, &snapshot)
            });
        self.cadence.reset();
        if telemetry::metrics_enabled() {
            telemetry::metrics()
                .checkpoint_retries
                .add(attempts.saturating_sub(1));
        }
        match result {
            Ok(()) => {
                self.saves += 1;
                self.last_error = None;
                telemetry::metrics().checkpoint_saves.incr_if_enabled();
                Ok(())
            }
            Err(e) => {
                self.last_error = Some(e.to_string());
                telemetry::metrics().checkpoint_failures.incr_if_enabled();
                crate::warn!(
                    "checkpoint save failed",
                    path = self.path.display().to_string(),
                    error = e.to_string()
                );
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            stage: 1,
            state: AlgorithmSnapshot::LocalSearch(LocalSearchSnapshot {
                labels: vec![0, 1, 1, 2, 0],
                pass: 3,
                next_node: 4,
                moved_in_pass: true,
                iterations: 17,
                rng: [1, 2, 3, 4],
            }),
        }
    }

    fn agglomerative_snapshot() -> Snapshot {
        Snapshot {
            stage: 0,
            state: AlgorithmSnapshot::Agglomerative(AgglomerativeSnapshot {
                n: 6,
                merges: vec![
                    MergeRecord {
                        a: 0,
                        b: 2,
                        height: 0.25,
                        size: 2,
                    },
                    MergeRecord {
                        a: 1,
                        b: 3,
                        height: 0.25,
                        size: 2,
                    },
                ],
                chain: vec![4, 5],
                iterations: 2,
            }),
        }
    }

    fn sampling_snapshot() -> Snapshot {
        Snapshot {
            stage: 0,
            state: AlgorithmSnapshot::Sampling(SamplingSnapshot {
                n: 8,
                sample: vec![1, 4, 6],
                sample_labels: vec![0, 1, 0],
                labels: vec![u32::MAX, 0, u32::MAX, u32::MAX, 1, u32::MAX, 0, u32::MAX],
                next_node: 2,
                iterations: 5,
            }),
        }
    }

    #[test]
    fn crc32_known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip_all_variants() {
        for snap in [
            sample_snapshot(),
            agglomerative_snapshot(),
            sampling_snapshot(),
        ] {
            let bytes = encode(&snap);
            assert_eq!(decode(&bytes).expect("round trip"), snap);
        }
    }

    #[test]
    fn every_truncation_is_corrupt_not_panic() {
        let bytes = encode(&sample_snapshot());
        crate::test_support::for_each_truncation(&bytes, |len, prefix| {
            assert!(decode(prefix).is_err(), "prefix of {len} decoded");
        });
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = encode(&agglomerative_snapshot());
        let original = decode(&bytes).expect("clean");
        crate::test_support::for_each_bit_flip(
            &bytes,
            &crate::test_support::ALL_BITS,
            |byte, bit, corrupt| {
                // Either rejected, or (never, for a single flip over CRC32)
                // decoded back to the identical snapshot.
                if let Ok(decoded) = decode(corrupt) {
                    assert_eq!(
                        decoded, original,
                        "flip {byte}:{bit} silently changed state"
                    );
                }
            },
        );
    }

    #[test]
    fn stale_version_is_rejected_before_checksum() {
        let mut bytes = encode(&sample_snapshot());
        bytes[8] = 99;
        let reason = decode(&bytes).expect_err("stale version");
        assert!(reason.contains("version"), "{reason}");
    }

    #[test]
    fn huge_claimed_length_does_not_allocate() {
        let snap = sample_snapshot();
        let mut bytes = encode(&snap);
        // Overwrite the labels length (first payload field after stage+tag)
        // with u64::MAX and fix the CRC so only the length check can catch it.
        let label_len_at = HEADER_LEN + 4 + 1;
        bytes[label_len_at..label_len_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let crc = crc32(&bytes[HEADER_LEN..]);
        bytes[20..24].copy_from_slice(&crc.to_le_bytes());
        let reason = decode(&bytes).expect_err("bogus length");
        assert!(reason.contains("length"), "{reason}");
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("aggclust_snapshot_test_rt");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("ckpt.bin");
        let snap = sampling_snapshot();
        save_snapshot(&path, &snap).expect("save");
        assert_eq!(load_snapshot(&path), SnapshotLoad::Loaded(snap));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_and_corrupt_files_load_gracefully() {
        let dir = std::env::temp_dir().join("aggclust_snapshot_test_corrupt");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let missing = dir.join("nope.bin");
        assert_eq!(load_snapshot(&missing), SnapshotLoad::Missing);
        let garbage = dir.join("garbage.bin");
        std::fs::write(&garbage, b"not a snapshot at all").expect("write");
        assert!(matches!(load_snapshot(&garbage), SnapshotLoad::Corrupt(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpointer_respects_cadence_and_counts_saves() {
        let dir = std::env::temp_dir().join("aggclust_snapshot_test_cadence");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("ckpt.bin");
        let mut ckpt = Checkpointer::new(&path, Duration::from_secs(3600));
        // Not due yet: closure must not even run.
        let saved = ckpt.maybe_save(|| unreachable!("cadence not due"));
        assert!(!saved);
        assert_eq!(ckpt.saves(), 0);
        // Forced save works regardless of cadence.
        ckpt.set_stage(1);
        ckpt.save_now(sample_snapshot().state).expect("save_now");
        assert_eq!(ckpt.saves(), 1);
        match load_snapshot(&path) {
            SnapshotLoad::Loaded(snap) => assert_eq!(snap.stage, 1),
            other => panic!("expected loaded snapshot, got {other:?}"),
        }
        // Zero cadence: due immediately.
        let mut eager = Checkpointer::new(&path, Duration::ZERO);
        assert!(eager.maybe_save(|| sample_snapshot().state));
        assert_eq!(eager.saves(), 1);
        assert!(eager.last_error().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mock_clock_drives_the_cadence_without_sleeping() {
        let dir = std::env::temp_dir().join("aggclust_snapshot_test_mock_clock");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("ckpt.bin");
        let clock = Clock::mock();
        let mut ckpt = Checkpointer::new(&path, Duration::from_secs(60)).with_clock(clock.clone());
        assert!(!ckpt.maybe_save(|| unreachable!("cadence not due")));
        clock.advance(Duration::from_secs(59));
        assert!(!ckpt.maybe_save(|| unreachable!("cadence still not due")));
        clock.advance(Duration::from_secs(1));
        assert!(ckpt.maybe_save(|| sample_snapshot().state));
        assert_eq!(ckpt.saves(), 1);
        // The save restarts the cadence from the mock clock's reading.
        assert!(!ckpt.maybe_save(|| unreachable!("cadence restarted")));
        clock.advance(Duration::from_secs(60));
        assert!(ckpt.maybe_save(|| sample_snapshot().state));
        assert_eq!(ckpt.saves(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpointer_reports_write_failures_without_panicking() {
        // A path whose parent cannot exist.
        let path = Path::new("/nonexistent_dir_aggclust/sub/ckpt.bin");
        let mut ckpt = Checkpointer::new(path, Duration::ZERO);
        assert!(!ckpt.maybe_save(|| sample_snapshot().state));
        assert!(ckpt.last_error().is_some());
    }

    #[test]
    fn retry_succeeds_after_transient_failures() {
        let mut calls = 0;
        let result: Result<u32, &str> = retry_with_backoff(3, Duration::ZERO, 7, || {
            calls += 1;
            if calls < 3 {
                Err("transient")
            } else {
                Ok(42)
            }
        });
        assert_eq!(result, Ok(42));
        assert_eq!(calls, 3);

        let mut calls = 0;
        let result: Result<u32, &str> = retry_with_backoff(3, Duration::ZERO, 7, || {
            calls += 1;
            Err("permanent")
        });
        assert_eq!(result, Err("permanent"));
        assert_eq!(calls, 3);
    }

    #[test]
    fn retry_policy_default_matches_the_legacy_constants() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.attempts, SAVE_ATTEMPTS);
        assert_eq!(policy.base, BACKOFF_BASE);
        assert!(policy.jitter);
        assert_eq!(RetryPolicy::with_attempts(5).base, BACKOFF_BASE);
    }

    #[test]
    fn retry_policy_exhaustion_returns_the_last_error() {
        let mut calls = 0;
        let result: Result<(), String> = RetryPolicy::with_attempts(4).run(11, || {
            calls += 1;
            Err(format!("failure {calls}"))
        });
        assert_eq!(result, Err("failure 4".to_string()));
        assert_eq!(calls, 4);

        // Zero attempts still runs the op once (attempts.max(1)).
        let mut calls = 0;
        let result: Result<(), &str> = RetryPolicy {
            attempts: 0,
            base: Duration::ZERO,
            jitter: false,
        }
        .run(0, || {
            calls += 1;
            Err("never retried")
        });
        assert_eq!(result, Err("never retried"));
        assert_eq!(calls, 1);
    }

    #[test]
    fn retry_policy_succeeds_after_transient_failures() {
        let mut calls = 0;
        let result: Result<u32, &str> = RetryPolicy {
            attempts: 5,
            base: Duration::ZERO,
            jitter: true,
        }
        .run(99, || {
            calls += 1;
            if calls < 4 {
                Err("transient")
            } else {
                Ok(7)
            }
        });
        assert_eq!(result, Ok(7));
        assert_eq!(calls, 4);
    }

    #[test]
    fn supervised_retry_returns_immediately_once_the_deadline_is_spent() {
        // An expired budget must not buy the op any backoff sleeps: the
        // first error comes straight back. Before supervision, a retry
        // storm here would have slept through attempts.max(1) - 1 backoffs
        // after the run deadline had already passed.
        let clock = Clock::mock();
        let budget = ResourceBudget::unlimited()
            .with_clock(clock.clone())
            .with_deadline_ms(10);
        clock.advance(Duration::from_millis(11));
        let policy = RetryPolicy {
            attempts: 10,
            base: Duration::from_secs(3600),
            jitter: false,
        };
        let started = std::time::Instant::now();
        let mut calls = 0;
        let result: Result<(), &str> = policy.run_supervised(7, Some(&budget), || {
            calls += 1;
            Err("disk on fire")
        });
        assert_eq!(result, Err("disk on fire"));
        assert_eq!(calls, 1, "no retries once the deadline is spent");
        assert!(
            started.elapsed() < Duration::from_secs(60),
            "must not sleep"
        );
    }

    #[test]
    fn supervised_retry_caps_each_backoff_at_the_remaining_budget() {
        // With 5ms left on the deadline and a 1-hour backoff base, each
        // sleep is clamped to the remaining window. The mock clock never
        // advances, so every attempt still runs — but in real milliseconds,
        // not hours.
        let clock = Clock::mock();
        let budget = ResourceBudget::unlimited()
            .with_clock(clock.clone())
            .with_deadline_ms(5);
        let policy = RetryPolicy {
            attempts: 3,
            base: Duration::from_secs(3600),
            jitter: false,
        };
        let started = std::time::Instant::now();
        let mut calls = 0;
        let result: Result<(), &str> = policy.run_supervised(7, Some(&budget), || {
            calls += 1;
            Err("transient")
        });
        assert_eq!(result, Err("transient"));
        assert_eq!(calls, 3, "attempts still exhausted, just without the wait");
        assert!(
            started.elapsed() < Duration::from_secs(60),
            "backoff must be capped at the ~5ms remaining, not 1h doubling"
        );
    }

    #[test]
    fn retry_policy_jitter_stays_within_one_backoff_period() {
        let base = Duration::from_millis(10);
        let jittered = RetryPolicy {
            attempts: 3,
            base,
            jitter: true,
        };
        let plain = RetryPolicy {
            attempts: 3,
            base,
            jitter: false,
        };
        let mut rng = StdRng::seed_from_u64(42);
        for attempt in 0..6 {
            let expected = base.saturating_mul(1u32 << attempt.min(16));
            // No jitter: exactly the exponential schedule.
            assert_eq!(plain.backoff_delay(attempt, &mut rng), expected);
            // Jitter: within [backoff, 2 * backoff).
            for seed in 0..20 {
                let mut rng = StdRng::seed_from_u64(seed);
                let delay = jittered.backoff_delay(attempt, &mut rng);
                assert!(delay >= expected, "attempt {attempt}: {delay:?} < base");
                assert!(
                    delay < expected * 2,
                    "attempt {attempt}: {delay:?} >= 2x base"
                );
            }
        }
    }

    #[test]
    fn envelope_round_trips_for_foreign_magic() {
        let magic = *b"AGGTILE\0";
        let payload = vec![1u8, 2, 3, 4, 5];
        let bytes = encode_envelope(&magic, 7, &payload);
        assert_eq!(
            decode_envelope(&magic, 7, &bytes).expect("round trip"),
            &payload[..]
        );
        // Wrong magic, wrong version, and any bit flip are all rejected.
        assert!(decode_envelope(&MAGIC, 7, &bytes).is_err());
        assert!(decode_envelope(&magic, 8, &bytes).is_err());
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                if let Ok(decoded) = decode_envelope(&magic, 7, &corrupt) {
                    assert_eq!(decoded, &payload[..], "flip {byte}:{bit} changed payload");
                }
            }
        }
    }
}
