//! Out-of-core tile store for the condensed distance matrix.
//!
//! The dense oracle's condensed triangle is `Θ(n²)` memory; when the memory
//! governor refuses that allocation, the consensus pipeline used to fall
//! straight to the lazy oracle (or clamped SAMPLING). This module inserts a
//! disk-backed step in between: the triangle is built as **fixed-size banded
//! tiles** — each tile one contiguous row range of the condensed layout —
//! written to a spill directory as CRC32-checksummed frames, with a small
//! LRU-pinned in-RAM cache serving [`DistanceOracle`] reads.
//!
//! ## Tile frame format
//!
//! Each tile is one file `tile-NNNNN.bin` wrapped in the same envelope as a
//! checkpoint (`magic | version | payload length | CRC32 | payload`, see
//! [`crate::snapshot`]), with magic `"AGGTILE\0"`. The payload is:
//!
//! | field | type | meaning |
//! |---|---|---|
//! | fingerprint | `u64` | FNV-1a over `n`, `m`, the missing policy, and every input label |
//! | n | `u64` | object count |
//! | tile_index | `u64` | tile number within the layout |
//! | row_start | `u64` | first row `u` the tile covers |
//! | row_end | `u64` | one past the last row |
//! | data | `u64` length + `f64` bit patterns | the tile's condensed entries |
//!
//! The fingerprint ties a frame to the exact instance that produced it, so
//! `--resume` can reclaim orphaned tiles from a killed run and a frame from
//! a *different* instance is treated as corrupt, not trusted.
//!
//! ## Recompute-on-corruption contract
//!
//! Every tile is a pure function of the packed [`LabelMatrix`]
//! (`crate::kernels`), which stays in RAM. Corruption is therefore
//! recoverable, not fatal: a CRC mismatch, torn read, truncation, or missing
//! frame triggers a **rebuild** of that tile from the labels (counted by the
//! `spill_tiles_rebuilt` metric) and a best-effort rewrite of the frame —
//! never an abort and never a wrong value. Only a *write* failure that
//! survives [`RetryPolicy`] retries during construction (ENOSPC, dead disk)
//! surfaces as [`SpillError::Io`]; the consensus chain then records a typed
//! warning and degrades one more step, to the lazy oracle.
//!
//! ## Bit-identity
//!
//! Tile entries are computed by the same kernels as the dense fill, and
//! every condensed entry is a pure per-pair function of the inputs — so a
//! value served from a pinned tile, re-read from disk, rebuilt after
//! corruption, or bypassed straight to the packed lazy kernel is
//! **bit-identical** at any thread count. A spilled run's labels equal the
//! unconstrained run's labels exactly.

use std::collections::HashMap;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

use crate::clustering::PartialClustering;
use crate::instance::{
    condensed_index, ClusteringsOracle, CorrelationInstance, DistanceOracle, MissingPolicy,
};
use crate::robust::{Interrupt, MemCharge, RunBudget};
use crate::snapshot::{decode_envelope, encode_envelope, Reader, RetryPolicy, Writer};
use crate::telemetry;

/// Magic bytes identifying a spilled tile frame.
const SPILL_MAGIC: [u8; 8] = *b"AGGTILE\0";
/// Current tile frame format version.
const SPILL_VERSION: u32 = 1;
/// Smallest tile payload the sizing heuristic will pick (bytes of `f64`s).
const MIN_TILE_BYTES: u64 = 4096;
/// Largest tile the sizing heuristic will pick: big enough to amortize one
/// file per tile, small enough that several tiles fit in a tight cache.
const DEFAULT_TILE_BYTES: u64 = 8 << 20;
/// Cache misses served by the lazy bypass between two evict-and-reload
/// cycles. Reloading a tile on *every* miss would turn a cache-hostile
/// access pattern (LOCALSEARCH scans every row against every tile) into
/// terabytes of re-reads; instead a miss normally computes the single pair
/// from the packed labels — bit-identical to the stored value — and only
/// every `RELOAD_PERIOD`-th miss rotates a fresh tile into the cache.
const RELOAD_PERIOD: u64 = 1 << 18;

/// Why a spill store could not be built or maintained.
#[derive(Debug)]
pub enum SpillError {
    /// The run budget tripped (deadline, cancellation) while tiles were
    /// being built; the consensus layer converts this into its usual
    /// anytime handling.
    Interrupted(Interrupt),
    /// Tile I/O failed persistently (out of disk space, unwritable
    /// directory) even after retries. The consensus layer records a typed
    /// warning and degrades to the lazy oracle.
    Io {
        /// The file or directory the failed operation touched.
        path: PathBuf,
        /// The underlying I/O error, rendered.
        error: String,
    },
}

impl std::fmt::Display for SpillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpillError::Interrupted(i) => write!(f, "spill interrupted: {i:?}"),
            SpillError::Io { path, error } => {
                write!(f, "spill I/O failed at {}: {error}", path.display())
            }
        }
    }
}

/// Where and how to spill.
#[derive(Clone, Debug)]
pub struct SpillConfig {
    /// Directory receiving the tile frames (created if absent).
    pub dir: PathBuf,
    /// Tile payload size in bytes; `0` picks a size from the budget's
    /// memory headroom (`headroom / 4`, clamped to `[4 KiB, 8 MiB]`) so a
    /// few tiles can stay pinned under the cap.
    pub tile_bytes: u64,
    /// Retry policy for tile writes.
    pub retry: RetryPolicy,
}

impl SpillConfig {
    /// Spill into `dir` with auto-sized tiles and default retries.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        SpillConfig {
            dir: dir.into(),
            tile_bytes: 0,
            retry: RetryPolicy::default(),
        }
    }

    /// Override the tile payload size (builder style).
    pub fn with_tile_bytes(mut self, bytes: u64) -> Self {
        self.tile_bytes = bytes;
        self
    }
}

/// One tile resident in RAM, holding its budget charge for as long as any
/// reader keeps it alive. Dropping the last [`Arc`] releases the charge.
#[derive(Debug)]
struct PinnedTile {
    data: Vec<f64>,
    _charge: Option<MemCharge>,
}

#[derive(Debug)]
struct CacheEntry {
    tile: Arc<PinnedTile>,
    last_used: u64,
}

/// The LRU-pinned tile cache. One mutex guards the map; the hot path
/// (repeated hits on the same tile) is served lock-free by a thread-local
/// memo of the last tile touched.
#[derive(Debug, Default)]
struct TileCache {
    entries: HashMap<u32, CacheEntry>,
    tick: u64,
}

impl TileCache {
    fn touch(&mut self, tile: u32) -> Option<Arc<PinnedTile>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(&tile).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.tile)
        })
    }

    fn insert(&mut self, tile: u32, pinned: Arc<PinnedTile>) {
        self.tick += 1;
        let tick = self.tick;
        self.entries.insert(
            tile,
            CacheEntry {
                tile: pinned,
                last_used: tick,
            },
        );
    }

    /// Drop the least-recently-used entry. Returns `false` when empty.
    fn evict_lru(&mut self) -> bool {
        let victim = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(&t, _)| t);
        match victim {
            Some(t) => {
                self.entries.remove(&t);
                telemetry::count_spill_evictions(1);
                true
            }
            None => false,
        }
    }
}

thread_local! {
    // (oracle id, tile index, tile) — a Weak reference, so a memoized tile
    // never outlives its eviction: the cache dropping the last strong Arc
    // releases the memory charge immediately, and the memo just misses.
    static TILE_MEMO: std::cell::RefCell<(u64, u32, Weak<PinnedTile>)> =
        const { std::cell::RefCell::new((0, 0, Weak::new())) };
}

static NEXT_ORACLE_ID: AtomicU64 = AtomicU64::new(1);

/// A [`DistanceOracle`] over the full condensed matrix with the matrix
/// itself living on disk: checksummed tile frames in a spill directory, an
/// LRU-pinned in-RAM cache sized by the run budget, and the packed label
/// matrix as the recovery source for corrupt or missing tiles.
///
/// Reads are bit-identical to a [`crate::instance::DenseOracle`] built from
/// the same instance, at any thread count.
#[derive(Debug)]
pub struct SpilledOracle {
    id: u64,
    n: usize,
    lazy: ClusteringsOracle,
    fingerprint: u64,
    dir: PathBuf,
    retry: RetryPolicy,
    /// First row of each tile (ascending); tile `t` covers rows
    /// `row_starts[t]..row_starts[t + 1]` (or `..n − 1` for the last).
    row_starts: Vec<usize>,
    /// Global condensed offset where each tile's slice begins.
    pair_offsets: Vec<usize>,
    /// Pairs per tile.
    tile_pairs: Vec<usize>,
    cache: Mutex<TileCache>,
    misses: AtomicU64,
    budget: RunBudget,
    // Keeps the packed label matrix (the rebuild source) on the books for
    // as long as the oracle lives.
    _packed_charge: MemCharge,
}

impl SpilledOracle {
    /// Build the spill store for `instance`: lay the condensed triangle out
    /// as tiles, construct each tile with the same kernels as the dense
    /// fill, write it to `config.dir` as a checksummed frame (retried per
    /// `config.retry`), and pin as many tiles in RAM as `budget` allows —
    /// evicting least-recently-written tiles once the budget refuses more.
    ///
    /// Valid frames already present in the directory (orphans of a killed
    /// run, matched by fingerprint and layout) are **reclaimed**: their tile
    /// skips the build and the write. Budget deadline/cancellation is polled
    /// between tiles and reported as [`SpillError::Interrupted`]; a write
    /// that fails after retries is [`SpillError::Io`].
    pub fn try_build(
        instance: &CorrelationInstance,
        budget: &RunBudget,
        config: &SpillConfig,
    ) -> Result<SpilledOracle, SpillError> {
        let n = instance.len();
        let lazy = instance.lazy_oracle();
        let packed_charge = budget.mem_gauge().charge(lazy.packed_bytes());
        let fingerprint = instance_fingerprint(instance.inputs(), lazy.policy());
        let tile_bytes = if config.tile_bytes > 0 {
            config.tile_bytes
        } else {
            let headroom = budget.headroom_bytes().unwrap_or(DEFAULT_TILE_BYTES * 4);
            (headroom / 4).clamp(MIN_TILE_BYTES, DEFAULT_TILE_BYTES)
        };
        let (row_starts, pair_offsets, tile_pairs) = tile_layout(n, (tile_bytes / 8).max(1));
        crate::iofs::create_dir_all("spill.create_dir", &config.dir).map_err(|e| {
            SpillError::Io {
                path: config.dir.clone(),
                error: e.to_string(),
            }
        })?;

        let oracle = SpilledOracle {
            id: NEXT_ORACLE_ID.fetch_add(1, Ordering::Relaxed),
            n,
            lazy,
            fingerprint,
            dir: config.dir.clone(),
            retry: config.retry,
            row_starts,
            pair_offsets,
            tile_pairs,
            cache: Mutex::new(TileCache::default()),
            misses: AtomicU64::new(0),
            budget: budget.clone(),
            _packed_charge: packed_charge,
        };

        for t in 0..oracle.tiles() {
            budget.poll().map_err(SpillError::Interrupted)?;
            let path = oracle.tile_path(t as u32);
            // Reclaim a valid orphaned frame before spending the build.
            let data = match oracle.read_valid_frame(&path, t as u32) {
                Some(data) => {
                    telemetry::count_spill_read();
                    data
                }
                None => {
                    let data = oracle.build_tile_data(t);
                    oracle.write_tile(&path, t as u32, &data)?;
                    data
                }
            };
            oracle.pin_with_eviction(t as u32, data);
        }
        Ok(oracle)
    }

    /// Number of tiles in the layout.
    pub fn tiles(&self) -> usize {
        self.row_starts.len()
    }

    /// The directory holding this oracle's tile frames.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The frame fingerprint tying tiles to this instance.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn tile_path(&self, tile: u32) -> PathBuf {
        self.dir.join(format!("tile-{tile:05}.bin"))
    }

    /// The tile covering row `u` (callers guarantee `u < n − 1`).
    fn tile_of_row(&self, u: usize) -> u32 {
        (self.row_starts.partition_point(|&s| s <= u) - 1) as u32
    }

    fn tile_rows(&self, tile: u32) -> Range<usize> {
        let t = tile as usize;
        let end = self
            .row_starts
            .get(t + 1)
            .copied()
            .unwrap_or(self.n.saturating_sub(1));
        self.row_starts[t]..end
    }

    /// Compute a tile's condensed slice from the packed labels — the same
    /// kernels and the same per-pair values as the dense fill, restricted
    /// to the tile's row range.
    fn build_tile_data(&self, tile: usize) -> Vec<f64> {
        let rows = self.tile_rows(tile as u32);
        let n = self.n;
        let band = self.lazy.preferred_band();
        let pairs = self.tile_pairs[tile];
        // Account the tile's bytes on the gauge while it is being built
        // (transient scratch; pinning re-charges through try_reserve).
        let _scratch_charge = self.budget.mem_gauge().charge((pairs * 8) as u64);
        let data = if self.lazy.clusterings().iter().all(|c| c.num_missing() == 0) {
            let m = self.lazy.clusterings().len() as f64;
            let matrix = self.lazy.packed();
            let data = crate::parallel::fill_condensed_rows_banded_scratch(
                n,
                band,
                rows,
                || vec![0u32; band],
                |counts: &mut Vec<u32>, u, vs, seg| {
                    let counts = &mut counts[..seg.len()];
                    matrix.sep_row_into(u, vs.start, counts);
                    for (entry, &c) in seg.iter_mut().zip(counts.iter()) {
                        *entry = f64::from(c) / m;
                    }
                },
            );
            telemetry::count_packed_evals(pairs as u64);
            data
        } else {
            let lazy = &self.lazy;
            crate::parallel::fill_condensed_rows_banded_scratch(
                n,
                band,
                rows,
                || (),
                |(): &mut (), u, vs, seg| {
                    for (entry, v) in seg.iter_mut().zip(vs) {
                        *entry = lazy.dist(u, v);
                    }
                },
            )
        };
        data
    }

    fn encode_frame(&self, tile: u32, data: &[f64]) -> Vec<u8> {
        let rows = self.tile_rows(tile);
        let mut w = Writer::new();
        w.put_u64(self.fingerprint);
        w.put_u64(self.n as u64);
        w.put_u64(u64::from(tile));
        w.put_u64(rows.start as u64);
        w.put_u64(rows.end as u64);
        w.put_u64(data.len() as u64);
        for &x in data {
            w.put_f64(x);
        }
        encode_envelope(&SPILL_MAGIC, SPILL_VERSION, &w.buf)
    }

    /// Decode and fully validate a frame against this oracle's layout.
    fn decode_frame(&self, tile: u32, bytes: &[u8]) -> Result<Vec<f64>, String> {
        let body = decode_envelope(&SPILL_MAGIC, SPILL_VERSION, bytes)?;
        let mut r = Reader::new(body);
        let fingerprint = r.take_u64("fingerprint")?;
        if fingerprint != self.fingerprint {
            return Err(format!(
                "fingerprint mismatch: frame {fingerprint:#018x}, instance {:#018x}",
                self.fingerprint
            ));
        }
        let n = r.take_u64("n")?;
        let frame_tile = r.take_u64("tile_index")?;
        let row_start = r.take_u64("row_start")?;
        let row_end = r.take_u64("row_end")?;
        let rows = self.tile_rows(tile);
        if n != self.n as u64
            || frame_tile != u64::from(tile)
            || row_start != rows.start as u64
            || row_end != rows.end as u64
        {
            return Err(format!(
                "layout mismatch: frame covers tile {frame_tile} rows {row_start}..{row_end} \
                 of n = {n}, expected tile {tile} rows {rows:?} of n = {}",
                self.n
            ));
        }
        let len = r.take_len(8, "tile data")?;
        if len != self.tile_pairs[tile as usize] {
            return Err(format!(
                "length mismatch: frame holds {len} pairs, tile {tile} has {}",
                self.tile_pairs[tile as usize]
            ));
        }
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(r.take_f64("tile entry")?);
        }
        if r.remaining() != 0 {
            return Err(format!("{} trailing payload bytes", r.remaining()));
        }
        Ok(data)
    }

    /// Read a frame and return its data only if it validates completely;
    /// any failure (missing, torn, corrupt, wrong instance) is `None`.
    fn read_valid_frame(&self, path: &Path, tile: u32) -> Option<Vec<f64>> {
        let bytes = crate::iofs::read("spill.read", path).ok()?;
        self.decode_frame(tile, &bytes).ok()
    }

    /// Write a tile frame with retries; persistent failure is the one
    /// spill error that is not recoverable from the labels. Retry backoff
    /// is supervised by the run budget, so a dying disk cannot sleep the
    /// run past its deadline.
    fn write_tile(&self, path: &Path, tile: u32, data: &[f64]) -> Result<(), SpillError> {
        let bytes = self.encode_frame(tile, data);
        let seed = self.fingerprint ^ u64::from(tile);
        self.retry
            .run_supervised(seed, Some(&self.budget), || {
                crate::iofs::write_file_atomic("spill", path, &bytes)
            })
            .map_err(|e| SpillError::Io {
                path: path.to_path_buf(),
                error: e.to_string(),
            })?;
        telemetry::count_spill_write(bytes.len() as u64);
        Ok(())
    }

    /// Pin `data` in the cache, evicting least-recently-used tiles while
    /// the budget refuses the reservation. If the cache is empty and the
    /// budget still refuses, the tile stays unpinned (disk + bypass serve
    /// it).
    fn pin_with_eviction(&self, tile: u32, data: Vec<f64>) -> Option<Arc<PinnedTile>> {
        let bytes = (data.len() * 8) as u64;
        let mut cache = lock_cache(&self.cache);
        loop {
            match self.budget.try_reserve(bytes) {
                Ok(charge) => {
                    let pinned = Arc::new(PinnedTile {
                        data,
                        _charge: Some(charge),
                    });
                    cache.insert(tile, Arc::clone(&pinned));
                    return Some(pinned);
                }
                Err(_) => {
                    if !cache.evict_lru() {
                        return None;
                    }
                }
            }
        }
    }

    /// Fetch a tile for a read miss, honoring the anti-thrash policy:
    /// pin without eviction when the budget has headroom, rotate the LRU
    /// tile out every [`RELOAD_PERIOD`] misses, and otherwise return
    /// `None` so the caller computes the pair from the packed labels.
    fn fetch_tile(&self, tile: u32) -> Option<Arc<PinnedTile>> {
        {
            let mut cache = lock_cache(&self.cache);
            if let Some(hit) = cache.touch(tile) {
                telemetry::count_spill_cache_hit();
                return Some(hit);
            }
        }
        let bytes = (self.tile_pairs[tile as usize] * 8) as u64;
        // Free headroom: pin without evicting anyone.
        if let Ok(charge) = self.budget.try_reserve(bytes) {
            let data = self.load_or_rebuild(tile);
            let pinned = Arc::new(PinnedTile {
                data,
                _charge: Some(charge),
            });
            lock_cache(&self.cache).insert(tile, Arc::clone(&pinned));
            return Some(pinned);
        }
        // No headroom: only every RELOAD_PERIOD-th miss pays for an
        // evict-and-reload; the rest are served by the lazy bypass.
        let miss = self.misses.fetch_add(1, Ordering::Relaxed);
        if !miss.is_multiple_of(RELOAD_PERIOD) {
            return None;
        }
        let data = self.load_or_rebuild(tile);
        self.pin_with_eviction(tile, data)
    }

    /// Load a tile from its frame, rebuilding from the packed labels (and
    /// best-effort rewriting the frame) when the read does not validate.
    fn load_or_rebuild(&self, tile: u32) -> Vec<f64> {
        let path = self.tile_path(tile);
        match self.read_valid_frame(&path, tile) {
            Some(data) => {
                telemetry::count_spill_read();
                data
            }
            None => {
                telemetry::count_spill_rebuild();
                crate::warn!(
                    "spilled tile unreadable or corrupt; rebuilding from labels",
                    tile = u64::from(tile),
                    path = path.display().to_string()
                );
                let data = self.build_tile_data(tile as usize);
                // Best-effort repair: a failed rewrite leaves the rebuild
                // path to serve future reads of this tile.
                if self.write_tile(&path, tile, &data).is_err() {
                    crate::warn!(
                        "could not rewrite rebuilt tile; keeping the in-RAM copy only",
                        tile = u64::from(tile)
                    );
                }
                data
            }
        }
    }
}

fn lock_cache(cache: &Mutex<TileCache>) -> std::sync::MutexGuard<'_, TileCache> {
    // A poisoned lock means a reader panicked between map operations, none
    // of which leaves the map structurally broken — recover and continue.
    cache
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl DistanceOracle for SpilledOracle {
    fn len(&self) -> usize {
        self.n
    }

    fn dist(&self, u: usize, v: usize) -> f64 {
        if u == v {
            return 0.0;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        let tile = self.tile_of_row(a);
        let local = condensed_index(self.n, a, b) - self.pair_offsets[tile as usize];
        // Same-tile fast path: the last tile this thread touched, held
        // weakly so eviction is never delayed by the memo.
        let memoized = TILE_MEMO.with(|memo| {
            let m = memo.borrow();
            if m.0 == self.id && m.1 == tile {
                m.2.upgrade()
            } else {
                None
            }
        });
        if let Some(pinned) = memoized {
            telemetry::count_spill_cache_hit();
            telemetry::count_dense_evals(1);
            return pinned.data[local];
        }
        match self.fetch_tile(tile) {
            Some(pinned) => {
                let d = pinned.data[local];
                TILE_MEMO.with(|memo| {
                    *memo.borrow_mut() = (self.id, tile, Arc::downgrade(&pinned));
                });
                telemetry::count_dense_evals(1);
                d
            }
            // Bypass: recompute the single pair from the packed labels —
            // bit-identical to the stored entry (both are the same pure
            // per-pair function of the inputs).
            None => {
                telemetry::count_spill_cache_bypass();
                self.lazy.dist(a, b)
            }
        }
    }

    fn num_clusterings(&self) -> Option<usize> {
        Some(self.lazy.clusterings().len())
    }

    fn preferred_band(&self) -> usize {
        self.lazy.preferred_band()
    }
}

/// Greedy pair-balanced tile layout: walk rows `0..n − 1` accumulating
/// `n − 1 − u` pairs per row, cutting a tile whenever the running count
/// reaches `tile_pairs`. Returns (first row per tile, global condensed
/// offset per tile, pairs per tile). A single early row can exceed
/// `tile_pairs` by itself (row 0 alone holds `n − 1` pairs); such a row
/// becomes its own over-full tile rather than being split, keeping every
/// tile a contiguous row range.
fn tile_layout(n: usize, tile_pairs: u64) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let mut row_starts = Vec::new();
    let mut pair_offsets = Vec::new();
    let mut tile_sizes = Vec::new();
    let mut offset = 0usize;
    let mut u = 0usize;
    while u + 1 < n {
        row_starts.push(u);
        pair_offsets.push(offset);
        let mut pairs = 0usize;
        while u + 1 < n && (pairs == 0 || (pairs + (n - 1 - u)) as u64 <= tile_pairs) {
            pairs += n - 1 - u;
            u += 1;
        }
        tile_sizes.push(pairs);
        offset += pairs;
    }
    (row_starts, pair_offsets, tile_sizes)
}

/// FNV-1a 64 fingerprint of the instance content: `n`, `m`, the missing
/// policy, and every label of every input (missing = a sentinel). Two
/// instances share a fingerprint exactly when they would produce the same
/// tiles, which is what lets `--resume` safely reclaim orphaned frames.
fn instance_fingerprint(inputs: &[PartialClustering], policy: MissingPolicy) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |word: u64| {
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    let n = inputs.first().map_or(0, |c| c.len());
    eat(n as u64);
    eat(inputs.len() as u64);
    match policy {
        MissingPolicy::Ignore => eat(1),
        MissingPolicy::Coin(p) => {
            eat(2);
            eat(p.to_bits());
        }
    }
    for clustering in inputs {
        for v in 0..clustering.len() {
            match clustering.label(v) {
                Some(label) => eat(u64::from(label)),
                None => eat(u64::from(u32::MAX) + 1),
            }
        }
    }
    h
}

/// Remove every tile frame (and in-flight `.tmp` write) from `dir`, then
/// the directory itself if it ends up empty. Errors are swallowed — spill
/// cleanup is best-effort and must never fail a converged run. Returns the
/// number of frames removed.
pub fn cleanup_spill_dir(dir: &Path) -> usize {
    let mut removed = 0usize;
    let entries = match crate::iofs::read_dir("spill.cleanup", dir) {
        Ok(entries) => entries,
        Err(_) => return 0,
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("tile-")
            && (name.ends_with(".bin") || name.ends_with(".bin.tmp"))
            && crate::iofs::remove_file("spill.cleanup", &entry.path()).is_ok()
        {
            removed += 1;
        }
    }
    let _ = crate::iofs::remove_dir("spill.cleanup", dir);
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::Clustering;
    use crate::parallel::with_num_threads;

    fn adversarial_instance(n: usize, m: usize) -> CorrelationInstance {
        let clusterings: Vec<Clustering> = (0..m)
            .map(|i| {
                Clustering::from_labels(
                    (0..n)
                        .map(|v| ((v * (i + 2) + i * 7) % (3 + i)) as u32)
                        .collect(),
                )
            })
            .collect();
        CorrelationInstance::from_clusterings(&clusterings)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aggclust_spill_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn tile_layout_partitions_the_triangle() {
        for n in [0usize, 1, 2, 3, 10, 97, 500] {
            for tile_pairs in [1u64, 7, 64, 10_000] {
                let (rows, offsets, sizes) = tile_layout(n, tile_pairs);
                assert_eq!(rows.len(), offsets.len());
                assert_eq!(rows.len(), sizes.len());
                let total: usize = sizes.iter().sum();
                assert_eq!(total, n * n.saturating_sub(1) / 2, "n={n} tp={tile_pairs}");
                let mut expect_offset = 0usize;
                let mut expect_row = 0usize;
                for ((&r, &o), &s) in rows.iter().zip(&offsets).zip(&sizes) {
                    assert_eq!(r, expect_row);
                    assert_eq!(o, expect_offset);
                    assert!(s > 0, "empty tile at n={n} tp={tile_pairs}");
                    // Advance expect_row by the rows this tile consumed.
                    let mut pairs = 0usize;
                    while pairs < s {
                        pairs += n - 1 - expect_row;
                        expect_row += 1;
                    }
                    assert_eq!(pairs, s, "tile not row-aligned");
                    expect_offset += s;
                }
            }
        }
    }

    #[test]
    fn spilled_oracle_matches_dense_bit_for_bit() {
        let instance = adversarial_instance(60, 5);
        let dense = instance.dense_oracle();
        let dir = temp_dir("match_dense");
        // A budget tight enough that only a tile or two stays pinned.
        let budget = RunBudget::unlimited().with_mem_limit_bytes(4096);
        let config = SpillConfig::new(&dir).with_tile_bytes(1024);
        let spilled = SpilledOracle::try_build(&instance, &budget, &config).expect("build");
        assert!(spilled.tiles() > 1);
        for u in 0..60 {
            for v in 0..60 {
                assert_eq!(
                    spilled.dist(u, v).to_bits(),
                    dense.dist(u, v).to_bits(),
                    "({u},{v})"
                );
            }
        }
        drop(spilled);
        assert!(cleanup_spill_dir(&dir) > 0);
        assert!(!dir.exists());
    }

    #[test]
    fn spilled_oracle_is_identical_across_thread_counts() {
        let instance = adversarial_instance(50, 4);
        let dir1 = temp_dir("threads_1");
        let dir4 = temp_dir("threads_4");
        let collect = |dir: &Path| {
            let budget = RunBudget::unlimited().with_mem_limit_bytes(2048);
            let config = SpillConfig::new(dir).with_tile_bytes(512);
            let spilled = SpilledOracle::try_build(&instance, &budget, &config).expect("build");
            let mut out = Vec::new();
            for u in 0..50 {
                for v in u + 1..50 {
                    out.push(spilled.dist(u, v).to_bits());
                }
            }
            out
        };
        let one = with_num_threads(1, || collect(&dir1));
        let four = with_num_threads(4, || collect(&dir4));
        assert_eq!(one, four);
        cleanup_spill_dir(&dir1);
        cleanup_spill_dir(&dir4);
    }

    #[test]
    fn partial_inputs_spill_identically_to_dense() {
        let p = |labels: &[i64]| {
            PartialClustering::from_labels(
                labels
                    .iter()
                    .map(|&l| if l < 0 { None } else { Some(l as u32) })
                    .collect(),
            )
        };
        let n = 40;
        let inputs: Vec<PartialClustering> = (0..4)
            .map(|i| {
                let labels: Vec<i64> = (0..n)
                    .map(|v| {
                        if (v + i) % 7 == 0 {
                            -1
                        } else {
                            ((v * (i + 2)) % 4) as i64
                        }
                    })
                    .collect();
                p(&labels)
            })
            .collect();
        let instance =
            CorrelationInstance::try_from_partial(inputs, MissingPolicy::Coin(0.25)).expect("ok");
        let dense = instance.dense_oracle();
        let dir = temp_dir("partial");
        let budget = RunBudget::unlimited().with_mem_limit_bytes(2048);
        let config = SpillConfig::new(&dir).with_tile_bytes(512);
        let spilled = SpilledOracle::try_build(&instance, &budget, &config).expect("build");
        for u in 0..n {
            for v in 0..n {
                assert_eq!(
                    spilled.dist(u, v).to_bits(),
                    dense.dist(u, v).to_bits(),
                    "({u},{v})"
                );
            }
        }
        cleanup_spill_dir(&dir);
    }

    #[test]
    fn every_bit_flip_in_a_frame_rebuilds_to_correct_values() {
        let instance = adversarial_instance(12, 3);
        let dense = instance.dense_oracle();
        let dir = temp_dir("bitflip");
        let budget = RunBudget::unlimited().with_mem_limit_bytes(256);
        let config = SpillConfig::new(&dir).with_tile_bytes(128);
        let spilled = SpilledOracle::try_build(&instance, &budget, &config).expect("build");
        let path = spilled.tile_path(0);
        let clean = std::fs::read(&path).expect("read frame");
        crate::test_support::for_each_bit_flip(
            &clean,
            &crate::test_support::ALL_BITS,
            |byte, bit, corrupt| {
                std::fs::write(&path, corrupt).expect("write corrupt");
                // A fresh read either validates (flip was in slack the CRC
                // does not cover — impossible for a single flip) or
                // rebuilds; both must produce the dense values.
                let data = spilled.load_or_rebuild(0);
                let rows = spilled.tile_rows(0);
                let mut i = 0usize;
                for u in rows {
                    for v in u + 1..12 {
                        assert_eq!(
                            data[i].to_bits(),
                            dense.dist(u, v).to_bits(),
                            "flip {byte}:{bit} pair ({u},{v})"
                        );
                        i += 1;
                    }
                }
            },
        );
        // Truncations likewise: never a panic, always correct values.
        crate::test_support::for_each_truncation(&clean, |_len, prefix| {
            std::fs::write(&path, prefix).expect("write truncated");
            let data = spilled.load_or_rebuild(0);
            assert_eq!(data.len(), spilled.tile_pairs[0]);
        });
        cleanup_spill_dir(&dir);
    }

    #[test]
    fn orphaned_frames_are_reclaimed_not_rebuilt() {
        let instance = adversarial_instance(30, 3);
        let dir = temp_dir("reclaim");
        let budget = RunBudget::unlimited().with_mem_limit_bytes(2048);
        let config = SpillConfig::new(&dir).with_tile_bytes(512);
        let first = SpilledOracle::try_build(&instance, &budget, &config).expect("build");
        let tiles = first.tiles();
        drop(first);
        // Frames are still on disk — a second build must reclaim them.
        crate::telemetry::set_metrics_enabled(true);
        let before = crate::telemetry::MetricsSnapshot::capture();
        let budget2 = RunBudget::unlimited().with_mem_limit_bytes(2048);
        let second = SpilledOracle::try_build(&instance, &budget2, &config).expect("rebuild");
        let delta = crate::telemetry::MetricsSnapshot::capture().diff(&before);
        crate::telemetry::set_metrics_enabled(false);
        assert_eq!(second.tiles(), tiles);
        assert_eq!(delta.spill_tiles_read, tiles as u64, "all frames reclaimed");
        assert_eq!(delta.spill_tiles_written, 0, "no frame rewritten");
        // A *different* instance must not trust those frames.
        let other = adversarial_instance(30, 4);
        let dense = other.dense_oracle();
        drop(second);
        let budget3 = RunBudget::unlimited().with_mem_limit_bytes(2048);
        let third = SpilledOracle::try_build(&other, &budget3, &config).expect("build other");
        for u in 0..30 {
            for v in 0..30 {
                assert_eq!(third.dist(u, v).to_bits(), dense.dist(u, v).to_bits());
            }
        }
        cleanup_spill_dir(&dir);
    }

    #[test]
    fn unwritable_spill_dir_is_a_typed_io_error() {
        let instance = adversarial_instance(20, 3);
        let budget = RunBudget::unlimited().with_mem_limit_bytes(1024);
        // A file where the directory should be: create_dir_all fails.
        let blocker = std::env::temp_dir().join("aggclust_spill_blocker");
        std::fs::write(&blocker, b"not a directory").expect("write blocker");
        let config = SpillConfig::new(blocker.join("tiles")).with_tile_bytes(256);
        match SpilledOracle::try_build(&instance, &budget, &config) {
            Err(SpillError::Io { .. }) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
        std::fs::remove_file(&blocker).ok();
    }

    #[test]
    fn cancellation_interrupts_the_build() {
        let instance = adversarial_instance(40, 3);
        let token = crate::robust::CancelToken::new();
        token.cancel();
        let budget = RunBudget::unlimited()
            .with_mem_limit_bytes(1024)
            .with_cancel_token(token);
        let dir = temp_dir("cancel");
        let config = SpillConfig::new(&dir).with_tile_bytes(256);
        match SpilledOracle::try_build(&instance, &budget, &config) {
            Err(SpillError::Interrupted(Interrupt::Cancelled)) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
        cleanup_spill_dir(&dir);
    }

    #[test]
    fn fingerprint_distinguishes_instances_and_policies() {
        let a = adversarial_instance(10, 3);
        let b = adversarial_instance(10, 4);
        let fa = instance_fingerprint(a.inputs(), MissingPolicy::Coin(0.5));
        assert_eq!(
            fa,
            instance_fingerprint(a.inputs(), MissingPolicy::Coin(0.5))
        );
        assert_ne!(
            fa,
            instance_fingerprint(b.inputs(), MissingPolicy::Coin(0.5))
        );
        assert_ne!(fa, instance_fingerprint(a.inputs(), MissingPolicy::Ignore));
        assert_ne!(
            fa,
            instance_fingerprint(a.inputs(), MissingPolicy::Coin(0.25))
        );
    }

    #[test]
    fn cache_hits_and_bypass_are_counted() {
        let instance = adversarial_instance(60, 5);
        // Roomy budget: every tile stays pinned from the build, so reads
        // are LRU/memo hits.
        let roomy_dir = temp_dir("hitcount-roomy");
        let roomy_budget = RunBudget::unlimited().with_mem_limit_bytes(1 << 20);
        let roomy_config = SpillConfig::new(&roomy_dir).with_tile_bytes(512);
        let roomy =
            SpilledOracle::try_build(&instance, &roomy_budget, &roomy_config).expect("build");
        crate::telemetry::set_metrics_enabled(true);
        let before = crate::telemetry::MetricsSnapshot::capture();
        let mut scan = 0.0;
        for u in 0..60 {
            for v in u + 1..60 {
                scan += roomy.dist(u, v);
            }
        }
        assert!(scan > 0.0);
        let delta = crate::telemetry::MetricsSnapshot::capture().diff(&before);
        crate::telemetry::set_metrics_enabled(false);
        assert!(
            delta.spill_cache_hits > 0,
            "resident-tile lookups must count as cache hits"
        );
        cleanup_spill_dir(&roomy_dir);

        // Tight cap: the scan runs past the pinned set and the anti-thrash
        // policy serves most misses from the lazy bypass.
        let tight_dir = temp_dir("hitcount-tight");
        let tight_budget = RunBudget::unlimited().with_mem_limit_bytes(2048);
        let tight_config = SpillConfig::new(&tight_dir).with_tile_bytes(512);
        let tight =
            SpilledOracle::try_build(&instance, &tight_budget, &tight_config).expect("build");
        assert!(tight.tiles() > 1, "need multiple tiles to observe misses");
        crate::telemetry::set_metrics_enabled(true);
        let before = crate::telemetry::MetricsSnapshot::capture();
        let mut scan = 0.0;
        for u in 0..60 {
            for v in u + 1..60 {
                scan += tight.dist(u, v);
            }
        }
        assert!(scan > 0.0);
        let delta = crate::telemetry::MetricsSnapshot::capture().diff(&before);
        crate::telemetry::set_metrics_enabled(false);
        assert!(
            delta.spill_cache_bypass > 0,
            "anti-thrash misses must count as bypasses"
        );
        cleanup_spill_dir(&tight_dir);
    }

    #[test]
    fn eviction_frees_budget_and_counts() {
        let instance = adversarial_instance(60, 5);
        let dir = temp_dir("evict");
        crate::telemetry::set_metrics_enabled(true);
        let before = crate::telemetry::MetricsSnapshot::capture();
        let budget = RunBudget::unlimited().with_mem_limit_bytes(4096);
        let config = SpillConfig::new(&dir).with_tile_bytes(1024);
        let spilled = SpilledOracle::try_build(&instance, &budget, &config).expect("build");
        let delta = crate::telemetry::MetricsSnapshot::capture().diff(&before);
        crate::telemetry::set_metrics_enabled(false);
        assert_eq!(delta.spill_tiles_written, spilled.tiles() as u64);
        assert!(
            delta.spill_evictions > 0,
            "write-through pinning under a tight cap must evict"
        );
        // The pinned set respects the cap.
        assert!(budget.mem_gauge().used_bytes() <= 4096 + spilled.lazy.packed_bytes());
        cleanup_spill_dir(&dir);
    }
}
