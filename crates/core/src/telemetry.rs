//! Zero-dependency telemetry: structured spans, leveled events, and a
//! metrics registry of atomic counters.
//!
//! The build is offline, so this module plays the role the `tracing` +
//! `metrics` crates would normally play, with the same shape:
//!
//! * **Spans and events** — [`crate::span!`] opens a named, field-carrying
//!   span whose guard reports its wall-clock duration when dropped;
//!   [`crate::event!`] (and the [`crate::info!`] / [`crate::warn!`] /
//!   [`crate::debug!`] / [`crate::trace!`] shorthands) emit leveled
//!   one-shot events. Both are recorded by a pluggable [`Collector`]
//!   installed process-wide with [`install_collector`]. When no collector
//!   is installed the macros cost one relaxed atomic load and a branch —
//!   span fields are not even evaluated.
//! * **Metrics** — a fixed registry ([`Metrics`], reachable through
//!   [`metrics`]) of atomic counters, max-gauges, float sums, and
//!   fixed-bucket histograms that the hot paths increment when
//!   [`set_metrics_enabled`] has been flipped on. Counter totals are
//!   deterministic: the deterministic kernels perform the same multiset of
//!   counted operations at any `--threads` setting, and integer atomic
//!   adds commute, so totals are bit-identical across thread counts.
//! * **Span timings** — when metrics are enabled every closing span also
//!   records count / total-ns / self-ns / max-ns / histogram aggregates
//!   into a per-span-name [`SpanStats`] registry ([`span_stats`]),
//!   rendered as the `timings` block of the run report
//!   ([`TimingsSnapshot`]). Self time is elapsed time minus time spent in
//!   child spans on the same thread, so a parent's own work (e.g. the
//!   dense build's alloc/fault/write floor) gets its own number.
//! * **Heartbeats** — [`Heartbeat`] emits cadence-limited `progress`
//!   events (phase, done/total, memory, deadline remaining, ETA) from
//!   the algorithm loops; [`Cadence`] is the shared "has the period
//!   elapsed" ticker also used by [`crate::snapshot::Checkpointer`].
//! * **Sinks** — [`StderrSink`] (a leveled human logger, filterable via
//!   the `AGGCLUST_LOG` environment variable or CLI `--log-level`),
//!   [`JsonlSink`] (one JSON object per span/event for `--trace-out`),
//!   and [`TeeCollector`] to fan out to several sinks at once.
//!   [`MetricsSnapshot::to_json`] renders the registry as the
//!   machine-readable run report behind `--metrics-out`.
//! * **Clock** — [`Clock`] is the monotonic time source used by
//!   [`crate::robust::ResourceBudget`] deadlines and
//!   [`crate::snapshot::Checkpointer`] cadence; [`Clock::mock`] gives
//!   tests a manually advanced clock so deadline behavior can be tested
//!   without real sleeps.

use std::cell::RefCell;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Levels
// ---------------------------------------------------------------------------

/// Severity of an [`Event`] (and the filter threshold of the sinks),
/// ordered `Error < Warn < Info < Debug < Trace`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Unrecoverable or surprising failures.
    Error,
    /// Degradations and anytime stops the caller should know about.
    Warn,
    /// Run milestones (algorithm start/finish, checkpoint saved).
    Info,
    /// Per-phase details (pass finished, sample drawn).
    Debug,
    /// Per-unit details (span opens); very chatty.
    Trace,
}

impl Level {
    /// Parse a level name (case-insensitive); `None` for unknown names.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            "off" | "none" => None,
            _ => None,
        }
    }

    /// The level requested by the `AGGCLUST_LOG` environment variable, if
    /// set to a recognized name.
    pub fn from_env() -> Option<Level> {
        std::env::var("AGGCLUST_LOG")
            .ok()
            .and_then(|s| Level::parse(&s))
    }

    /// Lower-case display name (`"warn"`, `"info"`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

// ---------------------------------------------------------------------------
// Field values
// ---------------------------------------------------------------------------

/// A structured field value attached to a span or event.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(String),
}

impl Value {
    /// Render as a JSON value (strings escaped, non-finite floats as
    /// `null`).
    pub fn to_json(&self) -> String {
        match self {
            Value::U64(x) => x.to_string(),
            Value::I64(x) => x.to_string(),
            Value::F64(x) => json_f64(*x),
            Value::Bool(x) => x.to_string(),
            Value::Str(s) => json_string(s),
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::U64(x) => write!(f, "{x}"),
            Value::I64(x) => write!(f, "{x}"),
            Value::F64(x) => write!(f, "{x}"),
            Value::Bool(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<u64> for Value {
    fn from(x: u64) -> Self {
        Value::U64(x)
    }
}
impl From<usize> for Value {
    fn from(x: usize) -> Self {
        Value::U64(x as u64)
    }
}
impl From<u32> for Value {
    fn from(x: u32) -> Self {
        Value::U64(u64::from(x))
    }
}
impl From<i64> for Value {
    fn from(x: i64) -> Self {
        Value::I64(x)
    }
}
impl From<i32> for Value {
    fn from(x: i32) -> Self {
        Value::I64(i64::from(x))
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::F64(x)
    }
}
impl From<bool> for Value {
    fn from(x: bool) -> Self {
        Value::Bool(x)
    }
}
impl From<&str> for Value {
    fn from(x: &str) -> Self {
        Value::Str(x.to_owned())
    }
}
impl From<String> for Value {
    fn from(x: String) -> Self {
        Value::Str(x)
    }
}

// ---------------------------------------------------------------------------
// Events and spans
// ---------------------------------------------------------------------------

/// A one-shot leveled event dispatched to the installed [`Collector`].
#[derive(Debug)]
pub struct Event<'a> {
    /// Severity.
    pub level: Level,
    /// Short static message / event name.
    pub message: &'a str,
    /// Structured key–value fields.
    pub fields: &'a [(&'static str, Value)],
}

/// The data describing an open span: a name, an id unique within the
/// process, and structured fields captured at entry.
#[derive(Debug)]
pub struct SpanData {
    /// Span name (e.g. `"balls"`, `"consensus"`).
    pub name: &'static str,
    /// Process-unique id, for correlating start/end trace records.
    pub id: u64,
    /// Fields captured when the span was entered.
    pub fields: Vec<(&'static str, Value)>,
}

/// Receives spans and events. Implementations must be cheap and
/// non-blocking-ish: they run inline on the instrumented thread.
pub trait Collector: Send + Sync {
    /// `true` if events at `level` should be built and dispatched.
    fn enabled(&self, level: Level) -> bool;
    /// A one-shot event.
    fn event(&self, event: &Event<'_>);
    /// A span was entered.
    fn span_start(&self, span: &SpanData);
    /// A span closed after `elapsed`.
    fn span_end(&self, span: &SpanData, elapsed: Duration);
}

static COLLECTOR_ACTIVE: AtomicBool = AtomicBool::new(false);

fn collector_slot() -> &'static RwLock<Option<Arc<dyn Collector>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<dyn Collector>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Install `collector` as the process-wide sink for spans and events,
/// replacing any previous one.
pub fn install_collector(collector: Arc<dyn Collector>) {
    if let Ok(mut slot) = collector_slot().write() {
        *slot = Some(collector);
        COLLECTOR_ACTIVE.store(true, Ordering::Release);
    }
}

/// Remove the installed collector; spans and events become free again.
pub fn clear_collector() {
    COLLECTOR_ACTIVE.store(false, Ordering::Release);
    if let Ok(mut slot) = collector_slot().write() {
        *slot = None;
    }
}

/// `true` when a collector is installed — the macros' fast-path gate.
#[inline]
pub fn collector_active() -> bool {
    COLLECTOR_ACTIVE.load(Ordering::Relaxed)
}

fn with_collector(f: impl FnOnce(&Arc<dyn Collector>)) {
    if let Ok(slot) = collector_slot().read() {
        if let Some(collector) = slot.as_ref() {
            f(collector);
        }
    }
}

/// Dispatch an event to the installed collector (macro plumbing; prefer
/// [`crate::event!`]).
pub fn dispatch_event(level: Level, message: &str, fields: &[(&'static str, Value)]) {
    with_collector(|c| {
        if c.enabled(level) {
            c.event(&Event {
                level,
                message,
                fields,
            });
        }
    });
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    // One slot per open timed span on this thread: the accumulated
    // elapsed time of its already-closed children. Closing a span pops
    // its slot (its child time, for self-time) and adds its own elapsed
    // time to the new top — the parent's slot — so self/total
    // attribution needs no tree walk and no allocation per span.
    static SPAN_CHILD_NS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for an open span; created by [`crate::span!`]. Reports the
/// span's duration to the collector when dropped, and — when metrics are
/// enabled — records it into the per-span-name [`SpanStats`] aggregates
/// (count, total ns, self ns, max, histogram). Inert (holds nothing,
/// does nothing) when neither a collector nor metrics were active at
/// entry. Guards must be dropped on the thread that created them: the
/// self-time bookkeeping is a per-thread stack.
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    data: SpanData,
    start_ns: u64,
    dispatched: bool,
}

impl SpanGuard {
    /// Enter a span (macro plumbing; prefer [`crate::span!`]). The field
    /// closure is only evaluated when a collector is installed — a
    /// metrics-only span records timings but carries no fields.
    pub fn enter(
        name: &'static str,
        fields: impl FnOnce() -> Vec<(&'static str, Value)>,
    ) -> SpanGuard {
        let dispatched = collector_active();
        if !dispatched && !metrics_enabled() {
            return SpanGuard { inner: None };
        }
        let data = SpanData {
            name,
            id: NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
            fields: if dispatched { fields() } else { Vec::new() },
        };
        if dispatched {
            with_collector(|c| c.span_start(&data));
        }
        SPAN_CHILD_NS.with(|s| s.borrow_mut().push(0));
        SpanGuard {
            inner: Some(SpanInner {
                data,
                start_ns: timing_now_ns(),
                dispatched,
            }),
        }
    }

    /// The span's process-unique id, or `None` for an inert guard.
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.data.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let elapsed_ns = timing_now_ns().saturating_sub(inner.start_ns);
            let child_ns = SPAN_CHILD_NS.with(|s| {
                let mut stack = s.borrow_mut();
                let child = stack.pop().unwrap_or(0);
                if let Some(parent) = stack.last_mut() {
                    *parent = parent.saturating_add(elapsed_ns);
                }
                child
            });
            if metrics_enabled() {
                let stats = span_stats(inner.data.name);
                stats.count.incr();
                stats.total_ns.add(elapsed_ns);
                stats.self_ns.add(elapsed_ns.saturating_sub(child_ns));
                stats.max_ns.observe(elapsed_ns);
                stats.ns_hist.observe(elapsed_ns as f64);
            }
            if inner.dispatched {
                with_collector(|c| c.span_end(&inner.data, Duration::from_nanos(elapsed_ns)));
            }
        }
    }
}

/// Open a structured span: `let _g = span!("balls", n = n);`. The guard
/// reports the span's duration when dropped; bind it to a named variable
/// (not `_`) so it lives to the end of the scope.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        $crate::telemetry::SpanGuard::enter($name, || ::std::vec![
            $((stringify!($key), $crate::telemetry::Value::from($val)),)*
        ])
    };
}

/// Emit a leveled structured event:
/// `event!(Level::Info, "checkpoint saved", bytes = n);`.
#[macro_export]
macro_rules! event {
    ($level:expr, $msg:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::telemetry::collector_active() {
            $crate::telemetry::dispatch_event(
                $level,
                &$msg,
                &[$((stringify!($key), $crate::telemetry::Value::from($val)),)*],
            );
        }
    };
}

/// [`crate::event!`] at [`Level::Error`].
#[macro_export]
macro_rules! error_event {
    ($($tt:tt)*) => { $crate::event!($crate::telemetry::Level::Error, $($tt)*) };
}

/// [`crate::event!`] at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($tt:tt)*) => { $crate::event!($crate::telemetry::Level::Warn, $($tt)*) };
}

/// [`crate::event!`] at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($tt:tt)*) => { $crate::event!($crate::telemetry::Level::Info, $($tt)*) };
}

/// [`crate::event!`] at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($tt:tt)*) => { $crate::event!($crate::telemetry::Level::Debug, $($tt)*) };
}

/// [`crate::event!`] at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($($tt:tt)*) => { $crate::event!($crate::telemetry::Level::Trace, $($tt)*) };
}

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

/// Nanoseconds since the process-wide monotonic epoch (first use).
fn system_now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A monotonic time source. The default ([`Clock::system`]) reads the OS
/// monotonic clock; [`Clock::mock`] returns a clock that only moves when
/// [`Clock::advance`] is called, so deadline and cadence tests need no
/// real sleeps. Clones of a mock clock share the same time.
#[derive(Clone, Debug, Default)]
pub struct Clock {
    mock: Option<Arc<AtomicU64>>,
}

impl Clock {
    /// The OS monotonic clock.
    pub fn system() -> Clock {
        Clock { mock: None }
    }

    /// A manually driven clock starting at 0 ns.
    pub fn mock() -> Clock {
        Clock {
            mock: Some(Arc::new(AtomicU64::new(0))),
        }
    }

    /// Nanoseconds since this clock's epoch. System clocks include any
    /// armed [`crate::failpoint`] skew (a `clock=skew:ms=N` clause); mock
    /// clocks are exempt so deadline tests keep full control of time.
    pub fn now_ns(&self) -> u64 {
        match &self.mock {
            Some(t) => t.load(Ordering::Relaxed),
            None => system_now_ns().saturating_add(crate::failpoint::clock_skew_ns()),
        }
    }

    /// Advance a [`Clock::mock`] clock by `d`. No effect on the system
    /// clock (real time cannot be steered).
    pub fn advance(&self, d: Duration) {
        if let Some(t) = &self.mock {
            let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
            t.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// `true` for a [`Clock::mock`] clock.
    pub fn is_mock(&self) -> bool {
        self.mock.is_some()
    }
}

// ---------------------------------------------------------------------------
// Timing clock (span durations)
// ---------------------------------------------------------------------------

static TIMING_MOCKED: AtomicBool = AtomicBool::new(false);

fn timing_clock_slot() -> &'static RwLock<Clock> {
    static SLOT: OnceLock<RwLock<Clock>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(Clock::system()))
}

/// Replace the clock that timestamps span durations process-wide. Tests
/// hand in a [`Clock::mock`] so span timings become deterministic;
/// installing a system clock restores the default. The unmocked path
/// reads the raw monotonic clock and deliberately ignores any armed
/// failpoint skew — injected clock jumps must trip *deadlines*, not
/// corrupt the timing profile.
pub fn set_timing_clock(clock: Clock) {
    TIMING_MOCKED.store(clock.is_mock(), Ordering::Release);
    if let Ok(mut slot) = timing_clock_slot().write() {
        *slot = clock;
    }
}

/// Nanoseconds on the span-timing clock (see [`set_timing_clock`]).
#[inline]
pub fn timing_now_ns() -> u64 {
    if TIMING_MOCKED.load(Ordering::Relaxed) {
        timing_clock_slot().read().map(|c| c.now_ns()).unwrap_or(0)
    } else {
        system_now_ns()
    }
}

// ---------------------------------------------------------------------------
// Cadence and heartbeats
// ---------------------------------------------------------------------------

/// A "has the period elapsed" ticker over a [`Clock`]: [`Cadence::due`]
/// returns `true` at most once per period. This is the cadence machinery
/// shared by [`crate::snapshot::Checkpointer`] (checkpoint every N
/// seconds) and [`Heartbeat`] (progress event every N milliseconds);
/// both stay fully testable through a mock clock.
#[derive(Clone, Debug)]
pub struct Cadence {
    clock: Clock,
    every_ns: u64,
    last_ns: u64,
}

impl Cadence {
    /// A cadence on the system clock, first due after one `every` period.
    pub fn new(every: Duration) -> Cadence {
        Cadence::with_clock(Clock::system(), every)
    }

    /// A cadence on an explicit (possibly mock) clock.
    pub fn with_clock(clock: Clock, every: Duration) -> Cadence {
        let last_ns = clock.now_ns();
        Cadence {
            clock,
            every_ns: u64::try_from(every.as_nanos()).unwrap_or(u64::MAX),
            last_ns,
        }
    }

    /// `true` — and the countdown restarts — when at least one period has
    /// elapsed since construction or the last due tick.
    pub fn due(&mut self) -> bool {
        let now = self.clock.now_ns();
        if now.saturating_sub(self.last_ns) < self.every_ns {
            return false;
        }
        self.last_ns = now;
        true
    }

    /// Restart the countdown from now without firing (a caller did the
    /// periodic work through another path, e.g. `save_now`).
    pub fn reset(&mut self) {
        self.last_ns = self.clock.now_ns();
    }

    /// The period between due ticks.
    pub fn every(&self) -> Duration {
        Duration::from_nanos(self.every_ns)
    }

    /// The clock this cadence ticks on.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }
}

/// Default emission period for [`Heartbeat`] progress events.
pub const HEARTBEAT_EVERY: Duration = Duration::from_millis(200);

/// A budget-aware progress ticker for the algorithm loops: call
/// [`Heartbeat::tick`] once per unit of work and, at most once per
/// cadence period, a `progress` event is emitted at [`Level::Debug`]
/// with fields `phase`, `done`, `total`, `elapsed_ms`, `mem_bytes`, an
/// `eta_ms` extrapolation once progress is nonzero, and
/// `deadline_remaining_ms` when a budget with a deadline is attached.
///
/// With no collector installed a tick is one relaxed load and an untaken
/// branch — the same disabled-path cost contract as the metrics
/// counters, held to by the `telemetry_overhead` bench.
#[derive(Debug)]
pub struct Heartbeat<'a> {
    phase: &'static str,
    total: u64,
    cadence: Cadence,
    start_ns: u64,
    budget: Option<&'a crate::robust::ResourceBudget>,
}

impl<'a> Heartbeat<'a> {
    /// A heartbeat for `phase` expecting `total` units of work, on the
    /// system clock at the default cadence.
    pub fn new(phase: &'static str, total: u64) -> Heartbeat<'a> {
        Heartbeat::with_cadence(phase, total, Cadence::new(HEARTBEAT_EVERY))
    }

    /// A heartbeat on an explicit cadence (tests use a mock clock).
    pub fn with_cadence(phase: &'static str, total: u64, cadence: Cadence) -> Heartbeat<'a> {
        let start_ns = cadence.clock.now_ns();
        Heartbeat {
            phase,
            total,
            cadence,
            start_ns,
            budget: None,
        }
    }

    /// Attach the run's budget so heartbeats carry live memory usage and
    /// the remaining deadline.
    pub fn with_budget(mut self, budget: &'a crate::robust::ResourceBudget) -> Heartbeat<'a> {
        self.budget = Some(budget);
        self
    }

    /// Report `done` units complete. Free (one relaxed load and a
    /// branch) unless a collector is installed; rate-limited by the
    /// cadence otherwise.
    #[inline]
    pub fn tick(&mut self, done: u64) {
        if collector_active() {
            self.beat(done);
        }
    }

    #[cold]
    fn beat(&mut self, done: u64) {
        if !self.cadence.due() {
            return;
        }
        let elapsed_ns = self.cadence.clock.now_ns().saturating_sub(self.start_ns);
        let mut fields: Vec<(&'static str, Value)> = Vec::with_capacity(7);
        fields.push(("phase", Value::Str(self.phase.to_owned())));
        fields.push(("done", Value::U64(done)));
        fields.push(("total", Value::U64(self.total)));
        fields.push(("elapsed_ms", Value::U64(elapsed_ns / 1_000_000)));
        if done > 0 && self.total > done {
            let eta_ns = (u128::from(elapsed_ns) * u128::from(self.total - done) / u128::from(done))
                .min(u128::from(u64::MAX)) as u64;
            fields.push(("eta_ms", Value::U64(eta_ns / 1_000_000)));
        }
        match self.budget {
            Some(budget) => {
                fields.push(("mem_bytes", Value::U64(budget.mem_gauge().used_bytes())));
                if let Some(left) = budget.remaining_deadline() {
                    let ms = left.as_millis().min(u128::from(u64::MAX)) as u64;
                    fields.push(("deadline_remaining_ms", Value::U64(ms)));
                }
            }
            None => {
                fields.push((
                    "mem_bytes",
                    Value::U64(metrics().mem_high_water_bytes.get()),
                ));
            }
        }
        dispatch_event(Level::Debug, "progress", &fields);
    }
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// A monotonically increasing `u64` counter.
#[derive(Debug)]
pub struct Counter(AtomicU64);

impl Counter {
    const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1 to the counter.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Add `n`, but only when metrics collection is enabled. The disabled
    /// path is a relaxed load and an untaken branch — cheap enough for hot
    /// loops.
    #[inline]
    pub fn add_if_enabled(&self, n: u64) {
        if metrics_enabled() {
            self.add(n);
        }
    }

    /// Add 1, but only when metrics collection is enabled.
    #[inline]
    pub fn incr_if_enabled(&self) {
        self.add_if_enabled(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value gauge (plain atomic store/load).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Gauge {
    const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge that keeps the maximum value it has ever been offered
/// (high-water marks).
#[derive(Debug)]
pub struct MaxGauge(AtomicU64);

impl MaxGauge {
    const fn new() -> MaxGauge {
        MaxGauge(AtomicU64::new(0))
    }

    /// Raise the gauge to `v` if `v` exceeds the current maximum.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current maximum.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An exact `f64` accumulator stored as bits in an atomic (CAS loop). The
/// instrumented sites only add from one thread at a time, so the sum's
/// rounding order — and therefore its bits — is deterministic.
#[derive(Debug)]
pub struct FloatSum(AtomicU64);

impl FloatSum {
    const fn new() -> FloatSum {
        FloatSum(AtomicU64::new(0)) // 0u64 is the bit pattern of 0.0f64
    }

    /// Add `x` to the sum.
    pub fn add(&self, x: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + x).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current sum.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of buckets in a [`Histogram`] (one per bound, plus overflow).
pub const HISTOGRAM_BUCKETS: usize = 9;

/// A fixed-bucket histogram: bucket `i` counts observations
/// `<= bounds[i]`; the last bucket counts everything larger.
#[derive(Debug)]
pub struct Histogram {
    bounds: [f64; HISTOGRAM_BUCKETS - 1],
    counts: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    const fn new(bounds: [f64; HISTOGRAM_BUCKETS - 1]) -> Histogram {
        Histogram {
            bounds,
            counts: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }

    /// Record one observation.
    pub fn observe(&self, x: f64) {
        let i = self
            .bounds
            .iter()
            .position(|&b| x <= b)
            .unwrap_or(HISTOGRAM_BUCKETS - 1);
        self.counts[i].fetch_add(1, Ordering::Relaxed);
    }

    /// The upper bucket bounds (the last bucket is unbounded).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Current per-bucket counts.
    pub fn counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (o, c) in out.iter_mut().zip(&self.counts) {
            *o = c.load(Ordering::Relaxed);
        }
        out
    }
}

/// The process-wide metrics registry: every instrumented quantity in the
/// crate, by name. Increments are gated on [`metrics_enabled`] at the
/// instrumentation sites, so the registry is free (one relaxed load and a
/// branch per site) until a caller opts in.
#[derive(Debug)]
pub struct Metrics {
    /// `O(1)` lookups served by a dense (precomputed) distance oracle.
    pub oracle_dense_evals: Counter,
    /// `O(m)` on-the-fly recomputations by the lazy clusterings oracle.
    pub oracle_lazy_evals: Counter,
    /// Pair evaluations served by the packed SWAR kernels
    /// ([`crate::kernels`]) — dense builds and packed lazy lookups both
    /// count here, in addition to their dense/lazy counter.
    pub oracle_packed_evals: Counter,
    /// Scalar-lane pair evaluations on the weighted oracle's unpacked
    /// tail (equal-weight groups too small for a packed block).
    pub kernels_fallback_scalar: Counter,
    /// `sep_row_into` batch invocations (one per row×band block in the
    /// cache-blocked fills).
    pub kernels_row_batches: Counter,
    /// Code of the SIMD dispatch tier the most recent [`crate::kernels::LabelMatrix`]
    /// was built with (see [`crate::kernels::dispatch::Tier::code`]; 0 =
    /// no packed kernel has run). Recorded unconditionally — it is one
    /// store per matrix build, and traces must state which code path
    /// produced their numbers even when counters are off.
    pub kernels_dispatch_tier: Gauge,
    /// LOCALSEARCH full passes over the node set.
    pub ls_passes: Counter,
    /// LOCALSEARCH node visits (one move evaluation each).
    pub ls_nodes_visited: Counter,
    /// LOCALSEARCH accepted moves (node changed cluster).
    pub ls_moves: Counter,
    /// Total cost improvement accumulated by accepted LOCALSEARCH moves.
    pub ls_improvement: FloatSum,
    /// Per-move improvement distribution (power-of-ten buckets).
    pub ls_delta_hist: Histogram,
    /// Agglomerative (NN-chain) merges performed.
    pub linkage_merges: Counter,
    /// Times the NN-chain went empty and had to be re-seeded.
    pub linkage_chain_rebuilds: Counter,
    /// BALLS balls carved off (multi-node clusters formed).
    pub balls_formed: Counter,
    /// FURTHEST centers placed across all rounds.
    pub furthest_centers: Counter,
    /// PIVOT pivots drawn.
    pub pivot_rounds: Counter,
    /// Branch-and-bound nodes expanded by the exact solver.
    pub exact_nodes: Counter,
    /// SAMPLING meta-runs started.
    pub sampling_runs: Counter,
    /// Objects drawn into SAMPLING's random sample.
    pub sampling_sampled: Counter,
    /// Objects placed by SAMPLING's per-node assignment phase.
    pub sampling_assigned: Counter,
    /// Leftover singletons re-clustered in SAMPLING's final phase.
    pub sampling_reclustered: Counter,
    /// Snapshot files written successfully.
    pub checkpoint_saves: Counter,
    /// Snapshot write attempts retried after an I/O failure.
    pub checkpoint_retries: Counter,
    /// Snapshot writes abandoned after exhausting retries.
    pub checkpoint_failures: Counter,
    /// Corrupt/unreadable snapshots detected at load time (run restarted
    /// fresh).
    pub checkpoint_corruptions: Counter,
    /// Encoded snapshot sizes in bytes (power-of-ten buckets).
    pub checkpoint_bytes_hist: Histogram,
    /// Condensed-matrix tiles written to the spill directory.
    pub spill_tiles_written: Counter,
    /// Spilled tiles read back from disk into the pinned cache.
    pub spill_tiles_read: Counter,
    /// Spilled tiles rebuilt from the packed labels after a CRC mismatch,
    /// torn read, or missing frame.
    pub spill_tiles_rebuilt: Counter,
    /// Pinned tiles evicted from RAM to stay under the memory budget.
    pub spill_evictions: Counter,
    /// Spilled-oracle lookups served from a tile already pinned in RAM
    /// (the thread-local memo or the LRU cache) — no disk touch.
    pub spill_cache_hits: Counter,
    /// Spilled-oracle lookups that bypassed the tile store to the lazy
    /// `O(m)` oracle (tile not resident and the anti-thrash policy
    /// declined to reload it).
    pub spill_cache_bypass: Counter,
    /// Encoded spill-frame sizes in bytes (power-of-ten buckets).
    pub spill_bytes_hist: Histogram,
    /// Anytime stops caused by the wall-clock deadline.
    pub interrupts_deadline: Counter,
    /// Anytime stops caused by the iteration cap.
    pub interrupts_iteration_cap: Counter,
    /// Anytime stops caused by cooperative cancellation.
    pub interrupts_cancelled: Counter,
    /// Refused allocations (memory ceiling would have been exceeded).
    pub interrupts_memory: Counter,
    /// Faults injected by an armed [`crate::failpoint`] plan.
    pub faults_injected: Counter,
    /// High-water mark of tracked [`crate::robust::MemGauge`] bytes.
    pub mem_high_water_bytes: MaxGauge,
}

const POW10_BOUNDS: [f64; HISTOGRAM_BUCKETS - 1] = [1e-6, 1e-4, 1e-2, 1.0, 1e2, 1e4, 1e6, 1e8];

static METRICS: Metrics = Metrics {
    oracle_dense_evals: Counter::new(),
    oracle_lazy_evals: Counter::new(),
    oracle_packed_evals: Counter::new(),
    kernels_fallback_scalar: Counter::new(),
    kernels_row_batches: Counter::new(),
    kernels_dispatch_tier: Gauge::new(),
    ls_passes: Counter::new(),
    ls_nodes_visited: Counter::new(),
    ls_moves: Counter::new(),
    ls_improvement: FloatSum::new(),
    ls_delta_hist: Histogram::new(POW10_BOUNDS),
    linkage_merges: Counter::new(),
    linkage_chain_rebuilds: Counter::new(),
    balls_formed: Counter::new(),
    furthest_centers: Counter::new(),
    pivot_rounds: Counter::new(),
    exact_nodes: Counter::new(),
    sampling_runs: Counter::new(),
    sampling_sampled: Counter::new(),
    sampling_assigned: Counter::new(),
    sampling_reclustered: Counter::new(),
    checkpoint_saves: Counter::new(),
    checkpoint_retries: Counter::new(),
    checkpoint_failures: Counter::new(),
    checkpoint_corruptions: Counter::new(),
    checkpoint_bytes_hist: Histogram::new(POW10_BOUNDS),
    spill_tiles_written: Counter::new(),
    spill_tiles_read: Counter::new(),
    spill_tiles_rebuilt: Counter::new(),
    spill_evictions: Counter::new(),
    spill_cache_hits: Counter::new(),
    spill_cache_bypass: Counter::new(),
    spill_bytes_hist: Histogram::new(POW10_BOUNDS),
    interrupts_deadline: Counter::new(),
    interrupts_iteration_cap: Counter::new(),
    interrupts_cancelled: Counter::new(),
    interrupts_memory: Counter::new(),
    faults_injected: Counter::new(),
    mem_high_water_bytes: MaxGauge::new(),
};

static METRICS_ENABLED: AtomicBool = AtomicBool::new(false);

/// The process-wide [`Metrics`] registry.
pub fn metrics() -> &'static Metrics {
    &METRICS
}

/// Turn metric recording on or off. Off (the default) leaves every
/// instrumentation site as a relaxed load plus an untaken branch.
pub fn set_metrics_enabled(enabled: bool) {
    METRICS_ENABLED.store(enabled, Ordering::Release);
}

/// `true` when instrumentation sites should record.
#[inline]
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

/// A point-in-time copy of every metric, for delta computation and JSON
/// reports.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// See [`Metrics::oracle_dense_evals`].
    pub oracle_dense_evals: u64,
    /// See [`Metrics::oracle_lazy_evals`].
    pub oracle_lazy_evals: u64,
    /// See [`Metrics::oracle_packed_evals`].
    pub oracle_packed_evals: u64,
    /// See [`Metrics::kernels_fallback_scalar`].
    pub kernels_fallback_scalar: u64,
    /// See [`Metrics::kernels_row_batches`].
    pub kernels_row_batches: u64,
    /// See [`Metrics::kernels_dispatch_tier`] (tier *code*; rendered as
    /// the tier name in JSON).
    pub kernels_dispatch_tier: u64,
    /// See [`Metrics::ls_passes`].
    pub ls_passes: u64,
    /// See [`Metrics::ls_nodes_visited`].
    pub ls_nodes_visited: u64,
    /// See [`Metrics::ls_moves`].
    pub ls_moves: u64,
    /// See [`Metrics::ls_improvement`].
    pub ls_improvement: f64,
    /// See [`Metrics::ls_delta_hist`].
    pub ls_delta_hist: [u64; HISTOGRAM_BUCKETS],
    /// See [`Metrics::linkage_merges`].
    pub linkage_merges: u64,
    /// See [`Metrics::linkage_chain_rebuilds`].
    pub linkage_chain_rebuilds: u64,
    /// See [`Metrics::balls_formed`].
    pub balls_formed: u64,
    /// See [`Metrics::furthest_centers`].
    pub furthest_centers: u64,
    /// See [`Metrics::pivot_rounds`].
    pub pivot_rounds: u64,
    /// See [`Metrics::exact_nodes`].
    pub exact_nodes: u64,
    /// See [`Metrics::sampling_runs`].
    pub sampling_runs: u64,
    /// See [`Metrics::sampling_sampled`].
    pub sampling_sampled: u64,
    /// See [`Metrics::sampling_assigned`].
    pub sampling_assigned: u64,
    /// See [`Metrics::sampling_reclustered`].
    pub sampling_reclustered: u64,
    /// See [`Metrics::checkpoint_saves`].
    pub checkpoint_saves: u64,
    /// See [`Metrics::checkpoint_retries`].
    pub checkpoint_retries: u64,
    /// See [`Metrics::checkpoint_failures`].
    pub checkpoint_failures: u64,
    /// See [`Metrics::checkpoint_corruptions`].
    pub checkpoint_corruptions: u64,
    /// See [`Metrics::checkpoint_bytes_hist`].
    pub checkpoint_bytes_hist: [u64; HISTOGRAM_BUCKETS],
    /// See [`Metrics::spill_tiles_written`].
    pub spill_tiles_written: u64,
    /// See [`Metrics::spill_tiles_read`].
    pub spill_tiles_read: u64,
    /// See [`Metrics::spill_tiles_rebuilt`].
    pub spill_tiles_rebuilt: u64,
    /// See [`Metrics::spill_evictions`].
    pub spill_evictions: u64,
    /// See [`Metrics::spill_cache_hits`].
    pub spill_cache_hits: u64,
    /// See [`Metrics::spill_cache_bypass`].
    pub spill_cache_bypass: u64,
    /// See [`Metrics::spill_bytes_hist`].
    pub spill_bytes_hist: [u64; HISTOGRAM_BUCKETS],
    /// See [`Metrics::interrupts_deadline`].
    pub interrupts_deadline: u64,
    /// See [`Metrics::interrupts_iteration_cap`].
    pub interrupts_iteration_cap: u64,
    /// See [`Metrics::interrupts_cancelled`].
    pub interrupts_cancelled: u64,
    /// See [`Metrics::interrupts_memory`].
    pub interrupts_memory: u64,
    /// See [`Metrics::faults_injected`].
    pub faults_injected: u64,
    /// See [`Metrics::mem_high_water_bytes`].
    pub mem_high_water_bytes: u64,
}

impl MetricsSnapshot {
    /// Snapshot the process-wide registry right now.
    pub fn capture() -> MetricsSnapshot {
        let m = metrics();
        MetricsSnapshot {
            oracle_dense_evals: m.oracle_dense_evals.get(),
            oracle_lazy_evals: m.oracle_lazy_evals.get(),
            oracle_packed_evals: m.oracle_packed_evals.get(),
            kernels_fallback_scalar: m.kernels_fallback_scalar.get(),
            kernels_row_batches: m.kernels_row_batches.get(),
            kernels_dispatch_tier: m.kernels_dispatch_tier.get(),
            ls_passes: m.ls_passes.get(),
            ls_nodes_visited: m.ls_nodes_visited.get(),
            ls_moves: m.ls_moves.get(),
            ls_improvement: m.ls_improvement.get(),
            ls_delta_hist: m.ls_delta_hist.counts(),
            linkage_merges: m.linkage_merges.get(),
            linkage_chain_rebuilds: m.linkage_chain_rebuilds.get(),
            balls_formed: m.balls_formed.get(),
            furthest_centers: m.furthest_centers.get(),
            pivot_rounds: m.pivot_rounds.get(),
            exact_nodes: m.exact_nodes.get(),
            sampling_runs: m.sampling_runs.get(),
            sampling_sampled: m.sampling_sampled.get(),
            sampling_assigned: m.sampling_assigned.get(),
            sampling_reclustered: m.sampling_reclustered.get(),
            checkpoint_saves: m.checkpoint_saves.get(),
            checkpoint_retries: m.checkpoint_retries.get(),
            checkpoint_failures: m.checkpoint_failures.get(),
            checkpoint_corruptions: m.checkpoint_corruptions.get(),
            checkpoint_bytes_hist: m.checkpoint_bytes_hist.counts(),
            spill_tiles_written: m.spill_tiles_written.get(),
            spill_tiles_read: m.spill_tiles_read.get(),
            spill_tiles_rebuilt: m.spill_tiles_rebuilt.get(),
            spill_evictions: m.spill_evictions.get(),
            spill_cache_hits: m.spill_cache_hits.get(),
            spill_cache_bypass: m.spill_cache_bypass.get(),
            spill_bytes_hist: m.spill_bytes_hist.counts(),
            interrupts_deadline: m.interrupts_deadline.get(),
            interrupts_iteration_cap: m.interrupts_iteration_cap.get(),
            interrupts_cancelled: m.interrupts_cancelled.get(),
            interrupts_memory: m.interrupts_memory.get(),
            faults_injected: m.faults_injected.get(),
            mem_high_water_bytes: m.mem_high_water_bytes.get(),
        }
    }

    /// Counter-wise difference `self − earlier` (saturating), isolating
    /// the work done between two snapshots. Gauges keep `self`'s value;
    /// the float sum subtracts exactly.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        fn hist_diff(
            a: &[u64; HISTOGRAM_BUCKETS],
            b: &[u64; HISTOGRAM_BUCKETS],
        ) -> [u64; HISTOGRAM_BUCKETS] {
            let mut out = [0u64; HISTOGRAM_BUCKETS];
            for i in 0..HISTOGRAM_BUCKETS {
                out[i] = a[i].saturating_sub(b[i]);
            }
            out
        }
        MetricsSnapshot {
            oracle_dense_evals: self
                .oracle_dense_evals
                .saturating_sub(earlier.oracle_dense_evals),
            oracle_lazy_evals: self
                .oracle_lazy_evals
                .saturating_sub(earlier.oracle_lazy_evals),
            oracle_packed_evals: self
                .oracle_packed_evals
                .saturating_sub(earlier.oracle_packed_evals),
            kernels_fallback_scalar: self
                .kernels_fallback_scalar
                .saturating_sub(earlier.kernels_fallback_scalar),
            kernels_row_batches: self
                .kernels_row_batches
                .saturating_sub(earlier.kernels_row_batches),
            kernels_dispatch_tier: self.kernels_dispatch_tier,
            ls_passes: self.ls_passes.saturating_sub(earlier.ls_passes),
            ls_nodes_visited: self
                .ls_nodes_visited
                .saturating_sub(earlier.ls_nodes_visited),
            ls_moves: self.ls_moves.saturating_sub(earlier.ls_moves),
            ls_improvement: self.ls_improvement - earlier.ls_improvement,
            ls_delta_hist: hist_diff(&self.ls_delta_hist, &earlier.ls_delta_hist),
            linkage_merges: self.linkage_merges.saturating_sub(earlier.linkage_merges),
            linkage_chain_rebuilds: self
                .linkage_chain_rebuilds
                .saturating_sub(earlier.linkage_chain_rebuilds),
            balls_formed: self.balls_formed.saturating_sub(earlier.balls_formed),
            furthest_centers: self
                .furthest_centers
                .saturating_sub(earlier.furthest_centers),
            pivot_rounds: self.pivot_rounds.saturating_sub(earlier.pivot_rounds),
            exact_nodes: self.exact_nodes.saturating_sub(earlier.exact_nodes),
            sampling_runs: self.sampling_runs.saturating_sub(earlier.sampling_runs),
            sampling_sampled: self
                .sampling_sampled
                .saturating_sub(earlier.sampling_sampled),
            sampling_assigned: self
                .sampling_assigned
                .saturating_sub(earlier.sampling_assigned),
            sampling_reclustered: self
                .sampling_reclustered
                .saturating_sub(earlier.sampling_reclustered),
            checkpoint_saves: self
                .checkpoint_saves
                .saturating_sub(earlier.checkpoint_saves),
            checkpoint_retries: self
                .checkpoint_retries
                .saturating_sub(earlier.checkpoint_retries),
            checkpoint_failures: self
                .checkpoint_failures
                .saturating_sub(earlier.checkpoint_failures),
            checkpoint_corruptions: self
                .checkpoint_corruptions
                .saturating_sub(earlier.checkpoint_corruptions),
            checkpoint_bytes_hist: hist_diff(
                &self.checkpoint_bytes_hist,
                &earlier.checkpoint_bytes_hist,
            ),
            spill_tiles_written: self
                .spill_tiles_written
                .saturating_sub(earlier.spill_tiles_written),
            spill_tiles_read: self
                .spill_tiles_read
                .saturating_sub(earlier.spill_tiles_read),
            spill_tiles_rebuilt: self
                .spill_tiles_rebuilt
                .saturating_sub(earlier.spill_tiles_rebuilt),
            spill_evictions: self.spill_evictions.saturating_sub(earlier.spill_evictions),
            spill_cache_hits: self
                .spill_cache_hits
                .saturating_sub(earlier.spill_cache_hits),
            spill_cache_bypass: self
                .spill_cache_bypass
                .saturating_sub(earlier.spill_cache_bypass),
            spill_bytes_hist: hist_diff(&self.spill_bytes_hist, &earlier.spill_bytes_hist),
            interrupts_deadline: self
                .interrupts_deadline
                .saturating_sub(earlier.interrupts_deadline),
            interrupts_iteration_cap: self
                .interrupts_iteration_cap
                .saturating_sub(earlier.interrupts_iteration_cap),
            interrupts_cancelled: self
                .interrupts_cancelled
                .saturating_sub(earlier.interrupts_cancelled),
            interrupts_memory: self
                .interrupts_memory
                .saturating_sub(earlier.interrupts_memory),
            faults_injected: self.faults_injected.saturating_sub(earlier.faults_injected),
            mem_high_water_bytes: self.mem_high_water_bytes,
        }
    }

    /// Total distance-oracle evaluations (dense + lazy).
    pub fn oracle_evals_total(&self) -> u64 {
        self.oracle_dense_evals + self.oracle_lazy_evals
    }

    /// Render as a stable JSON object (the `"counters"` payload of the
    /// `--metrics-out` run report).
    pub fn to_json(&self) -> String {
        fn hist(h: &[u64; HISTOGRAM_BUCKETS]) -> String {
            let items: Vec<String> = h.iter().map(|c| c.to_string()).collect();
            format!("[{}]", items.join(","))
        }
        let mut s = String::with_capacity(1024);
        s.push('{');
        let mut push = |key: &str, val: String, last: bool| {
            s.push_str(&json_string(key));
            s.push(':');
            s.push_str(&val);
            if !last {
                s.push(',');
            }
        };
        push(
            "oracle_dense_evals",
            self.oracle_dense_evals.to_string(),
            false,
        );
        push(
            "oracle_lazy_evals",
            self.oracle_lazy_evals.to_string(),
            false,
        );
        push(
            "oracle_packed_evals",
            self.oracle_packed_evals.to_string(),
            false,
        );
        push(
            "kernels_fallback_scalar",
            self.kernels_fallback_scalar.to_string(),
            false,
        );
        push(
            "kernels_row_batches",
            self.kernels_row_batches.to_string(),
            false,
        );
        push(
            "kernels_dispatch_tier",
            json_string(crate::kernels::dispatch::tier_code_name(
                self.kernels_dispatch_tier,
            )),
            false,
        );
        push(
            "oracle_evals_total",
            self.oracle_evals_total().to_string(),
            false,
        );
        push("ls_passes", self.ls_passes.to_string(), false);
        push("ls_nodes_visited", self.ls_nodes_visited.to_string(), false);
        push("ls_moves", self.ls_moves.to_string(), false);
        push("ls_improvement", json_f64(self.ls_improvement), false);
        push("ls_delta_hist", hist(&self.ls_delta_hist), false);
        push("linkage_merges", self.linkage_merges.to_string(), false);
        push(
            "linkage_chain_rebuilds",
            self.linkage_chain_rebuilds.to_string(),
            false,
        );
        push("balls_formed", self.balls_formed.to_string(), false);
        push("furthest_centers", self.furthest_centers.to_string(), false);
        push("pivot_rounds", self.pivot_rounds.to_string(), false);
        push("exact_nodes", self.exact_nodes.to_string(), false);
        push("sampling_runs", self.sampling_runs.to_string(), false);
        push("sampling_sampled", self.sampling_sampled.to_string(), false);
        push(
            "sampling_assigned",
            self.sampling_assigned.to_string(),
            false,
        );
        push(
            "sampling_reclustered",
            self.sampling_reclustered.to_string(),
            false,
        );
        push("checkpoint_saves", self.checkpoint_saves.to_string(), false);
        push(
            "checkpoint_retries",
            self.checkpoint_retries.to_string(),
            false,
        );
        push(
            "checkpoint_failures",
            self.checkpoint_failures.to_string(),
            false,
        );
        push(
            "checkpoint_corruptions",
            self.checkpoint_corruptions.to_string(),
            false,
        );
        push(
            "checkpoint_bytes_hist",
            hist(&self.checkpoint_bytes_hist),
            false,
        );
        push(
            "spill_tiles_written",
            self.spill_tiles_written.to_string(),
            false,
        );
        push("spill_tiles_read", self.spill_tiles_read.to_string(), false);
        push(
            "spill_tiles_rebuilt",
            self.spill_tiles_rebuilt.to_string(),
            false,
        );
        push("spill_evictions", self.spill_evictions.to_string(), false);
        push("spill_cache_hits", self.spill_cache_hits.to_string(), false);
        push(
            "spill_cache_bypass",
            self.spill_cache_bypass.to_string(),
            false,
        );
        push("spill_bytes_hist", hist(&self.spill_bytes_hist), false);
        push(
            "interrupts_deadline",
            self.interrupts_deadline.to_string(),
            false,
        );
        push(
            "interrupts_iteration_cap",
            self.interrupts_iteration_cap.to_string(),
            false,
        );
        push(
            "interrupts_cancelled",
            self.interrupts_cancelled.to_string(),
            false,
        );
        push(
            "interrupts_memory",
            self.interrupts_memory.to_string(),
            false,
        );
        push("faults_injected", self.faults_injected.to_string(), false);
        push(
            "mem_high_water_bytes",
            self.mem_high_water_bytes.to_string(),
            true,
        );
        s.push('}');
        s
    }
}

// Gated instrumentation helpers for the hot paths. Each is a relaxed load
// and an untaken branch when metrics are off.

/// Count `n` dense-oracle lookups.
#[inline]
pub fn count_dense_evals(n: u64) {
    if metrics_enabled() {
        METRICS.oracle_dense_evals.add(n);
    }
}

/// Count `n` lazy-oracle recomputations.
#[inline]
pub fn count_lazy_evals(n: u64) {
    if metrics_enabled() {
        METRICS.oracle_lazy_evals.add(n);
    }
}

/// Count `n` pair evaluations served by the packed SWAR kernels.
#[inline]
pub fn count_packed_evals(n: u64) {
    if metrics_enabled() {
        METRICS.oracle_packed_evals.add(n);
    }
}

/// Count `n` scalar-lane evaluations on the weighted oracle's unpacked
/// tail.
#[inline]
pub fn count_scalar_fallback(n: u64) {
    if metrics_enabled() {
        METRICS.kernels_fallback_scalar.add(n);
    }
}

/// Count one `sep_row_into` batch invocation.
#[inline]
pub fn count_row_batches() {
    if metrics_enabled() {
        METRICS.kernels_row_batches.incr();
    }
}

/// Record the dispatch tier a freshly built packed matrix will use.
/// Deliberately *not* gated on [`metrics_enabled`]: one relaxed store per
/// matrix build, and run reports must state which code path ran even when
/// counters are off.
#[inline]
pub fn record_dispatch_tier(tier: crate::kernels::dispatch::Tier) {
    METRICS.kernels_dispatch_tier.set(tier.code());
}

/// Count one tile frame written to the spill directory (`bytes` = encoded
/// frame size, observed into the spill-bytes histogram).
#[inline]
pub fn count_spill_write(bytes: u64) {
    if metrics_enabled() {
        METRICS.spill_tiles_written.incr();
        METRICS.spill_bytes_hist.observe(bytes as f64);
    }
}

/// Count one spilled tile read back from disk.
#[inline]
pub fn count_spill_read() {
    if metrics_enabled() {
        METRICS.spill_tiles_read.incr();
    }
}

/// Count one tile rebuilt from the packed labels after corruption or loss.
#[inline]
pub fn count_spill_rebuild() {
    if metrics_enabled() {
        METRICS.spill_tiles_rebuilt.incr();
    }
}

/// Count `n` pinned-tile evictions from the in-RAM spill cache.
#[inline]
pub fn count_spill_evictions(n: u64) {
    if metrics_enabled() {
        METRICS.spill_evictions.add(n);
    }
}

/// Count one spilled-oracle lookup served from a resident tile (memo or
/// LRU cache hit — no disk touch).
#[inline]
pub fn count_spill_cache_hit() {
    if metrics_enabled() {
        METRICS.spill_cache_hits.incr();
    }
}

/// Count one spilled-oracle lookup that bypassed the tile store to the
/// lazy oracle.
#[inline]
pub fn count_spill_cache_bypass() {
    if metrics_enabled() {
        METRICS.spill_cache_bypass.incr();
    }
}

/// Record a tracked-memory level for the high-water gauge.
#[inline]
pub fn observe_mem_bytes(bytes: u64) {
    if metrics_enabled() {
        METRICS.mem_high_water_bytes.observe(bytes);
    }
}

/// Count one fault injected by an armed [`crate::failpoint`] plan.
#[inline]
pub fn count_fault_injected() {
    if metrics_enabled() {
        METRICS.faults_injected.incr();
    }
}

/// Count an anytime stop by interrupt kind (called once per handled
/// interrupt, where the trip is converted into a run status).
pub fn count_interrupt(interrupt: crate::robust::Interrupt) {
    if !metrics_enabled() {
        return;
    }
    use crate::robust::Interrupt;
    match interrupt {
        Interrupt::Deadline => METRICS.interrupts_deadline.incr(),
        Interrupt::IterationCap => METRICS.interrupts_iteration_cap.incr(),
        Interrupt::Cancelled => METRICS.interrupts_cancelled.incr(),
        Interrupt::MemoryExceeded { .. } => METRICS.interrupts_memory.incr(),
    }
}

// ---------------------------------------------------------------------------
// Span timing aggregates
// ---------------------------------------------------------------------------

/// Histogram bounds for span durations, in nanoseconds (1 µs … 10 s;
/// the 9th bucket catches anything longer).
pub const TIMING_NS_BOUNDS: [f64; HISTOGRAM_BUCKETS - 1] =
    [1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10];

/// Wall-clock aggregates for one span name, recorded by closing
/// [`SpanGuard`]s while metrics are enabled.
#[derive(Debug)]
pub struct SpanStats {
    /// Number of closes.
    pub count: Counter,
    /// Total elapsed nanoseconds across all closes, children included.
    pub total_ns: Counter,
    /// Elapsed nanoseconds minus time spent inside child spans on the
    /// same thread — the span's own work.
    pub self_ns: Counter,
    /// Longest single close, in nanoseconds.
    pub max_ns: MaxGauge,
    /// Distribution of per-close elapsed ns ([`TIMING_NS_BOUNDS`]).
    pub ns_hist: Histogram,
}

fn timings_registry() -> &'static RwLock<Vec<(&'static str, &'static SpanStats)>> {
    static REG: OnceLock<RwLock<Vec<(&'static str, &'static SpanStats)>>> = OnceLock::new();
    REG.get_or_init(|| RwLock::new(Vec::new()))
}

/// The [`SpanStats`] slot for `name`, created on first use. Slots are
/// leaked into `'static`: span names are a small closed set of string
/// literals, so the registry is bounded and the leak is the price of
/// lock-free recording on the hot drop path (a linear scan of a dozen
/// entries under a read lock, then plain relaxed atomics).
pub fn span_stats(name: &'static str) -> &'static SpanStats {
    let reg = timings_registry();
    {
        let read = match reg.read() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        };
        if let Some(&(_, stats)) = read.iter().find(|(n, _)| *n == name) {
            return stats;
        }
    }
    let mut write = match reg.write() {
        Ok(g) => g,
        Err(e) => e.into_inner(),
    };
    if let Some(&(_, stats)) = write.iter().find(|(n, _)| *n == name) {
        return stats;
    }
    let stats: &'static SpanStats = Box::leak(Box::new(SpanStats {
        count: Counter::new(),
        total_ns: Counter::new(),
        self_ns: Counter::new(),
        max_ns: MaxGauge::new(),
        ns_hist: Histogram::new(TIMING_NS_BOUNDS),
    }));
    write.push((name, stats));
    stats
}

/// A point-in-time copy of one span name's timing aggregates.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanTiming {
    /// Span name.
    pub name: &'static str,
    /// See [`SpanStats::count`].
    pub count: u64,
    /// See [`SpanStats::total_ns`].
    pub total_ns: u64,
    /// See [`SpanStats::self_ns`].
    pub self_ns: u64,
    /// See [`SpanStats::max_ns`].
    pub max_ns: u64,
    /// See [`SpanStats::ns_hist`].
    pub ns_hist: [u64; HISTOGRAM_BUCKETS],
}

/// A snapshot of every span name's timing aggregates, sorted by name —
/// the `timings` block of the run report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimingsSnapshot {
    /// Per-span-name aggregates, sorted by name.
    pub spans: Vec<SpanTiming>,
}

impl TimingsSnapshot {
    /// Snapshot the process-wide timing registry right now.
    pub fn capture() -> TimingsSnapshot {
        let read = match timings_registry().read() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        };
        let mut spans: Vec<SpanTiming> = read
            .iter()
            .map(|&(name, s)| SpanTiming {
                name,
                count: s.count.get(),
                total_ns: s.total_ns.get(),
                self_ns: s.self_ns.get(),
                max_ns: s.max_ns.get(),
                ns_hist: s.ns_hist.counts(),
            })
            .collect();
        drop(read);
        spans.sort_by_key(|t| t.name);
        TimingsSnapshot { spans }
    }

    /// The aggregates for `name`, if that span has closed at least once.
    pub fn get(&self, name: &str) -> Option<&SpanTiming> {
        self.spans.iter().find(|t| t.name == name)
    }

    /// Render as a stable JSON object keyed by span name:
    /// `{"dense_build":{"count":1,"total_ns":…,"self_ns":…,"max_ns":…,
    /// "ns_hist":[…]}}`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(64 + 128 * self.spans.len());
        s.push('{');
        for (i, t) in self.spans.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let hist: Vec<String> = t.ns_hist.iter().map(|c| c.to_string()).collect();
            s.push_str(&json_string(t.name));
            s.push_str(&format!(
                ":{{\"count\":{},\"total_ns\":{},\"self_ns\":{},\"max_ns\":{},\"ns_hist\":[{}]}}",
                t.count,
                t.total_ns,
                t.self_ns,
                t.max_ns,
                hist.join(",")
            ));
        }
        s.push('}');
        s
    }
}

// ---------------------------------------------------------------------------
// Run reports
// ---------------------------------------------------------------------------

/// JSON object describing the host the process is running on: arch, OS,
/// CPU count, the CPU features relevant to kernel dispatch, and the
/// requested/selected SIMD tier. Embedded in every run report so a
/// benchmark number always states what hardware and code path produced it
/// (e.g. "speedup measured on a 1-CPU host" is machine-readable).
pub fn host_report_json() -> String {
    use crate::kernels::dispatch;
    let cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    let features: Vec<String> = dispatch::detected_features()
        .iter()
        .map(|f| json_string(f))
        .collect();
    format!(
        "{{\"arch\":{},\"os\":{},\"cpus\":{},\"features\":[{}],\"simd_requested\":{},\"simd_selected\":{}}}",
        json_string(std::env::consts::ARCH),
        json_string(std::env::consts::OS),
        cpus,
        features.join(","),
        json_string(dispatch::requested()),
        json_string(dispatch::selected().name()),
    )
}

/// The standard run report: schema tag, host block, per-span `timings`,
/// the `faults` injected by an armed failpoint plan (empty when none is
/// armed — a run report is self-describing about whether chaos was in
/// play), and the current metrics registry. This is the exact payload of
/// the CLI's `--metrics-out`, the bench binaries' `--metrics-out`, and
/// the `run_report` records embedded in `BENCH_*.json`.
pub fn run_report_json() -> String {
    let faults: Vec<String> = crate::failpoint::injection_log()
        .iter()
        .map(|f| json_string(f))
        .collect();
    format!(
        "{{\"schema\":\"aggclust-run-report-v1\",\"host\":{},\"timings\":{},\"faults\":[{}],\"metrics\":{}}}",
        host_report_json(),
        TimingsSnapshot::capture().to_json(),
        faults.join(","),
        MetricsSnapshot::capture().to_json()
    )
}

// ---------------------------------------------------------------------------
// JSON helpers (zero-dependency encoding)
// ---------------------------------------------------------------------------

/// Escape and quote `s` as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render an `f64` as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        // Ensure the token parses back as a number even for integral
        // values (a bare `5` is fine JSON; keep it simple).
        let s = format!("{x}");
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_owned()
    }
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// A small process-unique id for the calling thread (1-based, assigned
/// at the thread's first telemetry use). Stamped as `tid` on every JSONL
/// trace record so offline analysis can rebuild per-thread span stacks —
/// span nesting is only meaningful within one thread.
pub fn current_tid() -> u64 {
    TID.with(|t| *t)
}

fn fields_json(fields: &[(&'static str, Value)]) -> String {
    let mut s = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&json_string(k));
        s.push(':');
        s.push_str(&v.to_json());
    }
    s.push('}');
    s
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// A leveled human logger writing one line per event to stderr. Span
/// closes are logged at [`Level::Debug`], span opens at [`Level::Trace`].
///
/// Line format follows CLI conventions so routing a message through the
/// logger is byte-identical to the `eprintln!` it replaces: errors are
/// prefixed `error: `, warnings `warning: `, info lines are bare.
/// Structured fields are appended only when the sink's threshold is
/// [`Level::Debug`] or chattier — the machine-readable home for fields is
/// [`JsonlSink`], not the human log.
#[derive(Debug)]
pub struct StderrSink {
    min: Level,
}

impl StderrSink {
    /// Log events at `min` and below (toward [`Level::Error`]).
    pub fn new(min: Level) -> StderrSink {
        StderrSink { min }
    }

    fn fields_suffix(&self, fields: &[(&'static str, Value)]) -> String {
        if self.min >= Level::Debug {
            fields_human(fields)
        } else {
            String::new()
        }
    }
}

fn fields_human(fields: &[(&'static str, Value)]) -> String {
    if fields.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!(" [{}]", parts.join(" "))
}

impl Collector for StderrSink {
    fn enabled(&self, level: Level) -> bool {
        level <= self.min
    }

    fn event(&self, event: &Event<'_>) {
        let prefix = match event.level {
            Level::Error => "error: ",
            Level::Warn => "warning: ",
            Level::Info => "",
            Level::Debug => "[debug] ",
            Level::Trace => "[trace] ",
        };
        // The stderr sink IS the error-reporting path for telemetry.
        eprintln!(
            "{prefix}{}{}",
            event.message,
            self.fields_suffix(event.fields)
        ); // lint:allow-eprintln
    }

    fn span_start(&self, span: &SpanData) {
        if self.enabled(Level::Trace) {
            eprintln!(
                "[trace] span {} opened{}",
                span.name,
                fields_human(&span.fields)
            ); // lint:allow-eprintln
        }
    }

    fn span_end(&self, span: &SpanData, elapsed: Duration) {
        if self.enabled(Level::Debug) {
            eprintln!(
                "[debug] span {} closed in {:.3} ms{}",
                span.name,
                elapsed.as_secs_f64() * 1e3,
                fields_human(&span.fields)
            ); // lint:allow-eprintln
        }
    }
}

/// Renders only the rate-limited `progress` heartbeats (see [`Heartbeat`])
/// as single human-readable stderr lines, ignoring every other event and
/// all spans. Meant to ride in a [`TeeCollector`] next to a quieter
/// [`StderrSink`]: the CLI's `--progress` flag without dragging the whole
/// debug firehose along.
///
/// Line shape (fields appear when the heartbeat carried them):
///
/// ```text
/// progress: local_search 2500/5000 (50.0%) elapsed 1.2s eta 1.3s mem 12.4 MB deadline 3.0s
/// ```
#[derive(Debug, Default)]
pub struct ProgressSink;

impl ProgressSink {
    /// A fresh progress renderer.
    pub fn new() -> ProgressSink {
        ProgressSink
    }
}

fn field_u64(fields: &[(&'static str, Value)], key: &str) -> Option<u64> {
    fields.iter().find_map(|(k, v)| match v {
        Value::U64(x) if *k == key => Some(*x),
        _ => None,
    })
}

fn human_secs(ms: u64) -> String {
    format!("{:.1}s", ms as f64 / 1e3)
}

impl Collector for ProgressSink {
    fn enabled(&self, level: Level) -> bool {
        // Heartbeats are emitted at Debug; chattier levels are not needed.
        level <= Level::Debug
    }

    fn event(&self, event: &Event<'_>) {
        if event.message != "progress" {
            return;
        }
        let phase = event
            .fields
            .iter()
            .find_map(|(k, v)| match v {
                Value::Str(s) if *k == "phase" => Some(s.as_str()),
                _ => None,
            })
            .unwrap_or("?");
        let done = field_u64(event.fields, "done").unwrap_or(0);
        let total = field_u64(event.fields, "total").unwrap_or(0);
        let mut line = format!("progress: {phase} {done}/{total}");
        if total > 0 {
            line.push_str(&format!(" ({:.1}%)", 100.0 * done as f64 / total as f64));
        }
        if let Some(ms) = field_u64(event.fields, "elapsed_ms") {
            line.push_str(&format!(" elapsed {}", human_secs(ms)));
        }
        if let Some(ms) = field_u64(event.fields, "eta_ms") {
            line.push_str(&format!(" eta {}", human_secs(ms)));
        }
        if let Some(bytes) = field_u64(event.fields, "mem_bytes") {
            line.push_str(&format!(" mem {:.1} MB", bytes as f64 / (1 << 20) as f64));
        }
        if let Some(ms) = field_u64(event.fields, "deadline_remaining_ms") {
            line.push_str(&format!(" deadline {}", human_secs(ms)));
        }
        eprintln!("{line}"); // lint:allow-eprintln
    }

    fn span_start(&self, _span: &SpanData) {}

    fn span_end(&self, _span: &SpanData, _elapsed: Duration) {}
}

/// A machine-readable trace sink: one JSON object per line (JSONL), one
/// line per event / span start / span end.
///
/// Record shapes (`tid` is [`current_tid`] — the key for rebuilding
/// per-thread span stacks offline):
///
/// ```json
/// {"type":"event","ts_ns":123,"tid":1,"level":"info","message":"...","fields":{...}}
/// {"type":"span_start","ts_ns":123,"tid":1,"span":"balls","id":7,"fields":{...}}
/// {"type":"span_end","ts_ns":456,"tid":1,"span":"balls","id":7,"elapsed_ns":333,"fields":{...}}
/// ```
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
    clock: Clock,
    max: Level,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").field("max", &self.max).finish()
    }
}

impl JsonlSink {
    /// Trace into any writer, recording events at `max` and below.
    pub fn new(out: Box<dyn Write + Send>, max: Level) -> JsonlSink {
        JsonlSink {
            out: Mutex::new(out),
            clock: Clock::system(),
            max,
        }
    }

    /// Trace into a freshly created (truncated) file.
    pub fn to_file(path: &std::path::Path, max: Level) -> std::io::Result<JsonlSink> {
        let file = crate::iofs::create("trace.create", path)?;
        Ok(JsonlSink::new(Box::new(std::io::BufWriter::new(file)), max))
    }

    fn write_line(&self, line: String) {
        if let Ok(mut out) = self.out.lock() {
            // A full disk should not take the algorithm down with it.
            let _ = writeln!(out, "{line}");
            let _ = out.flush();
        }
    }
}

impl Collector for JsonlSink {
    fn enabled(&self, level: Level) -> bool {
        level <= self.max
    }

    fn event(&self, event: &Event<'_>) {
        self.write_line(format!(
            "{{\"type\":\"event\",\"ts_ns\":{},\"tid\":{},\"level\":{},\"message\":{},\"fields\":{}}}",
            self.clock.now_ns(),
            current_tid(),
            json_string(event.level.as_str()),
            json_string(event.message),
            fields_json(event.fields),
        ));
    }

    fn span_start(&self, span: &SpanData) {
        self.write_line(format!(
            "{{\"type\":\"span_start\",\"ts_ns\":{},\"tid\":{},\"span\":{},\"id\":{},\"fields\":{}}}",
            self.clock.now_ns(),
            current_tid(),
            json_string(span.name),
            span.id,
            fields_json(&span.fields),
        ));
    }

    fn span_end(&self, span: &SpanData, elapsed: Duration) {
        self.write_line(format!(
            "{{\"type\":\"span_end\",\"ts_ns\":{},\"tid\":{},\"span\":{},\"id\":{},\"elapsed_ns\":{},\"fields\":{}}}",
            self.clock.now_ns(),
            current_tid(),
            json_string(span.name),
            span.id,
            u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
            fields_json(&span.fields),
        ));
    }
}

/// Fans spans and events out to several collectors.
#[derive(Default)]
pub struct TeeCollector {
    sinks: Vec<Arc<dyn Collector>>,
}

impl std::fmt::Debug for TeeCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TeeCollector")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl TeeCollector {
    /// An empty tee (drops everything until sinks are added).
    pub fn new() -> TeeCollector {
        TeeCollector::default()
    }

    /// Add a sink.
    pub fn push(&mut self, sink: Arc<dyn Collector>) {
        self.sinks.push(sink);
    }

    /// `true` when no sinks are attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl Collector for TeeCollector {
    fn enabled(&self, level: Level) -> bool {
        self.sinks.iter().any(|s| s.enabled(level))
    }

    fn event(&self, event: &Event<'_>) {
        for s in &self.sinks {
            if s.enabled(event.level) {
                s.event(event);
            }
        }
    }

    fn span_start(&self, span: &SpanData) {
        for s in &self.sinks {
            s.span_start(span);
        }
    }

    fn span_end(&self, span: &SpanData, elapsed: Duration) {
        for s in &self.sinks {
            s.span_end(span, elapsed);
        }
    }
}

/// A collector that records everything into memory — the test double.
#[derive(Debug, Default)]
pub struct MemoryCollector {
    records: Mutex<Vec<String>>,
}

impl MemoryCollector {
    /// A fresh, empty collector.
    pub fn new() -> MemoryCollector {
        MemoryCollector::default()
    }

    /// Every record captured so far, formatted as
    /// `event <level> <message>` / `span_start <name>` /
    /// `span_end <name>`.
    pub fn records(&self) -> Vec<String> {
        self.records.lock().map(|r| r.clone()).unwrap_or_default()
    }

    fn push(&self, s: String) {
        if let Ok(mut r) = self.records.lock() {
            r.push(s);
        }
    }
}

impl Collector for MemoryCollector {
    fn enabled(&self, _level: Level) -> bool {
        true
    }

    fn event(&self, event: &Event<'_>) {
        self.push(format!(
            "event {} {}{}",
            event.level,
            event.message,
            fields_human(event.fields)
        ));
    }

    fn span_start(&self, span: &SpanData) {
        self.push(format!(
            "span_start {}{}",
            span.name,
            fields_human(&span.fields)
        ));
    }

    fn span_end(&self, span: &SpanData, _elapsed: Duration) {
        self.push(format!(
            "span_end {}{}",
            span.name,
            fields_human(&span.fields)
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the tests that flip the process-global collector or
    /// metrics switch; the rest of the suite runs in parallel threads.
    fn global_state_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn level_parsing_and_order() {
        assert_eq!(Level::parse("INFO"), Some(Level::Info));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("bogus"), None);
        assert!(Level::Error < Level::Warn);
        assert!(Level::Debug < Level::Trace);
        assert_eq!(Level::Trace.to_string(), "trace");
    }

    #[test]
    fn clock_mock_advances_and_shares_time() {
        let clock = Clock::mock();
        assert!(clock.is_mock());
        assert_eq!(clock.now_ns(), 0);
        let twin = clock.clone();
        clock.advance(Duration::from_millis(5));
        assert_eq!(twin.now_ns(), 5_000_000);
        // Advancing the system clock is a documented no-op.
        let sys = Clock::system();
        assert!(!sys.is_mock());
        let a = sys.now_ns();
        sys.advance(Duration::from_secs(3600));
        assert!(sys.now_ns() < a + 1_000_000_000);
    }

    #[test]
    fn system_clock_is_monotone() {
        let clock = Clock::system();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn float_sum_accumulates() {
        let s = FloatSum::new();
        s.add(1.5);
        s.add(2.25);
        assert_eq!(s.get(), 3.75);
    }

    #[test]
    fn histogram_buckets_observations() {
        let h = Histogram::new(POW10_BOUNDS);
        h.observe(0.0); // <= 1e-6
        h.observe(0.5); // <= 1.0
        h.observe(1e12); // overflow bucket
        let counts = h.counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[3], 1);
        assert_eq!(counts[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(counts.iter().sum::<u64>(), 3);
    }

    #[test]
    fn snapshot_diff_isolates_deltas() {
        let _guard = global_state_lock();
        let before = MetricsSnapshot::capture();
        set_metrics_enabled(true);
        metrics().oracle_dense_evals.add(7);
        metrics().ls_moves.incr();
        set_metrics_enabled(false);
        let after = MetricsSnapshot::capture();
        let delta = after.diff(&before);
        assert!(delta.oracle_dense_evals >= 7);
        assert!(delta.ls_moves >= 1);
    }

    #[test]
    fn snapshot_json_is_parseable_shape() {
        let snap = MetricsSnapshot::capture();
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"oracle_dense_evals\":"));
        assert!(json.contains("\"mem_high_water_bytes\":"));
        assert!(json.contains("\"ls_delta_hist\":["));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(5.0), "5.0");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn memory_collector_captures_spans_and_events() {
        let _guard = global_state_lock();
        let collector = Arc::new(MemoryCollector::new());
        install_collector(collector.clone());
        {
            let _g = crate::span!("test_span", n = 3usize);
            crate::info!("hello", k = 1u64);
        }
        clear_collector();
        let records = collector.records();
        assert!(records.iter().any(|r| r == "span_start test_span [n=3]"));
        assert!(records.iter().any(|r| r == "event info hello [k=1]"));
        assert!(records.iter().any(|r| r == "span_end test_span [n=3]"));
        // After clearing, macros are inert.
        crate::info!("dropped");
        assert_eq!(collector.records().len(), records.len());
    }

    #[test]
    fn span_fields_not_evaluated_without_collector() {
        let _guard = global_state_lock();
        // No collector is installed while the lock is held: the field
        // expression must not run.
        let evaluated = std::cell::Cell::new(false);
        {
            let _g = SpanGuard::enter("free", || {
                evaluated.set(true);
                vec![]
            });
        }
        assert!(!evaluated.get());
    }

    #[test]
    fn jsonl_sink_emits_valid_lines() {
        use std::sync::Arc as StdArc;
        #[derive(Clone, Default)]
        struct Shared(StdArc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Shared::default();
        let sink = JsonlSink::new(Box::new(buf.clone()), Level::Trace);
        sink.event(&Event {
            level: Level::Info,
            message: "m\"sg",
            fields: &[("k", Value::F64(0.5))],
        });
        let span = SpanData {
            name: "s",
            id: 42,
            fields: vec![("n", Value::U64(9))],
        };
        sink.span_start(&span);
        sink.span_end(&span, Duration::from_nanos(77));
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"type\":\"event\""));
        assert!(lines[0].contains("\"message\":\"m\\\"sg\""));
        assert!(lines[0].contains("\"k\":0.5"));
        assert!(lines[1].contains("\"type\":\"span_start\""));
        assert!(lines[1].contains("\"id\":42"));
        assert!(lines[2].contains("\"elapsed_ns\":77"));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn cadence_fires_once_per_period() {
        let clock = Clock::mock();
        let mut cadence = Cadence::with_clock(clock.clone(), Duration::from_millis(10));
        assert!(!cadence.due(), "not due immediately after construction");
        clock.advance(Duration::from_millis(9));
        assert!(!cadence.due());
        clock.advance(Duration::from_millis(1));
        assert!(cadence.due());
        assert!(!cadence.due(), "due resets the countdown");
        clock.advance(Duration::from_millis(25));
        assert!(cadence.due());
        cadence.reset();
        clock.advance(Duration::from_millis(5));
        assert!(!cadence.due(), "reset restarts the countdown");
        assert_eq!(cadence.every(), Duration::from_millis(10));
    }

    #[test]
    fn heartbeat_emits_rate_limited_progress_events() {
        let _guard = global_state_lock();
        let collector = Arc::new(MemoryCollector::new());
        install_collector(collector.clone());
        let clock = Clock::mock();
        let cadence = Cadence::with_clock(clock.clone(), Duration::from_millis(10));
        let mut hb = Heartbeat::with_cadence("test_phase", 100, cadence);
        hb.tick(1); // cadence not yet due
        clock.advance(Duration::from_millis(10));
        hb.tick(25); // due: one event
        hb.tick(26); // immediately after: suppressed
        clock.advance(Duration::from_millis(10));
        hb.tick(50); // due again
        clear_collector();
        let progress: Vec<String> = collector
            .records()
            .into_iter()
            .filter(|r| r.contains("progress"))
            .collect();
        assert_eq!(progress.len(), 2, "got {progress:?}");
        assert!(progress[0].contains("phase=test_phase"));
        assert!(progress[0].contains("done=25"));
        assert!(progress[0].contains("total=100"));
        assert!(progress[0].contains("eta_ms="));
        // Without a collector a tick is inert regardless of cadence.
        clock.advance(Duration::from_secs(1));
        hb.tick(99);
        assert_eq!(collector.records().len(), progress.len());
    }

    #[test]
    fn heartbeat_carries_budget_deadline() {
        let _guard = global_state_lock();
        let collector = Arc::new(MemoryCollector::new());
        install_collector(collector.clone());
        let clock = Clock::mock();
        let budget = crate::robust::ResourceBudget::unlimited()
            .with_clock(clock.clone())
            .with_deadline(Duration::from_secs(2));
        let cadence = Cadence::with_clock(clock.clone(), Duration::from_millis(1));
        let mut hb = Heartbeat::with_cadence("budgeted", 10, cadence).with_budget(&budget);
        clock.advance(Duration::from_millis(500));
        hb.tick(5);
        clear_collector();
        let records = collector.records();
        let line = records
            .iter()
            .find(|r| r.contains("progress"))
            .cloned()
            .unwrap_or_default();
        assert!(
            line.contains("deadline_remaining_ms=1500"),
            "missing deadline field: {line}"
        );
        assert!(line.contains("mem_bytes="), "missing mem field: {line}");
    }

    #[test]
    fn span_timings_attribute_self_and_total() {
        let _guard = global_state_lock();
        let clock = Clock::mock();
        set_timing_clock(clock.clone());
        set_metrics_enabled(true);
        let outer_before = TimingsSnapshot::capture()
            .get("timing_outer")
            .cloned()
            .unwrap_or(SpanTiming {
                name: "timing_outer",
                count: 0,
                total_ns: 0,
                self_ns: 0,
                max_ns: 0,
                ns_hist: [0; HISTOGRAM_BUCKETS],
            });
        {
            let _outer = crate::span!("timing_outer");
            clock.advance(Duration::from_nanos(100));
            {
                let _inner = crate::span!("timing_inner");
                clock.advance(Duration::from_nanos(40));
            }
            clock.advance(Duration::from_nanos(60));
        }
        set_metrics_enabled(false);
        set_timing_clock(Clock::system());
        let snap = TimingsSnapshot::capture();
        let outer = snap.get("timing_outer").cloned();
        let inner = snap.get("timing_inner").cloned();
        let outer = outer.as_ref().map(|t| {
            (
                t.count - outer_before.count,
                t.total_ns - outer_before.total_ns,
                t.self_ns - outer_before.self_ns,
            )
        });
        assert_eq!(outer, Some((1, 200, 160)), "outer self = total - child");
        let inner = inner.map(|t| (t.total_ns, t.self_ns));
        assert_eq!(inner, Some((40, 40)), "leaf self == total");
    }

    #[test]
    fn timings_snapshot_json_shape() {
        let _guard = global_state_lock();
        set_metrics_enabled(true);
        {
            let _g = crate::span!("timing_json_probe");
        }
        set_metrics_enabled(false);
        let json = TimingsSnapshot::capture().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"timing_json_probe\":{\"count\":"));
        assert!(json.contains("\"total_ns\":"));
        assert!(json.contains("\"self_ns\":"));
        assert!(json.contains("\"max_ns\":"));
        assert!(json.contains("\"ns_hist\":["));
        let report = run_report_json();
        assert!(report.contains("\"timings\":{"));
        assert!(report.contains("\"faults\":["));
    }

    #[test]
    fn current_tid_is_stable_and_distinct() {
        let here = current_tid();
        assert_eq!(here, current_tid());
        let other = std::thread::spawn(current_tid).join().unwrap_or_default();
        assert_ne!(here, other);
        assert!(other >= 1);
    }

    #[test]
    fn interrupt_counting_by_kind() {
        use crate::robust::Interrupt;
        let _guard = global_state_lock();
        let before = MetricsSnapshot::capture();
        set_metrics_enabled(true);
        count_interrupt(Interrupt::Deadline);
        count_interrupt(Interrupt::Cancelled);
        count_interrupt(Interrupt::MemoryExceeded {
            requested: 1,
            limit: 1,
        });
        set_metrics_enabled(false);
        let delta = MetricsSnapshot::capture().diff(&before);
        assert!(delta.interrupts_deadline >= 1);
        assert!(delta.interrupts_cancelled >= 1);
        assert!(delta.interrupts_memory >= 1);
    }
}
